//! Solar resource, PV, battery and off-grid sizing simulation.
//!
//! The paper sizes the autonomous repeater power systems with PVGIS, an
//! online tool backed by satellite irradiation databases. This crate is the
//! offline substitute: a physically grounded, hourly, year-long simulation
//! built from
//!
//! * [`SolarGeometry`] — declination, hour angle, elevation/azimuth;
//! * [`ClearSky`] — the Haurwitz clear-sky model, scaled by per-month
//!   clearness indices from embedded climate normals ([`Location`],
//!   [`climate`]);
//! * [`WeatherGenerator`] — seeded day-to-day clearness variability (the
//!   driver of battery sizing: strings of overcast winter days);
//! * [`Transposition`] — beam/diffuse split (Erbs) and isotropic-sky
//!   projection onto the vertically mounted module (90° tilt, as on a
//!   catenary mast);
//! * [`PvModule`] and [`Battery`] — DC conversion with temperature
//!   derating, storage with a 40 % discharge cutoff;
//! * [`OffGridSystem`] — the year simulation producing [`YearStats`]
//!   (% days with full battery, downtime days — the paper's Table IV
//!   metrics) and [`sizing`] — the search for the smallest standard
//!   PV-module/battery combination with zero downtime.
//!
//! # Examples
//!
//! ```
//! use corridor_solar::{climate, Battery, DailyLoadProfile, OffGridSystem, PvArray};
//! use corridor_units::{WattHours, Watts};
//!
//! let system = OffGridSystem::new(
//!     climate::madrid(),
//!     PvArray::standard_modules(3),            // 3 × 180 Wp vertical
//!     Battery::with_capacity(WattHours::new(720.0)),
//!     DailyLoadProfile::repeater_paper_default(),
//! );
//! let stats = system.simulate_year(2022);
//! assert!(stats.full_battery_day_fraction() > 0.9);
//! assert_eq!(stats.downtime_days(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod clearsky;
pub mod climate;
mod environment;
mod geometry;
mod load;
mod offgrid;
mod pv;
pub mod sizing;
mod transposition;
mod weather;

pub use battery::{Battery, BatteryStep};
pub use clearsky::ClearSky;
pub use climate::Location;
pub use geometry::SolarGeometry;
pub use load::DailyLoadProfile;
pub use offgrid::{OffGridSystem, YearStats};
pub use pv::{PvArray, PvModule};
pub use transposition::Transposition;
pub use weather::WeatherGenerator;
