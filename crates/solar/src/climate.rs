//! Embedded climate normals for the paper's four example regions.
//!
//! PVGIS queries a satellite irradiation database; offline we carry, per
//! location, twelve monthly mean daily global horizontal irradiation (GHI)
//! values and monthly mean ambient temperatures, synthesized from public
//! climate normals. The absolute values are approximate; what matters for
//! the Table IV reproduction is the *ranking* and the winter minima, which
//! these normals preserve: Madrid's sunny winters vs. the overcast
//! Vienna/Berlin November–January.

use core::fmt;

/// A railway-corridor site with its climate normals.
///
/// # Examples
///
/// ```
/// use corridor_solar::climate;
/// let madrid = climate::madrid();
/// let berlin = climate::berlin();
/// // Madrid's December irradiation is roughly triple Berlin's
/// assert!(madrid.monthly_ghi_kwh_m2_day()[11] > 2.5 * berlin.monthly_ghi_kwh_m2_day()[11]);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Location {
    name: &'static str,
    latitude_deg: f64,
    monthly_ghi_kwh_m2_day: [f64; 12],
    monthly_temp_c: [f64; 12],
    overcast_persistence: f64,
}

impl Location {
    /// Creates a location from climate normals.
    ///
    /// # Panics
    ///
    /// Panics if the latitude is out of range or a GHI normal is not
    /// strictly positive.
    pub fn new(
        name: &'static str,
        latitude_deg: f64,
        monthly_ghi_kwh_m2_day: [f64; 12],
        monthly_temp_c: [f64; 12],
    ) -> Self {
        assert!(
            (-90.0..=90.0).contains(&latitude_deg),
            "latitude out of range"
        );
        assert!(
            monthly_ghi_kwh_m2_day.iter().all(|g| *g > 0.0),
            "GHI normals must be positive"
        );
        Location {
            name,
            latitude_deg,
            monthly_ghi_kwh_m2_day,
            monthly_temp_c,
            overcast_persistence: 0.75,
        }
    }

    /// Overrides the day-to-day persistence of overcast anomalies.
    ///
    /// Continental sites (Vienna, Berlin) sit under quasi-stationary
    /// high-fog/anticyclonic gloom for a week or more in winter, while
    /// Madrid's and Lyon's cloudy spells clear within days; this parameter
    /// is what separates them in the battery-sizing results.
    ///
    /// # Panics
    ///
    /// Panics if `persistence` is outside `[0, 1)`.
    #[must_use]
    pub fn with_overcast_persistence(mut self, persistence: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&persistence),
            "persistence must be in [0, 1)"
        );
        self.overcast_persistence = persistence;
        self
    }

    /// Day-to-day persistence of the site's overcast anomalies.
    pub fn overcast_persistence(&self) -> f64 {
        self.overcast_persistence
    }

    /// Site name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Latitude, degrees north.
    pub fn latitude_deg(&self) -> f64 {
        self.latitude_deg
    }

    /// Monthly mean daily GHI (kWh/m²/day), January first.
    pub fn monthly_ghi_kwh_m2_day(&self) -> &[f64; 12] {
        &self.monthly_ghi_kwh_m2_day
    }

    /// Monthly mean ambient temperatures (°C), January first.
    pub fn monthly_temp_c(&self) -> &[f64; 12] {
        &self.monthly_temp_c
    }

    /// Mean daily GHI (Wh/m²/day) for a day of year (1..=365).
    pub fn ghi_for_doy_wh_m2(&self, doy: u32) -> f64 {
        self.monthly_ghi_kwh_m2_day[Self::month_of_doy(doy)] * 1e3
    }

    /// Ambient temperature for a day of year.
    pub fn temp_for_doy(&self, doy: u32) -> f64 {
        self.monthly_temp_c[Self::month_of_doy(doy)]
    }

    /// Annual irradiation (kWh/m²/year) implied by the normals.
    pub fn annual_ghi_kwh_m2(&self) -> f64 {
        const DAYS: [f64; 12] = [
            31.0, 28.0, 31.0, 30.0, 31.0, 30.0, 31.0, 31.0, 30.0, 31.0, 30.0, 31.0,
        ];
        self.monthly_ghi_kwh_m2_day
            .iter()
            .zip(DAYS)
            .map(|(g, d)| g * d)
            .sum()
    }

    /// Month index (0..=11) of a day of year (1..=365; days beyond 365
    /// clamp to December).
    pub fn month_of_doy(doy: u32) -> usize {
        const CUM: [u32; 12] = [31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365];
        CUM.iter().position(|&end| doy <= end).unwrap_or(11)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.1}°N)", self.name, self.latitude_deg)
    }
}

/// Madrid, Spain (40.4°N) — the sunniest of the four example regions.
pub fn madrid() -> Location {
    Location::new(
        "Madrid",
        40.4,
        [2.1, 3.0, 4.4, 5.4, 6.4, 7.3, 7.6, 6.7, 5.0, 3.3, 2.3, 1.9],
        [
            6.0, 8.0, 11.0, 13.0, 18.0, 23.0, 26.0, 26.0, 21.0, 15.0, 9.0, 6.0,
        ],
    )
    .with_overcast_persistence(0.60)
}

/// Lyon, France (45.8°N).
pub fn lyon() -> Location {
    Location::new(
        "Lyon",
        45.8,
        [1.4, 2.2, 3.2, 4.3, 5.2, 6.0, 6.2, 5.3, 3.9, 2.5, 1.6, 1.25],
        [
            3.0, 5.0, 9.0, 12.0, 16.0, 20.0, 23.0, 22.0, 18.0, 13.0, 7.0, 4.0,
        ],
    )
    .with_overcast_persistence(0.65)
}

/// Vienna, Austria (48.2°N) — overcast winters.
pub fn vienna() -> Location {
    Location::new(
        "Vienna",
        48.2,
        [0.9, 1.7, 2.9, 4.1, 5.1, 5.5, 5.5, 4.8, 3.4, 2.1, 1.0, 0.7],
        [
            0.0, 2.0, 6.0, 11.0, 15.0, 19.0, 21.0, 21.0, 16.0, 10.0, 5.0, 1.0,
        ],
    )
    .with_overcast_persistence(0.84)
}

/// Berlin, Germany (52.5°N) — the darkest winters of the four.
pub fn berlin() -> Location {
    Location::new(
        "Berlin",
        52.5,
        [0.65, 1.3, 2.6, 3.9, 5.0, 5.4, 5.2, 4.5, 3.0, 1.6, 0.7, 0.55],
        [
            0.0, 1.0, 5.0, 10.0, 14.0, 18.0, 20.0, 19.0, 15.0, 10.0, 5.0, 2.0,
        ],
    )
    .with_overcast_persistence(0.84)
}

/// The paper's four example regions, in its order.
pub fn paper_regions() -> [Location; 4] {
    [madrid(), lyon(), vienna(), berlin()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_of_doy_boundaries() {
        assert_eq!(Location::month_of_doy(1), 0);
        assert_eq!(Location::month_of_doy(31), 0);
        assert_eq!(Location::month_of_doy(32), 1);
        assert_eq!(Location::month_of_doy(59), 1);
        assert_eq!(Location::month_of_doy(60), 2);
        assert_eq!(Location::month_of_doy(365), 11);
        assert_eq!(Location::month_of_doy(400), 11);
    }

    #[test]
    fn four_regions_ordered_by_winter_irradiation() {
        let december = |loc: &Location| loc.monthly_ghi_kwh_m2_day()[11];
        let [madrid, lyon, vienna, berlin] = paper_regions();
        assert!(december(&madrid) > december(&lyon));
        assert!(december(&lyon) > december(&vienna));
        assert!(december(&vienna) > december(&berlin));
    }

    #[test]
    fn annual_totals_in_published_ballpark() {
        // public normals: Madrid ~1650-1850, Berlin ~1000-1100 kWh/m²/year
        let madrid = madrid().annual_ghi_kwh_m2();
        assert!((1550.0..1900.0).contains(&madrid), "Madrid {madrid}");
        let berlin = berlin().annual_ghi_kwh_m2();
        assert!((950.0..1200.0).contains(&berlin), "Berlin {berlin}");
    }

    #[test]
    fn latitudes_increase_northward() {
        let [madrid, lyon, vienna, berlin] = paper_regions();
        assert!(madrid.latitude_deg() < lyon.latitude_deg());
        assert!(lyon.latitude_deg() < vienna.latitude_deg());
        assert!(vienna.latitude_deg() < berlin.latitude_deg());
    }

    #[test]
    fn doy_lookups_use_month_normals() {
        let m = madrid();
        assert_eq!(m.ghi_for_doy_wh_m2(15), 2100.0);
        assert_eq!(m.ghi_for_doy_wh_m2(200), 7600.0);
        assert_eq!(m.temp_for_doy(355), 6.0);
    }

    #[test]
    fn display() {
        assert_eq!(madrid().to_string(), "Madrid (40.4°N)");
    }

    #[test]
    #[should_panic(expected = "GHI normals")]
    fn invalid_ghi_rejected() {
        let _ = Location::new("bad", 0.0, [0.0; 12], [0.0; 12]);
    }
}
