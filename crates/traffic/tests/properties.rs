//! Property-based tests for traffic and occupancy invariants.

use corridor_traffic::{
    ActivityTimeline, PoissonTimetable, Timetable, TrackSection, Train, TrainPass, WakeController,
};
use corridor_units::{Hours, KilometersPerHour, Meters, Seconds};
use proptest::prelude::*;
use rand::SeedableRng;

fn train() -> impl Strategy<Value = Train> {
    (50.0..600.0f64, 40.0..350.0f64).prop_map(|(len, kmh)| {
        Train::new(
            Meters::new(len),
            KilometersPerHour::new(kmh).meters_per_second(),
        )
    })
}

proptest! {
    /// Occupancy duration is exactly (section + train)/v.
    #[test]
    fn occupancy_duration_formula(t in train(), start in 0.0..5000.0f64, len in 0.0..3000.0f64, t0 in 0.0..86400.0f64) {
        let section = TrackSection::new(Meters::new(start), Meters::new(start + len));
        let pass = TrainPass::new(t, Seconds::new(t0));
        let (enter, exit) = section.occupancy(&pass);
        let expected = (len + t.length().value()) / t.speed().value();
        prop_assert!(((exit - enter).value() - expected).abs() < 1e-9);
    }

    /// Timelines never double-count: total <= n_passes * per-pass duration,
    /// with equality when headways are long enough to avoid overlap.
    #[test]
    fn merged_total_bounded(trains_per_hour in 1.0..40.0f64, isd in 100.0..3000.0f64) {
        let timetable = Timetable::new(
            trains_per_hour,
            Hours::new(19.0),
            Seconds::ZERO,
            Train::paper_default(),
        );
        let section = TrackSection::new(Meters::ZERO, Meters::new(isd));
        let passes = timetable.passes();
        let activity = ActivityTimeline::for_section(&section, &passes);
        let per_pass = Train::paper_default().time_to_clear(Meters::new(isd)).value();
        let upper = passes.len() as f64 * per_pass;
        prop_assert!(activity.total_active().value() <= upper + 1e-6);
        // headway > per-pass duration implies no merging
        let headway = 3600.0 / trains_per_hour;
        if headway > per_pass + 1.0 {
            prop_assert!((activity.total_active().value() - upper).abs() < 1e-6);
            prop_assert_eq!(activity.len(), passes.len());
        }
    }

    /// Intervals of a timeline are sorted, disjoint and well-formed.
    #[test]
    fn intervals_sorted_disjoint(seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let timetable = PoissonTimetable::paper_rate();
        let passes = timetable.sample_passes(&mut rng);
        let section = TrackSection::new(Meters::ZERO, Meters::new(2400.0));
        let activity = ActivityTimeline::for_section(&section, &passes);
        let intervals = activity.intervals();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "intervals overlap after merge");
        }
        for (s, e) in intervals {
            prop_assert!(e > s);
        }
    }

    /// active_within partitions: summing over any partition of the day
    /// equals the total.
    #[test]
    fn active_within_partitions(seed in 0u64..200, parts in 1usize..48) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let passes = PoissonTimetable::paper_rate().sample_passes(&mut rng);
        let section = TrackSection::around(Meters::new(600.0), Meters::new(200.0));
        let activity = ActivityTimeline::for_section(&section, &passes);
        let day = 86_400.0 * 2.0; // cover spill past midnight
        let step = day / parts as f64;
        let mut sum = 0.0;
        for i in 0..parts {
            sum += activity
                .active_within(Seconds::new(i as f64 * step), Seconds::new((i + 1) as f64 * step))
                .value();
        }
        prop_assert!((sum - activity.total_active().value()).abs() < 1e-6);
    }

    /// Wake lead only ever extends the powered interval at the front.
    #[test]
    fn wake_extends_front(lead in 0.0..5.0f64, delay in 0.0..2.0f64, enter in 0.0..1000.0f64, dur in 1.0..100.0f64) {
        let ctl = WakeController::new(Seconds::new(lead), Seconds::new(delay));
        let occ = (Seconds::new(enter), Seconds::new(enter + dur));
        let (on, off) = ctl.powered_interval(occ);
        prop_assert!(on <= occ.0);
        prop_assert_eq!(off, occ.1);
        prop_assert!(((occ.0 - on).value() - lead).abs() < 1e-12);
    }

    /// Uncovered + slack: exactly one of them is nonzero (or both zero).
    #[test]
    fn uncovered_slack_exclusive(lead in 0.0..5.0f64, delay in 0.0..5.0f64) {
        let ctl = WakeController::new(Seconds::new(lead), Seconds::new(delay));
        let u = ctl.uncovered_time().value();
        let s = ctl.slack_time().value();
        prop_assert!(u >= 0.0 && s >= 0.0);
        prop_assert!(u == 0.0 || s == 0.0);
        prop_assert!(((u - s) - (delay - lead)).abs() < 1e-12);
    }

    /// A timeline with wake control is a superset in time of the plain one.
    #[test]
    fn wake_timeline_never_shorter(lead in 0.0..10.0f64) {
        let ctl = WakeController::new(Seconds::new(lead), Seconds::new(0.3));
        let passes = Timetable::paper_default().passes();
        let section = TrackSection::around(Meters::new(600.0), Meters::new(200.0));
        let plain = ActivityTimeline::for_section(&section, &passes);
        let waked = ActivityTimeline::for_section_with_wake(&section, &passes, &ctl);
        prop_assert!(waked.total_active() >= plain.total_active());
    }
}
