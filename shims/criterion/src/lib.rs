//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! The build environment is offline, so the real `criterion` cannot be
//! fetched from crates.io. This shim keeps the `benches/` targets
//! *runnable* under `cargo bench`: each benchmark actually executes its
//! closure, measures a mean wall-clock time per iteration, and prints a
//! one-line report. It performs no statistical analysis, produces no
//! HTML reports, and its numbers are indicative only — but the hot paths
//! are exercised end to end, and the ablation `println!`s in the bench
//! files still land in the log.
//!
//! Supported surface: [`Criterion`] (with the `sample_size` /
//! `warm_up_time` / `measurement_time` builders), [`Bencher::iter`],
//! [`BenchmarkGroup`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros in both their forms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves as upstream.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            // Far shorter than upstream defaults: the shim is a smoke
            // harness, not a statistics engine.
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (capped by the shim at 500 ms).
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d.min(Duration::from_millis(500));
        self
    }

    /// Sets the measurement duration (capped by the shim at 2 s).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d.min(Duration::from_secs(2));
        self
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(ns_per_iter) => println!("bench {:<44} {:>14.1} ns/iter", id.id, ns_per_iter),
            None => println!("bench {:<44} (no measurement)", id.id),
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<f64>,
}

impl Bencher {
    /// Calls `f` repeatedly — a short warm-up, then timed samples — and
    /// records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut warm_up_iters: u64 = 0;
        while Instant::now() < warm_up_end {
            black_box(f());
            warm_up_iters += 1;
        }

        // Estimate a batch size from the warm-up (aiming for ~sample_size
        // batches per warm-up-sized window), then measure in batches until
        // the measurement_time budget is spent.
        let per_sample = (warm_up_iters / self.sample_size as u64).max(1);
        let mut total_iters: u64 = 0;
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        loop {
            for _ in 0..per_sample {
                black_box(f());
            }
            total_iters += per_sample;
            if Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = started.elapsed();
        self.report = Some(elapsed.as_nanos() as f64 / total_iters.max(1) as f64);
    }
}

/// A named group of benchmarks sharing the parent [`Criterion`] config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let qualified = BenchmarkId::raw(format!("{}/{}", self.name, id.id));
        self.criterion.bench_function(qualified, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    fn raw(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId::raw(name.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId::raw(name)
    }
}

/// Bundles benchmark functions into a runnable group function, in either
/// the `(name, targets...)` or the `name = / config = / targets =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0, "closure never executed");
    }

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::new("fn", "param"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sweep", 8).id, "sweep/8");
        assert_eq!(BenchmarkId::from_parameter("berlin").id, "berlin");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    criterion_group!(simple_form, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        *c = c
            .clone()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn simple_group_form_compiles_and_runs() {
        simple_form();
    }
}
