//! Property-based tests for the EARTH power model.

use corridor_power::{catalog, DutyCycle, LoadDependentPower, OperatingState};
use corridor_units::{Hours, LoadFraction, Watts};
use proptest::prelude::*;

fn model() -> impl Strategy<Value = LoadDependentPower> {
    (0.1..100.0f64, 1.0..500.0f64, 0.0..10.0f64, 0.0..200.0f64).prop_map(
        |(pmax, p0, dp, psleep)| {
            LoadDependentPower::new(
                Watts::new(pmax),
                Watts::new(p0),
                dp,
                Watts::new(psleep.min(p0)),
            )
        },
    )
}

proptest! {
    /// Input power is monotone in load.
    #[test]
    fn power_monotone_in_load(m in model(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = m.input_power(OperatingState::Active(LoadFraction::new(lo).unwrap()));
        let p_hi = m.input_power(OperatingState::Active(LoadFraction::new(hi).unwrap()));
        prop_assert!(p_hi >= p_lo);
    }

    /// Sleep consumes no more than idle, idle no more than any active load.
    #[test]
    fn state_ordering(m in model(), load in 0.0..1.0f64) {
        let sleep = m.input_power(OperatingState::Sleep);
        let idle = m.input_power(OperatingState::Idle);
        let active = m.input_power(OperatingState::Active(LoadFraction::new(load).unwrap()));
        prop_assert!(sleep <= idle);
        prop_assert!(idle <= active);
    }

    /// The model is exactly linear: P(χ) = P0 + χ·(Pfull − P0).
    #[test]
    fn linearity(m in model(), load in 0.0..1.0f64) {
        let p = m.input_power(OperatingState::Active(LoadFraction::new(load).unwrap())).value();
        let expected = m.p0().value() + load * (m.full_load_power().value() - m.p0().value());
        prop_assert!((p - expected).abs() < 1e-9);
    }

    /// Scaling by n multiplies every state's power by n.
    #[test]
    fn scaling_scales_all_states(m in model(), n in 0.0..8.0f64, load in 0.0..1.0f64) {
        let scaled = m.scaled(n);
        let states = [
            OperatingState::Sleep,
            OperatingState::Idle,
            OperatingState::Active(LoadFraction::new(load).unwrap()),
        ];
        for s in states {
            let expected = m.input_power(s).value() * n;
            prop_assert!((scaled.input_power(s).value() - expected).abs() < 1e-9);
        }
    }

    /// Average power is bounded by the sleep and full-load powers.
    #[test]
    fn duty_average_bounded(m in model(), active_h in 0.0..24.0f64, idle_frac in 0.0..1.0f64) {
        let idle_h = (24.0 - active_h) * idle_frac;
        let duty = DutyCycle::over_day(Hours::new(active_h), Hours::new(idle_h));
        let avg = duty.average_power(&m);
        prop_assert!(avg >= m.input_power(OperatingState::Sleep) - Watts::new(1e-9));
        prop_assert!(avg <= m.full_load_power() + Watts::new(1e-9));
    }

    /// Energy with an idle fallback is never below energy with sleep.
    #[test]
    fn idle_fallback_never_cheaper(m in model(), active_h in 0.0..24.0f64) {
        let duty = DutyCycle::over_day(Hours::new(active_h), Hours::ZERO);
        prop_assert!(duty.average_power_idle_fallback(&m) >= duty.average_power(&m));
    }

    /// Daily energy equals average power times 24 h.
    #[test]
    fn daily_energy_consistent(active_h in 0.0..24.0f64) {
        let m = catalog::low_power_repeater_measured();
        let duty = DutyCycle::over_day(Hours::new(active_h), Hours::ZERO);
        let daily = duty.daily_energy(&m).value();
        let from_avg = duty.average_power(&m).value() * 24.0;
        prop_assert!((daily - from_avg).abs() < 1e-9);
    }
}
