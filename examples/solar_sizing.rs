//! Size autonomous PV systems for repeater nodes across Europe and show
//! why winters, not annual sums, drive the design.
//!
//! Run with `cargo run --release --example solar_sizing`.

use railway_corridor::prelude::*;
use railway_corridor::solar::sizing::SizingOptions;
use railway_corridor::solar::{Location, WeatherGenerator, YearStats};

fn main() {
    let load = DailyLoadProfile::repeater_paper_default();
    println!(
        "repeater load: {} per day (avg {})\n",
        load.daily_energy(),
        load.average_power()
    );

    // 1. The paper's four regions, sized with the standard ladder.
    let options = SizingOptions::paper_default();
    println!("zero-downtime sizing (paper Table IV):");
    for location in climate::paper_regions() {
        match sizing::size_for_zero_downtime(location.clone(), load.clone(), &options) {
            Some(fit) => println!("  {:8} -> {fit}", location.name()),
            None => println!(
                "  {:8} -> not solvable with the standard ladder",
                location.name()
            ),
        }
    }

    // 2. Why Berlin needs more: December energy balance per candidate.
    println!("\nBerlin, month-by-month balance (540 Wp, deterministic weather):");
    let berlin = climate::berlin();
    let system = OffGridSystem::new(
        berlin.clone(),
        PvArray::standard_modules(3),
        Battery::paper_default(),
        load.clone(),
    )
    .with_weather_variability(0.0, 0.0);
    let stats = system.simulate_year(0);
    print_year("  deterministic normals", &stats);
    let stochastic = OffGridSystem::new(
        berlin,
        PvArray::standard_modules(3),
        Battery::paper_default(),
        load.clone(),
    );
    print_year("  with overcast strings", &stochastic.simulate_year(10));

    // 3. A custom site: a south-facing alpine valley wall at 46.5°N with
    //    strong winter fog (synthetic normals).
    let alpine = Location::new(
        "Alpine valley",
        46.5,
        [0.8, 1.5, 2.8, 4.0, 4.9, 5.4, 5.6, 4.8, 3.5, 2.0, 0.9, 0.6],
        [
            -2.0, 0.0, 4.0, 9.0, 13.0, 17.0, 19.0, 18.0, 14.0, 9.0, 3.0, -1.0,
        ],
    )
    .with_overcast_persistence(0.85);
    println!("\ncustom site:");
    match sizing::size_for_zero_downtime(alpine, load, &options) {
        Some(fit) => println!("  Alpine valley -> {fit}"),
        None => println!("  Alpine valley -> needs more than the standard ladder"),
    }

    // 4. Show a sampled stretch of synthetic winter weather.
    println!("\nten January days of synthetic Berlin weather (GHI multipliers):");
    let mut weather = WeatherGenerator::new(climate::berlin(), 10);
    let multipliers = weather.daily_multipliers_for_year();
    let days: Vec<String> = multipliers[..10]
        .iter()
        .map(|m| format!("{m:.2}"))
        .collect();
    println!("  {}", days.join("  "));
}

fn print_year(label: &str, stats: &YearStats) {
    println!(
        "{label}: {:.1} % days full, {} downtime day(s), min SoC {:.0} %",
        stats.full_battery_day_fraction() * 100.0,
        stats.downtime_days(),
        stats.min_soc_fraction() * 100.0
    );
}
