//! StateTrace / horizon-clipping edge cases: passes straddling the
//! horizon end, back-to-back passes inside one guard interval, and
//! zero-length occupancy — each pinned against the analytic backend's
//! merged activity timeline.

use corridor_events::{CorridorSimulator, NodeKind, NodeSpec, WakePolicy};
use corridor_traffic::{ActivityTimeline, TrackSection, Train, TrainPass};
use corridor_units::{Meters, Seconds};

const DAY: f64 = 86_400.0;

fn hp_node(end_m: f64) -> Vec<NodeSpec> {
    vec![NodeSpec::new(
        NodeKind::HighPowerMast,
        TrackSection::new(Meters::ZERO, Meters::new(end_m)),
    )]
}

/// The analytic reference: the merged occupancy union clipped to the
/// simulation horizon (`ActivityTimeline` itself does not clip, so the
/// clip is applied through `active_within`).
fn analytic_powered(section: &TrackSection, passes: &[TrainPass]) -> f64 {
    ActivityTimeline::for_section(section, passes)
        .active_within(Seconds::ZERO, Seconds::new(DAY))
        .value()
}

#[test]
fn pass_straddling_the_horizon_end_is_clipped_like_the_timeline() {
    let train = Train::paper_default();
    let nodes = hp_node(500.0);
    // occupancy is 16.2 s; entering 5 s before midnight leaves 5 s
    // inside the horizon and 11.2 s clipped away
    let passes = vec![TrainPass::new(train, Seconds::new(DAY - 5.0))];
    let report = CorridorSimulator::new().simulate(&nodes, &passes);
    let simulated = report.nodes()[0].trace().powered().value();
    let analytic = analytic_powered(&nodes[0].section(), &passes);
    assert!((analytic - 5.0).abs() < 1e-9, "analytic {analytic}");
    assert!(
        (simulated - analytic).abs() < 1e-9,
        "simulated {simulated} vs analytic {analytic}"
    );
    // the trace's integrated day still sums to exactly the horizon
    let t = report.nodes()[0].trace();
    let total = t.asleep().value() + t.powered().value();
    assert!((total - DAY).abs() < 1e-9, "day sums to {total}");
}

#[test]
fn pass_straddling_the_horizon_start_is_clipped_too() {
    let train = Train::paper_default();
    let nodes = hp_node(500.0);
    // enters before t=0 (negative origin): only the in-horizon tail of
    // the occupancy may bill
    let passes = vec![TrainPass::new(train, Seconds::new(-10.0))];
    let report = CorridorSimulator::new().simulate(&nodes, &passes);
    let simulated = report.nodes()[0].trace().powered().value();
    let analytic = analytic_powered(&nodes[0].section(), &passes);
    assert!(analytic > 0.0 && analytic < 16.2);
    assert!(
        (simulated - analytic).abs() < 1e-9,
        "simulated {simulated} vs analytic {analytic}"
    );
}

#[test]
fn back_to_back_passes_inside_one_guard_interval_stay_powered() {
    let train = Train::paper_default();
    let nodes = hp_node(500.0);
    // second pass enters 2 s after the first exits — inside the 10 s
    // guard, so the node must ride through on one wake
    let (first_enter, first_exit) = nodes[0]
        .section()
        .occupancy(&TrainPass::new(train, Seconds::new(1000.0)));
    let gap = 2.0;
    let second_origin = Seconds::new(1000.0) + (first_exit - first_enter) + Seconds::new(gap);
    let passes = vec![
        TrainPass::new(train, Seconds::new(1000.0)),
        TrainPass::new(train, second_origin),
    ];
    let guard = 10.0;
    let policy = WakePolicy::new(Seconds::ZERO, Seconds::ZERO, Seconds::new(guard));
    let report = CorridorSimulator::new()
        .with_policy(policy)
        .simulate(&nodes, &passes);
    let trace = report.nodes()[0].trace();

    // one wake, no coverage gap
    assert_eq!(trace.wakes(), 1);
    assert_eq!(trace.uncovered(), Seconds::ZERO);

    // powered time = the analytic occupancy union (two disjoint
    // occupancies), plus the inter-pass gap the guard bridged, plus one
    // trailing guard after the last exit
    let analytic = analytic_powered(&nodes[0].section(), &passes);
    let expected = analytic + gap + guard;
    let simulated = trace.powered().value();
    assert!(
        (simulated - expected).abs() < 1e-9,
        "simulated {simulated} vs expected {expected}"
    );
}

#[test]
fn back_to_back_passes_with_instant_policy_match_the_timeline() {
    // the same two-pass day with no guard: each pass is its own wake and
    // the energy integral equals the analytic union exactly
    let train = Train::paper_default();
    let nodes = hp_node(500.0);
    let passes = vec![
        TrainPass::new(train, Seconds::new(1000.0)),
        TrainPass::new(train, Seconds::new(1020.0)),
    ];
    let report = CorridorSimulator::new().simulate(&nodes, &passes);
    let trace = report.nodes()[0].trace();
    assert_eq!(trace.wakes(), 2);
    let analytic = analytic_powered(&nodes[0].section(), &passes);
    assert!((trace.powered().value() - analytic).abs() < 1e-9);
}

#[test]
fn zero_length_occupancy_contributes_nothing() {
    // a zero-length train over a point section: enter == exit, an
    // interval of measure zero — the analytic timeline discards it and
    // the simulator must not wake for it either
    let point_train = Train::new(Meters::ZERO, Train::paper_default().speed());
    let nodes = vec![NodeSpec::new(
        NodeKind::ServiceRepeater,
        TrackSection::new(Meters::new(100.0), Meters::new(100.0)),
    )];
    let passes = vec![TrainPass::new(point_train, Seconds::new(500.0))];
    let (enter, exit) = nodes[0].section().occupancy(&passes[0]);
    assert_eq!(enter, exit, "occupancy must be zero-length");

    let report = CorridorSimulator::new().simulate(&nodes, &passes);
    let trace = report.nodes()[0].trace();
    let analytic = analytic_powered(&nodes[0].section(), &passes);
    assert_eq!(analytic, 0.0);
    assert_eq!(trace.powered(), Seconds::ZERO);
    assert_eq!(trace.wakes(), 0);
    assert_eq!(trace.asleep().value(), DAY);
}

#[test]
fn zero_length_train_over_a_real_section_matches_the_timeline() {
    // measure-zero only comes from BOTH a point train and a point
    // section; a point train over a 200 m section still occupies it for
    // section/speed seconds and must match the analytic integral
    let point_train = Train::new(Meters::ZERO, Train::paper_default().speed());
    let nodes = vec![NodeSpec::new(
        NodeKind::ServiceRepeater,
        TrackSection::new(Meters::new(100.0), Meters::new(300.0)),
    )];
    let passes = vec![TrainPass::new(point_train, Seconds::new(500.0))];
    let report = CorridorSimulator::new().simulate(&nodes, &passes);
    let analytic = analytic_powered(&nodes[0].section(), &passes);
    assert!(analytic > 0.0);
    assert!((report.nodes()[0].trace().powered().value() - analytic).abs() < 1e-9);
    assert_eq!(report.nodes()[0].trace().wakes(), 1);
}
