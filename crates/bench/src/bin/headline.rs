//! Prints the paper's Section V headline numbers next to the model's.

use corridor_bench::scenario;
use corridor_core::experiments;
use corridor_core::report::TextTable;

fn main() {
    let h = experiments::headline_numbers(&scenario());
    println!("headline numbers (Section V text)\n");
    let mut table = TextTable::new(vec!["quantity".into(), "paper".into(), "this model".into()]);
    let rows: Vec<(&str, &str, String)> = vec![
        (
            "HP full-load share, ISD 500 m",
            "2.85 %",
            format!("{:.2} %", h.hp_duty_500m * 100.0),
        ),
        (
            "HP full-load share, ISD 2650 m",
            "9.66 %",
            format!("{:.2} %", h.hp_duty_2650m * 100.0),
        ),
        (
            "repeater average power (sleep mode)",
            "5.17 W",
            format!("{:.2} W", h.repeater_average_power.value()),
        ),
        (
            "repeater daily energy",
            "124.1 Wh",
            format!("{:.1} Wh", h.repeater_daily_energy.value()),
        ),
        (
            "savings, 1 node, sleep mode",
            "57 %",
            format!("{:.1} %", h.savings_sleep_1 * 100.0),
        ),
        (
            "savings, 10 nodes, sleep mode",
            "74 %",
            format!("{:.1} %", h.savings_sleep_10 * 100.0),
        ),
        (
            "savings, 1 node, solar",
            "59 %",
            format!("{:.1} %", h.savings_solar_1 * 100.0),
        ),
        (
            "savings, 10 nodes, solar",
            "79 %",
            format!("{:.1} %", h.savings_solar_10 * 100.0),
        ),
    ];
    for (q, p, m) in rows {
        table.add_row(vec![q.to_string(), p.to_string(), m]);
    }
    println!("{}", table.render());
}
