//! The discrete-event corridor simulator.

use std::cell::RefCell;

use corridor_traffic::{TrackSection, TrainPass};
use corridor_units::{Hours, Meters, Seconds};

use crate::{Event, EventKind, EventQueue, NodeSpec, SimReport, StateTrace, WakePolicy};
use crate::{NodeReport, NodeState};

/// Reusable per-thread simulation arena: the event queue (staging +
/// calendar buckets + overflow heap) and the per-node runtime vector.
///
/// Both are cleared, never dropped, between runs — a replicated
/// simulation ([`crate::SegmentReplicator`] replaying hundreds of seeded
/// days, or a Monte-Carlo worker pulling cell-days off the pool) reuses
/// one arena per worker thread and stops paying the allocator on its hot
/// path entirely.
#[derive(Default)]
struct SimScratch {
    queue: EventQueue,
    runtimes: Vec<NodeRuntime>,
}

thread_local! {
    /// One simulation arena per thread, shared by every simulator on it.
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::default());
}

/// Per-node runtime state of the event loop.
struct NodeRuntime {
    state: NodeState,
    /// Clock of the last state transition, clamped into the horizon.
    state_since: Seconds,
    /// Trains currently inside the section.
    occupancy: u32,
    /// Barrier trips whose matching exit has not fired yet.
    expected: u32,
    /// Invalidates stale wake completions.
    wake_seq: u64,
    /// Invalidates stale drain expiries.
    drain_seq: u64,
    /// When occupancy last went from zero to positive.
    occupied_since: Seconds,
    trace: StateTrace,
}

/// Replays a day of train passes through per-node wake state machines.
///
/// Each node watches its [`TrackSection`]; the simulator builds an event
/// queue of barrier trips, train entries and exits per node, runs the
/// asleep → waking → active → drain machine under a [`WakePolicy`], and
/// integrates per-state time into a [`StateTrace`] per node. The energy
/// numbers then come from the same duty-cycle arithmetic as the
/// closed-form model, so with [`WakePolicy::instant`] the two backends
/// agree to float precision on deterministic timetables.
///
/// # Examples
///
/// ```
/// use corridor_events::{segment_nodes, CorridorSimulator};
/// use corridor_traffic::Timetable;
/// use corridor_units::Meters;
///
/// let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
/// let report = CorridorSimulator::new().simulate(&nodes, &Timetable::paper_default().passes());
/// assert_eq!(report.nodes().len(), 13);
/// // the HP mast is powered 9.66 % of the day (the paper's duty factor)
/// let duty = report.nodes()[0].trace().powered().value() / 86_400.0;
/// assert!((duty - 0.0966).abs() < 0.0002);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorridorSimulator {
    policy: WakePolicy,
    horizon: Seconds,
}

impl CorridorSimulator {
    /// A simulator with instant wake transitions over a 24 h horizon.
    pub fn new() -> Self {
        CorridorSimulator {
            policy: WakePolicy::instant(),
            horizon: Hours::DAY.seconds(),
        }
    }

    /// Sets the wake policy.
    #[must_use]
    pub fn with_policy(mut self, policy: WakePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the simulation horizon (energy is integrated over exactly
    /// this window; occupancy outside it is clipped).
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not strictly positive.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Seconds) -> Self {
        assert!(horizon.value() > 0.0, "horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// The wake policy in effect.
    pub fn policy(&self) -> WakePolicy {
        self.policy
    }

    /// The integration horizon.
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// Simulates single-track traffic: every pass sweeps the corridor in
    /// the positive direction.
    pub fn simulate(&self, nodes: &[NodeSpec], passes: &[TrainPass]) -> SimReport {
        self.run(
            nodes,
            passes.len(),
            nodes.iter().enumerate().flat_map(|(idx, spec)| {
                passes
                    .iter()
                    .map(move |pass| (idx, spec.section().occupancy(pass)))
            }),
        )
    }

    /// Simulates bidirectional double-track traffic over a corridor of
    /// `corridor_length`. Up-direction passes sweep the sections as
    /// given; down-direction passes sweep the mirrored corridor (their
    /// head crosses position `corridor_length` at origin time), which is
    /// equivalent to evaluating the mirrored section `[L−end, L−start]`.
    ///
    /// # Panics
    ///
    /// Panics if a section extends beyond `[0, corridor_length]` (it
    /// could not be mirrored).
    pub fn simulate_double_track(
        &self,
        nodes: &[NodeSpec],
        up: &[TrainPass],
        down: &[TrainPass],
        corridor_length: Meters,
    ) -> SimReport {
        let mirrored: Vec<TrackSection> = nodes
            .iter()
            .map(|spec| {
                let s = spec.section();
                assert!(
                    s.start().value() >= 0.0 && s.end() <= corridor_length,
                    "section {s} extends beyond the corridor"
                );
                TrackSection::new(corridor_length - s.end(), corridor_length - s.start())
            })
            .collect();
        let up_occ = nodes.iter().enumerate().flat_map(|(idx, spec)| {
            up.iter()
                .map(move |pass| (idx, spec.section().occupancy(pass)))
        });
        let down_occ = mirrored
            .iter()
            .enumerate()
            .flat_map(|(idx, section)| down.iter().map(move |pass| (idx, section.occupancy(pass))));
        self.run(nodes, up.len() + down.len(), up_occ.chain(down_occ))
    }

    /// The core loop: schedules barrier/enter/exit events for every
    /// `(node, occupancy)` pair, then drives the state machines — on the
    /// calling thread's reused [`SimScratch`] arena.
    fn run(
        &self,
        nodes: &[NodeSpec],
        passes: usize,
        occupancies: impl Iterator<Item = (usize, (Seconds, Seconds))>,
    ) -> SimReport {
        SCRATCH
            .with(|cell| self.run_with_scratch(&mut cell.borrow_mut(), nodes, passes, occupancies))
    }

    /// [`CorridorSimulator::run`] against an explicit scratch arena.
    fn run_with_scratch(
        &self,
        scratch: &mut SimScratch,
        nodes: &[NodeSpec],
        passes: usize,
        occupancies: impl Iterator<Item = (usize, (Seconds, Seconds))>,
    ) -> SimReport {
        let SimScratch { queue, runtimes } = scratch;
        queue.clear();
        for (node, (enter, exit)) in occupancies {
            // intervals entirely outside the horizon never power the node
            if exit <= Seconds::ZERO || enter >= self.horizon || exit <= enter {
                continue;
            }
            queue.push(Event {
                time: enter - self.policy.lead(),
                node,
                kind: EventKind::BarrierTrip,
            });
            queue.push(Event {
                time: enter,
                node,
                kind: EventKind::TrainEnter,
            });
            queue.push(Event {
                time: exit,
                node,
                kind: EventKind::TrainExit,
            });
        }

        runtimes.clear();
        runtimes.extend(nodes.iter().map(|_| NodeRuntime {
            state: NodeState::Asleep,
            state_since: Seconds::ZERO,
            occupancy: 0,
            expected: 0,
            wake_seq: 0,
            drain_seq: 0,
            occupied_since: Seconds::ZERO,
            trace: StateTrace::new(self.horizon),
        }));

        let mut events = 0usize;
        while let Some(event) = queue.pop() {
            events += 1;
            self.handle(&mut runtimes[event.node], event, queue);
        }

        // close every node's final state segment at the horizon
        let reports = nodes
            .iter()
            .zip(runtimes.drain(..))
            .map(|(spec, mut rt)| {
                let remaining = self.horizon - rt.state_since;
                rt.trace.add(rt.state, remaining);
                NodeReport::new(spec.kind(), spec.section(), rt.trace)
            })
            .collect();
        SimReport::new(reports, self.horizon, events, passes)
    }

    /// Transitions `rt` to `next` at clock `t`, billing the elapsed
    /// segment to the outgoing state.
    fn transition(&self, rt: &mut NodeRuntime, t: Seconds, next: NodeState) {
        let clock = t.max(Seconds::ZERO).min(self.horizon);
        rt.trace.add(rt.state, clock - rt.state_since);
        if rt.state == NodeState::Asleep && next == NodeState::Waking {
            rt.trace.count_wake();
        }
        rt.state = next;
        rt.state_since = clock;
    }

    fn handle(&self, rt: &mut NodeRuntime, event: Event, queue: &mut EventQueue) {
        let t = event.time;
        match event.kind {
            EventKind::BarrierTrip => {
                rt.expected += 1;
                match rt.state {
                    NodeState::Asleep => {
                        self.transition(rt, t, NodeState::Waking);
                        rt.wake_seq += 1;
                        queue.push(Event {
                            time: t + self.policy.wake_delay(),
                            node: event.node,
                            kind: EventKind::WakeComplete(rt.wake_seq),
                        });
                    }
                    NodeState::Drain => {
                        // a new train is approaching: cancel the drain
                        rt.drain_seq += 1;
                        self.transition(rt, t, NodeState::Active);
                    }
                    NodeState::Waking | NodeState::Active => {}
                }
            }
            EventKind::WakeComplete(seq) => {
                if rt.state == NodeState::Waking && seq == rt.wake_seq {
                    if rt.occupancy > 0 {
                        // the train spent the wake transition uncovered
                        rt.trace
                            .add_uncovered(t.min(self.horizon) - rt.occupied_since);
                        self.transition(rt, t, NodeState::Active);
                    } else if rt.expected > 0 {
                        // powered early (barrier lead): await the train
                        self.transition(rt, t, NodeState::Active);
                    } else {
                        // the train came and went while we were waking
                        rt.drain_seq += 1;
                        self.transition(rt, t, NodeState::Drain);
                        queue.push(Event {
                            time: t + self.policy.guard(),
                            node: event.node,
                            kind: EventKind::DrainExpire(rt.drain_seq),
                        });
                    }
                }
            }
            EventKind::TrainEnter => {
                if rt.occupancy == 0 {
                    rt.occupied_since = t.max(Seconds::ZERO).min(self.horizon);
                }
                rt.occupancy += 1;
                match rt.state {
                    NodeState::Drain => {
                        rt.drain_seq += 1;
                        self.transition(rt, t, NodeState::Active);
                    }
                    NodeState::Asleep => {
                        // defensive: a barrier always trips first (lead ≥ 0),
                        // but an unsensed train must still wake the node
                        self.transition(rt, t, NodeState::Waking);
                        rt.wake_seq += 1;
                        queue.push(Event {
                            time: t + self.policy.wake_delay(),
                            node: event.node,
                            kind: EventKind::WakeComplete(rt.wake_seq),
                        });
                    }
                    NodeState::Waking | NodeState::Active => {}
                }
            }
            EventKind::TrainExit => {
                rt.occupancy = rt.occupancy.saturating_sub(1);
                rt.expected = rt.expected.saturating_sub(1);
                if rt.occupancy == 0 {
                    match rt.state {
                        NodeState::Waking => {
                            // the whole pass fell inside the wake transition
                            rt.trace
                                .add_uncovered(t.min(self.horizon) - rt.occupied_since);
                        }
                        NodeState::Active if rt.expected == 0 => {
                            rt.drain_seq += 1;
                            self.transition(rt, t, NodeState::Drain);
                            queue.push(Event {
                                time: t + self.policy.guard(),
                                node: event.node,
                                kind: EventKind::DrainExpire(rt.drain_seq),
                            });
                        }
                        // a tripped train is still approaching: stay powered
                        _ => {}
                    }
                }
            }
            EventKind::DrainExpire(seq) => {
                if rt.state == NodeState::Drain && seq == rt.drain_seq {
                    self.transition(rt, t, NodeState::Asleep);
                }
            }
        }
    }
}

impl Default for CorridorSimulator {
    /// Returns [`CorridorSimulator::new`].
    fn default() -> Self {
        CorridorSimulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{segment_nodes, NodeKind};
    use corridor_traffic::{ActivityTimeline, Timetable, Train};

    fn paper_passes() -> Vec<TrainPass> {
        Timetable::paper_default().passes()
    }

    #[test]
    fn instant_policy_reproduces_activity_timeline() {
        let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
        let report = CorridorSimulator::new().simulate(&nodes, &paper_passes());
        for node in report.nodes() {
            let analytic = ActivityTimeline::for_section(&node.section(), &paper_passes())
                .total_active()
                .value();
            let simulated = node.trace().powered().value();
            assert!(
                (simulated - analytic).abs() < 1e-6,
                "{}: {simulated} vs {analytic}",
                node.kind()
            );
            assert_eq!(node.trace().wakes(), 152);
            assert_eq!(node.trace().uncovered(), Seconds::ZERO);
        }
    }

    #[test]
    fn lead_and_guard_extend_powered_time() {
        let nodes = segment_nodes(1, Meters::new(1250.0), Meters::new(200.0));
        let instant = CorridorSimulator::new().simulate(&nodes, &paper_passes());
        let padded = CorridorSimulator::new()
            .with_policy(WakePolicy::new(
                Seconds::new(2.0),
                Seconds::ZERO,
                Seconds::new(3.0),
            ))
            .simulate(&nodes, &paper_passes());
        // 152 passes × (2 s lead + 3 s guard) of extra powered time
        let extra = padded.nodes()[1].trace().powered().value()
            - instant.nodes()[1].trace().powered().value();
        assert!((extra - 152.0 * 5.0).abs() < 1e-6, "extra {extra}");
        assert_eq!(padded.nodes()[1].trace().uncovered(), Seconds::ZERO);
    }

    #[test]
    fn wake_delay_without_lead_leaves_uncovered_time() {
        let nodes = segment_nodes(1, Meters::new(1250.0), Meters::new(200.0));
        let report = CorridorSimulator::new()
            .with_policy(WakePolicy::new(
                Seconds::ZERO,
                Seconds::new(0.3),
                Seconds::ZERO,
            ))
            .simulate(&nodes, &paper_passes());
        let service = &report.nodes()[1];
        // 152 passes × 0.3 s of waking while the train is in the section
        assert!((service.trace().uncovered().value() - 152.0 * 0.3).abs() < 1e-6);
        assert!((service.trace().waking().value() - 152.0 * 0.3).abs() < 1e-6);
    }

    #[test]
    fn overlapping_occupancy_merges_like_the_timeline() {
        // two trains 5 s apart in a section each occupies for ~16.2 s:
        // the node must stay powered across the overlap, not double-bill
        let train = Train::paper_default();
        let passes = vec![
            TrainPass::new(train, Seconds::new(1000.0)),
            TrainPass::new(train, Seconds::new(1005.0)),
        ];
        let nodes = vec![NodeSpec::new(
            NodeKind::HighPowerMast,
            TrackSection::new(Meters::ZERO, Meters::new(500.0)),
        )];
        let report = CorridorSimulator::new().simulate(&nodes, &passes);
        let analytic = ActivityTimeline::for_section(&nodes[0].section(), &passes)
            .total_active()
            .value();
        assert!((report.nodes()[0].trace().powered().value() - analytic).abs() < 1e-9);
        // one merged powered episode, not two
        assert_eq!(report.nodes()[0].trace().wakes(), 1);
    }

    #[test]
    fn occupancy_clipped_to_horizon() {
        let train = Train::paper_default();
        // the pass exits the section after the day ends
        let passes = vec![TrainPass::new(train, Seconds::new(86_395.0))];
        let nodes = vec![NodeSpec::new(
            NodeKind::HighPowerMast,
            TrackSection::new(Meters::ZERO, Meters::new(500.0)),
        )];
        let report = CorridorSimulator::new().simulate(&nodes, &passes);
        let powered = report.nodes()[0].trace().powered().value();
        assert!((powered - 5.0).abs() < 1e-9, "powered {powered}");
        // and one entirely past the horizon contributes nothing
        let late = vec![TrainPass::new(train, Seconds::new(90_000.0))];
        let report = CorridorSimulator::new().simulate(&nodes, &late);
        assert_eq!(report.nodes()[0].trace().powered(), Seconds::ZERO);
        assert_eq!(report.nodes()[0].trace().wakes(), 0);
    }

    #[test]
    fn double_track_doubles_the_load() {
        let nodes = segment_nodes(2, Meters::new(1900.0), Meters::new(200.0));
        let up = paper_passes();
        // offset the down direction by half a headway so no occupancy
        // coincides (same-slot opposing trains would merge, not add)
        let base = Timetable::paper_default();
        let down = Timetable::new(
            base.trains_per_hour(),
            base.service_window(),
            base.service_start() + Seconds::new(225.0),
            base.train(),
        )
        .passes();
        let single = CorridorSimulator::new().simulate(&nodes, &up);
        let double =
            CorridorSimulator::new().simulate_double_track(&nodes, &up, &down, Meters::new(1900.0));
        for (s, d) in single.nodes().iter().zip(double.nodes()) {
            // twice the traffic, twice the powered time (no overlaps)
            let ratio = d.trace().powered().value() / s.trace().powered().value();
            assert!((ratio - 2.0).abs() < 1e-6, "{}: ratio {ratio}", s.kind());
        }
        assert_eq!(double.passes(), 304);
    }

    #[test]
    fn mirrored_sections_shift_entry_times_only() {
        // a single down-direction train: the node near the far end sees
        // it first
        let train = Train::paper_default();
        let down = vec![TrainPass::new(train, Seconds::new(1000.0))];
        let near = NodeSpec::new(
            NodeKind::ServiceRepeater,
            TrackSection::new(Meters::new(100.0), Meters::new(300.0)),
        );
        let far = NodeSpec::new(
            NodeKind::ServiceRepeater,
            TrackSection::new(Meters::new(1700.0), Meters::new(1900.0)),
        );
        let report = CorridorSimulator::new().simulate_double_track(
            &[near, far],
            &[],
            &down,
            Meters::new(2000.0),
        );
        // both nodes see the same occupancy duration
        let near_t = report.nodes()[0].trace().powered().value();
        let far_t = report.nodes()[1].trace().powered().value();
        assert!((near_t - far_t).abs() < 1e-9);
        assert!(near_t > 0.0);
    }

    #[test]
    fn event_count_is_reported() {
        let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
        let report = CorridorSimulator::new().simulate(&nodes, &paper_passes());
        // 13 nodes × 152 passes × 3 static events, plus drains
        assert!(report.events_processed() >= 13 * 152 * 3);
        assert_eq!(report.passes(), 152);
        assert_eq!(report.horizon(), Seconds::new(86_400.0));
    }

    #[test]
    #[should_panic(expected = "extends beyond the corridor")]
    fn unmirrorable_section_rejected() {
        let nodes = vec![NodeSpec::new(
            NodeKind::HighPowerMast,
            TrackSection::new(Meters::ZERO, Meters::new(500.0)),
        )];
        let _ =
            CorridorSimulator::new().simulate_double_track(&nodes, &[], &[], Meters::new(400.0));
    }

    #[test]
    fn builder_accessors() {
        let sim = CorridorSimulator::new()
            .with_policy(WakePolicy::paper_default())
            .with_horizon(Seconds::new(3600.0));
        assert_eq!(sim.policy(), WakePolicy::paper_default());
        assert_eq!(sim.horizon(), Seconds::new(3600.0));
        assert_eq!(CorridorSimulator::default(), CorridorSimulator::new());
    }
}
