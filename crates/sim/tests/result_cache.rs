//! Scenario-hash result-cache correctness at the engine level: a warm
//! re-run serves every cell from disk with byte-identical output, and a
//! perturbation of any keyed input (a grid axis value, the master seed,
//! the wake policy, the SNR threshold) invalidates exactly the cells it
//! dirties — no stale reuse, no needless recompute.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use corridor_core::sink::{RowFormat, StringSink};
use corridor_sim::{
    DeploymentOptimizer, McEngine, ReplicationPlan, ResultCache, ScenarioGrid, SearchSpace,
    SweepEngine, WakePolicy,
};
use corridor_solar::climate;
use corridor_units::{Db, Meters, Seconds};
use proptest::prelude::*;

/// A fresh cache directory per test (and per proptest case), cleaned
/// before use so reruns of the suite start cold.
fn temp_cache_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "corridor-result-cache-it-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sweep_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
}

fn streamed_sweep(
    engine: &SweepEngine,
    grid: &ScenarioGrid,
    format: RowFormat,
    cache: Option<&ResultCache>,
) -> (String, corridor_sim::StreamSummary) {
    let mut sink = StringSink::new();
    let summary = engine.stream_with(grid, format, &mut sink, cache).unwrap();
    (sink.into_string(), summary)
}

#[test]
fn warm_sweep_rerun_is_byte_identical_with_full_hits() {
    let dir = temp_cache_dir("warm");
    let cache = ResultCache::open(&dir).unwrap();
    let engine = SweepEngine::new().workers(2);
    let grid = sweep_grid();

    let (cold, cold_summary) = streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));
    assert_eq!(cold_summary.cache_hits, 0);
    assert_eq!(cold_summary.cache_misses, 4);

    // a brand-new handle on the same directory: only the files matter
    let cache = ResultCache::open(&dir).unwrap();
    let (warm, warm_summary) = streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));
    assert_eq!(warm, cold);
    assert_eq!(warm_summary.cache_hits, 4);
    assert_eq!(warm_summary.cache_misses, 0);
    assert_eq!(warm_summary.hit_rate(), 1.0);
    assert_eq!(cache.hits(), 4);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn csv_run_warms_the_json_run_too() {
    // one evaluation stores the row pair, so either format warms both
    let dir = temp_cache_dir("cross-format");
    let cache = ResultCache::open(&dir).unwrap();
    let engine = SweepEngine::new().workers(2);
    let grid = sweep_grid();

    streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));
    let (warm_json, summary) = streamed_sweep(&engine, &grid, RowFormat::Json, Some(&cache));
    assert_eq!(summary.cache_hits, 4);
    let (uncached_json, _) = streamed_sweep(&engine, &grid, RowFormat::Json, None);
    assert_eq!(warm_json, uncached_json);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn axis_perturbation_invalidates_exactly_the_dirty_cells() {
    let dir = temp_cache_dir("axis");
    let cache = ResultCache::open(&dir).unwrap();
    let engine = SweepEngine::new().workers(2);

    streamed_sweep(&engine, &sweep_grid(), RowFormat::Csv, Some(&cache));

    // replace one speed value: the two cells at 210 km/h are dirty, the
    // two at 160 km/h must be served from disk
    let perturbed = ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 210.0]);
    let (warm, summary) = streamed_sweep(&engine, &perturbed, RowFormat::Csv, Some(&cache));
    assert_eq!(summary.cache_hits, 2);
    assert_eq!(summary.cache_misses, 2);
    let (fresh, _) = streamed_sweep(&engine, &perturbed, RowFormat::Csv, None);
    assert_eq!(warm, fresh);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn engine_config_perturbations_invalidate_everything() {
    let dir = temp_cache_dir("config");
    let cache = ResultCache::open(&dir).unwrap();
    let grid = sweep_grid();
    let engine = SweepEngine::new().workers(2);
    streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));

    // pv sizing off is a different study: nothing may be reused
    let no_pv = SweepEngine::new().workers(2).pv_sizing(false);
    let (warm, summary) = streamed_sweep(&no_pv, &grid, RowFormat::Csv, Some(&cache));
    assert_eq!(summary.cache_hits, 0);
    assert_eq!(summary.cache_misses, 4);
    let (fresh, _) = streamed_sweep(&no_pv, &grid, RowFormat::Csv, None);
    assert_eq!(warm, fresh);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mc_seed_and_policy_changes_invalidate_everything() {
    let dir = temp_cache_dir("mc");
    let cache = ResultCache::open(&dir).unwrap();
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .locations(vec![climate::madrid(), climate::vienna()]);
    let engine = McEngine::new().workers(2);
    let plan = ReplicationPlan::new(3).master_seed(7);

    let run = |engine: &McEngine, plan: &ReplicationPlan, cache: Option<&ResultCache>| {
        let mut sink = StringSink::new();
        let summary = engine
            .stream_with(&grid, plan, RowFormat::Csv, &mut sink, cache)
            .unwrap();
        (sink.into_string(), summary)
    };

    run(&engine, &plan, Some(&cache));
    let (warm, summary) = run(&engine, &plan, Some(&cache));
    assert_eq!((summary.cache_hits, summary.cache_misses), (4, 0));
    assert_eq!(warm, run(&engine, &plan, None).0);

    // a new master seed is a new experiment
    let reseeded = ReplicationPlan::new(3).master_seed(8);
    let (_, summary) = run(&engine, &reseeded, Some(&cache));
    assert_eq!((summary.cache_hits, summary.cache_misses), (0, 4));

    // so is a new wake policy
    let repoliced = McEngine::new().workers(2).wake_policy(WakePolicy::new(
        Seconds::new(40.0),
        Seconds::new(1.0),
        Seconds::new(12.0),
    ));
    let (bytes, summary) = run(&repoliced, &plan, Some(&cache));
    assert_eq!((summary.cache_hits, summary.cache_misses), (0, 4));
    assert_eq!(bytes, run(&repoliced, &plan, None).0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn optimize_threshold_change_invalidates_everything() {
    let dir = temp_cache_dir("optimize");
    let cache = ResultCache::open(&dir).unwrap();
    let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0]);
    let space = SearchSpace::new()
        .node_counts((0..=4).collect())
        .sample_step(Meters::new(10.0));

    let run = |space: &SearchSpace, cache: Option<&ResultCache>| {
        let mut sink = StringSink::new();
        let summary = DeploymentOptimizer::new()
            .workers(2)
            .stream_with(&grid, space, RowFormat::Json, &mut sink, cache)
            .unwrap();
        (sink.into_string(), summary)
    };

    run(&space, Some(&cache));
    let (warm, summary) = run(&space, Some(&cache));
    assert_eq!((summary.cache_hits, summary.cache_misses), (2, 0));
    assert_eq!(warm, run(&space, None).0);

    let tightened = SearchSpace::new()
        .node_counts((0..=4).collect())
        .sample_step(Meters::new(10.0))
        .snr_threshold(Db::new(6.0));
    let (bytes, summary) = run(&tightened, Some(&cache));
    assert_eq!((summary.cache_hits, summary.cache_misses), (0, 2));
    assert_eq!(bytes, run(&tightened, None).0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_is_recomputed_not_served() {
    let dir = temp_cache_dir("corrupt");
    let cache = ResultCache::open(&dir).unwrap();
    let engine = SweepEngine::new().workers(2);
    let grid = sweep_grid();
    let (cold, _) = streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));

    // truncate one entry on disk: its checksum no longer matches
    let entry = walk_entries(&dir).into_iter().next().expect("stored entry");
    let bytes = fs::read(&entry).unwrap();
    fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

    let (warm, summary) = streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));
    assert_eq!(warm, cold);
    assert_eq!(summary.cache_hits, 3);
    assert_eq!(summary.cache_misses, 1);

    // the recompute heals the entry: the next run is all hits again
    let (healed, summary) = streamed_sweep(&engine, &grid, RowFormat::Csv, Some(&cache));
    assert_eq!(healed, cold);
    assert_eq!(summary.cache_hits, 4);

    let _ = fs::remove_dir_all(&dir);
}

fn walk_entries(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "entry") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

const TPH: [f64; 3] = [2.0, 4.0, 8.0];
const SPEEDS: [f64; 3] = [120.0, 160.0, 200.0];

proptest! {
    /// Replacing one value on one axis of a cached grid (same shape, so
    /// cell positions are stable) misses for exactly the cells touching
    /// the new value and hits for every other cell — and the warm bytes
    /// always equal an uncached run's.
    #[test]
    fn perturbed_grids_recompute_exactly_the_dirty_cells(
        axis in 0usize..=1,
        pos in 0usize..=2,
        perturb in 0usize..=1,
    ) {
        let dir = temp_cache_dir("prop");
        let cache = ResultCache::open(&dir).unwrap();
        let engine = SweepEngine::new().workers(2).pv_sizing(false);

        let grid_of = |tph: &[f64], speeds: &[f64]| {
            ScenarioGrid::new()
                .trains_per_hour(tph.to_vec())
                .train_speeds_kmh(speeds.to_vec())
        };
        let mut sink = StringSink::new();
        engine
            .stream_with(&grid_of(&TPH, &SPEEDS), RowFormat::Csv, &mut sink, Some(&cache))
            .unwrap();

        // same 3×3 shape with one axis value optionally swapped out
        let (mut tph, mut speeds) = (TPH, SPEEDS);
        if perturb == 1 {
            if axis == 0 {
                tph[pos] = 10.0;
            } else {
                speeds[pos] = 240.0;
            }
        }
        let dirty = grid_of(&tph, &speeds);

        let mut sink = StringSink::new();
        let summary = engine
            .stream_with(&dirty, RowFormat::Csv, &mut sink, Some(&cache))
            .unwrap();
        let warm = sink.into_string();

        // one replaced value dirties a full row (or column) of the grid
        let expected_misses = (perturb * 3) as u64;
        prop_assert_eq!(summary.cache_misses, expected_misses);
        prop_assert_eq!(summary.cache_hits, 9 - expected_misses);

        let mut sink = StringSink::new();
        engine.stream_with(&dirty, RowFormat::Csv, &mut sink, None).unwrap();
        prop_assert_eq!(warm, sink.into_string());

        let _ = fs::remove_dir_all(&dir);
    }
}
