//! The stochastic network day: route decomposition, shared itineraries
//! and the Monte-Carlo time-domain engine over the graph.
//!
//! The per-edge Pareto search prices each corridor analytically at its
//! static demand. This module is the network's time-domain counterpart:
//! the edge demands are decomposed into **routes** (train paths that
//! cross junctions), each route samples Poisson departures into
//! [`TrainItinerary`]s, and every edge's day is replayed through the
//! [`NetworkDaySimulator`] — so adjacent edges see the *same* trains at
//! junction-consistent times instead of independently sampled traffic.
//!
//! The decomposition is a deterministic greedy flow split: seed at the
//! edge with the highest remaining demand, extend the path through
//! stations along the highest-demand continuation (never revisiting a
//! station), route the minimum remaining demand along the path, and
//! repeat until every edge's demand is carried. Per-edge rates sum back
//! to the edge demands by construction.

use corridor_core::sink::{RowFormat, RowSink, SinkResult, StringSink};
use corridor_core::stats::Welford;
use corridor_core::{EnergyStrategy, ScenarioError};
use corridor_events::{EventDrivenEvaluator, Leg, NetworkDaySimulator, SimReport, TrainItinerary};
use corridor_traffic::{PoissonTimetable, SeedSequence, Train};
use corridor_units::{Hours, KilometersPerHour, Meters};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use core::fmt::Write as _;

use crate::engine::build_pool;
use crate::optimize::FrontierPoint;
use crate::report::{csv_field, json_string};
use crate::stream::{self, ChunkRows, RowPair, StreamError, StreamSummary};

use super::graph::{CorridorNetwork, NetworkError};
use super::NetworkOptimizer;
use crate::optimize::SearchSpace;
use corridor_core::sink::RowEmitter;

/// The CSV header of the streamed network-day rows.
pub const NETWORK_DAY_CSV_HEADER: &str = "edge,edge_name,demand_tph,routes,nodes,isd_m,reps,\
mean_wh_day,ci95_wh_day,mean_passes,mean_wakes";

/// One train path through the network: the legs it traverses in order
/// and the daily rate it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainRoute {
    legs: Vec<Leg>,
    rate_tph: f64,
    train: Train,
}

impl TrainRoute {
    /// The legs, in traversal order.
    pub fn legs(&self) -> &[Leg] {
        &self.legs
    }

    /// The demand the route carries, trains per hour.
    pub fn rate_tph(&self) -> f64 {
        self.rate_tph
    }

    /// The rolling stock (taken from the route's first edge).
    pub fn train(&self) -> Train {
        self.train
    }

    /// True if any leg traverses `edge`.
    pub fn traverses(&self, edge: usize) -> bool {
        self.legs.iter().any(|l| l.edge() == edge)
    }

    /// The route run in the opposite direction: legs reversed, each
    /// flipped.
    fn reversed(&self) -> Vec<Leg> {
        self.legs
            .iter()
            .rev()
            .map(|l| {
                if l.is_reversed() {
                    Leg::forward(l.edge())
                } else {
                    Leg::reverse(l.edge())
                }
            })
            .collect()
    }
}

/// Below this the remaining demand of an edge counts as routed.
const DEMAND_TOL: f64 = 1e-9;

/// Deterministic greedy flow decomposition of the edge demands into
/// junction-crossing routes. Per-edge route rates sum to the edge
/// demand exactly (up to [`DEMAND_TOL`]).
pub(crate) fn decompose_routes(net: &CorridorNetwork) -> Vec<TrainRoute> {
    let mut remaining: Vec<f64> = net.edges().iter().map(|e| e.demand_tph()).collect();
    let mut routes = Vec::new();
    loop {
        // seed: the edge with the highest remaining demand (lowest
        // index on ties)
        let mut seed: Option<usize> = None;
        for e in 0..remaining.len() {
            if remaining[e] > DEMAND_TOL && seed.is_none_or(|s| remaining[e] > remaining[s]) {
                seed = Some(e);
            }
        }
        let Some(seed) = seed else { break };

        let mut path = std::collections::VecDeque::from([seed]);
        let mut visited = vec![false; net.station_count()];
        let (mut front, mut back) = (net.edge(seed).a(), net.edge(seed).b());
        visited[front] = true;
        visited[back] = true;
        // grow both ends along the highest-demand continuation
        for grow_back in [true, false] {
            loop {
                let station = if grow_back { back } else { front };
                let mut next: Option<usize> = None;
                for e in net.incident_edges(station) {
                    if remaining[e] <= DEMAND_TOL || path.contains(&e) {
                        continue;
                    }
                    let Some(other) = net.edge(e).other_end(station) else {
                        continue;
                    };
                    if visited[other] {
                        continue;
                    }
                    if next.is_none_or(|n| remaining[e] > remaining[n]) {
                        next = Some(e);
                    }
                }
                let Some(e) = next else { break };
                let Some(other) = net.edge(e).other_end(station) else {
                    break;
                };
                visited[other] = true;
                if grow_back {
                    path.push_back(e);
                    back = other;
                } else {
                    path.push_front(e);
                    front = other;
                }
            }
        }

        let rate = path
            .iter()
            .map(|&e| remaining[e])
            .fold(f64::INFINITY, f64::min);
        for &e in &path {
            remaining[e] -= rate;
        }
        // orient the legs walking from the front station
        let mut legs = Vec::with_capacity(path.len());
        let mut at = front;
        for &e in &path {
            let edge = net.edge(e);
            if edge.a() == at {
                legs.push(Leg::forward(e));
                at = edge.b();
            } else {
                legs.push(Leg::reverse(e));
                at = edge.a();
            }
        }
        let first = net.edge(legs[0].edge());
        let train = Train::new(
            Meters::new(first.train_len_m()),
            KilometersPerHour::new(first.speed_kmh()).meters_per_second(),
        );
        routes.push(TrainRoute {
            legs,
            rate_tph: rate,
            train,
        });
    }
    routes
}

/// Samples one replication of the network day: Poisson departures per
/// route over the shared service window, each arrival alternating the
/// route's direction, seeded by `SeedSequence(seed).derive(route, rep)`
/// so every `(route, rep)` stream is independent and reproducible.
pub(crate) fn sample_itineraries(
    net: &CorridorNetwork,
    routes: &[TrainRoute],
    seed: u64,
    rep: u64,
) -> Vec<TrainItinerary> {
    let seq = SeedSequence::new(seed);
    let start = PoissonTimetable::paper_rate().service_start();
    let window = Hours::new(net.shared_window_h());
    let mut itineraries = Vec::new();
    for (r, route) in routes.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seq.derive(r as u64, rep));
        let timetable = PoissonTimetable::new(route.rate_tph, window, start, route.train);
        for (i, pass) in timetable.sample_passes(&mut rng).iter().enumerate() {
            let legs = if i % 2 == 0 {
                route.legs.clone()
            } else {
                route.reversed()
            };
            itineraries.push(TrainItinerary::new(route.train, pass.origin_time(), legs));
        }
    }
    itineraries
}

/// Builds the network-day simulator over the per-edge picks: pick
/// geometry where an edge deploys, the conventional mast-only segment
/// where it does not.
pub(crate) fn build_day_simulator(
    net: &CorridorNetwork,
    picks: &[Option<FrontierPoint>],
) -> NetworkDaySimulator {
    let mut sim = NetworkDaySimulator::new();
    for (e, pick) in picks.iter().enumerate() {
        let (n, isd) = match pick {
            Some(p) => (p.nodes, p.isd),
            None => (0, Meters::new(net.shared_conventional_isd_m())),
        };
        sim.add_edge(
            n,
            isd,
            Meters::new(net.shared_lp_spacing_m()),
            Meters::new(net.edge(e).length_km_value() * 1000.0),
        );
    }
    sim
}

/// The representative simulated day the margin-trading scheduler prices
/// interior sleeps against: the replication-0 itineraries and every
/// edge's simulated report.
pub(crate) struct DayContext {
    pub(crate) sim: NetworkDaySimulator,
    pub(crate) itineraries: Vec<TrainItinerary>,
    pub(crate) reports: Vec<SimReport>,
}

/// Builds the scheduler's day context at `seed` (replication 0).
pub(crate) fn build_day_context(
    net: &CorridorNetwork,
    picks: &[Option<FrontierPoint>],
    seed: u64,
) -> DayContext {
    let routes = decompose_routes(net);
    let sim = build_day_simulator(net, picks);
    let itineraries = sample_itineraries(net, &routes, seed, 0);
    let reports = sim.simulate(&itineraries);
    DayContext {
        sim,
        itineraries,
        reports,
    }
}

/// Per-edge Monte-Carlo statistics of the simulated network days.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDayStats {
    /// The edge index.
    pub edge: usize,
    /// The edge's aggregate demand, trains per hour.
    pub demand_tph: f64,
    /// Number of routes traversing the edge.
    pub routes: usize,
    /// Deployed service repeaters (the pick's count).
    pub nodes: usize,
    /// Simulated segment ISD in metres.
    pub isd_m: f64,
    /// Mean daily edge energy over the replications, Wh/day.
    pub mean_wh_day: f64,
    /// Student-t 95 % confidence half-width of the daily energy, Wh.
    pub ci95_wh_day: f64,
    /// Mean simulated passes per day on the representative segment.
    pub mean_passes: f64,
    /// Mean wake transitions per day across the segment's nodes.
    pub mean_wakes: f64,
}

/// Monte-Carlo engine for stochastic network days: runs the per-edge
/// deployment search, decomposes routes, then replays `reps` seeded
/// days per edge through the time-domain backend.
///
/// # Examples
///
/// ```no_run
/// use corridor_sim::{CorridorNetwork, NetworkDayEngine, SearchSpace};
/// use corridor_units::Meters;
///
/// let net = CorridorNetwork::by_name("wye3").unwrap();
/// let space = SearchSpace::new().sample_step(Meters::new(10.0));
/// let report = NetworkDayEngine::new().reps(5).run(&net, &space).unwrap();
/// assert_eq!(report.per_edge().len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkDayEngine {
    workers: Option<usize>,
    reps: usize,
    seed: u64,
}

impl NetworkDayEngine {
    /// An engine at 20 replications, master seed 42 and automatic
    /// worker count.
    pub fn new() -> Self {
        NetworkDayEngine {
            workers: None,
            reps: 20,
            seed: 42,
        }
    }

    /// Sets an explicit worker count (an explicit `0` is rejected at
    /// run time, mirroring the other engines).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the number of replications per edge.
    #[must_use]
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Sets the master seed of the day sampler.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the deployment search, then the Monte-Carlo day sweep, and
    /// assembles the typed report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkOptimizer::run`], plus
    /// [`ScenarioError::ZeroWorkers`] for zero replications.
    pub fn run(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
    ) -> Result<NetworkDayReport, NetworkError> {
        let (routes, sim, picks) = self.prepare(net, space)?;
        let pool = build_pool(self.workers).map_err(NetworkError::Scenario)?;
        let per_edge: Vec<Result<EdgeDayStats, ScenarioError>> = pool.install(|| {
            (0..net.edge_count())
                .into_par_iter()
                .map(|e| self.edge_stats(net, &routes, &sim, &picks, e))
                .collect()
        });
        let per_edge = per_edge
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(NetworkError::Scenario)?;
        let mut crossings = Welford::new();
        for rep in 0..self.reps {
            let itineraries = sample_itineraries(net, &routes, self.seed, rep as u64);
            crossings.push(TrainItinerary::crossings(&itineraries) as f64);
        }
        Ok(NetworkDayReport {
            network: net.clone(),
            routes,
            per_edge,
            reps: self.reps,
            seed: self.seed,
            crossings_per_day: crossings.mean(),
        })
    }

    /// Streams the per-edge day rows into `sink` in edge order; the
    /// emitted bytes are identical whatever the worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkDayEngine::run`], plus
    /// [`NetworkError::Stream`] if the sink refuses a row.
    pub fn stream(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
        format: RowFormat,
        sink: &mut dyn RowSink,
    ) -> Result<StreamSummary, NetworkError> {
        let (routes, sim, picks) = self.prepare(net, space)?;
        let workers = stream::resolve_workers(self.workers).map_err(NetworkError::Scenario)?;
        let mut rows = RowEmitter::begin(sink, format, NETWORK_DAY_CSV_HEADER)
            .map_err(|e| NetworkError::Stream(StreamError::Sink(e)))?;
        let summary = stream::drive(
            workers,
            0..net.edge_count(),
            format,
            |e| {
                let stats = self.edge_stats(net, &routes, &sim, &picks, e)?;
                Ok(ChunkRows {
                    rows: vec![RowPair {
                        csv: render_day_row(net, &stats, self.reps, RowFormat::Csv),
                        json: render_day_row(net, &stats, self.reps, RowFormat::Json),
                    }],
                    cache_hits: 0,
                    cache_misses: 0,
                })
            },
            &mut |row| rows.row(row).map_err(StreamError::Sink),
        )
        .map_err(NetworkError::Stream)?;
        rows.finish()
            .map_err(|e| NetworkError::Stream(StreamError::Sink(e)))?;
        Ok(summary)
    }

    /// Shared front half of `run`/`stream`: validation, the per-edge
    /// deployment search (for picks), route decomposition and the day
    /// simulator.
    #[allow(clippy::type_complexity)]
    fn prepare(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
    ) -> Result<
        (
            Vec<TrainRoute>,
            NetworkDaySimulator,
            Vec<Option<FrontierPoint>>,
        ),
        NetworkError,
    > {
        if self.workers == Some(0) || self.reps == 0 {
            return Err(ScenarioError::ZeroWorkers.into());
        }
        net.validate()?;
        let optimizer = match self.workers {
            Some(w) => NetworkOptimizer::new().workers(w),
            None => NetworkOptimizer::new(),
        };
        let picks = optimizer.run(net, space)?.picks().to_vec();
        let routes = decompose_routes(net);
        let sim = build_day_simulator(net, &picks);
        Ok((routes, sim, picks))
    }

    /// One edge's Monte-Carlo fold: `reps` seeded days, Welford
    /// accumulation of daily energy / passes / wakes. A pure function
    /// of `(edge, seed)` — the parallel sweeps stay byte-deterministic.
    fn edge_stats(
        &self,
        net: &CorridorNetwork,
        routes: &[TrainRoute],
        sim: &NetworkDaySimulator,
        picks: &[Option<FrontierPoint>],
        e: usize,
    ) -> Result<EdgeDayStats, ScenarioError> {
        let edge = net.edge(e);
        let cell = net.edge_cell(e)?;
        let params = cell.params();
        let n = picks[e].as_ref().map_or(0, |p| p.nodes);
        let isd = sim.edge_isd(e);
        let mut energy = Welford::new();
        let mut passes = Welford::new();
        let mut wakes = Welford::new();
        for rep in 0..self.reps {
            let itineraries = sample_itineraries(net, routes, self.seed, rep as u64);
            let report = sim.simulate_edge(e, &itineraries);
            let split = EventDrivenEvaluator::power_from_report(
                params,
                n,
                isd,
                EnergyStrategy::SleepModeRepeaters,
                &report,
            );
            energy.push(split.total().value() * 24.0 * edge.length_km_value());
            passes.push(report.passes() as f64);
            wakes.push(
                report
                    .nodes()
                    .iter()
                    .map(|node| node.trace().wakes() as f64)
                    .sum(),
            );
        }
        Ok(EdgeDayStats {
            edge: e,
            demand_tph: edge.demand_tph(),
            routes: routes.iter().filter(|r| r.traverses(e)).count(),
            nodes: n,
            isd_m: isd.value(),
            mean_wh_day: energy.mean(),
            ci95_wh_day: energy.ci95(),
            mean_passes: passes.mean(),
            mean_wakes: wakes.mean(),
        })
    }
}

impl Default for NetworkDayEngine {
    /// Returns [`NetworkDayEngine::new`].
    fn default() -> Self {
        NetworkDayEngine::new()
    }
}

/// Renders one edge's day row in the requested format.
fn render_day_row(
    net: &CorridorNetwork,
    s: &EdgeDayStats,
    reps: usize,
    format: RowFormat,
) -> String {
    match format {
        RowFormat::Csv => {
            let mut out = String::with_capacity(128);
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.0},{},{:.3},{:.3},{:.2},{:.2}",
                s.edge,
                csv_field(net.edge_name(s.edge)),
                s.demand_tph,
                s.routes,
                s.nodes,
                s.isd_m,
                reps,
                s.mean_wh_day,
                s.ci95_wh_day,
                s.mean_passes,
                s.mean_wakes,
            );
            out
        }
        RowFormat::Json => {
            let mut out = String::with_capacity(256);
            let _ = write!(
                out,
                "  {{\"edge\": {}, \"edge_name\": {}, \"demand_tph\": {}, \"routes\": {}, \
                 \"nodes\": {}, \"isd_m\": {:.0}, \"reps\": {}, \"mean_wh_day\": {:.3}, \
                 \"ci95_wh_day\": {:.3}, \"mean_passes\": {:.2}, \"mean_wakes\": {:.2}}}",
                s.edge,
                json_string(net.edge_name(s.edge)),
                s.demand_tph,
                s.routes,
                s.nodes,
                s.isd_m,
                reps,
                s.mean_wh_day,
                s.ci95_wh_day,
                s.mean_passes,
                s.mean_wakes,
            );
            out
        }
    }
}

/// The simulated network days: per-edge Monte-Carlo statistics plus the
/// route decomposition that drove them.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDayReport {
    network: CorridorNetwork,
    routes: Vec<TrainRoute>,
    per_edge: Vec<EdgeDayStats>,
    reps: usize,
    seed: u64,
    crossings_per_day: f64,
}

impl NetworkDayReport {
    /// The network the days were simulated on.
    pub fn network(&self) -> &CorridorNetwork {
        &self.network
    }

    /// The decomposed routes, in decomposition order.
    pub fn routes(&self) -> &[TrainRoute] {
        &self.routes
    }

    /// The per-edge statistics, in edge order.
    pub fn per_edge(&self) -> &[EdgeDayStats] {
        &self.per_edge
    }

    /// Replications per edge.
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// The master seed of the day sampler.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mean junction crossings per simulated day.
    pub fn crossings_per_day(&self) -> f64 {
        self.crossings_per_day
    }

    /// Mean total network energy per day, Wh: the sum of the per-edge
    /// means.
    pub fn network_mean_wh_day(&self) -> f64 {
        self.per_edge.iter().map(|s| s.mean_wh_day).sum()
    }

    /// Streams the per-edge day rows into `sink`; byte-identical to
    /// [`NetworkDayEngine::stream`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`](corridor_core::sink::SinkError).
    pub fn stream_into(&self, format: RowFormat, sink: &mut dyn RowSink) -> SinkResult<u64> {
        let mut rows = RowEmitter::begin(sink, format, NETWORK_DAY_CSV_HEADER)?;
        for s in &self.per_edge {
            rows.row(&render_day_row(&self.network, s, self.reps, format))?;
        }
        rows.finish()
    }

    /// Renders the day rows as CSV.
    pub fn to_csv(&self) -> String {
        StringSink::render(1024, |sink| self.stream_into(RowFormat::Csv, sink))
    }

    /// Renders the day rows as a JSON array.
    pub fn to_json(&self) -> String {
        StringSink::render(2048, |sink| self.stream_into(RowFormat::Json, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_space() -> SearchSpace {
        SearchSpace::new().sample_step(Meters::new(10.0))
    }

    #[test]
    fn route_rates_sum_back_to_edge_demands() {
        for name in ["line3", "wye3", "star4", "cycle4"] {
            let net = CorridorNetwork::by_name(name).unwrap();
            let routes = decompose_routes(&net);
            for e in 0..net.edge_count() {
                let routed: f64 = routes
                    .iter()
                    .filter(|r| r.traverses(e))
                    .map(|r| r.rate_tph())
                    .sum();
                assert!(
                    (routed - net.edge(e).demand_tph()).abs() < 1e-9,
                    "{name} edge {e}: routed {routed}, demand {}",
                    net.edge(e).demand_tph()
                );
            }
        }
    }

    #[test]
    fn wye_routes_cross_the_hub() {
        // demands 4/16/12: the heaviest flow pairs e1 with e2 through
        // the hub (12 tph), the rest of e1 pairs with e0 (4 tph)
        let net = CorridorNetwork::by_name("wye3").unwrap();
        let routes = decompose_routes(&net);
        assert!(
            routes.iter().any(|r| r.legs().len() >= 2),
            "the wye must produce at least one junction-crossing route"
        );
        let hub_crossings: usize = routes
            .iter()
            .map(|r| r.legs().len().saturating_sub(1))
            .sum();
        assert!(hub_crossings >= 2, "got {hub_crossings} crossings");
    }

    #[test]
    fn itinerary_sampling_is_deterministic_per_seed_and_rep() {
        let net = CorridorNetwork::by_name("wye3").unwrap();
        let routes = decompose_routes(&net);
        let a = sample_itineraries(&net, &routes, 42, 0);
        let b = sample_itineraries(&net, &routes, 42, 0);
        assert_eq!(a, b);
        let c = sample_itineraries(&net, &routes, 42, 1);
        assert_ne!(a, c, "replications must draw distinct days");
        let d = sample_itineraries(&net, &routes, 7, 0);
        assert_ne!(a, d, "seeds must draw distinct days");
    }

    #[test]
    fn engine_rejects_zero_workers_and_zero_reps() {
        let net = CorridorNetwork::line(&[8.0]);
        for engine in [
            NetworkDayEngine::new().workers(0),
            NetworkDayEngine::new().reps(0),
        ] {
            let err = engine.run(&net, &quick_space()).unwrap_err();
            assert!(matches!(
                err,
                NetworkError::Scenario(ScenarioError::ZeroWorkers)
            ));
        }
    }
}
