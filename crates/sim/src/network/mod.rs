//! The corridor-network layer: graph model, per-edge Pareto search,
//! Pollakis sleep scheduling and the stochastic network day.
//!
//! A [`CorridorNetwork`] models corridors meeting at stations; the
//! [`NetworkOptimizer`] runs the deployment search over every edge (the
//! exact same `evaluate_cell` the linear optimizer uses, through the
//! same shared coverage cache) and then layers the Pollakis
//! minimum-active-set sleep schedule on top: boundary repeaters at
//! shared stations sleep whenever a co-located neighbor can absorb
//! their demand at a net energy win, and — with a
//! [`NetworkOptimizer::margin_floor_db`] below the picks' own margins —
//! interior repeaters join the candidate set, trading coverage margin
//! for energy against the simulated network day. The
//! [`NetworkDayEngine`] runs that day end to end: edge demands
//! decompose into junction-crossing train routes, Poisson itineraries
//! drive every edge's event stream through
//! [`NetworkDaySimulator`](corridor_events::NetworkDaySimulator), and
//! per-edge Monte-Carlo statistics stream out byte-identically whatever
//! the worker count. The per-edge frontier renderings are
//! byte-identical to the linear
//! [`DeploymentOptimizer`](crate::DeploymentOptimizer)'s over the same
//! cells — pinned by the differential tests.

mod day;
mod graph;
mod schedule;

pub use day::{
    EdgeDayStats, NetworkDayEngine, NetworkDayReport, TrainRoute, NETWORK_DAY_CSV_HEADER,
};
pub use graph::{CorridorEdge, CorridorNetwork, NetworkError};
pub use schedule::SleepDecision;

use corridor_core::margin::MarginModel;

use core::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

use corridor_core::sink::{RowEmitter, RowFormat, RowSink, StringSink};
use corridor_core::ScenarioError;
use corridor_deploy::{CoverageCache, LinkBudget};
use rayon::prelude::*;

use crate::engine::build_pool;
use crate::optimize::{
    evaluate_cell, render_optimize_row, FrontierPoint, OptimizeCellResult, SearchSpace,
    OPTIMIZE_CSV_HEADER,
};
use crate::stream::{self, ChunkRows, RowPair, StreamError, StreamSummary};
use crate::ScenarioCell;

/// The CSV header of [`NetworkReport::schedule_csv`].
pub const NETWORK_SCHEDULE_CSV_HEADER: &str =
    "edge,edge_name,station,station_name,absorber_edge,absorber_name,slept_wh_day,\
absorber_delta_wh_day,net_wh_day,absorbed_demand_tph";

/// Runs the per-edge deployment search and the demand-aware sleep
/// schedule over a [`CorridorNetwork`], serially or on the worker pool.
///
/// # Examples
///
/// ```
/// use corridor_sim::{CorridorNetwork, NetworkOptimizer, SearchSpace};
/// use corridor_units::Meters;
///
/// let net = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
/// let space = SearchSpace::new().sample_step(Meters::new(10.0));
/// let report = NetworkOptimizer::new().workers(1).run(&net, &space).unwrap();
/// assert_eq!(report.len(), 3);
/// // the junction lets boundary repeaters sleep; a per-corridor
/// // optimizer cannot see across the hub
/// assert!(report.network_wh_day() <= report.corridor_wh_day());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkOptimizer {
    workers: Option<usize>,
    capacity_tph: f64,
    margin_floor_db: Option<f64>,
    day_seed: u64,
}

impl NetworkOptimizer {
    /// An optimizer with automatic worker count, the default 30
    /// trains/h absorption capacity per boundary repeater, no margin
    /// trading and day seed 42.
    pub fn new() -> Self {
        NetworkOptimizer {
            workers: None,
            capacity_tph: 30.0,
            margin_floor_db: None,
            day_seed: 42,
        }
    }

    /// Sets an explicit worker count (an explicit `0` is rejected at
    /// run time, mirroring the other engines).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the aggregate demand (own + absorbed, trains per hour) one
    /// boundary repeater may serve.
    #[must_use]
    pub fn capacity_tph(mut self, capacity: f64) -> Self {
        self.capacity_tph = capacity;
        self
    }

    /// Enables margin trading: interior repeaters may sleep as long as
    /// every edge's coverage margin stays at or above `floor_db`.
    /// Setting the floor to an edge's current margin reproduces the
    /// boundary-only schedule byte-for-byte (no margin to spend).
    #[must_use]
    pub fn margin_floor_db(mut self, floor_db: f64) -> Self {
        self.margin_floor_db = Some(floor_db);
        self
    }

    /// Sets the seed of the representative network day the
    /// margin-trading scheduler prices interior sleeps against.
    #[must_use]
    pub fn day_seed(mut self, seed: u64) -> Self {
        self.day_seed = seed;
        self
    }

    /// Validates the network, searches every edge on the worker pool
    /// and builds the sleep schedule.
    ///
    /// # Errors
    ///
    /// Returns the graph's [`NetworkError`], a wrapped
    /// [`ScenarioError`] for an invalid edge scenario, zero workers or
    /// a pool-build failure.
    pub fn run(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
    ) -> Result<NetworkReport, NetworkError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers.into());
        }
        net.validate()?;
        let work = Self::expand(net, space)?;
        let pool = build_pool(self.workers).map_err(NetworkError::Scenario)?;
        let results: Vec<OptimizeCellResult> = pool.install(|| {
            work.par_iter()
                .map(|(cell, cache)| evaluate_cell(cell, cache, space))
                .collect()
        });
        self.fold(net, space, &work, results)
    }

    /// [`NetworkOptimizer::run`] on the calling thread — the reference
    /// path the parallel results are checked against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkOptimizer::run`].
    pub fn run_serial(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
    ) -> Result<NetworkReport, NetworkError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers.into());
        }
        net.validate()?;
        let work = Self::expand(net, space)?;
        let results: Vec<OptimizeCellResult> = work
            .iter()
            .map(|(cell, cache)| evaluate_cell(cell, cache, space))
            .collect();
        self.fold(net, space, &work, results)
    }

    /// Streams the per-edge frontier rows into `sink` in edge order
    /// without materializing the report; the emitted bytes are
    /// identical to [`NetworkReport::frontier_csv`] /
    /// [`NetworkReport::frontier_json`] whatever the worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkOptimizer::run`], plus
    /// [`NetworkError::Stream`] if the sink refuses a row.
    pub fn stream_frontier(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
        format: RowFormat,
        sink: &mut dyn RowSink,
    ) -> Result<StreamSummary, NetworkError> {
        net.validate()?;
        let workers = stream::resolve_workers(self.workers).map_err(NetworkError::Scenario)?;
        let coverage: Mutex<Vec<(LinkBudget, Arc<CoverageCache>)>> = Mutex::new(Vec::new());
        let mut rows = RowEmitter::begin(sink, format, OPTIMIZE_CSV_HEADER)
            .map_err(|e| NetworkError::Stream(StreamError::Sink(e)))?;
        let label = space.isd_search_label();
        let summary = stream::drive(
            workers,
            0..net.edge_count(),
            format,
            |index| {
                let cell = net.edge_cell(index)?;
                let shared = shared_cache(&coverage, &cell, space);
                let result = evaluate_cell(&cell, &shared, space);
                Ok(ChunkRows {
                    rows: vec![RowPair {
                        csv: render_optimize_row(&result, label, RowFormat::Csv),
                        json: render_optimize_row(&result, label, RowFormat::Json),
                    }],
                    cache_hits: 0,
                    cache_misses: 0,
                })
            },
            &mut |row| rows.row(row).map_err(StreamError::Sink),
        )
        .map_err(NetworkError::Stream)?;
        rows.finish()
            .map_err(|e| NetworkError::Stream(StreamError::Sink(e)))?;
        Ok(summary)
    }

    /// Builds every edge cell and pairs it with the shared coverage
    /// cache of its link budget (one cache per distinct budget).
    #[allow(clippy::type_complexity)]
    fn expand(
        net: &CorridorNetwork,
        space: &SearchSpace,
    ) -> Result<Vec<(ScenarioCell, Arc<CoverageCache>)>, NetworkError> {
        let caches: Mutex<Vec<(LinkBudget, Arc<CoverageCache>)>> = Mutex::new(Vec::new());
        (0..net.edge_count())
            .map(|index| {
                let cell = net.edge_cell(index).map_err(NetworkError::Scenario)?;
                let cache = shared_cache(&caches, &cell, space);
                Ok((cell, cache))
            })
            .collect()
    }

    /// Picks each edge's least-energy frontier point, runs the sleep
    /// schedule (with margin trading when a floor is configured) and
    /// assembles the report.
    fn fold(
        &self,
        net: &CorridorNetwork,
        space: &SearchSpace,
        work: &[(ScenarioCell, Arc<CoverageCache>)],
        results: Vec<OptimizeCellResult>,
    ) -> Result<NetworkReport, NetworkError> {
        let picks: Vec<Option<FrontierPoint>> = results
            .iter()
            .map(|r| {
                r.frontier()
                    .iter()
                    .min_by(|x, y| {
                        x.energy_wh_day_km
                            .total_cmp(&y.energy_wh_day_km)
                            .then(x.nodes.cmp(&y.nodes))
                    })
                    .cloned()
            })
            .collect();
        let (plan, margins) = match self.margin_floor_db {
            Some(floor_db) => {
                // the representative day the interior prices come from,
                // plus each edge's coverage cache from the search
                let day = day::build_day_context(net, &picks, self.day_seed);
                let caches: Vec<Arc<CoverageCache>> =
                    work.iter().map(|(_, cache)| Arc::clone(cache)).collect();
                let trading = schedule::MarginTrading {
                    floor_db,
                    model: MarginModel::new(space.snr_threshold_value()),
                    caches: &caches,
                    day: &day,
                };
                schedule::schedule_sleep(net, &picks, self.capacity_tph, Some(&trading))
            }
            None => schedule::schedule_sleep(net, &picks, self.capacity_tph, None),
        }
        .map_err(NetworkError::Scenario)?;
        Ok(NetworkReport {
            network: net.clone(),
            results,
            picks,
            plan,
            margins,
            isd_search: space.isd_search_label(),
        })
    }
}

impl Default for NetworkOptimizer {
    /// Returns [`NetworkOptimizer::new`].
    fn default() -> Self {
        NetworkOptimizer::new()
    }
}

/// Finds or lazily creates the shared coverage cache for a cell's link
/// budget — the same one-cache-per-budget policy the linear optimizer
/// applies, so the per-edge searches share SNR profiles.
fn shared_cache(
    caches: &Mutex<Vec<(LinkBudget, Arc<CoverageCache>)>>,
    cell: &ScenarioCell,
    space: &SearchSpace,
) -> Arc<CoverageCache> {
    let mut caches = caches.lock().unwrap_or_else(PoisonError::into_inner);
    let budget = cell.params().budget();
    match caches.iter().find(|(b, _)| b == budget) {
        Some((_, shared)) => Arc::clone(shared),
        None => {
            let shared = Arc::new(CoverageCache::with_sample_step(
                budget.clone(),
                space.sample_step_value(),
            ));
            caches.push((budget.clone(), Arc::clone(&shared)));
            shared
        }
    }
}

/// The searched network: per-edge frontiers (in edge order), the
/// least-energy pick per edge, and the committed sleep schedule, with
/// deterministic CSV/JSON writers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    network: CorridorNetwork,
    results: Vec<OptimizeCellResult>,
    picks: Vec<Option<FrontierPoint>>,
    plan: Vec<SleepDecision>,
    margins: Vec<Option<f64>>,
    isd_search: &'static str,
}

impl NetworkReport {
    /// The per-edge search results, in edge order.
    pub fn results(&self) -> &[OptimizeCellResult] {
        &self.results
    }

    /// Number of searched edges.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the network had no edges.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The network the report was built from.
    pub fn network(&self) -> &CorridorNetwork {
        &self.network
    }

    /// The ISD resolution label of the search.
    pub fn isd_search(&self) -> &'static str {
        self.isd_search
    }

    /// Each edge's least-energy frontier pick (`None` for an unsolvable
    /// edge).
    pub fn picks(&self) -> &[Option<FrontierPoint>] {
        &self.picks
    }

    /// The committed sleep schedule, in greedy commit order.
    pub fn plan(&self) -> &[SleepDecision] {
        &self.plan
    }

    /// Each edge's residual coverage margin after the schedule, dB
    /// (`None` for undeployed edges). Without margin trading these are
    /// the picks' own margins, untouched.
    pub fn residual_margins(&self) -> &[Option<f64>] {
        &self.margins
    }

    /// Edges without any feasible deployment.
    pub fn unsolvable_edges(&self) -> usize {
        self.picks.iter().filter(|p| p.is_none()).count()
    }

    /// Total daily energy of the per-corridor picks, Wh/day: each
    /// edge's per-km frontier energy scaled by its physical length.
    /// This is what independent per-corridor optimization would deploy.
    pub fn corridor_wh_day(&self) -> f64 {
        self.picks
            .iter()
            .enumerate()
            .filter_map(|(e, p)| {
                p.as_ref()
                    .map(|p| p.energy_wh_day_km * self.network.edge(e).length_km_value())
            })
            .sum()
    }

    /// Net daily saving of the sleep schedule, Wh/day.
    pub fn sleep_saving_wh_day(&self) -> f64 {
        self.plan.iter().map(|d| d.net_wh_day).sum()
    }

    /// Total daily network energy after demand-aware sleep, Wh/day.
    pub fn network_wh_day(&self) -> f64 {
        self.corridor_wh_day() - self.sleep_saving_wh_day()
    }

    /// Streams the per-edge frontier chunks into `sink` in edge order;
    /// byte-identical to the linear optimizer's rendering of the same
    /// cells and to [`NetworkOptimizer::stream_frontier`].
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`](corridor_core::sink::SinkError).
    pub fn stream_frontier_into(
        &self,
        format: RowFormat,
        sink: &mut dyn RowSink,
    ) -> corridor_core::sink::SinkResult<u64> {
        let mut rows = RowEmitter::begin(sink, format, OPTIMIZE_CSV_HEADER)?;
        for r in &self.results {
            rows.row(&render_optimize_row(r, self.isd_search, format))?;
        }
        rows.finish()
    }

    /// Renders the per-edge frontiers as CSV (the linear optimizer's
    /// format, one line per frontier point).
    pub fn frontier_csv(&self) -> String {
        StringSink::render(4096, |sink| self.stream_frontier_into(RowFormat::Csv, sink))
    }

    /// Renders the per-edge frontiers as a JSON array of edge objects.
    pub fn frontier_json(&self) -> String {
        StringSink::render(8192, |sink| {
            self.stream_frontier_into(RowFormat::Json, sink)
        })
    }

    /// Renders the sleep schedule as CSV
    /// ([`NETWORK_SCHEDULE_CSV_HEADER`] plus one line per decision, in
    /// commit order).
    pub fn schedule_csv(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * self.plan.len());
        out.push_str(NETWORK_SCHEDULE_CSV_HEADER);
        out.push('\n');
        for d in &self.plan {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.3},{:.3},{:.3},{}",
                d.edge,
                crate::report::csv_field(self.network.edge_name(d.edge)),
                d.station,
                crate::report::csv_field(self.network.station_name(d.station)),
                d.absorber_edge,
                crate::report::csv_field(self.network.edge_name(d.absorber_edge)),
                d.slept_wh_day,
                d.absorber_delta_wh_day,
                d.net_wh_day,
                d.absorbed_demand_tph,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Meters;

    fn quick_space() -> SearchSpace {
        SearchSpace::new().sample_step(Meters::new(10.0))
    }

    #[test]
    fn zero_workers_rejected() {
        let net = CorridorNetwork::line(&[8.0]);
        let err = NetworkOptimizer::new()
            .workers(0)
            .run(&net, &quick_space())
            .unwrap_err();
        assert!(matches!(
            err,
            NetworkError::Scenario(ScenarioError::ZeroWorkers)
        ));
    }

    #[test]
    fn disconnected_network_rejected_before_evaluation() {
        let mut net = CorridorNetwork::line(&[8.0]);
        net.add_station("island");
        let err = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap_err();
        assert!(matches!(err, NetworkError::Disconnected(2)));
    }

    #[test]
    fn parallel_matches_serial() {
        let net = CorridorNetwork::by_name("wye3").unwrap();
        let serial = NetworkOptimizer::new()
            .workers(1)
            .run_serial(&net, &quick_space())
            .unwrap();
        let parallel = NetworkOptimizer::new()
            .workers(4)
            .run(&net, &quick_space())
            .unwrap();
        assert_eq!(serial.results(), parallel.results());
        assert_eq!(serial.frontier_csv(), parallel.frontier_csv());
        assert_eq!(serial.schedule_csv(), parallel.schedule_csv());
    }

    #[test]
    fn picks_take_the_least_energy_point() {
        let net = CorridorNetwork::line(&[8.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        let pick = report.picks()[0].as_ref().unwrap();
        let frontier = report.results()[0].frontier();
        let min = frontier
            .iter()
            .map(|p| p.energy_wh_day_km)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(pick.energy_wh_day_km, min);
        assert!(report.corridor_wh_day() > 0.0);
    }

    #[test]
    fn schedule_totals_are_consistent() {
        let net = CorridorNetwork::by_name("wye3").unwrap();
        let report = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        let saving: f64 = report.plan().iter().map(|d| d.net_wh_day).sum();
        assert!((report.sleep_saving_wh_day() - saving).abs() < 1e-12);
        assert!((report.network_wh_day() - (report.corridor_wh_day() - saving)).abs() < 1e-9);
        let csv = report.schedule_csv();
        assert!(csv.starts_with(NETWORK_SCHEDULE_CSV_HEADER));
        assert_eq!(csv.lines().count(), 1 + report.plan().len());
    }
}
