//! One inter-site segment of the corridor.

use core::fmt;

use corridor_link::{CoverageProfile, SignalSource, SnrModel};
use corridor_propagation::CalibratedFriis;
use corridor_units::Meters;

use crate::{LinkBudget, PlacementError, PlacementPolicy};

/// The geometry of one corridor segment: high-power masts at `0` and `isd`,
/// low-power repeater service nodes in between.
///
/// # Examples
///
/// ```
/// use corridor_deploy::{CorridorLayout, LinkBudget, PlacementPolicy};
/// use corridor_units::Meters;
///
/// // the paper's Fig. 3 scenario: ISD 2400 m, 8 repeaters
/// let layout = CorridorLayout::with_policy(
///     Meters::new(2400.0), 8, &PlacementPolicy::paper_default())?;
/// assert_eq!(layout.repeater_count(), 8);
/// let model = layout.snr_model(&LinkBudget::paper_default());
/// assert_eq!(model.sources().len(), 10); // 2 masts + 8 repeaters
/// # Ok::<(), corridor_deploy::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorridorLayout {
    isd: Meters,
    repeaters: Vec<Meters>,
}

impl CorridorLayout {
    /// A conventional segment with no repeaters.
    ///
    /// # Panics
    ///
    /// Panics if `isd` is not strictly positive.
    pub fn conventional(isd: Meters) -> Self {
        assert!(isd.value() > 0.0, "ISD must be positive");
        CorridorLayout {
            isd,
            repeaters: Vec::new(),
        }
    }

    /// A segment with `n` repeaters placed by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if the policy cannot place `n` nodes in
    /// the segment.
    pub fn with_policy(
        isd: Meters,
        n: usize,
        policy: &PlacementPolicy,
    ) -> Result<Self, PlacementError> {
        let repeaters = policy.positions(n, isd)?;
        Ok(CorridorLayout { isd, repeaters })
    }

    /// The inter-site distance.
    pub fn isd(&self) -> Meters {
        self.isd
    }

    /// Repeater positions, sorted along the track.
    pub fn repeater_positions(&self) -> &[Meters] {
        &self.repeaters
    }

    /// Number of repeater service nodes.
    pub fn repeater_count(&self) -> usize {
        self.repeaters.len()
    }

    /// Positions of the two high-power masts.
    pub fn mast_positions(&self) -> [Meters; 2] {
        [Meters::ZERO, self.isd]
    }

    /// Builds the segment's [`SnrModel`] under `budget`: two high-power
    /// sources at the masts and one low-power source (with re-emitted
    /// noise) per repeater.
    pub fn snr_model(&self, budget: &LinkBudget) -> SnrModel<CalibratedFriis> {
        let hp = budget.hp_path_loss();
        let lp = budget.lp_path_loss();
        let mut model = SnrModel::new(*budget.carrier())
            .with_noise_floor(budget.noise_floor())
            .with_terminal_noise_figure(budget.terminal_noise_figure())
            .with_source(SignalSource::new(Meters::ZERO, budget.hp_rstp(), hp))
            .with_source(SignalSource::new(self.isd, budget.hp_rstp(), hp));
        for &pos in &self.repeaters {
            model.add_source(
                SignalSource::new(pos, budget.lp_rstp(), lp)
                    .with_emitted_noise(budget.repeater_emitted_noise()),
            );
        }
        model
    }

    /// Samples the coverage profile of this segment under `budget`.
    pub fn coverage_profile(&self, budget: &LinkBudget, step: Meters) -> CoverageProfile {
        CoverageProfile::sample(&self.snr_model(budget), self.isd, step, budget.throughput())
    }
}

impl fmt::Display for CorridorLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segment of {} with {} repeater(s)",
            self.isd,
            self.repeaters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_layout() {
        let l = CorridorLayout::conventional(Meters::new(500.0));
        assert_eq!(l.isd(), Meters::new(500.0));
        assert_eq!(l.repeater_count(), 0);
        assert_eq!(l.mast_positions(), [Meters::ZERO, Meters::new(500.0)]);
        let model = l.snr_model(&LinkBudget::paper_default());
        assert_eq!(model.sources().len(), 2);
    }

    #[test]
    fn repeater_sources_carry_noise() {
        let l =
            CorridorLayout::with_policy(Meters::new(1250.0), 1, &PlacementPolicy::paper_default())
                .unwrap();
        let model = l.snr_model(&LinkBudget::paper_default());
        let repeater = &model.sources()[2];
        assert!(repeater.emitted_noise().is_some());
        // masts carry no re-emitted noise
        assert!(model.sources()[0].emitted_noise().is_none());
        assert!(model.sources()[1].emitted_noise().is_none());
    }

    #[test]
    fn profile_of_conventional_500m_is_peak_everywhere() {
        let l = CorridorLayout::conventional(Meters::new(500.0));
        let p = l.coverage_profile(&LinkBudget::paper_default(), Meters::new(1.0));
        assert!(p.min_snr().unwrap().value() > 29.0);
    }

    #[test]
    fn fig3_scenario_keeps_signal_above_minus_100dbm() {
        // the paper's Fig. 3: ISD 2400 m, 8 repeaters keep the total signal
        // above -100 dBm along the whole track
        let l =
            CorridorLayout::with_policy(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
                .unwrap();
        let p = l.coverage_profile(&LinkBudget::paper_default(), Meters::new(5.0));
        for s in p.samples() {
            assert!(
                s.signal.value() > -100.0,
                "signal {} at {}",
                s.signal,
                s.position
            );
        }
    }

    #[test]
    fn repeaters_fill_the_coverage_hole() {
        let budget = LinkBudget::paper_default();
        let bare = CorridorLayout::conventional(Meters::new(2400.0))
            .coverage_profile(&budget, Meters::new(5.0));
        let with_nodes =
            CorridorLayout::with_policy(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
                .unwrap()
                .coverage_profile(&budget, Meters::new(5.0));
        assert!(with_nodes.min_snr().unwrap() > bare.min_snr().unwrap());
        assert!(bare.min_snr().unwrap().value() < 29.0);
        assert!(with_nodes.min_snr().unwrap().value() > 29.0);
    }

    #[test]
    fn display() {
        let l = CorridorLayout::conventional(Meters::new(500.0));
        assert_eq!(l.to_string(), "segment of 500.0 m with 0 repeater(s)");
    }

    #[test]
    #[should_panic(expected = "ISD must be positive")]
    fn zero_isd_rejected() {
        let _ = CorridorLayout::conventional(Meters::ZERO);
    }
}
