//! Corridor deployment optimizer: jointly searches repeater count, ISD,
//! wake policy and PV sizing per scenario cell and prints the Pareto
//! frontier of (energy/day, nodes/km, coverage margin), with the shared
//! coverage cache's counters.
//!
//! ```console
//! $ cargo run --release -p corridor_bench --bin optimize -- --help
//! $ cargo run --release -p corridor_bench --bin optimize -- --grid smoke3 --isd model
//! $ cargo run --release -p corridor_bench --bin optimize -- --policies both --pv --csv > frontier.csv
//! $ cargo run --release -p corridor_bench --bin optimize -- --smoke
//! ```
//!
//! Stdout depends only on the options (no clocks, no ambient
//! parallelism effects — reports and cache counters are deterministic
//! across worker counts), so piped output is byte-reproducible;
//! wall-clock timing goes to stderr.

use std::process::ExitCode;
use std::time::Instant;

use corridor_bench::render;
use corridor_core::units::Meters;
use corridor_sim::{DeploymentOptimizer, IsdSearch, ScenarioGrid, SearchSpace, WakePolicy};

const USAGE: &str = "\
usage: optimize [options]

options:
  --grid G      paper (1 cell, default) | smoke3 (3 cells) | screening200
  --isd M       paper (published Section V table, default) | model
                (cached 50 m-step max-ISD search under the link budget)
  --policies P  instant (default) | paper | both
  --pv          size the off-grid PV system per frontier candidate
  --threshold T minimum SNR along the track in dB (default: 29)
  --sample-step S
                coverage-profile sampling step in metres (default: 5,
                except 10 for --grid screening200 to keep it affordable;
                boundary ISDs are insensitive at a 50 m ISD grid)
  --workers N   worker threads, 0 = auto (default: 0)
  --csv         print the full frontier CSV instead of the summary
  --json        print the frontier JSON instead of the summary
  --smoke       print the committed optimize_smoke golden rendering and
                exit (fixed configuration; not combinable)
  --help        this text
";

struct Options {
    grid: ScenarioGrid,
    grid_name: String,
    space: SearchSpace,
    sample_step: Option<f64>,
    workers: usize,
    csv: bool,
    json: bool,
    smoke: bool,
}

fn parse(mut args: std::env::Args) -> Result<Option<Options>, String> {
    let mut opts = Options {
        grid: ScenarioGrid::new(),
        grid_name: "paper".into(),
        space: SearchSpace::new(),
        sample_step: None,
        workers: 0,
        csv: false,
        json: false,
        smoke: false,
    };
    let _ = args.next(); // binary name
    let mut search_options: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        if arg != "--smoke" && arg != "--help" && arg != "-h" {
            search_options.push(arg.clone());
        }
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--grid" => {
                let name = value("--grid")?;
                opts.grid = match name.as_str() {
                    "paper" => ScenarioGrid::new(),
                    "smoke3" => ScenarioGrid::smoke_3(),
                    "screening200" => ScenarioGrid::screening_200(),
                    other => return Err(format!("unknown grid {other}")),
                };
                opts.grid_name = name;
            }
            "--isd" => {
                opts.space = match value("--isd")?.as_str() {
                    "paper" => opts.space.isd_search(IsdSearch::PaperTable),
                    "model" => opts.space.isd_search(IsdSearch::model_paper_grid()),
                    other => return Err(format!("unknown ISD mode {other}")),
                };
            }
            "--policies" => {
                let policies = match value("--policies")?.as_str() {
                    "instant" => vec![WakePolicy::instant()],
                    "paper" => vec![WakePolicy::paper_default()],
                    "both" => vec![WakePolicy::instant(), WakePolicy::paper_default()],
                    other => return Err(format!("unknown policy set {other}")),
                };
                opts.space = opts.space.wake_policies(policies);
            }
            "--pv" => opts.space = opts.space.pv_sizing(true),
            "--threshold" => {
                let db: f64 = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                // a NaN/inf threshold parses fine but would silently
                // mark every candidate infeasible
                if !db.is_finite() {
                    return Err("--threshold must be finite".into());
                }
                opts.space = opts.space.snr_threshold(corridor_core::units::Db::new(db));
            }
            "--sample-step" => {
                let step: f64 = value("--sample-step")?
                    .parse()
                    .map_err(|e| format!("--sample-step: {e}"))?;
                // reject NaN explicitly — it slips past `<= 0.0` and
                // would only blow up later in the library assert
                if step.is_nan() || step <= 0.0 {
                    return Err("--sample-step must be positive".into());
                }
                opts.sample_step = Some(step);
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other}")),
        }
    }
    // the smoke rendering is fixed (it must match the committed golden
    // byte for byte), so combining it with search options would
    // silently ignore them — reject instead
    if opts.smoke && !search_options.is_empty() {
        return Err(format!(
            "--smoke renders the fixed golden configuration and cannot be \
             combined with {}",
            search_options.join(" ")
        ));
    }
    if opts.csv && opts.json {
        return Err("--csv and --json are mutually exclusive".into());
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args()) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("optimize: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if opts.smoke {
        print!("{}", render::optimize_smoke());
        return ExitCode::SUCCESS;
    }

    // keep the screening grid affordable by default: coarser profile
    // sampling there (boundary ISDs are insensitive to 5 m vs 10 m at a
    // 50 m ISD grid); every other grid keeps the library's 5 m default
    // unless --sample-step overrides it
    let space = match opts.sample_step {
        Some(step) => opts.space.sample_step(Meters::new(step)),
        None if opts.grid_name == "screening200" => opts.space.sample_step(Meters::new(10.0)),
        None => opts.space,
    };
    let mut optimizer = DeploymentOptimizer::new();
    if opts.workers > 0 {
        optimizer = optimizer.workers(opts.workers);
    }

    let started = Instant::now();
    let report = match optimizer.run(&opts.grid, &space) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("optimize: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    if opts.csv {
        print!("{}", report.to_csv());
    } else if opts.json {
        print!("{}", report.to_json());
    } else {
        println!("Corridor deployment optimizer — Pareto frontier per cell");
        println!();
        println!(
            "grid: {} ({} cells)  isd: {}  candidates/cell: {}",
            opts.grid_name,
            report.len(),
            report.isd_search(),
            space.candidates_per_cell(),
        );
        println!(
            "candidates: {} evaluated, {} on the frontiers, {} unsolvable cell(s)",
            report.candidates_evaluated(),
            report.frontier_points(),
            report
                .results()
                .iter()
                .filter(|r| r.is_unsolvable())
                .count()
        );
        println!(
            "coverage cache: {} lookups, {} profiles sampled ({:.0} % hit rate)",
            report.coverage_lookups(),
            report.profile_evaluations(),
            report.cache_hit_rate() * 100.0
        );
        println!();
        // the paper's headline cell, if present: its frontier extremes
        if let Some(r) = report.results().iter().find(|r| {
            let c = r.cell();
            c.trains_per_hour() == 8.0
                && c.conventional_isd_m() == 500.0
                && (c.train_speed_kmh() - 200.0).abs() < 1e-9
        }) {
            if let Some(least_energy) = r
                .frontier()
                .iter()
                .min_by(|a, b| a.energy_wh_day_km.total_cmp(&b.energy_wh_day_km))
            {
                println!(
                    "headline cell {}: least-energy point {} nodes @ {:.0} m -> \
                     {:.1} Wh/day/km ({:.1} % saving), {:.3} nodes/km",
                    r.cell().index(),
                    least_energy.nodes,
                    least_energy.isd.value(),
                    least_energy.energy_wh_day_km,
                    least_energy.saving_sleep_pct,
                    least_energy.nodes_per_km,
                );
            } else {
                println!("headline cell {}: unsolvable", r.cell().index());
            }
        }
    }

    eprintln!(
        "searched {} candidate(s) across {} cell(s) in {:.0} ms ({:.0} configs/s, workers: {})",
        report.candidates_evaluated(),
        report.len(),
        elapsed.as_secs_f64() * 1e3,
        report.candidates_evaluated() as f64 / elapsed.as_secs_f64().max(1e-9),
        if opts.workers == 0 {
            "auto".to_string()
        } else {
            opts.workers.to_string()
        }
    );
    ExitCode::SUCCESS
}
