//! Integration tests exercising interactions between crates that no
//! single crate's unit tests cover.

use railway_corridor::prelude::*;
use railway_corridor::propagation::{LogDistance, TwoRayGround};

/// The traffic-derived duty cycle feeds the power model consistently:
/// computing the repeater's daily energy through the full pipeline equals
/// the hand-computed paper value.
#[test]
fn traffic_to_power_pipeline() {
    let params = ScenarioParams::paper_default();
    let section = TrackSection::around(Meters::new(500.0), params.lp_spacing());
    let activity = ActivityTimeline::for_section(&section, &params.timetable().passes());
    let duty = DutyCycle::over_day(activity.total_active_hours(), Hours::ZERO);
    let daily = duty.daily_energy(params.lp_node());
    assert!((daily.value() - 124.1).abs() < 0.1, "got {daily}");
}

/// The same duty cycle drives the solar load profile: a profile built
/// from the traffic simulation matches the paper's PVGIS input closely.
#[test]
fn traffic_to_solar_pipeline() {
    let params = ScenarioParams::paper_default();
    let section = TrackSection::around(Meters::new(500.0), params.lp_spacing());
    let activity = ActivityTimeline::for_section(&section, &params.timetable().passes());

    // build an hourly profile from the actual activity timeline
    let mut hourly = [Watts::ZERO; 24];
    let full = params.lp_node().full_load_power();
    let sleep = params.lp_node().p_sleep();
    for (h, slot) in hourly.iter_mut().enumerate() {
        let from = Seconds::new(h as f64 * 3600.0);
        let to = Seconds::new((h + 1) as f64 * 3600.0);
        let active = activity.active_within(from, to);
        let fraction = active.value() / 3600.0;
        *slot = full * fraction + sleep * (1.0 - fraction);
    }
    let from_traffic = DailyLoadProfile::from_hourly(hourly);
    let paper = DailyLoadProfile::repeater_paper_default();
    assert!(
        (from_traffic.daily_energy().value() - paper.daily_energy().value()).abs() < 0.5,
        "traffic-derived {} vs paper {}",
        from_traffic.daily_energy(),
        paper.daily_energy()
    );

    // and the traffic-derived profile is just as solvable in Madrid
    let system = OffGridSystem::new(
        climate::madrid(),
        PvArray::standard_modules(3),
        Battery::paper_default(),
        from_traffic,
    );
    assert_eq!(system.simulate_year(2).downtime_days(), 0);
}

/// Swapping the path-loss family changes the achievable ISD in the
/// physically expected direction.
#[test]
fn pathloss_families_order_the_isd() {
    let base = IsdOptimizer::new(LinkBudget::paper_default()).with_sample_step(Meters::new(10.0));
    let friis_isd = base.max_isd(2).unwrap();

    // a harsher exponent via a higher equivalent calibration: +6 dB on
    // both links costs range
    let harsh_budget = LinkBudget::paper_default().with_calibrations(Db::new(39.0), Db::new(26.0));
    let harsh = IsdOptimizer::new(harsh_budget).with_sample_step(Meters::new(10.0));
    let harsh_isd = harsh.max_isd(2).unwrap();
    assert!(harsh_isd < friis_isd);

    // sanity on the alternative models themselves
    let d = Meters::new(1000.0);
    let friis = CalibratedFriis::new(Hertz::from_ghz(3.5), Db::new(0.0));
    let log35 = LogDistance::new(Hertz::from_ghz(3.5), 3.5);
    let two_ray = TwoRayGround::new(Hertz::from_ghz(3.5), Meters::new(15.0), Meters::new(3.0));
    assert!(log35.attenuation(d) > friis.attenuation(d));
    assert_eq!(two_ray.attenuation(d), friis.attenuation(d)); // below crossover
}

/// The donor-node rule changes the energy by the expected small amount:
/// removing donors from a 10-node deployment saves under 10 %.
#[test]
fn donor_share_is_small() {
    let params = ScenarioParams::paper_default();
    let with = energy::average_power_per_km(
        &params,
        10,
        Meters::new(2650.0),
        EnergyStrategy::SleepModeRepeaters,
    );
    let donor_share = with.donor / with.total();
    assert!(
        donor_share > 0.0 && donor_share < 0.10,
        "share {donor_share}"
    );
}

/// The wake controller integrates with the energy model: a 1 s barrier
/// lead on every pass adds well under 1 % to the repeater's daily energy.
#[test]
fn wake_lead_energy_overhead_negligible() {
    let params = ScenarioParams::paper_default();
    let section = TrackSection::around(Meters::new(500.0), params.lp_spacing());
    let passes = params.timetable().passes();
    let plain = ActivityTimeline::for_section(&section, &passes);
    let ctl = WakeController::paper_default();
    let waked = ActivityTimeline::for_section_with_wake(&section, &passes, &ctl);
    let plain_e =
        DutyCycle::over_day(plain.total_active_hours(), Hours::ZERO).daily_energy(params.lp_node());
    let waked_e =
        DutyCycle::over_day(waked.total_active_hours(), Hours::ZERO).daily_energy(params.lp_node());
    let overhead = (waked_e - plain_e) / plain_e;
    assert!(overhead < 0.01, "overhead {overhead}");
    assert!(waked_e >= plain_e);
}

/// Units flow through the whole stack without manual conversions: a
/// corridor evaluation in different length units agrees.
#[test]
fn unit_consistency_end_to_end() {
    let params = ScenarioParams::paper_default();
    let isd_m = Meters::new(2400.0);
    let isd_km: Meters = Kilometers::new(2.4).into();
    let a = energy::average_power_per_km(&params, 8, isd_m, EnergyStrategy::SleepModeRepeaters);
    let b = energy::average_power_per_km(&params, 8, isd_km, EnergyStrategy::SleepModeRepeaters);
    assert_eq!(a, b);
}

/// The EIRP chain: watts -> dBm -> per-subcarrier RSTP -> RSRP -> SNR ->
/// throughput, all in one expression, lands on the paper's numbers.
#[test]
fn eirp_chain_matches_paper() {
    let carrier = NrCarrier::paper_100mhz();
    let eirp = Dbm::from_watts(Watts::new(2500.0));
    let rstp = carrier.per_subcarrier(eirp);
    assert!((rstp.value() - 28.8).abs() < 0.05);
    let model = CalibratedFriis::new(Hertz::from_ghz(3.5), Db::new(33.0));
    let rsrp = rstp - model.attenuation(Meters::new(250.0));
    let snr = rsrp - (Dbm::new(-132.0) + Db::new(5.0));
    let thr = ThroughputModel::nr_default();
    assert_eq!(thr.spectral_efficiency(snr), 5.84);
}

/// Serde round-trip across crates (feature-gated types compile and the
/// default feature set builds without serde).
#[test]
fn public_types_have_debug_and_clone() {
    fn assert_traits<T: std::fmt::Debug + Clone + Send + Sync>() {}
    assert_traits::<ScenarioParams>();
    assert_traits::<LinkBudget>();
    assert_traits::<IsdTable>();
    assert_traits::<CoverageProfile>();
    assert_traits::<DailyLoadProfile>();
    assert_traits::<Battery>();
    assert_traits::<Timetable>();
    assert_traits::<LoadDependentPower>();
}
