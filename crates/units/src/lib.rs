//! Unit-safe physical quantities for RF and energy simulation.
//!
//! This crate provides thin, zero-cost newtype wrappers around `f64` for the
//! physical quantities used throughout the railway-corridor energy study:
//! decibel ratios and absolute powers ([`Db`], [`Dbm`]), electrical power and
//! energy ([`Watts`], [`WattHours`]), geometry ([`Meters`], [`Kilometers`]),
//! spectrum ([`Hertz`]), time ([`Seconds`], [`Hours`]) and speed
//! ([`MetersPerSecond`], [`KilometersPerHour`]).
//!
//! Mixing units is a compile error; conversions are explicit. Logarithmic
//! arithmetic follows RF engineering conventions: adding a [`Db`] gain to a
//! [`Dbm`] power yields a [`Dbm`] power, subtracting two [`Dbm`] powers
//! yields a [`Db`] ratio, and combining *powers* is only possible in the
//! linear domain (see [`Dbm::combine`] and [`sum_power_dbm`]).
//!
//! # Examples
//!
//! ```
//! use corridor_units::{Db, Dbm, Hertz, Meters, Watts};
//!
//! // 10 W EIRP expressed in dBm, attenuated by a 60 dB path loss:
//! let eirp = Dbm::from_watts(Watts::new(10.0));
//! let rx = eirp - Db::new(60.0);
//! assert!((rx.value() - (-20.0)).abs() < 1e-9);
//!
//! // wavelength of a 3.7 GHz carrier
//! let lambda: Meters = Hertz::from_ghz(3.7).wavelength();
//! assert!((lambda.value() - 0.081).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod energy;
mod frequency;
mod length;
mod ratio;
mod speed;
mod time;

pub use db::{sum_power_dbm, Db, Dbm};
pub use energy::{WattHours, Watts};
pub use frequency::{Hertz, SPEED_OF_LIGHT_M_PER_S};
pub use length::{Kilometers, Meters};
pub use ratio::{LoadFraction, LoadFractionError};
pub use speed::{KilometersPerHour, MetersPerSecond};
pub use time::{Hours, Seconds, HOURS_PER_DAY, SECONDS_PER_HOUR};

/// Convenience re-exports of every quantity type.
///
/// ```
/// use corridor_units::prelude::*;
/// let p = Dbm::new(-100.0) + Db::new(3.0);
/// assert_eq!(p, Dbm::new(-97.0));
/// ```
pub mod prelude {
    pub use crate::{
        sum_power_dbm, Db, Dbm, Hertz, Hours, Kilometers, KilometersPerHour, LoadFraction, Meters,
        MetersPerSecond, Seconds, WattHours, Watts,
    };
}
