//! End-to-end tests for the `serve` binary: protocol shape, byte
//! equivalence with the in-memory writers, retry-on-worker-death fault
//! injection, and cache behaviour across requests.

use std::io::Write;
use std::process::{Command, Stdio};

use corridor_core::hash::sha256_hex;
use corridor_sim::{
    DeploymentOptimizer, McEngine, ReplicationPlan, ScenarioGrid, SearchSpace, SweepEngine,
};

/// Runs the serve coordinator with `requests` on stdin (plus any extra
/// environment), returning `(stdout, stderr)`.
fn serve(requests: &str, envs: &[(&str, &str)]) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .envs(envs.iter().copied())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(requests.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("serve exits");
    assert!(
        output.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8(output.stdout).expect("utf-8 stdout"),
        String::from_utf8(output.stderr).expect("utf-8 stderr"),
    )
}

/// Splits one response into `(begin_line, payload, end_line)` and checks
/// the END trailer's sha256/row count against the payload bytes.
fn parse_response(stdout: &str) -> (String, String, String) {
    let begin_end = stdout.find('\n').expect("BEGIN line");
    let (begin, rest) = stdout.split_at(begin_end + 1);
    assert!(begin.starts_with("BEGIN "), "got {begin:?}");
    let end_start = rest.find("END ").expect("END line");
    let (payload, end) = rest.split_at(end_start);
    let sha = end
        .split_whitespace()
        .find_map(|w| w.strip_prefix("sha256="))
        .expect("sha256 field");
    assert_eq!(sha, sha256_hex(payload.as_bytes()), "trailer digest");
    (
        begin.trim_end().to_owned(),
        payload.to_owned(),
        end.trim_end().to_owned(),
    )
}

fn trailer_field(end: &str, name: &str) -> u64 {
    end.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} in {end:?}"))
}

#[test]
fn sweep_stream_matches_in_memory_writers() {
    let grid = ScenarioGrid::by_name("mixed-8").unwrap();
    let report = SweepEngine::new().workers(2).run(&grid).unwrap();
    for (format, expected) in [("csv", report.to_csv()), ("json", report.to_json())] {
        let (stdout, _) = serve(
            &format!("sweep grid=mixed-8 format={format} shards=2\n"),
            &[],
        );
        let (begin, payload, end) = parse_response(&stdout);
        assert_eq!(
            begin,
            format!("BEGIN sweep grid=mixed-8 format={format} cells=8 shards=2")
        );
        assert_eq!(payload, expected, "{format} payload");
        assert_eq!(trailer_field(&end, "rows"), 8);
    }
}

#[test]
fn mc_and_optimize_streams_match_in_memory_writers() {
    let grid = ScenarioGrid::by_name("smoke-3").unwrap();

    let plan = ReplicationPlan::new(3).master_seed(9);
    let mc = McEngine::new().workers(2).run(&grid, &plan).unwrap();
    let (stdout, _) = serve("mc grid=smoke-3 format=csv shards=2 reps=3 seed=9\n", &[]);
    let (_, payload, end) = parse_response(&stdout);
    assert_eq!(payload, mc.to_csv());
    assert_eq!(trailer_field(&end, "rows"), 3);

    let space = SearchSpace::new().node_counts((0..=6).collect());
    let optimize = DeploymentOptimizer::new()
        .workers(2)
        .run(&grid, &space)
        .unwrap();
    let (stdout, _) = serve("optimize grid=smoke-3 format=json shards=2\n", &[]);
    let (_, payload, end) = parse_response(&stdout);
    assert_eq!(payload, optimize.to_json());
    assert_eq!(trailer_field(&end, "rows"), 3);
}

#[test]
fn killed_worker_is_retried_and_the_stream_is_byte_identical() {
    let request = "sweep grid=mixed-8 format=json shards=2\n";
    let (clean, _) = serve(request, &[]);
    // cell 5 lands in the second shard (cells 4..8); its worker dies on
    // the first attempt, is respawned, and the retry must reproduce the
    // exact same frames
    let (faulted, stderr) = serve(request, &[("CORRIDOR_SERVE_CRASH_CELL", "5")]);
    assert_eq!(faulted, clean, "retried stream drifted");
    assert!(
        stderr.contains("respawning worker and retrying"),
        "no retry happened — the fault did not fire: {stderr}"
    );
}

#[test]
fn cache_warms_across_requests_and_heals_corruption() {
    let dir = std::env::temp_dir().join(format!("corridor-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let request = format!(
        "sweep grid=mixed-8 format=csv shards=2 cache={}\n",
        dir.display()
    );

    let (cold, _) = serve(&request, &[]);
    let (_, cold_payload, cold_end) = parse_response(&cold);
    assert_eq!(trailer_field(&cold_end, "cache_misses"), 8);

    let (warm, _) = serve(&request, &[]);
    let (_, warm_payload, warm_end) = parse_response(&warm);
    assert_eq!(warm_payload, cold_payload);
    assert_eq!(trailer_field(&warm_end, "cache_hits"), 8);
    assert_eq!(trailer_field(&warm_end, "cache_misses"), 0);

    // truncate one stored entry: the checksum check must reject it and
    // recompute exactly that cell
    let entry = find_entry(&dir);
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
    let (healed, _) = serve(&request, &[]);
    let (_, healed_payload, healed_end) = parse_response(&healed);
    assert_eq!(healed_payload, cold_payload);
    assert_eq!(trailer_field(&healed_end, "cache_hits"), 7);
    assert_eq!(trailer_field(&healed_end, "cache_misses"), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

fn find_entry(dir: &std::path::Path) -> std::path::PathBuf {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "entry") {
                return path;
            }
        }
    }
    panic!("no cache entries under {}", dir.display());
}

#[test]
fn bad_requests_get_error_lines_not_crashes() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"sweep grid=no-such-grid format=csv\nfrobnicate the corridor\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(!output.status.success(), "bad requests must fail the run");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let errors: Vec<&str> = stdout.lines().filter(|l| l.starts_with("ERROR ")).collect();
    assert_eq!(errors.len(), 2, "one ERROR line per bad request: {stdout}");
}
