//! Decibel ratios and absolute decibel-milliwatt powers.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::Watts;

/// A relative power ratio expressed in decibels.
///
/// `Db` models gains (positive) and losses (positive values passed to
/// subtraction, or explicit negative gains). It is the result of comparing
/// two absolute powers: `Dbm - Dbm = Db`.
///
/// # Examples
///
/// ```
/// use corridor_units::Db;
/// let antenna_gain = Db::new(17.0);
/// let cable_loss = Db::new(2.0);
/// assert_eq!((antenna_gain - cable_loss).value(), 15.0);
/// assert!((Db::from_linear(100.0).value() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Db(f64);

impl Db {
    /// The 0 dB (unit gain) ratio.
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio of `value` decibels.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Db(value)
    }

    /// Returns the raw decibel value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts a linear power ratio to decibels.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `linear` is negative (a negative power
    /// ratio has no logarithmic representation).
    #[inline]
    pub fn from_linear(linear: f64) -> Self {
        debug_assert!(linear >= 0.0, "negative linear ratio: {linear}");
        Db(10.0 * linear.log10())
    }

    /// Converts this ratio to the linear domain.
    #[inline]
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Returns the absolute value of the ratio.
    #[inline]
    pub fn abs(self) -> Self {
        Db(self.0.abs())
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    #[inline]
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    #[inline]
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    #[inline]
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Div<f64> for Db {
    type Output = Db;
    #[inline]
    fn div(self, rhs: f64) -> Db {
        Db(self.0 / rhs)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        iter.fold(Db::ZERO, Add::add)
    }
}

/// An absolute power level in decibel-milliwatts.
///
/// `Dbm` is an *absolute* quantity; two `Dbm` values cannot be added
/// (that would be meaningless), but a [`Db`] gain or loss can be applied,
/// and powers can be combined in the linear domain with [`Dbm::combine`].
///
/// # Examples
///
/// ```
/// use corridor_units::{Db, Dbm};
/// let tx = Dbm::new(40.0);            // 10 W EIRP
/// let rx = tx - Db::new(120.0);        // after 120 dB path loss
/// assert_eq!(rx.value(), -80.0);
/// // two equal powers combine to +3.01 dB:
/// assert!((rx.combine(rx).value() - (-76.99)).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dbm(f64);

impl Dbm {
    /// Creates an absolute power of `value` dBm.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Dbm(value)
    }

    /// Returns the raw dBm value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts an absolute power in watts to dBm.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the power is negative.
    #[inline]
    pub fn from_watts(power: Watts) -> Self {
        debug_assert!(power.value() >= 0.0, "negative power: {power}");
        Dbm(10.0 * (power.value() * 1e3).log10())
    }

    /// Converts an absolute power in milliwatts to dBm.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        debug_assert!(mw >= 0.0, "negative power: {mw} mW");
        Dbm(10.0 * mw.log10())
    }

    /// Returns this power in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Returns this power in watts.
    #[inline]
    pub fn watts(self) -> Watts {
        Watts::new(self.milliwatts() * 1e-3)
    }

    /// Combines (sums) two absolute powers in the linear domain.
    #[inline]
    #[must_use]
    pub fn combine(self, other: Dbm) -> Dbm {
        Dbm::from_milliwatts(self.milliwatts() + other.milliwatts())
    }

    /// The ratio of this power to `other`.
    #[inline]
    pub fn ratio_to(self, other: Dbm) -> crate::Db {
        self - other
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.value())
    }
}

impl AddAssign<Db> for Dbm {
    #[inline]
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.value();
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.value())
    }
}

impl SubAssign<Db> for Dbm {
    #[inline]
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.value();
    }
}

impl Sub for Dbm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Dbm) -> Db {
        Db::new(self.0 - rhs.0)
    }
}

/// Sums an iterator of absolute powers in the linear (milliwatt) domain.
///
/// Returns `None` for an empty iterator: the sum of no powers is zero
/// milliwatts, which has no dBm representation.
///
/// # Examples
///
/// ```
/// use corridor_units::{sum_power_dbm, Dbm};
/// let total = sum_power_dbm([Dbm::new(-100.0), Dbm::new(-100.0)]).unwrap();
/// assert!((total.value() - (-96.99)).abs() < 0.01);
/// assert!(sum_power_dbm(std::iter::empty()).is_none());
/// ```
pub fn sum_power_dbm<I: IntoIterator<Item = Dbm>>(powers: I) -> Option<Dbm> {
    let mut any = false;
    let mut mw = 0.0;
    for p in powers {
        any = true;
        mw += p.milliwatts();
    }
    any.then(|| Dbm::from_milliwatts(mw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_round_trip() {
        for v in [-30.0, -3.0, 0.0, 3.0, 10.0, 33.0] {
            let db = Db::new(v);
            assert!((Db::from_linear(db.linear()).value() - v).abs() < 1e-9);
        }
    }

    #[test]
    fn db_from_linear_known_values() {
        assert!((Db::from_linear(1.0).value()).abs() < 1e-12);
        assert!((Db::from_linear(10.0).value() - 10.0).abs() < 1e-12);
        assert!((Db::from_linear(2.0).value() - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn db_arithmetic() {
        assert_eq!(Db::new(10.0) + Db::new(5.0), Db::new(15.0));
        assert_eq!(Db::new(10.0) - Db::new(5.0), Db::new(5.0));
        assert_eq!(-Db::new(10.0), Db::new(-10.0));
        assert_eq!(Db::new(10.0) * 2.0, Db::new(20.0));
        assert_eq!(Db::new(10.0) / 2.0, Db::new(5.0));
        let total: Db = [Db::new(1.0), Db::new(2.0)].into_iter().sum();
        assert_eq!(total, Db::new(3.0));
    }

    #[test]
    fn dbm_watts_round_trip() {
        let p = Dbm::from_watts(Watts::new(10.0));
        assert!((p.value() - 40.0).abs() < 1e-12);
        assert!((p.watts().value() - 10.0).abs() < 1e-12);
        // the paper's HP EIRP: 2500 W = 64 dBm
        let hp = Dbm::from_watts(Watts::new(2500.0));
        assert!((hp.value() - 63.98).abs() < 0.01);
    }

    #[test]
    fn dbm_gain_loss() {
        let p = Dbm::new(-50.0);
        assert_eq!(p + Db::new(20.0), Dbm::new(-30.0));
        assert_eq!(p - Db::new(20.0), Dbm::new(-70.0));
        assert_eq!(Dbm::new(-30.0) - Dbm::new(-50.0), Db::new(20.0));
    }

    #[test]
    fn dbm_combine_equal_powers_adds_3db() {
        let p = Dbm::new(-100.0);
        let sum = p.combine(p);
        assert!((sum.value() - (-100.0 + 10.0 * 2f64.log10())).abs() < 1e-9);
    }

    #[test]
    fn sum_power_dbm_matches_manual() {
        let powers = [Dbm::new(-90.0), Dbm::new(-95.0), Dbm::new(-120.0)];
        let manual = Dbm::from_milliwatts(powers.iter().map(|p| p.milliwatts()).sum());
        let summed = sum_power_dbm(powers).unwrap();
        assert!((summed.value() - manual.value()).abs() < 1e-12);
    }

    #[test]
    fn sum_power_dbm_empty_is_none() {
        assert!(sum_power_dbm(std::iter::empty()).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Db::new(3.014).to_string(), "3.01 dB");
        assert_eq!(Dbm::new(-100.5).to_string(), "-100.50 dBm");
    }

    #[test]
    fn total_cmp_orders_nan_last() {
        use core::cmp::Ordering;
        let nan = Db::new(f64::NAN);
        assert_eq!(nan.total_cmp(&Db::new(f64::INFINITY)), Ordering::Greater);
        assert_eq!(Db::new(-3.0).total_cmp(&Db::new(5.0)), Ordering::Less);
        // min_by with total_cmp never selects NaN unless every element is NaN
        let min = [Db::new(7.0), nan, Db::new(3.0)]
            .into_iter()
            .min_by(|a, b| a.total_cmp(b));
        assert_eq!(min, Some(Db::new(3.0)));
        let mut v = [Dbm::new(f64::NAN), Dbm::new(-90.0), Dbm::new(-120.0)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Dbm::new(-120.0));
        assert!(v[2].value().is_nan());
    }
}
