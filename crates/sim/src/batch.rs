//! Struct-of-arrays batch evaluation of analytic sweep cells.
//!
//! The sweep engine evaluates cells in blocks of [`BLOCK`]. For each
//! block, a [`CellBlock`] first *gathers* every activity integral the
//! block needs into flat column arrays (one pass per column, each
//! lookup served by the process-wide memo in
//! [`corridor_core::energy::active_hours`]), then *emits* the four
//! energy splits per cell from those columns. Both phases go through
//! exactly the functions the scalar path uses —
//! [`energy::active_hours`] and [`energy::split_from_active_hours`] —
//! so a batched cell is bit-identical to evaluating it alone (pinned by
//! `tests/batch_equivalence.rs`).

use corridor_core::energy::{self, SegmentEnergy};
use corridor_core::EnergyStrategy;
use corridor_traffic::TrackSection;
use corridor_units::{Hours, Meters};

use crate::ScenarioCell;

/// Cells evaluated per batch. Eight keeps every column of a block in a
/// couple of cache lines while leaving enough blocks for the worker
/// pool to balance.
pub(crate) const BLOCK: usize = 8;

/// The activity columns of one block of cells, stored column-wise.
///
/// Four columns per cell: the deployment's ISD-section and service-
/// section occupancy (driving masts/donors and the mid-segment service
/// node) and the same pair for the cell's conventional baseline.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CellBlock {
    hp_active: Vec<Hours>,
    service_active: Vec<Hours>,
    baseline_hp_active: Vec<Hours>,
    baseline_service_active: Vec<Hours>,
}

impl CellBlock {
    /// Gathers the activity columns for `cells`, one column at a time.
    pub(crate) fn gather(cells: &[ScenarioCell]) -> Self {
        let active = |cell: &ScenarioCell, section: TrackSection| {
            energy::active_hours(cell.params(), section)
        };
        let hp_section = |isd: Meters| TrackSection::new(Meters::ZERO, isd);
        let service_section = |cell: &ScenarioCell, isd: Meters| {
            TrackSection::around(isd / 2.0, cell.params().lp_spacing())
        };
        CellBlock {
            hp_active: cells
                .iter()
                .map(|c| active(c, hp_section(c.isd())))
                .collect(),
            service_active: cells
                .iter()
                .map(|c| active(c, service_section(c, c.isd())))
                .collect(),
            baseline_hp_active: cells
                .iter()
                .map(|c| active(c, hp_section(c.params().conventional_isd())))
                .collect(),
            baseline_service_active: cells
                .iter()
                .map(|c| active(c, service_section(c, c.params().conventional_isd())))
                .collect(),
        }
    }

    /// Emits cell `i`'s `[baseline, continuous, sleep, solar]` splits
    /// from the gathered columns.
    pub(crate) fn splits(&self, i: usize, cell: &ScenarioCell) -> [SegmentEnergy; 4] {
        let params = cell.params();
        let deployed = |strategy| {
            energy::split_from_active_hours(
                params,
                cell.nodes(),
                cell.isd(),
                strategy,
                self.hp_active[i],
                self.service_active[i],
            )
        };
        [
            energy::split_from_active_hours(
                params,
                0,
                params.conventional_isd(),
                EnergyStrategy::SleepModeRepeaters,
                self.baseline_hp_active[i],
                self.baseline_service_active[i],
            ),
            deployed(EnergyStrategy::ContinuousRepeaters),
            deployed(EnergyStrategy::SleepModeRepeaters),
            deployed(EnergyStrategy::SolarPoweredRepeaters),
        ]
    }
}
