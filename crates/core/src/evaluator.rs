//! The evaluator abstraction: pluggable backends for the corridor energy
//! numbers.
//!
//! The original reproduction computes every energy figure from the
//! closed-form duty-cycle math ([`energy::average_power_per_km`]); the
//! event-driven corridor simulator (`corridor_events`) computes the same
//! figures by replaying a day of train passes through per-node wake state
//! machines. Both backends implement [`SegmentEvaluator`], so sweep
//! engines and experiments can switch between them — and the differential
//! test harness can pin them against each other.

use corridor_units::Meters;

use crate::energy::{self, SegmentEnergy};
use crate::{EnergyStrategy, ScenarioParams};

/// A backend that produces the per-kilometre energy split of a corridor
/// segment under a given operating strategy.
///
/// Implementations must agree on the deterministic paper scenarios: the
/// differential suite (`tests/differential.rs`) asserts that every
/// backend reproduces the analytic energy split to better than 0.1 % on
/// the paper's Table III / Fig. 4 cells.
pub trait SegmentEvaluator {
    /// A short stable identifier for reports (`"analytic"`,
    /// `"event-driven"`).
    fn name(&self) -> &'static str;

    /// Average mains power per km for `n` repeater nodes at inter-site
    /// distance `isd` under `strategy` (the quantity of the paper's
    /// Fig. 4 y-axis).
    fn average_power_per_km(
        &self,
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        strategy: EnergyStrategy,
    ) -> SegmentEnergy;

    /// The conventional baseline: masts every
    /// [`ScenarioParams::conventional_isd`], no repeaters, masts sleeping
    /// between trains.
    fn conventional_baseline(&self, params: &ScenarioParams) -> SegmentEnergy {
        self.average_power_per_km(
            params,
            0,
            params.conventional_isd(),
            EnergyStrategy::SleepModeRepeaters,
        )
    }

    /// Fractional savings of the `n`-node deployment at `isd` under
    /// `strategy` versus this backend's own conventional baseline.
    fn savings_vs_conventional(
        &self,
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        strategy: EnergyStrategy,
    ) -> f64 {
        self.average_power_per_km(params, n, isd, strategy)
            .savings_vs(&self.conventional_baseline(params))
    }
}

/// The closed-form backend: duty-cycle math over merged activity
/// timelines, exactly as published (delegates to
/// [`energy::average_power_per_km`]).
///
/// # Examples
///
/// ```
/// use corridor_core::{energy, AnalyticEvaluator, EnergyStrategy, ScenarioParams, SegmentEvaluator};
/// use corridor_units::Meters;
///
/// let params = ScenarioParams::paper_default();
/// let via_trait = AnalyticEvaluator.average_power_per_km(
///     &params, 10, Meters::new(2650.0), EnergyStrategy::SleepModeRepeaters);
/// let direct = energy::average_power_per_km(
///     &params, 10, Meters::new(2650.0), EnergyStrategy::SleepModeRepeaters);
/// assert_eq!(via_trait, direct);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalyticEvaluator;

impl SegmentEvaluator for AnalyticEvaluator {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn average_power_per_km(
        &self,
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        strategy: EnergyStrategy,
    ) -> SegmentEnergy {
        energy::average_power_per_km(params, n, isd, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_deploy::IsdTable;

    #[test]
    fn analytic_evaluator_matches_energy_module() {
        let params = ScenarioParams::paper_default();
        let table = IsdTable::paper();
        for n in 0..=10 {
            let isd = table.isd_for(n).unwrap();
            for strategy in EnergyStrategy::ALL {
                assert_eq!(
                    AnalyticEvaluator.average_power_per_km(&params, n, isd, strategy),
                    energy::average_power_per_km(&params, n, isd, strategy),
                    "n={n} {strategy}"
                );
            }
        }
        assert_eq!(
            AnalyticEvaluator.conventional_baseline(&params),
            energy::conventional_baseline(&params)
        );
    }

    #[test]
    fn default_savings_match_energy_module() {
        let params = ScenarioParams::paper_default();
        let table = IsdTable::paper();
        let isd = table.isd_for(10).unwrap();
        let via_trait = AnalyticEvaluator.savings_vs_conventional(
            &params,
            10,
            isd,
            EnergyStrategy::SleepModeRepeaters,
        );
        let direct = energy::savings_vs_conventional(
            &params,
            &table,
            10,
            EnergyStrategy::SleepModeRepeaters,
        )
        .unwrap();
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(AnalyticEvaluator.name(), "analytic");
    }
}
