//! Fixture: a hash-ordered container at an import choke point.

use std::collections::HashMap;

pub type Cache = HashMap<String, u64>;
