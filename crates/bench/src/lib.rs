//! Shared helpers for the reproduction binaries and benches.
//!
//! The binaries (`fig3`, `fig4`, `isd_sweep`, `table1`–`table4`,
//! `headline`, `sweep`) regenerate, as text, every table and figure of
//! the paper plus the batch scenario sweeps; the criterion benches
//! measure the hot paths and run the ablations called out in DESIGN.md.
//! The [`render`] module holds the exact text each reproduction binary
//! prints, so the golden-file regression test can assert it against the
//! committed outputs under `docs/results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;
pub mod snapshot;

use corridor_core::deploy::IsdTable;
use corridor_core::traffic::PoissonTimetable;
use corridor_core::ScenarioParams;
use corridor_events::{EventDrivenEvaluator, NodeKind};
use rand::SeedableRng;

/// The scenario every binary uses: the paper's defaults.
pub fn scenario() -> ScenarioParams {
    ScenarioParams::paper_default()
}

/// Formats a watt-hour quantity the way the paper's Fig. 4 axis does.
pub fn wh(value: f64) -> String {
    format!("{value:.1}")
}

/// One seeded Poisson day through the event-driven simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonDay {
    /// Trains sampled for the day.
    pub trains: usize,
    /// Mean powered time of one service repeater, in seconds.
    pub powered_s: f64,
    /// Mean daily energy of one service repeater (sleep strategy), Wh.
    pub energy_wh: f64,
}

/// Replays one seeded Poisson day (the paper's mean rate) through the
/// event-driven simulator on the paper's 10-node segment, instant wake
/// policy, and averages the service repeaters.
///
/// Both the `poisson_stats` golden rendering and the differential
/// suite's convergence test measure *this* quantity, so they cannot
/// silently diverge in what they pin.
pub fn poisson_service_day(seed: u64) -> PoissonDay {
    let params = scenario();
    let isd = IsdTable::paper().isd_for(10).expect("paper table has 10");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let passes = PoissonTimetable::paper_rate().sample_passes(&mut rng);
    let report = EventDrivenEvaluator::new().simulate_segment(&params, 10, isd, &passes);
    let service: Vec<_> = report.nodes_of(NodeKind::ServiceRepeater).collect();
    let count = service.len() as f64;
    PoissonDay {
        trains: passes.len(),
        powered_s: service
            .iter()
            .map(|n| n.trace().powered().value())
            .sum::<f64>()
            / count,
        energy_wh: service
            .iter()
            .map(|n| n.trace().daily_energy(params.lp_node()).value())
            .sum::<f64>()
            / count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_paper_default() {
        assert_eq!(scenario(), ScenarioParams::paper_default());
    }

    #[test]
    fn wh_formats_one_decimal() {
        assert_eq!(wh(467.04), "467.0");
    }
}
