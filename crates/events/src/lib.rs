//! Discrete-event corridor simulator for the railway energy study.
//!
//! The closed-form reproduction (`corridor_core::energy`) computes every
//! energy number from merged duty-cycle hours, which only works for
//! deterministic timetables. This crate models the corridor in the time
//! domain:
//!
//! * an [`EventQueue`] of train arrivals/departures per
//!   [`TrackSection`](corridor_traffic::TrackSection), with barrier
//!   trips, wake completions and drain expiries interleaved
//!   deterministically;
//! * a per-node wake state machine ([`NodeState`]: asleep → waking →
//!   active → drain) parameterized by a [`WakePolicy`] (barrier lead,
//!   wake latency, guard interval);
//! * an energy integrator ([`StateTrace`]) that accumulates per-state
//!   time and converts it to Wh through the same
//!   [`DutyCycle`](corridor_power::DutyCycle) arithmetic as the closed
//!   form;
//! * an [`EventDrivenEvaluator`] implementing
//!   [`SegmentEvaluator`](corridor_core::SegmentEvaluator), so sweep
//!   engines can switch backends — and feed the simulator stochastic
//!   days (Poisson, jittered, mixed services, double track) the closed
//!   form cannot express;
//! * a [`SegmentReplicator`] that prepares one segment geometry once and
//!   replays many seeded days through it — the entry point Monte-Carlo
//!   replication sweeps use to amortize setup across seeds;
//! * a [`NetworkDaySimulator`] that lifts the backend from one segment
//!   to a rail **topology**: shared [`TrainItinerary`]s traverse
//!   [`Leg`]s edge by edge, so adjacent corridors replay the *same*
//!   trains at junction-consistent times — the event backend of the
//!   network-day engine in `corridor_sim`.
//!
//! With [`WakePolicy::instant`] the simulated energy split matches the
//! analytic backend to float precision on every deterministic paper
//! scenario; the differential suite (`tests/differential.rs`) pins the
//! two against each other at < 0.1 %.
//!
//! # Examples
//!
//! ```
//! use corridor_events::{segment_nodes, CorridorSimulator, NodeKind, WakePolicy};
//! use corridor_traffic::{PoissonTimetable, Timetable};
//! use corridor_units::Meters;
//! use rand::SeedableRng;
//!
//! // a seeded stochastic day through the paper's 10-node segment
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let passes = PoissonTimetable::paper_rate().sample_passes(&mut rng);
//! let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
//! let report = CorridorSimulator::new()
//!     .with_policy(WakePolicy::paper_default())
//!     .simulate(&nodes, &passes);
//! let service = report.nodes_of(NodeKind::ServiceRepeater).next().unwrap();
//! assert!(service.trace().powered().value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluator;
mod network;
mod node;
mod queue;
mod replicate;
mod report;
mod sim;
mod trace;
mod wake;

pub use evaluator::EventDrivenEvaluator;
pub use network::{Leg, NetworkDaySimulator, TrainItinerary};
pub use node::{segment_nodes, NodeKind, NodeSpec};
pub use queue::{Event, EventKind, EventQueue};
pub use replicate::SegmentReplicator;
pub use report::{NodeReport, SimReport};
pub use sim::CorridorSimulator;
pub use trace::StateTrace;
pub use wake::{NodeState, WakePolicy};
