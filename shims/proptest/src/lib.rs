//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment is offline, so the real `proptest` cannot be
//! fetched from crates.io. This shim keeps the property tests *runnable*:
//! every [`proptest!`] test body is executed against a deterministic
//! stream of random cases (seeded from the test name, so failures
//! reproduce across runs). What it does **not** do is shrink failing
//! inputs — a failure reports the assertion only.
//!
//! Supported surface: range strategies over the primitive numerics,
//! tuples of strategies, [`Just`], [`Strategy::prop_map`],
//! [`prop::collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! // Sampling a strategy directly:
//! let strat = (0.0..1.0f64).prop_map(|x| x * 10.0);
//! let mut rng = proptest::test_rng("doc");
//! let x = strat.generate(&mut rng);
//! assert!((0.0..10.0).contains(&x));
//!
//! // In a test module, `proptest! { #[test] fn prop(a in 0.0..1.0f64) { … } }`
//! // expands each body into a 64-case `#[test]`.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Number of random cases each [`proptest!`] test executes.
pub const CASES: u32 = 64;

/// A deterministic per-test generator, seeded from the test's name so
/// every run (and every CI machine) sees the same cases.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable, dependency-free.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of values for property tests.
///
/// The shim collapses proptest's value-tree machinery to a single
/// `generate` call: no shrinking, just sampling.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_inclusive_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                match end.checked_add(1) {
                    Some(bound) => rng.gen_range(start..bound),
                    // end == MAX and the half-open trick would overflow:
                    None if start == 0 => {
                        // full type range — truncating a raw draw is uniform
                        // (the cast is a no-op only for the u64 instantiation)
                        #[allow(clippy::unnecessary_cast)]
                        {
                            rand::RngCore::next_u64(rng) as $t
                        }
                    }
                    // start > 0: shift down one and round back up
                    None => rng.gen_range(start - 1..end) + 1,
                }
            }
        }
    )+};
}

impl_strategy_for_inclusive_int_range!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        if self.start() == self.end() {
            *self.start()
        } else {
            rng.gen_range(*self.start()..*self.end())
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy combinators that need a concrete type (used by the macros).
pub mod strategy {
    use super::{StdRng, Strategy};

    /// Boxes a strategy, erasing its concrete type (helper for
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A uniform choice among several strategies of the same value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[idx].generate(rng)
        }
    }
}

/// The `prop::` namespace the prelude exposes (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use core::ops::Range;

        use super::super::{StdRng, Strategy};

        /// A strategy for `Vec`s whose elements come from `element` and
        /// whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rand::Rng::gen_range(rng, self.size.start..self.size.end);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Marker returned (via `Err`) by [`prop_assume!`] to reject a case.
#[derive(Debug, Clone, Copy)]
pub struct CaseReject;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` against [`CASES`] accepted inputs.
///
/// Each case body runs inside a closure returning
/// `Result<(), `[`CaseReject`]`>`, so [`prop_assume!`] rejects the whole
/// case from any nesting depth (mirroring real proptest's early return).
/// Rejected cases don't count towards [`CASES`]; if fewer than 1 in 16
/// draws are accepted overall, the test panics instead of silently
/// passing on almost no inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < $crate::CASES {
                    attempts += 1;
                    assert!(
                        attempts <= $crate::CASES * 16,
                        "proptest shim: too many prop_assume! rejections in {} \
                         ({} accepted after {} attempts)",
                        stringify!($name),
                        accepted,
                        attempts - 1,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let case = move || -> ::core::result::Result<(), $crate::CaseReject> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if case().is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// A uniform choice among strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($option)),+
        ])
    };
}

/// Rejects the current case when `cond` is false: early-returns
/// [`CaseReject`] from the case closure generated by [`proptest!`], so it
/// works at any nesting depth (including inside loops in the test body).
#[macro_export]
macro_rules! prop_assume {
    // match instead of `if !cond` so float conditions don't trip clippy's
    // neg_cmp_op_on_partial_ord at every expansion site
    ($cond:expr) => {
        match $cond {
            true => {}
            false => return ::core::result::Result::Err($crate::CaseReject),
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_rng("ranges_sample_within_bounds");
        for _ in 0..1000 {
            let x = (1.5..9.5f64).generate(&mut rng);
            assert!((1.5..9.5).contains(&x));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn inclusive_ranges_cover_endpoints_and_full_type_range() {
        let mut rng = crate::test_rng("inclusive_ranges");
        let mut saw_end = false;
        for _ in 0..500 {
            let x = (0u8..=3).generate(&mut rng);
            assert!(x <= 3);
            saw_end |= x == 3;
            // full type ranges must not underflow/panic (end == MAX, start == 0)
            let _ = (0u8..=u8::MAX).generate(&mut rng);
            let _ = (0u64..=u64::MAX).generate(&mut rng);
            // end == MAX with start > 0
            let y = (250u8..=u8::MAX).generate(&mut rng);
            assert!(y >= 250);
        }
        assert!(saw_end, "inclusive end never sampled");
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_rng("prop_map_applies");
        let doubled = (1.0..2.0f64).prop_map(|x| x * 2.0);
        let y = doubled.generate(&mut rng);
        assert!((2.0..4.0).contains(&y));
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = crate::test_rng("vec_respects_length_range");
        let strat = prop::collection::vec(0.0..1.0f64, 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_rng("oneof_covers_all_arms");
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let a = (0.0..1.0f64).generate(&mut crate::test_rng("same"));
        let b = (0.0..1.0f64).generate(&mut crate::test_rng("same"));
        let c = (0.0..1.0f64).generate(&mut crate::test_rng("different"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        /// The macro itself: bindings, multiple args, trailing comma.
        #[test]
        fn macro_smoke(a in 0.0..10.0f64, b in 0usize..5,) {
            prop_assert!(a >= 0.0);
            prop_assert!(b < 5);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a - 1.0, a);
        }

        /// prop_assume! rejects the whole case even from inside a loop in
        /// the body: the rejected half of the range must never reach the
        /// assertion below the loop.
        #[test]
        fn assume_rejects_case_from_inner_loop(x in 0.0..1.0f64) {
            for _ in 0..3 {
                prop_assume!(x < 0.5);
            }
            prop_assert!(x < 0.5);
        }
    }

    // no #[test] attribute: only the should_panic wrapper below runs this
    proptest! {
        fn assume_everything_rejected(_x in 0.0..1.0f64) {
            prop_assume!(false);
        }
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn impossible_assume_panics_instead_of_passing_empty() {
        assume_everything_rejected();
    }
}
