//! Fixture: a reasoned waiver suppresses the no-panic rule.

pub fn first(xs: &[u32]) -> u32 {
    // corridor-lint: allow(no-panic, reason = "callers uphold the documented non-empty contract")
    *xs.first().unwrap()
}
