//! Fixture: a waiver naming a rule that does not exist.

// corridor-lint: allow(no-such-rule, reason = "this rule id is not real")
pub fn nothing() {}
