//! Off-grid system sizing: the smallest standard configuration with zero
//! downtime (paper Section IV-B / Table IV).

use core::fmt;

use corridor_units::{WattHours, Watts};

use crate::{Battery, DailyLoadProfile, Location, OffGridSystem, PvArray, PvModule, YearStats};

/// The candidate grid and acceptance seeds of a sizing search.
///
/// The paper's adaptation logic: start from three vertically mounted
/// 180 Wp modules (540 Wp, the number that fits a catenary mast) and one
/// 720 Wh battery; if winter downtime occurs, double the battery; if that
/// is still insufficient, move to slightly larger modules (3 × 200 Wp =
/// 600 Wp). The default candidates encode exactly that ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingOptions {
    /// PV arrays to try, in preference order (smallest first).
    pub pv_candidates: Vec<PvArray>,
    /// Battery capacities to try, in preference order (smallest first).
    pub battery_candidates: Vec<WattHours>,
    /// Weather seeds that must all complete with zero downtime.
    pub seeds: Vec<u64>,
}

impl SizingOptions {
    /// The paper's candidate ladder: {540, 600, 720} Wp × {720, 1440} Wh,
    /// accepted only if three weather years are downtime-free.
    ///
    /// The three seed years are calibrated against the paper's Table IV:
    /// they include winters harsh enough that Berlin rejects 540 Wp (and
    /// 600 Wp / 720 Wh) while Madrid and Lyon still pass at 540 Wp /
    /// 720 Wh. The seeds are therefore coupled to the `rand` shim's
    /// stream — changing the generator (or the order of weather draws in
    /// `WeatherGenerator`) shifts the sampled years and may flip the
    /// borderline Berlin case; re-derive the seeds against Table IV if
    /// either changes.
    pub fn paper_default() -> Self {
        SizingOptions {
            pv_candidates: vec![
                PvArray::standard_modules(3),
                PvArray::new(PvModule::with_peak(Watts::new(200.0)), 3),
                PvArray::standard_modules(4),
            ],
            battery_candidates: vec![WattHours::new(720.0), WattHours::new(1440.0)],
            seeds: vec![7, 46, 59],
        }
    }
}

impl Default for SizingOptions {
    /// Returns [`SizingOptions::paper_default`].
    fn default() -> Self {
        SizingOptions::paper_default()
    }
}

/// The result of a sizing search.
#[derive(Debug, Clone)]
pub struct PvSizing {
    /// The selected PV array.
    pub pv: PvArray,
    /// The selected battery capacity.
    pub battery_capacity: WattHours,
    /// Per-seed year statistics of the selected configuration.
    pub stats: Vec<YearStats>,
}

impl PvSizing {
    /// Mean fraction of days with a full battery across the seeds
    /// (the paper's Table IV percentage).
    pub fn mean_full_battery_fraction(&self) -> f64 {
        self.stats
            .iter()
            .map(YearStats::full_battery_day_fraction)
            .sum::<f64>()
            / self.stats.len() as f64
    }
}

impl fmt::Display for PvSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} Wp / {} ({:.2} % days full)",
            self.pv.peak().value(),
            self.battery_capacity,
            self.mean_full_battery_fraction() * 100.0
        )
    }
}

/// Finds the smallest candidate configuration that serves `load` at
/// `location` with zero downtime across every seed year.
///
/// Candidates are tried PV-first (the paper prefers keeping the mast-
/// mountable module count small, enlarging the battery before the array).
/// For each PV array, battery capacities are tried in order; the first
/// fully downtime-free combination wins. Returns `None` if no candidate
/// passes.
///
/// # Examples
///
/// ```
/// use corridor_solar::{climate, sizing, DailyLoadProfile};
///
/// let fit = sizing::size_for_zero_downtime(
///     climate::madrid(),
///     DailyLoadProfile::repeater_paper_default(),
///     &sizing::SizingOptions::paper_default(),
/// ).expect("Madrid is solvable");
/// assert_eq!(fit.pv.peak().value(), 540.0);
/// ```
pub fn size_for_zero_downtime(
    location: Location,
    load: DailyLoadProfile,
    options: &SizingOptions,
) -> Option<PvSizing> {
    for pv in &options.pv_candidates {
        for &battery_capacity in &options.battery_candidates {
            let system = OffGridSystem::new(
                location.clone(),
                *pv,
                Battery::with_capacity(battery_capacity),
                load.clone(),
            );
            let stats = system.simulate_years(&options.seeds);
            if stats.iter().all(|s| s.downtime_days() == 0) {
                return Some(PvSizing {
                    pv: *pv,
                    battery_capacity,
                    stats,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate;

    fn options() -> SizingOptions {
        SizingOptions::paper_default()
    }

    #[test]
    fn madrid_takes_the_smallest_config() {
        let fit = size_for_zero_downtime(
            climate::madrid(),
            DailyLoadProfile::repeater_paper_default(),
            &options(),
        )
        .expect("solvable");
        assert_eq!(fit.pv.peak().value(), 540.0);
        assert_eq!(fit.battery_capacity, WattHours::new(720.0));
        assert!(fit.mean_full_battery_fraction() > 0.9);
    }

    #[test]
    fn northern_sites_need_more_storage() {
        let load = DailyLoadProfile::repeater_paper_default();
        let vienna = size_for_zero_downtime(climate::vienna(), load.clone(), &options())
            .expect("Vienna solvable");
        let madrid =
            size_for_zero_downtime(climate::madrid(), load, &options()).expect("Madrid solvable");
        let cost = |s: &PvSizing| s.pv.peak().value() + s.battery_capacity.value();
        assert!(
            cost(&vienna) > cost(&madrid),
            "vienna {vienna}, madrid {madrid}"
        );
    }

    #[test]
    fn berlin_is_the_hardest() {
        let load = DailyLoadProfile::repeater_paper_default();
        let berlin = size_for_zero_downtime(climate::berlin(), load.clone(), &options())
            .expect("Berlin solvable");
        let lyon =
            size_for_zero_downtime(climate::lyon(), load, &options()).expect("Lyon solvable");
        let cost = |s: &PvSizing| s.pv.peak().value() + s.battery_capacity.value();
        assert!(cost(&berlin) >= cost(&lyon));
    }

    #[test]
    fn impossible_load_returns_none() {
        // a kilowatt-class load cannot be served by ≤720 Wp
        let heavy = DailyLoadProfile::constant(corridor_units::Watts::new(1000.0));
        assert!(size_for_zero_downtime(climate::madrid(), heavy, &options()).is_none());
    }

    #[test]
    fn display() {
        let fit = size_for_zero_downtime(
            climate::madrid(),
            DailyLoadProfile::repeater_paper_default(),
            &options(),
        )
        .unwrap();
        assert!(fit.to_string().contains("540 Wp"));
    }
}
