//! Energy-efficient 5G railway corridor planning.
//!
//! A from-scratch Rust reproduction of *"Increasing Cellular Network
//! Energy Efficiency for Railway Corridors"* (A. Schumacher, R. Merz,
//! A. Burg — DATE 2022, DOI 10.23919/DATE54114.2022.9774757).
//!
//! Modern trains act as Faraday cages; dedicated *cellular corridors* —
//! linear cells strung along the tracks — restore capacity, but burn
//! kilowatts per kilometre. The paper (and this library) shows how
//! low-power out-of-band repeater nodes let the expensive high-power
//! radio heads be thinned out by a factor of up to five while keeping
//! peak 5G throughput inside the train, how barrier-triggered sleep modes
//! shrink the repeaters' draw to single-digit watts, and how that makes
//! them fully solar-autonomous — cutting corridor energy by 50–79 %.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`units`] | unit-safe quantities (dB, dBm, W, Wh, m, Hz, s) |
//! | [`propagation`] | calibrated Friis, free-space, log-distance, two-ray, antennas, penetration loss |
//! | [`link`] | NR carrier, RSRP/SNR (paper eq. 2), TR 36.942 throughput, coverage profiles |
//! | [`power`] | EARTH power model (eq. 3), Table I/II equipment, duty cycles |
//! | [`traffic`] | timetables, train kinematics, section occupancy, wake control |
//! | [`deploy`] | corridor layout, repeater placement, max-ISD optimization |
//! | [`solar`] | solar geometry, synthetic weather, PV, battery, off-grid sizing |
//! | [`experiments`] | one function per table/figure of the paper |
//!
//! # Quickstart
//!
//! ```
//! use railway_corridor::prelude::*;
//!
//! // How far apart can masts stand with 8 repeaters in between?
//! let optimizer = IsdOptimizer::new(LinkBudget::paper_default());
//! let isd = optimizer.max_isd(8).expect("solvable");
//! assert!(isd.value() >= 2400.0);
//!
//! // And how much energy does that save over masts every 500 m?
//! let params = ScenarioParams::paper_default();
//! let savings = energy::savings_vs_conventional(
//!     &params, &IsdTable::paper(), 8, EnergyStrategy::SleepModeRepeaters).unwrap();
//! assert!(savings > 0.70);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use corridor_core::*;
