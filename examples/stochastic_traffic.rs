//! Sensitivity of the energy savings to the traffic model: Poisson
//! arrivals versus the deterministic timetable, traffic growth, and the
//! sleep controller's wake latency.
//!
//! Run with `cargo run --release --example stochastic_traffic`.

use railway_corridor::prelude::*;
use rand::SeedableRng;

fn main() {
    let params = ScenarioParams::paper_default();
    let isd = Meters::new(2400.0);
    let section_hp = TrackSection::new(Meters::ZERO, isd);
    let section_lp = TrackSection::around(isd / 2.0, params.lp_spacing());

    // 1. Deterministic vs Poisson occupancy for the same mean rate.
    let deterministic =
        ActivityTimeline::for_section(&section_hp, &Timetable::paper_default().passes());
    println!(
        "deterministic timetable: HP mast active {:.3} h/day ({:.2} % duty)",
        deterministic.total_active_hours().value(),
        deterministic.total_active().value() / 864.0
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let poisson = PoissonTimetable::paper_rate();
    let mut total = 0.0;
    const DRAWS: usize = 20;
    for _ in 0..DRAWS {
        let passes = poisson.sample_passes(&mut rng);
        total += ActivityTimeline::for_section(&section_hp, &passes)
            .total_active_hours()
            .value();
    }
    println!(
        "Poisson arrivals (mean of {DRAWS} days): HP mast active {:.3} h/day",
        total / DRAWS as f64
    );

    // 2. Energy savings versus traffic intensity.
    println!("\nsleep-mode savings vs traffic intensity (10 nodes, ISD 2650 m):");
    for trains_per_hour in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let timetable = Timetable::new(
            trains_per_hour,
            Hours::new(19.0),
            Hours::new(5.0).seconds(),
            Train::paper_default(),
        );
        let scenario = ScenarioParams::paper_default().with_timetable(timetable);
        let savings = energy::savings_vs_conventional(
            &scenario,
            &IsdTable::paper(),
            10,
            EnergyStrategy::SleepModeRepeaters,
        )
        .expect("the paper ISD table covers 10 nodes");
        println!(
            "  {trains_per_hour:>5.0} trains/h: {:.1} % savings",
            savings * 100.0
        );
    }

    // 3. Wake latency: how much coverage time is lost per pass, and how
    //    much track the train covers while the node wakes.
    println!("\nwake-latency study (train at 200 km/h):");
    let v = Train::paper_default().speed();
    for delay_ms in [100.0, 300.0, 500.0, 1000.0] {
        let ctl = WakeController::new(Seconds::ZERO, Seconds::new(delay_ms / 1000.0));
        let uncovered = ctl.uncovered_time();
        let distance = v * uncovered;
        let with_wake = ActivityTimeline::for_section_with_wake(
            &section_lp,
            &Timetable::paper_default().passes(),
            &WakeController::new(
                Seconds::new(delay_ms / 1000.0),
                Seconds::new(delay_ms / 1000.0),
            ),
        );
        let extra = with_wake.total_active_hours().value()
            - ActivityTimeline::for_section(&section_lp, &Timetable::paper_default().passes())
                .total_active_hours()
                .value();
        println!(
            "  {delay_ms:>5.0} ms delay: {:.1} m of track uncovered per pass \
             (barrier lead compensates at +{:.1} Wh/day)",
            distance.value(),
            extra * 28.38
        );
    }
}
