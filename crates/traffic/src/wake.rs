//! Barrier-triggered sleep/wake control.

use corridor_units::Seconds;

/// The photoelectric-barrier wake controller of a sleeping repeater node.
///
/// The paper states that sleep⇄active transitions take "a few hundred
/// milliseconds" and that a passing train is detected by a photoelectric
/// barrier. This type models the two timing parameters that matter:
///
/// * `lead` — how far in advance the barrier trips before the train enters
///   the coverage section (barriers are installed a little up-track, so the
///   node is powered `lead` seconds early);
/// * `wake_delay` — how long the node takes to become operational after
///   being triggered.
///
/// If `wake_delay > lead`, the first `wake_delay − lead` seconds of each
/// pass are *uncovered*: the node is still waking while the train is
/// already in its section. [`WakeController::uncovered_time`] quantifies
/// that gap for the ablation study; the paper's argument is that a few
/// hundred ms at 55 m/s (≈15–30 m of track) is negligible, which the bench
/// confirms.
///
/// # Examples
///
/// ```
/// use corridor_traffic::WakeController;
/// use corridor_units::Seconds;
///
/// let ctl = WakeController::new(Seconds::new(1.0), Seconds::new(0.3));
/// assert_eq!(ctl.uncovered_time(), Seconds::ZERO); // barrier leads the delay
///
/// let tight = WakeController::new(Seconds::ZERO, Seconds::new(0.3));
/// assert_eq!(tight.uncovered_time(), Seconds::new(0.3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WakeController {
    lead: Seconds,
    wake_delay: Seconds,
}

impl WakeController {
    /// A controller with the given barrier lead and wake-up delay.
    ///
    /// # Panics
    ///
    /// Panics if either duration is negative.
    pub fn new(lead: Seconds, wake_delay: Seconds) -> Self {
        assert!(lead.value() >= 0.0, "lead must be non-negative");
        assert!(wake_delay.value() >= 0.0, "wake delay must be non-negative");
        WakeController { lead, wake_delay }
    }

    /// The paper's nominal design: transition time of 300 ms with the
    /// barrier placed to trigger one second early.
    pub fn paper_default() -> Self {
        WakeController::new(Seconds::new(1.0), Seconds::new(0.3))
    }

    /// An idealized controller with instant transitions.
    pub fn instant() -> Self {
        WakeController::default()
    }

    /// Barrier lead time.
    pub fn lead(&self) -> Seconds {
        self.lead
    }

    /// Sleep-to-active transition time.
    pub fn wake_delay(&self) -> Seconds {
        self.wake_delay
    }

    /// The powered interval for an occupancy `(enter, exit)`: power-on at
    /// `enter − lead` (when the barrier trips) and off at `exit`.
    pub fn powered_interval(&self, occupancy: (Seconds, Seconds)) -> (Seconds, Seconds) {
        (occupancy.0 - self.lead, occupancy.1)
    }

    /// Time per pass during which the train is in the section but the node
    /// is not yet operational: `max(0, wake_delay − lead)`.
    pub fn uncovered_time(&self) -> Seconds {
        (self.wake_delay - self.lead).max(Seconds::ZERO)
    }

    /// Extra powered (but not yet needed) time per pass caused by the
    /// barrier lead: `max(0, lead − wake_delay)` of fully operational
    /// slack plus the wake transition itself.
    pub fn slack_time(&self) -> Seconds {
        (self.lead - self.wake_delay).max(Seconds::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_no_gap() {
        let ctl = WakeController::paper_default();
        assert_eq!(ctl.uncovered_time(), Seconds::ZERO);
        assert!((ctl.slack_time().value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn instant_controller_neutral() {
        let ctl = WakeController::instant();
        let occ = (Seconds::new(10.0), Seconds::new(20.0));
        assert_eq!(ctl.powered_interval(occ), occ);
        assert_eq!(ctl.uncovered_time(), Seconds::ZERO);
        assert_eq!(ctl.slack_time(), Seconds::ZERO);
    }

    #[test]
    fn powered_interval_extends_by_lead() {
        let ctl = WakeController::new(Seconds::new(2.0), Seconds::new(0.5));
        let (on, off) = ctl.powered_interval((Seconds::new(100.0), Seconds::new(110.0)));
        assert_eq!(on, Seconds::new(98.0));
        assert_eq!(off, Seconds::new(110.0));
    }

    #[test]
    fn uncovered_when_delay_exceeds_lead() {
        let ctl = WakeController::new(Seconds::new(0.1), Seconds::new(0.5));
        assert!((ctl.uncovered_time().value() - 0.4).abs() < 1e-12);
        assert_eq!(ctl.slack_time(), Seconds::ZERO);
    }

    #[test]
    fn accessors() {
        let ctl = WakeController::new(Seconds::new(1.5), Seconds::new(0.2));
        assert_eq!(ctl.lead(), Seconds::new(1.5));
        assert_eq!(ctl.wake_delay(), Seconds::new(0.2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lead_rejected() {
        let _ = WakeController::new(Seconds::new(-1.0), Seconds::ZERO);
    }
}
