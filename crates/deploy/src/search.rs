//! The shared monotone grid-search skeleton behind the maximum-ISD
//! searches.
//!
//! Both [`IsdOptimizer::max_isd`](crate::IsdOptimizer::max_isd)
//! (uncached, arbitrary criteria) and
//! [`CoverageCache::max_feasible_isd`](crate::CoverageCache::max_feasible_isd)
//! (memoized, min-SNR criteria) search the same structure: stretching a
//! segment only ever worsens its worst-served point, so feasibility is
//! monotone in the ISD once placement succeeds. Keeping the skeleton in
//! one place means the two searches cannot silently drift apart.

use corridor_units::Meters;

/// What one grid-point probe observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// The placement policy cannot fit the nodes at this ISD (only
    /// happens below the cluster span — keep scanning upward).
    PlacementInfeasible,
    /// Placement fits but the coverage criterion fails; by monotonicity
    /// every larger ISD fails too.
    CriterionFailed,
    /// Placement fits and the criterion holds.
    Satisfied,
}

/// The largest grid ISD (stepping by `step` from `min` up to and
/// including `max`) whose probe reports [`Probe::Satisfied`], or `None`
/// if no grid point does.
///
/// Linear scan for the first point past the placement span, then
/// binary search over the monotone feasibility boundary.
///
/// # Panics
///
/// Panics if `step` is not strictly positive or the range is empty or
/// non-positive.
pub(crate) fn max_feasible_on_grid(
    min: Meters,
    max: Meters,
    step: Meters,
    mut probe: impl FnMut(Meters) -> Probe,
) -> Option<Meters> {
    assert!(step.value() > 0.0, "ISD step must be positive");
    assert!(min.value() > 0.0 && max >= min, "invalid search range");
    let grid_len = ((max - min) / step).floor() as u64;
    let grid = |i: u64| min + step * i as f64;
    // find the first feasible grid point (placement may be too tight
    // below the cluster span)
    let mut lo = None;
    for i in 0..=grid_len {
        match probe(grid(i)) {
            Probe::PlacementInfeasible => continue,
            Probe::Satisfied => {
                lo = Some(i);
                break;
            }
            Probe::CriterionFailed => return None,
        }
    }
    let mut lo = lo?;
    let mut hi = grid_len;
    if probe(grid(hi)) == Probe::Satisfied {
        return Some(grid(hi));
    }
    // invariant: grid(lo) satisfies, grid(hi) does not
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(grid(mid)) == Probe::Satisfied {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(grid(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: f64) -> Meters {
        Meters::new(v)
    }

    /// Probe with a placement span and a feasibility boundary.
    fn fake(span: f64, boundary: f64) -> impl FnMut(Meters) -> Probe {
        move |isd| {
            if isd.value() < span {
                Probe::PlacementInfeasible
            } else if isd.value() <= boundary {
                Probe::Satisfied
            } else {
                Probe::CriterionFailed
            }
        }
    }

    #[test]
    fn finds_the_boundary_grid_point() {
        let found = max_feasible_on_grid(m(100.0), m(4000.0), m(50.0), fake(0.0, 1270.0));
        assert_eq!(found, Some(m(1250.0)));
    }

    #[test]
    fn skips_the_placement_span() {
        let found = max_feasible_on_grid(m(100.0), m(4000.0), m(50.0), fake(1400.0, 2400.0));
        assert_eq!(found, Some(m(2400.0)));
    }

    #[test]
    fn nothing_feasible_is_none() {
        assert_eq!(
            max_feasible_on_grid(m(100.0), m(4000.0), m(50.0), fake(0.0, 50.0)),
            None
        );
        // placement never fits at all
        assert_eq!(
            max_feasible_on_grid(m(100.0), m(4000.0), m(50.0), fake(1e9, 2e9)),
            None
        );
    }

    #[test]
    fn whole_range_feasible_caps_at_max() {
        let found = max_feasible_on_grid(m(100.0), m(800.0), m(50.0), fake(0.0, 1e9));
        assert_eq!(found, Some(m(800.0)));
    }

    #[test]
    #[should_panic(expected = "ISD step must be positive")]
    fn zero_step_rejected() {
        let _ = max_feasible_on_grid(m(100.0), m(800.0), m(0.0), fake(0.0, 1e9));
    }
}
