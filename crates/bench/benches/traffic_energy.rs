//! Criterion benches for the traffic/energy pipeline (Fig. 4), plus the
//! donor-duty, wake-latency and stochastic-traffic ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}
use rand::SeedableRng;
use std::hint::black_box;

use corridor_core::prelude::*;

fn bench_activity(c: &mut Criterion) {
    let passes = Timetable::paper_default().passes();
    let section = TrackSection::new(Meters::ZERO, Meters::new(2650.0));
    c.bench_function("activity/152_trains", |b| {
        b.iter(|| ActivityTimeline::for_section(black_box(&section), black_box(&passes)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let params = ScenarioParams::paper_default();
    let table = IsdTable::paper();
    c.bench_function("fig4/full_figure", |b| {
        b.iter(|| experiments::fig4(black_box(&params), black_box(&table)))
    });
}

/// Ablation: donor duty model — donor active for the whole segment (the
/// model's default) versus only half the segment. Printed for the record.
fn bench_ablation_donor(c: &mut Criterion) {
    let params = ScenarioParams::paper_default();
    let table = IsdTable::paper();
    let full =
        energy::savings_vs_conventional(&params, &table, 10, EnergyStrategy::SleepModeRepeaters)
            .unwrap();
    // a donor that only serves half the segment saves at most the donor
    // share; bound it by removing donors outright
    let no_donor = {
        let isd = table.isd_for(10).unwrap();
        let d = energy::average_power_per_km(&params, 10, isd, EnergyStrategy::SleepModeRepeaters);
        let baseline = energy::conventional_baseline(&params);
        1.0 - (d.hp + d.service) / baseline.total()
    };
    println!(
        "donor ablation: savings {:.1} % (donor whole-segment duty) .. {:.1} % (no donor at all)",
        full * 100.0,
        no_donor * 100.0
    );
    let isd = table.isd_for(10).unwrap();
    c.bench_function("energy/average_power_per_km", |b| {
        b.iter(|| {
            energy::average_power_per_km(
                black_box(&params),
                10,
                isd,
                EnergyStrategy::SleepModeRepeaters,
            )
        })
    });
}

/// Ablation: wake latency — energy overhead of the barrier lead.
fn bench_ablation_wake(c: &mut Criterion) {
    let params = ScenarioParams::paper_default();
    let passes = params.timetable().passes();
    let section = TrackSection::around(Meters::new(1200.0), params.lp_spacing());
    let mut group = c.benchmark_group("ablation_wake");
    for (label, lead_s) in [("instant", 0.0), ("paper_1s_lead", 1.0), ("lead_5s", 5.0)] {
        let ctl = WakeController::new(Seconds::new(lead_s), Seconds::new(0.3));
        let activity = ActivityTimeline::for_section_with_wake(&section, &passes, &ctl);
        let duty = DutyCycle::over_day(activity.total_active_hours(), Hours::ZERO);
        println!(
            "wake ablation [{label}]: repeater daily energy {:.2} Wh",
            duty.daily_energy(params.lp_node()).value()
        );
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| ActivityTimeline::for_section_with_wake(&section, &passes, &ctl))
        });
    }
    group.finish();
}

/// Ablation: stochastic traffic — Poisson arrivals versus the timetable.
fn bench_ablation_stochastic(c: &mut Criterion) {
    let params = ScenarioParams::paper_default();
    let section = TrackSection::new(Meters::ZERO, Meters::new(2400.0));
    let poisson = PoissonTimetable::paper_rate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut sum = 0.0;
    const DAYS: usize = 50;
    for _ in 0..DAYS {
        let passes = poisson.sample_passes(&mut rng);
        sum += ActivityTimeline::for_section(&section, &passes)
            .total_active_hours()
            .value();
    }
    let det = ActivityTimeline::for_section(&section, &params.timetable().passes())
        .total_active_hours()
        .value();
    println!(
        "stochastic ablation: deterministic {det:.3} h/day vs Poisson mean {:.3} h/day over {DAYS} days",
        sum / DAYS as f64
    );
    c.bench_function("traffic/poisson_day", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        b.iter(|| {
            let passes = poisson.sample_passes(&mut rng);
            ActivityTimeline::for_section(black_box(&section), &passes)
        })
    });
}

criterion_group! {
    name = benches;
    config = short_config();
    targets =
    bench_activity,
    bench_fig4,
    bench_ablation_donor,
    bench_ablation_wake,
    bench_ablation_stochastic
}
criterion_main!(benches);
