//! Simple antenna directivity patterns.

use corridor_units::Db;

/// An azimuth-plane antenna gain pattern.
///
/// Corridor masts carry two cross-polarized pencil-beam antennas mounted
/// back-to-back along the track. For the 1-D corridor geometry all that
/// matters is the boresight gain and how quickly it falls off away from the
/// track axis; the widely used 3GPP parabolic pattern
/// `G(θ) = G0 − min(12·(θ/θ_3dB)^2, A_max)` captures this.
///
/// # Examples
///
/// ```
/// use corridor_propagation::AntennaPattern;
/// use corridor_units::Db;
///
/// let pencil = AntennaPattern::pencil_beam(Db::new(17.0), 10.0);
/// assert_eq!(pencil.gain_at(0.0), Db::new(17.0));
/// // at the 3 dB point the gain is down by exactly 3 dB
/// assert!((pencil.gain_at(5.0).value() - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AntennaPattern {
    boresight_gain: Db,
    beamwidth_deg: f64,
    front_to_back: Db,
}

impl AntennaPattern {
    /// An isotropic radiator (0 dBi everywhere).
    pub fn isotropic() -> Self {
        AntennaPattern {
            boresight_gain: Db::ZERO,
            beamwidth_deg: f64::INFINITY,
            front_to_back: Db::ZERO,
        }
    }

    /// A pencil-beam antenna with the given boresight gain and full 3 dB
    /// beamwidth in degrees, using the 3GPP parabolic roll-off with a 25 dB
    /// front-to-back floor.
    ///
    /// # Panics
    ///
    /// Panics if `beamwidth_deg` is not strictly positive.
    pub fn pencil_beam(boresight_gain: Db, beamwidth_deg: f64) -> Self {
        assert!(beamwidth_deg > 0.0, "beamwidth must be positive");
        AntennaPattern {
            boresight_gain,
            beamwidth_deg,
            front_to_back: Db::new(25.0),
        }
    }

    /// Overrides the front-to-back attenuation floor `A_max`.
    #[must_use]
    pub fn with_front_to_back(mut self, front_to_back: Db) -> Self {
        self.front_to_back = front_to_back;
        self
    }

    /// Boresight gain `G0`.
    pub fn boresight_gain(&self) -> Db {
        self.boresight_gain
    }

    /// Full 3 dB beamwidth, degrees.
    pub fn beamwidth_deg(&self) -> f64 {
        self.beamwidth_deg
    }

    /// Gain at `angle_deg` off boresight.
    pub fn gain_at(&self, angle_deg: f64) -> Db {
        if self.beamwidth_deg.is_infinite() {
            return self.boresight_gain;
        }
        let half = self.beamwidth_deg / 2.0;
        let rolloff = 3.0 * (angle_deg / half).powi(2);
        self.boresight_gain - Db::new(rolloff.min(self.front_to_back.value()))
    }
}

impl Default for AntennaPattern {
    /// Returns [`AntennaPattern::isotropic`].
    fn default() -> Self {
        AntennaPattern::isotropic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_flat() {
        let iso = AntennaPattern::isotropic();
        for a in [0.0, 30.0, 90.0, 180.0] {
            assert_eq!(iso.gain_at(a), Db::ZERO);
        }
        assert_eq!(AntennaPattern::default(), iso);
    }

    #[test]
    fn boresight_and_3db_point() {
        let p = AntennaPattern::pencil_beam(Db::new(20.0), 8.0);
        assert_eq!(p.gain_at(0.0), Db::new(20.0));
        assert!((p.gain_at(4.0).value() - 17.0).abs() < 1e-9);
        assert!((p.gain_at(-4.0).value() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn rolloff_is_floored() {
        let p = AntennaPattern::pencil_beam(Db::new(17.0), 10.0);
        // far off axis, gain bottoms out at G0 - 25 dB
        assert_eq!(p.gain_at(180.0), Db::new(17.0 - 25.0));
        let custom = p.with_front_to_back(Db::new(30.0));
        assert_eq!(custom.gain_at(180.0), Db::new(17.0 - 30.0));
    }

    #[test]
    fn gain_monotone_until_floor() {
        let p = AntennaPattern::pencil_beam(Db::new(17.0), 10.0);
        let mut last = p.gain_at(0.0);
        for step in 1..=30 {
            let g = p.gain_at(step as f64);
            assert!(g <= last, "gain increased at {step}°");
            last = g;
        }
    }

    #[test]
    fn accessors() {
        let p = AntennaPattern::pencil_beam(Db::new(17.0), 10.0);
        assert_eq!(p.boresight_gain(), Db::new(17.0));
        assert_eq!(p.beamwidth_deg(), 10.0);
    }

    #[test]
    #[should_panic(expected = "beamwidth must be positive")]
    fn zero_beamwidth_rejected() {
        let _ = AntennaPattern::pencil_beam(Db::ZERO, 0.0);
    }
}
