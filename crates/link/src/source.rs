//! Signal sources along the corridor.

use corridor_propagation::PathLoss;
use corridor_units::{Db, Dbm, Meters};

/// A downlink transmitter at a position along the track.
///
/// Both high-power RRHs and low-power repeater service nodes are
/// `SignalSource`s; they differ in their per-subcarrier RSTP, their
/// calibrated path-loss model and — for repeaters — the amplified noise
/// they re-emit ([`SignalSource::with_emitted_noise`]).
///
/// The generic parameter `M` is the path-loss model; using one model type
/// with different calibrations (as the paper does) keeps sources `Copy` and
/// collections homogeneous, while `M = DynPathLoss` allows heterogeneous
/// mixes.
///
/// # Examples
///
/// ```
/// use corridor_link::SignalSource;
/// use corridor_propagation::CalibratedFriis;
/// use corridor_units::{Db, Dbm, Meters, Hertz};
///
/// let lp_model = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(20.0));
/// // A repeater at 600 m with 4.8 dBm/subcarrier RSTP and 8 dB noise figure
/// // applied to a -132 dBm noise floor:
/// let repeater = SignalSource::new(Meters::new(600.0), Dbm::new(4.8), lp_model)
///     .with_emitted_noise(Dbm::new(-132.0) + Db::new(8.0));
/// let rsrp = repeater.rsrp_at(Meters::new(700.0));
/// assert!(rsrp.value() < 4.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignalSource<M> {
    position: Meters,
    rstp: Dbm,
    path_loss: M,
    emitted_noise: Option<Dbm>,
}

impl<M: PathLoss> SignalSource<M> {
    /// Creates a source at `position` transmitting `rstp` per subcarrier
    /// through `path_loss`.
    pub fn new(position: Meters, rstp: Dbm, path_loss: M) -> Self {
        SignalSource {
            position,
            rstp,
            path_loss,
            emitted_noise: None,
        }
    }

    /// Marks this source as re-emitting amplified noise at `noise` dBm per
    /// subcarrier (at the transmit port). Per the paper's eq. (2) the noise
    /// reaching a receiver is `noise / L(d)` with the same port-to-port
    /// attenuation as the signal.
    #[must_use]
    pub fn with_emitted_noise(mut self, noise: Dbm) -> Self {
        self.emitted_noise = Some(noise);
        self
    }

    /// Track position of the transmitter.
    pub fn position(&self) -> Meters {
        self.position
    }

    /// Per-subcarrier reference signal transmit power.
    pub fn rstp(&self) -> Dbm {
        self.rstp
    }

    /// The source's path-loss model.
    pub fn path_loss(&self) -> &M {
        &self.path_loss
    }

    /// Noise re-emitted at the transmit port, if any.
    pub fn emitted_noise(&self) -> Option<Dbm> {
        self.emitted_noise
    }

    /// Port-to-port attenuation from this source to track position `at`.
    pub fn attenuation_to(&self, at: Meters) -> Db {
        self.path_loss.attenuation(self.position.distance_to(at))
    }

    /// Received per-subcarrier power (RSRP) at track position `at`.
    pub fn rsrp_at(&self, at: Meters) -> Dbm {
        self.rstp - self.attenuation_to(at)
    }

    /// Received re-emitted noise at `at`, if this source emits noise.
    pub fn received_noise_at(&self, at: Meters) -> Option<Dbm> {
        self.emitted_noise.map(|n| n - self.attenuation_to(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_propagation::CalibratedFriis;
    use corridor_units::Hertz;

    fn lp_source() -> SignalSource<CalibratedFriis> {
        let model = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(20.0));
        SignalSource::new(Meters::new(600.0), Dbm::new(4.81), model)
    }

    #[test]
    fn rsrp_is_rstp_minus_attenuation() {
        let s = lp_source();
        let at = Meters::new(700.0);
        let expected = s.rstp() - s.path_loss().attenuation(Meters::new(100.0));
        assert_eq!(s.rsrp_at(at), expected);
    }

    #[test]
    fn rsrp_symmetric_around_source() {
        let s = lp_source();
        assert_eq!(s.rsrp_at(Meters::new(500.0)), s.rsrp_at(Meters::new(700.0)));
    }

    #[test]
    fn no_noise_by_default() {
        let s = lp_source();
        assert_eq!(s.emitted_noise(), None);
        assert_eq!(s.received_noise_at(Meters::new(700.0)), None);
    }

    #[test]
    fn emitted_noise_propagates_like_signal() {
        let s = lp_source().with_emitted_noise(Dbm::new(-124.0));
        let at = Meters::new(800.0);
        let noise = s.received_noise_at(at).unwrap();
        let signal = s.rsrp_at(at);
        // signal-to-own-noise ratio is constant: rstp - emitted_noise
        assert!(((signal - noise).value() - (4.81 + 124.0)).abs() < 1e-9);
    }

    #[test]
    fn rsrp_close_to_source_is_near_rstp() {
        // at the near-field guard distance the loss is the 1 m loss
        let s = lp_source();
        let at_mast = s.rsrp_at(Meters::new(600.0));
        let expected = s.rstp() - s.path_loss().attenuation(Meters::new(1.0));
        assert_eq!(at_mast, expected);
    }
}
