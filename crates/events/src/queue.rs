//! The event queue: a deterministic calendar/bucket min-queue of
//! simulation events.
//!
//! The queue is arena-allocated and index-keyed: events pushed before the
//! first pop accumulate in a staging arena; the first pop *seals* the
//! arena with a counting-sort distribution into fine time buckets
//! followed by one insertion pass over the then nearly-sorted arena,
//! after which popping is a cursor increment over contiguous memory. Events scheduled *after* sealing —
//! the simulator's wake completions and drain expiries — go to a small
//! sorted overflow lane; a pop returns whichever of the arena cursor and
//! the overflow front is earlier. The pop order is exactly the total order of
//! the previous binary-heap implementation (time, kind priority, node,
//! insertion sequence), which the differential suite in
//! `tests/queue_differential.rs` pins property-by-property.

use corridor_units::Seconds;

/// What fires (or is scheduled to fire) at a node.
///
/// At equal timestamps events process in a fixed priority order —
/// barrier trips before wake completions before train entries before
/// train exits before drain expiries — so zero-latency policies (an
/// instant wake at the very second a train enters) resolve
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The photoelectric barrier up-track of the node tripped.
    BarrierTrip,
    /// A wake transition completed (tagged with the wake sequence number
    /// that scheduled it, so stale completions are ignored).
    WakeComplete(u64),
    /// A train head entered the node's coverage section.
    TrainEnter,
    /// A train tail cleared the node's coverage section.
    TrainExit,
    /// The guard interval after the last train expired (tagged with the
    /// drain sequence number that scheduled it).
    DrainExpire(u64),
}

impl EventKind {
    /// Processing priority at equal timestamps (lower first).
    fn rank(self) -> u8 {
        match self {
            EventKind::BarrierTrip => 0,
            EventKind::WakeComplete(_) => 1,
            EventKind::TrainEnter => 2,
            EventKind::TrainExit => 3,
            EventKind::DrainExpire(_) => 4,
        }
    }
}

/// One scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// When the event fires (may lie outside the simulation horizon; the
    /// energy integrator clamps).
    pub time: Seconds,
    /// Index of the node it concerns.
    pub node: usize,
    /// What fires.
    pub kind: EventKind,
}

/// An arena entry: the full sort key packed into one integer, plus the
/// two event fields the key cannot reproduce. 32 bytes per entry keeps
/// the seal's sort passes memory-lean, and one integer compare on the
/// hot paths replaces the float-then-field chain the binary heap used.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// The (time, kind priority, node, insertion sequence) comparison
    /// chain packed into a single integer at push time: sign-flipped
    /// time bits in the high 64 (unsigned order equals float order for
    /// non-NaN times), then rank, node and sequence below.
    key: u128,
    /// Raw bits of the event time (the key folds `-0.0` onto `+0.0`;
    /// the popped event must carry the exact pushed time).
    time_bits: u64,
    /// The wake/drain sequence payload for tagged kinds, zero otherwise
    /// (the kind itself is recovered from the rank inside the key).
    payload: u64,
}

impl Entry {
    const SEQ_BITS: u32 = 32;
    const NODE_BITS: u32 = 28;
    const NODE_MASK: u128 = (1 << Self::NODE_BITS) - 1;

    fn new(event: Event, seq: u64) -> Self {
        debug_assert!(!event.time.value().is_nan(), "event times are never NaN");
        assert!(
            event.node < (1 << Self::NODE_BITS) && seq < (1 << Self::SEQ_BITS),
            "node index or event count exceeds the packed-key range"
        );
        // `+ 0.0` folds `-0.0` onto `+0.0`, so the packed key ties
        // exactly where the float comparison tied (the tiebreak then
        // falls to rank, node and insertion order as before)
        let bits = (event.time.value() + 0.0).to_bits();
        let time_key = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        };
        let key = ((time_key as u128) << 64)
            | ((event.kind.rank() as u128) << (Self::NODE_BITS + Self::SEQ_BITS))
            | ((event.node as u128) << Self::SEQ_BITS)
            | (seq as u128);
        let payload = match event.kind {
            EventKind::WakeComplete(p) | EventKind::DrainExpire(p) => p,
            _ => 0,
        };
        Entry {
            key,
            time_bits: event.time.value().to_bits(),
            payload,
        }
    }

    /// Reassembles the pushed event from the packed representation.
    fn event(&self) -> Event {
        let rank = (self.key >> (Self::NODE_BITS + Self::SEQ_BITS)) as u8 & 0x0f;
        let kind = match rank {
            0 => EventKind::BarrierTrip,
            1 => EventKind::WakeComplete(self.payload),
            2 => EventKind::TrainEnter,
            3 => EventKind::TrainExit,
            _ => EventKind::DrainExpire(self.payload),
        };
        Event {
            time: Seconds::new(f64::from_bits(self.time_bits)),
            node: ((self.key >> Self::SEQ_BITS) & Self::NODE_MASK) as usize,
            kind,
        }
    }

    /// Exact identity: the key (time up to `-0.0` aliasing, rank, node,
    /// sequence), the raw time bits, and the kind payload.
    fn same_bits(&self, other: &Self) -> bool {
        self.key == other.key && self.time_bits == other.time_bits && self.payload == other.payload
    }
}

/// A deterministic min-queue of [`Event`]s (calendar/bucket layout).
///
/// Pushes before the first pop are O(1) appends into a staging arena;
/// the first pop sorts the arena once (counting-sort into fine time
/// buckets, then one insertion pass) and subsequent pops walk a cursor.
/// Pushes after the first pop — the simulator's dynamically scheduled
/// wake/drain events — go to a small sorted overflow lane that the pop
/// merges with the arena cursor. All allocations are retained across
/// [`EventQueue::clear`], so a reused queue replays a new event
/// population without touching the allocator.
///
/// # Examples
///
/// ```
/// use corridor_events::{Event, EventKind, EventQueue};
/// use corridor_units::Seconds;
///
/// let mut q = EventQueue::new();
/// q.push(Event { time: Seconds::new(5.0), node: 0, kind: EventKind::TrainExit });
/// q.push(Event { time: Seconds::new(5.0), node: 0, kind: EventKind::TrainEnter });
/// q.push(Event { time: Seconds::new(1.0), node: 1, kind: EventKind::BarrierTrip });
/// assert_eq!(q.pop().unwrap().time, Seconds::new(1.0));
/// // at equal times the entry processes before the exit
/// assert_eq!(q.pop().unwrap().kind, EventKind::TrainEnter);
/// ```
#[derive(Debug)]
pub struct EventQueue {
    /// Staging arena: events pushed before the first pop, unsorted.
    staged: Vec<Entry>,
    /// The previous seal's staging population, kept to detect replays: a
    /// replicator re-running the same day pushes a bit-identical static
    /// population, and the sealed arena can then be rewound instead of
    /// re-sorted.
    prev_staged: Vec<Entry>,
    /// Sealed arena: all of `prev_staged`, bucket-distributed and sorted.
    arena: Vec<Entry>,
    /// Bucket boundaries into `arena` (`offsets[b]..offsets[b + 1]`).
    offsets: Vec<u32>,
    /// Per-bucket write cursors, reused across seals.
    bucket_cursors: Vec<u32>,
    /// Per-entry bucket ids from the counting pass, reused by the
    /// scatter pass so the bucket math runs once per entry.
    bucket_ids: Vec<u32>,
    /// Next arena entry to pop.
    cursor: usize,
    /// Whether the staging arena has been sealed (first pop happened).
    sealed: bool,
    /// Events scheduled after sealing (dynamic wake/drain events), kept
    /// sorted ascending by key from `overflow_head` on. Dynamic
    /// populations are tiny (pending wake/drain timers, a handful per
    /// node at most) and a freshly scheduled timer usually fires after
    /// every pending one, so the common insert is an O(1) append — a
    /// sorted vector beats a binary heap here.
    overflow: Vec<Entry>,
    /// First pending overflow entry (earlier ones were popped).
    overflow_head: usize,
    /// Smallest staged event time, tracked at push time.
    staged_min: f64,
    /// Largest staged event time, tracked at push time.
    staged_max: f64,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            staged: Vec::new(),
            prev_staged: Vec::new(),
            arena: Vec::new(),
            offsets: Vec::new(),
            bucket_cursors: Vec::new(),
            bucket_ids: Vec::new(),
            cursor: 0,
            sealed: false,
            overflow: Vec::new(),
            overflow_head: 0,
            staged_min: f64::INFINITY,
            staged_max: f64::NEG_INFINITY,
            next_seq: 0,
        }
    }
}

impl EventQueue {
    /// Average staged events per calendar bucket: fine buckets keep the
    /// arena so close to sorted after the scatter that the final global
    /// insertion pass moves almost nothing (bucket bookkeeping is two
    /// `u32` arrays, so finer buckets cost little).
    const EVENTS_PER_BUCKET: usize = 2;

    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry::new(event, seq);
        if self.sealed {
            // the overflow stays sorted ascending from `overflow_head`; a
            // freshly scheduled timer usually fires after every pending
            // one, so the common case is a plain append
            let belongs_at_end = match self.overflow.last() {
                Some(last) => last.key <= entry.key,
                None => true,
            };
            if belongs_at_end {
                self.overflow.push(entry);
            } else {
                let pending = &self.overflow[self.overflow_head..];
                let at = self.overflow_head + pending.partition_point(|e| e.key < entry.key);
                self.overflow.insert(at, entry);
            }
        } else {
            let t = event.time.value();
            self.staged_min = self.staged_min.min(t);
            self.staged_max = self.staged_max.max(t);
            self.staged.push(entry);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        if !self.sealed {
            self.seal();
        }
        if self.overflow_head == self.overflow.len() {
            // no pending dynamic events: straight off the arena cursor
            let entry = self.arena.get(self.cursor)?;
            self.cursor += 1;
            return Some(entry.event());
        }
        let front = self.overflow[self.overflow_head];
        match self.arena.get(self.cursor) {
            Some(entry) if entry.key < front.key => {
                let event = entry.event();
                self.cursor += 1;
                Some(event)
            }
            _ => {
                self.advance_overflow();
                Some(front.event())
            }
        }
    }

    /// Consumes the overflow front; compacts the lane back to empty when
    /// the last pending entry goes, so storage never creeps.
    fn advance_overflow(&mut self) {
        self.overflow_head += 1;
        if self.overflow_head == self.overflow.len() {
            self.overflow.clear();
            self.overflow_head = 0;
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        let arena_pending = if self.sealed {
            self.arena.len() - self.cursor
        } else {
            0
        };
        self.staged.len() + arena_pending + (self.overflow.len() - self.overflow_head)
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queue and rewinds it to the staging phase, retaining
    /// every internal allocation — the reuse hook for replicators that
    /// replay many event populations through one queue arena.
    pub fn clear(&mut self) {
        // `prev_staged` and the sealed `arena` survive on purpose: they
        // are the replay cache the next seal checks against
        self.staged.clear();
        self.overflow.clear();
        self.overflow_head = 0;
        self.cursor = 0;
        self.sealed = false;
        self.staged_min = f64::INFINITY;
        self.staged_max = f64::NEG_INFINITY;
        self.next_seq = 0;
    }

    /// Seals the staging arena: counting-sort the staged events into
    /// fine time buckets, then finish with one insertion pass over the
    /// nearly-sorted arena. After this the arena is globally key-sorted
    /// (equal times always land in the same bucket, and bucket index is
    /// monotone in time).
    fn seal(&mut self) {
        self.sealed = true;
        self.cursor = 0;
        let n = self.staged.len();
        if n == 0 {
            // an empty population invalidates the replay cache: the
            // arena must not serve stale entries
            self.arena.clear();
            self.prev_staged.clear();
            self.offsets.clear();
            self.staged_min = f64::INFINITY;
            self.staged_max = f64::NEG_INFINITY;
            return;
        }
        if self.is_replay() {
            // bit-identical population to the previous seal: the sorted
            // arena is already correct, rewinding the cursor suffices
            self.staged.clear();
            self.staged_min = f64::INFINITY;
            self.staged_max = f64::NEG_INFINITY;
            return;
        }

        // min/max were tracked at push time, saving a full arena scan
        let min = self.staged_min;
        let span = self.staged_max - min;
        self.staged_min = f64::INFINITY;
        self.staged_max = f64::NEG_INFINITY;
        // the new population becomes the replay reference; the old one's
        // allocation is recycled as the next staging buffer
        core::mem::swap(&mut self.staged, &mut self.prev_staged);
        self.staged.clear();
        let staged = &self.prev_staged;

        let wanted = (n / Self::EVENTS_PER_BUCKET).max(1);
        let (buckets, inv_width) = if span > 0.0 && wanted > 1 {
            (wanted, wanted as f64 / span)
        } else {
            (1, 0.0)
        };
        let bucket_of = |t: f64| (((t - min) * inv_width) as usize).min(buckets - 1);

        // pass 1: bucket occupancy counts -> prefix-sum offsets
        self.offsets.clear();
        self.offsets.resize(buckets + 1, 0);
        self.bucket_ids.clear();
        for entry in staged {
            let b = bucket_of(f64::from_bits(entry.time_bits));
            self.bucket_ids.push(b as u32);
            self.offsets[b + 1] += 1;
        }
        for b in 1..=buckets {
            self.offsets[b] += self.offsets[b - 1];
        }

        // pass 2: place each entry at its bucket's write cursor
        self.bucket_cursors.clear();
        self.bucket_cursors
            .extend_from_slice(&self.offsets[..buckets]);
        self.arena.clear();
        self.arena.resize(n, staged[0]);
        for (entry, &b) in staged.iter().zip(&self.bucket_ids) {
            self.arena[self.bucket_cursors[b as usize] as usize] = *entry;
            self.bucket_cursors[b as usize] += 1;
        }

        // pass 3: one global insertion pass. The scatter left every
        // entry inside its (tiny) bucket region and bucket index is
        // monotone in time, so the arena is nearly sorted: displacement
        // is bounded by the bucket occupancy, and a single
        // almost-no-op sweep beats per-bucket sub-sorts (whose slice
        // bookkeeping dominated at calendar-bucket sizes).
        insertion_sort_by_key(&mut self.arena);
    }

    /// True if the staged population is bit-for-bit the one the arena
    /// was last sealed from (times compared as raw bits, so `-0.0` vs
    /// `+0.0` never alias). Replays re-use the sorted arena; a fresh
    /// population early-exits at the first mismatching entry.
    fn is_replay(&self) -> bool {
        !self.arena.is_empty()
            && self.staged.len() == self.prev_staged.len()
            && self
                .staged
                .iter()
                .zip(&self.prev_staged)
                .all(|(a, b)| a.same_bits(b))
    }
}

/// Insertion sort by the packed entry key, shifting a hole instead of
/// swapping — on the nearly-sorted post-scatter arena the common case
/// is one compare and no writes per element.
fn insertion_sort_by_key(slice: &mut [Entry]) {
    for i in 1..slice.len() {
        if slice[i - 1].key > slice[i].key {
            let tmp = slice[i];
            let mut j = i;
            while j > 0 && slice[j - 1].key > tmp.key {
                slice[j] = slice[j - 1];
                j -= 1;
            }
            slice[j] = tmp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, node: usize, kind: EventKind) -> Event {
        Event {
            time: Seconds::new(time),
            node,
            kind,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [9.0, 3.0, 7.0, 1.0, 5.0] {
            q.push(ev(t, 0, EventKind::TrainEnter));
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(event) = q.pop() {
            assert!(event.time.value() >= last);
            last = event.time.value();
        }
    }

    #[test]
    fn equal_times_follow_kind_priority() {
        let mut q = EventQueue::new();
        q.push(ev(10.0, 0, EventKind::DrainExpire(1)));
        q.push(ev(10.0, 0, EventKind::TrainExit));
        q.push(ev(10.0, 0, EventKind::TrainEnter));
        q.push(ev(10.0, 0, EventKind::WakeComplete(1)));
        q.push(ev(10.0, 0, EventKind::BarrierTrip));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::BarrierTrip,
                EventKind::WakeComplete(1),
                EventKind::TrainEnter,
                EventKind::TrainExit,
                EventKind::DrainExpire(1),
            ]
        );
    }

    #[test]
    fn equal_time_and_kind_order_by_node_then_insertion() {
        let mut q = EventQueue::new();
        q.push(ev(4.0, 2, EventKind::TrainEnter));
        q.push(ev(4.0, 1, EventKind::TrainEnter));
        q.push(ev(4.0, 1, EventKind::TrainEnter));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, vec![1, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(ev(0.0, 0, EventKind::BarrierTrip));
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    /// Every ordered pair of event kinds at one timestamp: the pop order
    /// must follow the documented kind priority, falling back to
    /// insertion order when the kinds tie. This pins the tie-break
    /// explicitly (it used to be exercised only implicitly through the
    /// state machine) so the calendar-queue rewrite provably preserves
    /// it.
    #[test]
    fn all_kind_pairs_at_equal_timestamps() {
        let kinds = [
            EventKind::BarrierTrip,
            EventKind::WakeComplete(7),
            EventKind::TrainEnter,
            EventKind::TrainExit,
            EventKind::DrainExpire(9),
        ];
        for &first_in in &kinds {
            for &second_in in &kinds {
                let mut q = EventQueue::new();
                q.push(ev(50.0, 3, first_in));
                q.push(ev(50.0, 3, second_in));
                let got = [q.pop().unwrap().kind, q.pop().unwrap().kind];
                let expect = if first_in.rank() <= second_in.rank() {
                    [first_in, second_in]
                } else {
                    [second_in, first_in]
                };
                assert_eq!(got, expect, "pushed {first_in:?} then {second_in:?}");
                assert!(q.pop().is_none());
            }
        }
    }

    #[test]
    fn push_after_pop_lands_in_pending_order() {
        let mut q = EventQueue::new();
        q.push(ev(10.0, 0, EventKind::TrainEnter));
        q.push(ev(20.0, 0, EventKind::TrainEnter));
        q.push(ev(30.0, 0, EventKind::TrainEnter));
        assert_eq!(q.pop().unwrap().time, Seconds::new(10.0));
        // dynamic push between pending arena events
        q.push(ev(25.0, 0, EventKind::WakeComplete(1)));
        // and one in the "past" relative to popped history: it is still
        // the minimum of the *pending* set, so it pops next
        q.push(ev(5.0, 0, EventKind::DrainExpire(1)));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.value())
            .collect();
        assert_eq!(times, vec![5.0, 20.0, 25.0, 30.0]);
    }

    #[test]
    fn equal_times_all_in_one_bucket() {
        // a degenerate population (zero time span) must still seal and
        // tie-break correctly through the single-bucket path
        let mut q = EventQueue::new();
        for node in (0..100).rev() {
            q.push(ev(42.0, node, EventKind::TrainEnter));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.node).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn negative_times_are_ordered() {
        // barrier trips can fire before t = 0 (enter - lead)
        let mut q = EventQueue::new();
        q.push(ev(3.0, 0, EventKind::TrainEnter));
        q.push(ev(-2.0, 0, EventKind::BarrierTrip));
        q.push(ev(0.0, 0, EventKind::BarrierTrip));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.value())
            .collect();
        assert_eq!(times, vec![-2.0, 0.0, 3.0]);
    }

    #[test]
    fn replaying_the_same_population_reuses_the_sorted_arena() {
        let mut q = EventQueue::new();
        let day = [
            ev(9.0, 2, EventKind::TrainExit),
            ev(3.0, 0, EventKind::BarrierTrip),
            ev(3.0, 0, EventKind::TrainEnter),
            ev(7.0, 1, EventKind::TrainEnter),
        ];
        let drain = |q: &mut EventQueue| -> Vec<(f64, usize)> {
            std::iter::from_fn(|| q.pop())
                .map(|e| (e.time.value(), e.node))
                .collect()
        };
        for event in day {
            q.push(event);
        }
        let first = drain(&mut q);
        // replay: identical population through the cleared queue
        q.clear();
        for event in day {
            q.push(event);
        }
        assert_eq!(drain(&mut q), first);
        // then a different population must re-sort, not replay
        q.clear();
        q.push(ev(6.0, 5, EventKind::TrainEnter));
        q.push(ev(2.0, 4, EventKind::TrainEnter));
        assert_eq!(drain(&mut q), vec![(2.0, 4), (6.0, 5)]);
        // and an empty population pops nothing despite the cached arena
        q.clear();
        assert!(q.pop().is_none());
    }

    #[test]
    fn negative_zero_is_not_aliased_by_the_replay_cache() {
        let mut q = EventQueue::new();
        q.push(ev(0.0, 0, EventKind::TrainEnter));
        assert_eq!(q.pop().unwrap().time.value().to_bits(), 0.0f64.to_bits());
        q.clear();
        q.push(ev(-0.0, 0, EventKind::TrainEnter));
        // -0.0 == 0.0, but the replay check compares bits: the popped
        // event carries the newly pushed sign
        assert_eq!(q.pop().unwrap().time.value().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn clear_rewinds_to_staging_and_reuses_the_arena() {
        let mut q = EventQueue::new();
        for t in [5.0, 1.0, 3.0] {
            q.push(ev(t, 0, EventKind::TrainEnter));
        }
        assert_eq!(q.pop().unwrap().time, Seconds::new(1.0));
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // a cleared queue behaves exactly like a fresh one
        q.push(ev(8.0, 1, EventKind::TrainExit));
        q.push(ev(2.0, 2, EventKind::TrainEnter));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().time, Seconds::new(2.0));
        assert_eq!(q.pop().unwrap().time, Seconds::new(8.0));
        assert!(q.pop().is_none());
    }
}
