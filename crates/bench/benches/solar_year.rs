//! Criterion benches for the solar substrate: the hourly year simulation
//! and the zero-downtime sizing search (Table IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}
use std::hint::black_box;

use corridor_core::prelude::*;
use corridor_core::solar::sizing::SizingOptions;

fn bench_simulate_year(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_year");
    for location in climate::paper_regions() {
        let system = OffGridSystem::new(
            location.clone(),
            PvArray::standard_modules(3),
            Battery::paper_default(),
            DailyLoadProfile::repeater_paper_default(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(location.name()),
            &system,
            |b, system| b.iter(|| system.simulate_year(black_box(2))),
        );
    }
    group.finish();
}

fn bench_sizing(c: &mut Criterion) {
    let options = SizingOptions::paper_default();
    c.bench_function("sizing/berlin_full_ladder", |b| {
        b.iter(|| {
            sizing::size_for_zero_downtime(
                black_box(climate::berlin()),
                DailyLoadProfile::repeater_paper_default(),
                &options,
            )
        })
    });
}

/// Ablation: module mounting angle. Vertical mounting loses summer yield
/// but maximizes the binding winter yield — printed for the record.
fn bench_ablation_mounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mounting");
    for (label, tilt) in [
        ("vertical_90", 90.0),
        ("latitude_tilt_40", 40.0),
        ("flat_0", 0.0),
    ] {
        let system = OffGridSystem::new(
            climate::berlin(),
            PvArray::standard_modules(3),
            Battery::with_capacity(WattHours::new(1440.0)),
            DailyLoadProfile::repeater_paper_default(),
        )
        .with_mounting(tilt, 0.0);
        let stats = system.simulate_year(2);
        println!(
            "mounting ablation [{label}]: {:.1} % days full, {} downtime days, min SoC {:.0} %",
            stats.full_battery_day_fraction() * 100.0,
            stats.downtime_days(),
            stats.min_soc_fraction() * 100.0
        );
        group.bench_function(BenchmarkId::new("berlin", label), |b| {
            b.iter(|| system.simulate_year(black_box(2)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_simulate_year, bench_sizing, bench_ablation_mounting
}
criterion_main!(benches);
