//! Flat-memory regression pin for the streaming path, isolated in its
//! own integration-test binary so no sibling test's allocations pollute
//! the peak-RSS reading.
//!
//! A grid far larger than anything the in-memory reports could hold
//! cheaply (≥100k cells in release builds) is streamed into a
//! [`DigestSink`]; the process high-water mark (`VmHWM` from
//! `/proc/self/status`) must stay within a fixed budget of the value
//! measured before the run. If anything upstream starts accumulating
//! per-cell state — rows, results, an unbounded memo — the budget trips.

use corridor_core::sink::{DigestSink, RowFormat};
use corridor_sim::{PowerProfile, ScenarioGrid, SweepEngine};
use corridor_solar::climate;

/// Peak resident set size of this process, in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Additional peak memory the streaming run may claim: a generous
/// multiple of the true working set (a bounded window of rendered row
/// pairs), but far below what buffering ~100k cell results would cost.
const RSS_BUDGET_BYTES: u64 = 128 * 1024 * 1024;

fn axis(n: usize, start: f64, step: f64) -> Vec<f64> {
    (0..n).map(|i| start + step * i as f64).collect()
}

#[test]
fn huge_grid_streams_within_a_flat_memory_budget() {
    let Some(baseline) = peak_rss_bytes() else {
        eprintln!("skipping: /proc/self/status unavailable on this platform");
        return;
    };

    // 32 × 4 × 3 × 8 × 5 × 2 × 4 = 122_880 cells in release; debug
    // builds evaluate too slowly for that, so they pin a smaller grid
    // (8 × 2 × 2 × 4 × 3 × 2 × 2 = 1_536 cells) through the same path.
    let (n_tph, n_speed, n_len, n_spacing, n_isd) = if cfg!(debug_assertions) {
        (8, 2, 2, 4, 3)
    } else {
        (32, 4, 3, 8, 5)
    };
    let grid = ScenarioGrid::new()
        .trains_per_hour(axis(n_tph, 1.0, 1.0))
        .train_speeds_kmh(axis(n_speed, 120.0, 40.0))
        .train_lengths_m(axis(n_len, 200.0, 200.0))
        .lp_spacings_m(axis(n_spacing, 150.0, 10.0))
        .conventional_isds_m(axis(n_isd, 450.0, 25.0))
        .power_profiles(vec![PowerProfile::paper(), PowerProfile::earth_fit()])
        .locations(vec![
            climate::madrid(),
            climate::berlin(),
            climate::vienna(),
            climate::lyon(),
        ]);
    if !cfg!(debug_assertions) {
        assert!(grid.len() >= 100_000, "grid holds {} cells", grid.len());
    }

    let mut sink = DigestSink::new();
    let summary = SweepEngine::new()
        .pv_sizing(false)
        .stream(&grid, RowFormat::Csv, &mut sink)
        .unwrap();
    assert_eq!(summary.cells, grid.len() as u64);
    assert_eq!(summary.rows, grid.len() as u64);
    assert!(sink.bytes() > grid.len() as u64 * 32, "rows were emitted");

    let peak = peak_rss_bytes().expect("still on /proc");
    assert!(
        peak <= baseline + RSS_BUDGET_BYTES,
        "peak RSS grew by {:.1} MiB (budget {} MiB): streaming is no longer flat",
        (peak - baseline) as f64 / (1024.0 * 1024.0),
        RSS_BUDGET_BYTES / (1024 * 1024),
    );
}
