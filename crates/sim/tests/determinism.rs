//! Determinism of the `rayon` shim execution path: the same grid must
//! produce byte-identical reports on 1, 2 and 8 workers — pinned by
//! SHA-256 digests of the rendered CSV/JSON, so a regression anywhere
//! in the pipeline (scheduling, batching, float re-ordering, rendering)
//! fails loudly with the digest that changed.

use corridor_core::hash::sha256_hex;
use corridor_sim::{
    DeploymentOptimizer, McEngine, ReplicationPlan, ScenarioGrid, SearchSpace, SweepEngine,
};
use corridor_solar::climate;

/// A small grid that exercises every axis (8 cells, PV sizing included —
/// the only seeded-randomness consumer in the pipeline).
fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
        .locations(vec![climate::madrid(), climate::berlin()])
}

#[test]
fn csv_is_byte_identical_across_worker_counts() {
    let grid = mixed_grid();
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap().to_csv();
    assert!(reference.lines().count() == 9, "8 cells + header");
    for workers in [2, 8] {
        let csv = SweepEngine::new()
            .workers(workers)
            .run(&grid)
            .unwrap()
            .to_csv();
        assert_eq!(csv, reference, "workers = {workers}");
    }
}

#[test]
fn json_is_byte_identical_across_worker_counts() {
    let grid = mixed_grid();
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap().to_json();
    for workers in [2, 8] {
        let json = SweepEngine::new()
            .workers(workers)
            .run(&grid)
            .unwrap()
            .to_json();
        assert_eq!(json, reference, "workers = {workers}");
    }
}

/// Pinned digests of every renderable pipeline output. The sweep, the
/// Monte-Carlo engine and the deployment optimizer must produce these
/// exact bytes on every worker count; any drift (a scheduling change
/// that reorders float accumulation, a batch-layer rewrite, a rendering
/// tweak) trips the pin, not just the cross-worker comparison.
const SWEEP_CSV_SHA256: &str = "781c01105637f4b0c1852558780d88fa9c18d278728ca3e0ae31e277d9e232d1";
const SWEEP_JSON_SHA256: &str = "070b779207ee4e8f1ce90cab5cca0347e2cd0af30b458ab6995f5f20b973ce6a";
const MC_CSV_SHA256: &str = "18ba0069bec57df80976a44c6aa180df59bc918e0ee19548f6e548b8505a7437";
const MC_JSON_SHA256: &str = "7bb58718a526e267e155532111a5118b9a8bcb1b1df33e13d78ec187fc4c94e3";
const OPTIMIZE_CSV_SHA256: &str =
    "c54a5842b41eca5279459a3b5fa3ba63a38d6f44697db3609ea1f65a868e4b57";
const OPTIMIZE_JSON_SHA256: &str =
    "875b9450c19fdf0b1d55aee9f5e48607d45fd3e74a55fd825fb5f322ed211fe0";

#[test]
fn sweep_renderings_are_sha256_pinned_across_worker_counts() {
    for workers in [1usize, 2, 8] {
        let report = SweepEngine::new()
            .workers(workers)
            .run(&mixed_grid())
            .unwrap();
        assert_eq!(
            sha256_hex(report.to_csv().as_bytes()),
            SWEEP_CSV_SHA256,
            "sweep CSV, workers = {workers}"
        );
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            SWEEP_JSON_SHA256,
            "sweep JSON, workers = {workers}"
        );
    }
}

#[test]
fn mc_renderings_are_sha256_pinned_across_worker_counts() {
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .locations(vec![climate::madrid(), climate::vienna()]);
    let plan = ReplicationPlan::new(5).master_seed(7);
    for workers in [1usize, 2, 8] {
        let report = McEngine::new().workers(workers).run(&grid, &plan).unwrap();
        assert_eq!(
            sha256_hex(report.to_csv().as_bytes()),
            MC_CSV_SHA256,
            "mc CSV, workers = {workers}"
        );
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            MC_JSON_SHA256,
            "mc JSON, workers = {workers}"
        );
    }
}

#[test]
fn optimizer_renderings_are_sha256_pinned_across_worker_counts() {
    let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0]);
    let space = SearchSpace::new().node_counts((0..=6).collect());
    for workers in [1usize, 2, 8] {
        let report = DeploymentOptimizer::new()
            .workers(workers)
            .run(&grid, &space)
            .unwrap();
        assert_eq!(
            sha256_hex(report.to_csv().as_bytes()),
            OPTIMIZE_CSV_SHA256,
            "optimize CSV, workers = {workers}"
        );
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            OPTIMIZE_JSON_SHA256,
            "optimize JSON, workers = {workers}"
        );
    }
}

#[test]
fn wide_grid_without_pv_is_deterministic_too() {
    // 36 quick cells stressing the scheduler with more items than workers
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![2.0, 6.0, 10.0])
        .train_speeds_kmh(vec![120.0, 200.0, 280.0])
        .lp_spacings_m(vec![150.0, 250.0])
        .conventional_isds_m(vec![450.0, 550.0]);
    let engine = SweepEngine::new().pv_sizing(false);
    let reference = engine.workers(1).run(&grid).unwrap();
    for workers in [2, 8] {
        let report = engine.workers(workers).run(&grid).unwrap();
        assert_eq!(report.results(), reference.results(), "workers = {workers}");
        assert_eq!(report.to_csv(), reference.to_csv(), "workers = {workers}");
    }
}

// report digests are pinned through `corridor_core::hash::sha256_hex`,
// the crate-wide streaming SHA-256 (FIPS-vector-tested at its source)
