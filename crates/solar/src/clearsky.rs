//! Clear-sky irradiance (Haurwitz model).

use crate::SolarGeometry;

/// The Haurwitz clear-sky model: global horizontal irradiance under a
/// cloudless sky as a function of solar elevation only,
/// `GHI = 1098 · cosθz · exp(−0.057 / cosθz)` W/m².
///
/// Simple, robust, and accurate to a few percent against more elaborate
/// models — sufficient here because all absolute scaling is folded into the
/// per-month clearness indices calibrated per location.
///
/// # Examples
///
/// ```
/// use corridor_solar::{ClearSky, SolarGeometry};
/// let geo = SolarGeometry::at_latitude(40.4);
/// let sky = ClearSky::new(geo);
/// let noon_summer = sky.ghi_w_m2(172, 12.0);
/// assert!(noon_summer > 900.0 && noon_summer < 1100.0);
/// assert_eq!(sky.ghi_w_m2(172, 0.0), 0.0); // night
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClearSky {
    geometry: SolarGeometry,
}

impl ClearSky {
    /// Haurwitz model coefficient (W/m²).
    const A: f64 = 1098.0;
    /// Haurwitz extinction exponent.
    const B: f64 = 0.057;

    /// A clear-sky model over the given geometry.
    pub fn new(geometry: SolarGeometry) -> Self {
        ClearSky { geometry }
    }

    /// The site geometry.
    pub fn geometry(&self) -> &SolarGeometry {
        &self.geometry
    }

    /// Clear-sky global horizontal irradiance (W/m²) at day `doy`, local
    /// solar time `hour`; zero when the sun is below the horizon.
    pub fn ghi_w_m2(&self, doy: u32, hour: f64) -> f64 {
        let elev = self.geometry.elevation_deg(doy, hour);
        if elev <= 0.0 {
            return 0.0;
        }
        let cos_zenith = elev.to_radians().sin();
        Self::A * cos_zenith * (-Self::B / cos_zenith).exp()
    }

    /// Daily clear-sky irradiation (Wh/m²) by hourly integration.
    pub fn daily_ghi_wh_m2(&self, doy: u32) -> f64 {
        (0..24).map(|h| self.ghi_w_m2(doy, h as f64 + 0.5)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sky(lat: f64) -> ClearSky {
        ClearSky::new(SolarGeometry::at_latitude(lat))
    }

    #[test]
    fn peak_irradiance_near_standard_value() {
        // high sun: cosθz -> 1, GHI -> 1098·exp(-0.057) ≈ 1037 W/m²
        let equator = sky(0.0);
        let peak = equator.ghi_w_m2(81, 12.0); // equinox noon overhead
        assert!((peak - 1037.0).abs() < 10.0, "got {peak}");
    }

    #[test]
    fn zero_at_night() {
        let madrid = sky(40.4);
        for hour in [0.0, 2.0, 23.0] {
            assert_eq!(madrid.ghi_w_m2(172, hour), 0.0);
        }
    }

    #[test]
    fn summer_day_exceeds_winter_day() {
        let berlin = sky(52.5);
        let summer = berlin.daily_ghi_wh_m2(172);
        let winter = berlin.daily_ghi_wh_m2(355);
        assert!(summer > 3.0 * winter, "summer {summer}, winter {winter}");
        // ballpark: Berlin clear-sky summer day ~7-9 kWh/m²
        assert!(summer > 6500.0 && summer < 9500.0, "summer {summer}");
    }

    #[test]
    fn lower_latitude_gets_more_winter_sun() {
        let madrid = sky(40.4).daily_ghi_wh_m2(355);
        let berlin = sky(52.5).daily_ghi_wh_m2(355);
        assert!(madrid > 1.5 * berlin);
    }

    #[test]
    fn irradiance_symmetric_around_noon() {
        let madrid = sky(40.4);
        let morning = madrid.ghi_w_m2(100, 9.0);
        let afternoon = madrid.ghi_w_m2(100, 15.0);
        assert!((morning - afternoon).abs() < 1e-9);
    }
}
