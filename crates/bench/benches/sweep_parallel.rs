//! Serial vs parallel execution of the scenario-sweep engine.
//!
//! Besides the criterion timings, the bench prints a one-shot wall-clock
//! comparison (cells/s and speedup) so the log records whether the
//! parallel path pays off on this machine. On ≥4 cores the 200-cell
//! screening grid runs >1.5× faster in parallel; on a single core the
//! shim degrades gracefully to ~1×.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use corridor_sim::{ScenarioGrid, SweepEngine};

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

/// The grid both paths run: 200 cells, PV sizing off so one iteration
/// stays within the criterion budget (the energy model alone is the hot
/// path being parallelized; sizing scales identically).
fn grid() -> ScenarioGrid {
    ScenarioGrid::screening_200()
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let grid = grid();
    let mut group = c.benchmark_group("sweep200");
    group.bench_function("serial", |b| {
        let engine = SweepEngine::new().workers(1).pv_sizing(false);
        b.iter(|| engine.run_serial(black_box(&grid)).unwrap())
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                let engine = SweepEngine::new().workers(workers).pv_sizing(false);
                b.iter(|| engine.run(black_box(&grid)).unwrap())
            },
        );
    }
    group.finish();
}

/// One-shot wall-clock comparison on the realistic workload (PV sizing
/// on: ~10 ms per cell, coarse enough to amortize the shim's per-run
/// thread spawn), recorded in the bench log.
fn report_speedup(_c: &mut Criterion) {
    let grid = grid();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let engine = SweepEngine::new().pv_sizing(true);

    let started = Instant::now();
    let serial = engine.workers(1).run_serial(&grid).unwrap();
    let t_serial = started.elapsed();

    let started = Instant::now();
    let parallel = engine.workers(cores).run(&grid).unwrap();
    let t_parallel = started.elapsed();

    assert_eq!(serial.results(), parallel.results());
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9);
    println!(
        "sweep200+pv speedup: serial {:.0} ms, parallel({cores} workers) {:.0} ms -> {speedup:.2}x (identical results)",
        t_serial.as_secs_f64() * 1e3,
        t_parallel.as_secs_f64() * 1e3,
    );
}

criterion_group!(
    name = benches;
    config = short_config();
    targets = bench_serial_vs_parallel, report_speedup
);
criterion_main!(benches);
