//! Length and distance quantities.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::{MetersPerSecond, Seconds};

/// A length or position along the track, in metres.
///
/// # Examples
///
/// ```
/// use corridor_units::{Meters, MetersPerSecond};
/// let train_length = Meters::new(400.0);
/// let speed = MetersPerSecond::new(55.56);
/// let pass_time = train_length / speed;
/// assert!((pass_time.value() - 7.2).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Meters(f64);

impl Meters {
    /// Zero metres.
    pub const ZERO: Meters = Meters(0.0);

    /// Creates a length of `value` metres.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Meters(value)
    }

    /// Returns the raw value in metres.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts to kilometres.
    #[inline]
    pub fn kilometers(self) -> Kilometers {
        Kilometers(self.0 / 1e3)
    }

    /// Absolute distance between two positions.
    #[inline]
    pub fn distance_to(self, other: Meters) -> Meters {
        Meters((self.0 - other.0).abs())
    }

    /// Absolute value.
    #[inline]
    #[must_use]
    pub fn abs(self) -> Meters {
        Meters(self.0.abs())
    }

    /// The larger of two lengths.
    #[inline]
    #[must_use]
    pub fn max(self, other: Meters) -> Meters {
        Meters(self.0.max(other.0))
    }

    /// The smaller of two lengths.
    #[inline]
    #[must_use]
    pub fn min(self, other: Meters) -> Meters {
        Meters(self.0.min(other.0))
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} m", self.0)
    }
}

impl Add for Meters {
    type Output = Meters;
    #[inline]
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl AddAssign for Meters {
    #[inline]
    fn add_assign(&mut self, rhs: Meters) {
        self.0 += rhs.0;
    }
}

impl Sub for Meters {
    type Output = Meters;
    #[inline]
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl SubAssign for Meters {
    #[inline]
    fn sub_assign(&mut self, rhs: Meters) {
        self.0 -= rhs.0;
    }
}

impl Neg for Meters {
    type Output = Meters;
    #[inline]
    fn neg(self) -> Meters {
        Meters(-self.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

impl Mul<Meters> for f64 {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Meters) -> Meters {
        Meters(self * rhs.0)
    }
}

impl Div<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn div(self, rhs: f64) -> Meters {
        Meters(self.0 / rhs)
    }
}

impl Div for Meters {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds::new(self.0 / rhs.value())
    }
}

impl Sum for Meters {
    fn sum<I: Iterator<Item = Meters>>(iter: I) -> Meters {
        iter.fold(Meters::ZERO, Add::add)
    }
}

impl From<Kilometers> for Meters {
    #[inline]
    fn from(km: Kilometers) -> Meters {
        Meters(km.0 * 1e3)
    }
}

/// A length in kilometres (used for per-km energy normalization).
///
/// # Examples
///
/// ```
/// use corridor_units::{Kilometers, Meters};
/// let isd = Meters::new(2400.0);
/// assert!((isd.kilometers().value() - 2.4).abs() < 1e-12);
/// let m: Meters = Kilometers::new(1.0).into();
/// assert_eq!(m, Meters::new(1000.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Kilometers(f64);

impl Kilometers {
    /// Creates a length of `value` kilometres.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Kilometers(value)
    }

    /// Returns the raw value in kilometres.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts to metres.
    #[inline]
    pub fn meters(self) -> Meters {
        Meters(self.0 * 1e3)
    }
}

impl fmt::Display for Kilometers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} km", self.0)
    }
}

impl From<Meters> for Kilometers {
    #[inline]
    fn from(m: Meters) -> Kilometers {
        m.kilometers()
    }
}

impl Div for Kilometers {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Kilometers) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let m = Meters::new(2650.0);
        assert_eq!(Meters::from(m.kilometers()), m);
        assert_eq!(Kilometers::new(1.5).meters(), Meters::new(1500.0));
    }

    #[test]
    fn distance_is_symmetric_and_nonnegative() {
        let a = Meters::new(100.0);
        let b = Meters::new(350.0);
        assert_eq!(a.distance_to(b), Meters::new(250.0));
        assert_eq!(b.distance_to(a), Meters::new(250.0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Meters::new(1.0) + Meters::new(2.0), Meters::new(3.0));
        assert_eq!(Meters::new(5.0) - Meters::new(2.0), Meters::new(3.0));
        assert_eq!(Meters::new(2.0) * 3.0, Meters::new(6.0));
        assert_eq!(3.0 * Meters::new(2.0), Meters::new(6.0));
        assert_eq!(Meters::new(6.0) / 3.0, Meters::new(2.0));
        assert_eq!(Meters::new(6.0) / Meters::new(3.0), 2.0);
        assert_eq!(-Meters::new(6.0), Meters::new(-6.0));
        let total: Meters = [Meters::new(1.0), Meters::new(2.0)].into_iter().sum();
        assert_eq!(total, Meters::new(3.0));
    }

    #[test]
    fn distance_over_speed_is_time() {
        let t = Meters::new(900.0) / MetersPerSecond::new(55.555_555);
        assert!((t.value() - 16.2).abs() < 0.01);
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Meters::new(-3.0).abs(), Meters::new(3.0));
        assert_eq!(Meters::new(1.0).max(Meters::new(2.0)), Meters::new(2.0));
        assert_eq!(Meters::new(1.0).min(Meters::new(2.0)), Meters::new(1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Meters::new(500.0).to_string(), "500.0 m");
        assert_eq!(Kilometers::new(2.4).to_string(), "2.400 km");
    }
}
