//! 5G NR carrier and subcarrier accounting.

use core::fmt;

use corridor_units::{Db, Dbm, Hertz};

/// A 5G NR carrier: occupied bandwidth and number of subcarriers.
///
/// Reference signal powers (RSTP/RSRP) are *per-subcarrier* quantities: the
/// total transmit power is divided evenly over all subcarriers, i.e.
/// `RSTP = EIRP − 10·log10(N_sc)` in the log domain.
///
/// The paper uses a 100 MHz carrier with 3300 subcarriers (30 kHz
/// subcarrier spacing); [`NrCarrier::paper_100mhz`] reproduces that.
///
/// # Examples
///
/// ```
/// use corridor_link::NrCarrier;
/// use corridor_units::{Dbm, Watts};
///
/// let carrier = NrCarrier::paper_100mhz();
/// // 2500 W EIRP = 64 dBm total -> 28.8 dBm per subcarrier
/// let rstp = carrier.per_subcarrier(Dbm::from_watts(Watts::new(2500.0)));
/// assert!((rstp.value() - 28.79).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NrCarrier {
    bandwidth: Hertz,
    subcarriers: u32,
}

impl NrCarrier {
    /// The paper's carrier: 100 MHz with 3300 subcarriers.
    pub fn paper_100mhz() -> Self {
        NrCarrier {
            bandwidth: Hertz::from_mhz(100.0),
            subcarriers: 3300,
        }
    }

    /// Creates a carrier with an explicit subcarrier count.
    ///
    /// # Panics
    ///
    /// Panics if `subcarriers` is zero or `bandwidth` is not positive.
    pub fn new(bandwidth: Hertz, subcarriers: u32) -> Self {
        assert!(subcarriers > 0, "carrier needs at least one subcarrier");
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        NrCarrier {
            bandwidth,
            subcarriers,
        }
    }

    /// Creates a carrier from a resource-block count (12 subcarriers per RB)
    /// at the given subcarrier spacing, e.g. `from_resource_blocks(273,
    /// Hertz::from_khz(30.0))` for the standard FR1 100 MHz numerology.
    ///
    /// # Panics
    ///
    /// Panics if `resource_blocks` is zero.
    pub fn from_resource_blocks(resource_blocks: u32, spacing: Hertz) -> Self {
        assert!(resource_blocks > 0, "carrier needs at least one RB");
        let subcarriers = resource_blocks * 12;
        NrCarrier {
            bandwidth: spacing * f64::from(subcarriers),
            subcarriers,
        }
    }

    /// Occupied bandwidth.
    pub fn bandwidth(&self) -> Hertz {
        self.bandwidth
    }

    /// Number of subcarriers.
    pub fn subcarriers(&self) -> u32 {
        self.subcarriers
    }

    /// Effective subcarrier spacing `bandwidth / N_sc`.
    pub fn subcarrier_spacing(&self) -> Hertz {
        self.bandwidth / f64::from(self.subcarriers)
    }

    /// The dB factor `10·log10(N_sc)` between total power and
    /// per-subcarrier power.
    pub fn subcarrier_division(&self) -> Db {
        Db::new(10.0 * f64::from(self.subcarriers).log10())
    }

    /// Converts a total transmit power (EIRP) to per-subcarrier RSTP.
    pub fn per_subcarrier(&self, total: Dbm) -> Dbm {
        total - self.subcarrier_division()
    }

    /// Converts a per-subcarrier power back to a carrier total.
    pub fn total_power(&self, per_subcarrier: Dbm) -> Dbm {
        per_subcarrier + self.subcarrier_division()
    }

    /// Thermal noise floor per subcarrier: `−174 dBm/Hz + 10·log10(Δf)`.
    ///
    /// For the paper's 30 kHz effective spacing this is ≈ −129.2 dBm; the
    /// paper rounds further to −132 dBm, which callers can override in
    /// [`SnrModel`](crate::SnrModel).
    pub fn thermal_noise_per_subcarrier(&self) -> Dbm {
        Dbm::new(-174.0 + 10.0 * self.subcarrier_spacing().value().log10())
    }
}

impl Default for NrCarrier {
    /// Returns [`NrCarrier::paper_100mhz`].
    fn default() -> Self {
        NrCarrier::paper_100mhz()
    }
}

impl fmt::Display for NrCarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NR carrier, {} subcarriers",
            self.bandwidth, self.subcarriers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Watts;

    #[test]
    fn paper_carrier_values() {
        let c = NrCarrier::paper_100mhz();
        assert_eq!(c.subcarriers(), 3300);
        assert_eq!(c.bandwidth(), Hertz::from_mhz(100.0));
        // 10 log10(3300) = 35.19 dB
        assert!((c.subcarrier_division().value() - 35.185).abs() < 1e-3);
    }

    #[test]
    fn eirp_to_rstp_paper_values() {
        let c = NrCarrier::paper_100mhz();
        // HP: 64 dBm EIRP -> 28.8 dBm RSTP
        let hp = c.per_subcarrier(Dbm::new(64.0));
        assert!((hp.value() - 28.81).abs() < 0.01);
        // LP: 40 dBm EIRP -> 4.8 dBm RSTP
        let lp = c.per_subcarrier(Dbm::new(40.0));
        assert!((lp.value() - 4.81).abs() < 0.01);
    }

    #[test]
    fn per_subcarrier_total_round_trip() {
        let c = NrCarrier::paper_100mhz();
        let total = Dbm::from_watts(Watts::new(2500.0));
        let back = c.total_power(c.per_subcarrier(total));
        assert!((back.value() - total.value()).abs() < 1e-9);
    }

    #[test]
    fn resource_block_construction() {
        let c = NrCarrier::from_resource_blocks(273, Hertz::from_khz(30.0));
        assert_eq!(c.subcarriers(), 3276);
        assert!((c.bandwidth().megahertz() - 98.28).abs() < 0.01);
        assert_eq!(c.subcarrier_spacing(), Hertz::from_khz(30.0));
    }

    #[test]
    fn thermal_noise_close_to_paper_constant() {
        let c = NrCarrier::paper_100mhz();
        let n = c.thermal_noise_per_subcarrier().value();
        // kTB for ~30.3 kHz: about -129.2 dBm; paper rounds to -132 dBm.
        assert!((n - (-129.18)).abs() < 0.1, "got {n}");
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(NrCarrier::default(), NrCarrier::paper_100mhz());
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn zero_subcarriers_rejected() {
        let _ = NrCarrier::new(Hertz::from_mhz(100.0), 0);
    }

    #[test]
    fn display() {
        let c = NrCarrier::paper_100mhz();
        assert_eq!(c.to_string(), "100.000 MHz NR carrier, 3300 subcarriers");
    }
}
