//! Log-distance path loss baseline.

use corridor_units::{Db, Hertz, Meters};

use crate::{FreeSpace, PathLoss};

/// Log-distance path loss: free-space loss at a reference distance, then a
/// `10·n·log10(d/d0)` roll-off with configurable exponent `n`.
///
/// Used as an ablation baseline: railway corridors with mast-top pencil-beam
/// antennas are close to free-space (`n = 2`), but `n` in `[2, 4]` lets the
/// sensitivity of the max-ISD result to the environment be explored.
///
/// # Examples
///
/// ```
/// use corridor_propagation::{LogDistance, PathLoss};
/// use corridor_units::{Hertz, Meters};
///
/// let urban = LogDistance::new(Hertz::from_ghz(3.5), 3.5);
/// let suburban = LogDistance::new(Hertz::from_ghz(3.5), 2.2);
/// let d = Meters::new(500.0);
/// assert!(urban.attenuation(d) > suburban.attenuation(d));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogDistance {
    reference: FreeSpace,
    reference_distance: Meters,
    exponent: f64,
}

impl LogDistance {
    /// Creates a log-distance model with path-loss exponent `exponent` and a
    /// 1 m reference distance.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not strictly positive.
    pub fn new(frequency: Hertz, exponent: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        LogDistance {
            reference: FreeSpace::new(frequency),
            reference_distance: Meters::new(1.0),
            exponent,
        }
    }

    /// Overrides the reference distance `d0`.
    ///
    /// # Panics
    ///
    /// Panics if `reference_distance` is not strictly positive.
    #[must_use]
    pub fn with_reference_distance(mut self, reference_distance: Meters) -> Self {
        assert!(
            reference_distance.value() > 0.0,
            "reference distance must be positive"
        );
        self.reference_distance = reference_distance;
        self
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl PathLoss for LogDistance {
    fn attenuation(&self, distance: Meters) -> Db {
        let d = distance.abs().max(self.reference_distance).value();
        let d0 = self.reference_distance.value();
        self.reference.attenuation(self.reference_distance)
            + Db::new(10.0 * self.exponent * (d / d0).log10())
    }

    fn min_distance(&self) -> Meters {
        self.reference_distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_two_equals_free_space() {
        let ld = LogDistance::new(Hertz::from_ghz(3.5), 2.0);
        let fs = FreeSpace::new(Hertz::from_ghz(3.5));
        for d in [1.0, 10.0, 100.0, 1000.0] {
            let a = ld.attenuation(Meters::new(d)).value();
            let b = fs.attenuation(Meters::new(d)).value();
            assert!((a - b).abs() < 1e-9, "at {d} m: {a} vs {b}");
        }
    }

    #[test]
    fn higher_exponent_more_loss_beyond_reference() {
        let low = LogDistance::new(Hertz::from_ghz(3.5), 2.0);
        let high = LogDistance::new(Hertz::from_ghz(3.5), 4.0);
        assert!(high.attenuation(Meters::new(100.0)) > low.attenuation(Meters::new(100.0)));
        // equal exactly at the reference distance
        assert_eq!(
            high.attenuation(Meters::new(1.0)),
            low.attenuation(Meters::new(1.0))
        );
    }

    #[test]
    fn decade_adds_ten_n_db() {
        let ld = LogDistance::new(Hertz::from_ghz(3.5), 3.0);
        let l1 = ld.attenuation(Meters::new(10.0));
        let l2 = ld.attenuation(Meters::new(100.0));
        assert!(((l2 - l1).value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn reference_distance_clamps() {
        let ld =
            LogDistance::new(Hertz::from_ghz(3.5), 2.5).with_reference_distance(Meters::new(10.0));
        assert_eq!(ld.min_distance(), Meters::new(10.0));
        assert_eq!(
            ld.attenuation(Meters::new(2.0)),
            ld.attenuation(Meters::new(10.0))
        );
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn zero_exponent_rejected() {
        let _ = LogDistance::new(Hertz::from_ghz(3.5), 0.0);
    }
}
