//! Time durations.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Seconds per hour.
pub const SECONDS_PER_HOUR: f64 = 3600.0;
/// Hours per day.
pub const HOURS_PER_DAY: f64 = 24.0;

/// A duration in seconds.
///
/// # Examples
///
/// ```
/// use corridor_units::Seconds;
/// let pass = Seconds::new(16.2);
/// assert!((pass.hours().value() - 0.0045).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration of `value` seconds.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Seconds(value)
    }

    /// Returns the raw value in seconds.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts to hours.
    #[inline]
    pub fn hours(self) -> Hours {
        Hours(self.0 / SECONDS_PER_HOUR)
    }

    /// The larger of two durations.
    #[inline]
    #[must_use]
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    #[must_use]
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} s", self.0)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    #[inline]
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    #[inline]
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div for Seconds {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl From<Hours> for Seconds {
    #[inline]
    fn from(h: Hours) -> Seconds {
        Seconds(h.0 * SECONDS_PER_HOUR)
    }
}

/// A duration in hours.
///
/// # Examples
///
/// ```
/// use corridor_units::{Hours, Seconds};
/// let night = Hours::new(5.0);
/// let s: Seconds = night.into();
/// assert_eq!(s, Seconds::new(18_000.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hours(f64);

impl Hours {
    /// Zero hours.
    pub const ZERO: Hours = Hours(0.0);
    /// One full day (24 h).
    pub const DAY: Hours = Hours(HOURS_PER_DAY);

    /// Creates a duration of `value` hours.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Hours(value)
    }

    /// Returns the raw value in hours.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts to seconds.
    #[inline]
    pub fn seconds(self) -> Seconds {
        Seconds(self.0 * SECONDS_PER_HOUR)
    }

    /// The larger of two durations.
    #[inline]
    #[must_use]
    pub fn max(self, other: Hours) -> Hours {
        Hours(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    #[must_use]
    pub fn min(self, other: Hours) -> Hours {
        Hours(self.0.min(other.0))
    }
}

impl fmt::Display for Hours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} h", self.0)
    }
}

impl Add for Hours {
    type Output = Hours;
    #[inline]
    fn add(self, rhs: Hours) -> Hours {
        Hours(self.0 + rhs.0)
    }
}

impl AddAssign for Hours {
    #[inline]
    fn add_assign(&mut self, rhs: Hours) {
        self.0 += rhs.0;
    }
}

impl Sub for Hours {
    type Output = Hours;
    #[inline]
    fn sub(self, rhs: Hours) -> Hours {
        Hours(self.0 - rhs.0)
    }
}

impl SubAssign for Hours {
    #[inline]
    fn sub_assign(&mut self, rhs: Hours) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Hours {
    type Output = Hours;
    #[inline]
    fn mul(self, rhs: f64) -> Hours {
        Hours(self.0 * rhs)
    }
}

impl Div<f64> for Hours {
    type Output = Hours;
    #[inline]
    fn div(self, rhs: f64) -> Hours {
        Hours(self.0 / rhs)
    }
}

impl Div for Hours {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Hours) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Hours {
    fn sum<I: Iterator<Item = Hours>>(iter: I) -> Hours {
        iter.fold(Hours::ZERO, Add::add)
    }
}

impl From<Seconds> for Hours {
    #[inline]
    fn from(s: Seconds) -> Hours {
        s.hours()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let h = Hours::new(2.5);
        assert_eq!(Hours::from(h.seconds()), h);
        let s = Seconds::new(5400.0);
        assert_eq!(Seconds::from(s.hours()), s);
    }

    #[test]
    fn day_constant() {
        assert_eq!(Hours::DAY.value(), 24.0);
        assert_eq!(Hours::DAY.seconds(), Seconds::new(86_400.0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Hours::new(19.0) + Hours::new(5.0), Hours::DAY);
        assert_eq!(Hours::DAY - Hours::new(5.0), Hours::new(19.0));
        assert_eq!(Seconds::new(10.0) * 2.0, Seconds::new(20.0));
        assert_eq!(Seconds::new(10.0) / 2.0, Seconds::new(5.0));
        assert!((Hours::new(12.0) / Hours::DAY - 0.5).abs() < 1e-12);
        let t: Seconds = [Seconds::new(16.2); 8].into_iter().sum();
        assert!((t.value() - 129.6).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        assert_eq!(Seconds::new(1.0).max(Seconds::new(2.0)), Seconds::new(2.0));
        assert_eq!(Hours::new(1.0).min(Hours::new(2.0)), Hours::new(1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Seconds::new(16.2).to_string(), "16.20 s");
        assert_eq!(Hours::new(5.0).to_string(), "5.000 h");
    }

    #[test]
    fn total_cmp_sorts_nan_after_finite_times() {
        let mut v = [
            Seconds::new(f64::NAN),
            Seconds::new(30.0),
            Seconds::new(-1.0),
        ];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Seconds::new(-1.0));
        assert_eq!(v[1], Seconds::new(30.0));
        assert!(v[2].value().is_nan());
    }
}
