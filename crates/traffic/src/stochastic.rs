//! Stochastic and irregular traffic sources for the event-driven
//! simulator.
//!
//! The paper's energy numbers assume a perfectly regular timetable
//! (evenly spaced passes, fixed rolling stock). Real corridors are
//! messier: trains jitter around their slots, a fraction run late, fast
//! inter-city services interleave with slow regionals, and double-track
//! lines carry traffic in both directions. This module provides seeded,
//! reproducible generators for all of those patterns; the event-driven
//! corridor simulator (`corridor_events`) consumes their pass lists
//! directly.

use corridor_units::{KilometersPerHour, Meters, Seconds};
use rand::Rng;

use crate::{PoissonTimetable, Timetable, Train, TrainPass};

/// Seeded per-pass schedule perturbations: small symmetric jitter on
/// every pass plus occasional larger delays.
///
/// Jitter models the normal few-seconds slop around a slot; delays model
/// disrupted runs (a fraction `delay_probability` of passes is pushed
/// back by up to `max_delay`). Both draws come from the caller's RNG, so
/// a seeded generator reproduces the same disturbed day every time.
///
/// # Examples
///
/// ```
/// use corridor_traffic::{DelayModel, Timetable};
/// use corridor_units::Seconds;
/// use rand::SeedableRng;
///
/// let delays = DelayModel::new(0.2, Seconds::new(300.0), Seconds::new(15.0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let disturbed = delays.apply(&Timetable::paper_default().passes(), &mut rng);
/// assert_eq!(disturbed.len(), 152); // delays shift passes, never drop them
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DelayModel {
    delay_probability: f64,
    max_delay: Seconds,
    jitter: Seconds,
}

impl DelayModel {
    /// Creates a delay model.
    ///
    /// # Panics
    ///
    /// Panics if `delay_probability` is outside `[0, 1]` or a duration is
    /// negative.
    pub fn new(delay_probability: f64, max_delay: Seconds, jitter: Seconds) -> Self {
        assert!(
            (0.0..=1.0).contains(&delay_probability),
            "delay probability must be in [0, 1]"
        );
        assert!(max_delay.value() >= 0.0, "max delay must be non-negative");
        assert!(jitter.value() >= 0.0, "jitter must be non-negative");
        DelayModel {
            delay_probability,
            max_delay,
            jitter,
        }
    }

    /// A mildly disturbed day: ±15 s jitter on every pass, 10 % of
    /// passes delayed by up to 5 minutes.
    pub fn typical() -> Self {
        DelayModel::new(0.1, Seconds::new(300.0), Seconds::new(15.0))
    }

    /// Probability that a pass picks up a delay.
    pub fn delay_probability(&self) -> f64 {
        self.delay_probability
    }

    /// Largest possible delay per pass.
    pub fn max_delay(&self) -> Seconds {
        self.max_delay
    }

    /// Half-width of the symmetric per-pass jitter.
    pub fn jitter(&self) -> Seconds {
        self.jitter
    }

    /// Applies the model to a day of passes: every pass is jittered, a
    /// seeded fraction additionally delayed; the result is re-sorted by
    /// origin time (an overtaken slot stays a valid pass).
    pub fn apply<R: Rng + ?Sized>(&self, passes: &[TrainPass], rng: &mut R) -> Vec<TrainPass> {
        let mut out: Vec<TrainPass> = passes
            .iter()
            .map(|pass| {
                let mut t = pass.origin_time();
                if self.jitter.value() > 0.0 {
                    t += Seconds::new(rng.gen_range(-self.jitter.value()..self.jitter.value()));
                }
                if self.delay_probability > 0.0
                    && rng.gen_range(0.0..1.0) < self.delay_probability
                    && self.max_delay.value() > 0.0
                {
                    t += Seconds::new(rng.gen_range(0.0..self.max_delay.value()));
                }
                TrainPass::new(pass.train(), t.max(Seconds::ZERO))
            })
            .collect();
        out.sort_by(|a, b| a.origin_time().total_cmp(&b.origin_time()));
        out
    }
}

/// Interleaved service classes on one track: e.g. fast inter-city trains
/// sharing the corridor with slow regionals.
///
/// Each class is a full [`Timetable`] (own rate, rolling stock and
/// service window); the merged day is the union of all class passes,
/// sorted by origin time.
///
/// # Examples
///
/// ```
/// use corridor_traffic::MixedTimetable;
/// let mixed = MixedTimetable::paper_mixed();
/// // 6 fast + 2 slow per hour over 19 h
/// assert_eq!(mixed.passes().len(), 152);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MixedTimetable {
    services: Vec<Timetable>,
}

impl MixedTimetable {
    /// Creates a mixed timetable from service classes.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty.
    pub fn new(services: Vec<Timetable>) -> Self {
        assert!(!services.is_empty(), "mixed timetable needs a service");
        MixedTimetable { services }
    }

    /// The paper's corridor re-cast as a mixed service: 6 fast trains/h
    /// (400 m at 200 km/h) plus 2 slow regionals/h (150 m at 120 km/h),
    /// both over the 19 h service window. Total rate matches the paper's
    /// 8 trains/h.
    pub fn paper_mixed() -> Self {
        let fast = Timetable::paper_default();
        let slow_train = Train::new(
            Meters::new(150.0),
            KilometersPerHour::new(120.0).meters_per_second(),
        );
        let slow = Timetable::new(
            2.0,
            fast.service_window(),
            fast.service_start() + Seconds::new(225.0), // offset into the fast headway
            slow_train,
        );
        let fast = Timetable::new(
            6.0,
            fast.service_window(),
            fast.service_start(),
            fast.train(),
        );
        MixedTimetable::new(vec![fast, slow])
    }

    /// The service classes.
    pub fn services(&self) -> &[Timetable] {
        &self.services
    }

    /// Total trains per day across all classes.
    pub fn trains_per_day(&self) -> usize {
        self.services.iter().map(Timetable::trains_per_day).sum()
    }

    /// The merged day of passes, sorted by origin time.
    pub fn passes(&self) -> Vec<TrainPass> {
        let mut out: Vec<TrainPass> = self
            .services
            .iter()
            .flat_map(|service| service.passes())
            .collect();
        out.sort_by(|a, b| a.origin_time().total_cmp(&b.origin_time()));
        out
    }
}

/// A unified traffic source: every pattern the event-driven simulator can
/// replay, deterministic or seeded.
///
/// # Examples
///
/// ```
/// use corridor_traffic::{PoissonTimetable, Timetable, TrafficModel};
/// use rand::SeedableRng;
///
/// let det = TrafficModel::Deterministic(Timetable::paper_default());
/// assert!(!det.is_stochastic());
///
/// let poisson = TrafficModel::Poisson(PoissonTimetable::paper_rate());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let day = poisson.passes(&mut rng);
/// assert!(!day.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrafficModel {
    /// The paper's evenly spaced timetable.
    Deterministic(Timetable),
    /// Poisson arrivals at a mean rate.
    Poisson(PoissonTimetable),
    /// A deterministic base timetable with seeded jitter and delays.
    Jittered {
        /// The undisturbed timetable.
        base: Timetable,
        /// The perturbations applied to it.
        delays: DelayModel,
    },
    /// Interleaved fast/slow service classes (deterministic).
    Mixed(MixedTimetable),
}

impl TrafficModel {
    /// One day of passes. Deterministic variants ignore the RNG;
    /// stochastic ones draw from it (seed the RNG for reproducibility).
    pub fn passes<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<TrainPass> {
        match self {
            TrafficModel::Deterministic(timetable) => timetable.passes(),
            TrafficModel::Poisson(poisson) => poisson.sample_passes(rng),
            TrafficModel::Jittered { base, delays } => delays.apply(&base.passes(), rng),
            TrafficModel::Mixed(mixed) => mixed.passes(),
        }
    }

    /// True if sampled days differ (the model consumes randomness).
    pub fn is_stochastic(&self) -> bool {
        matches!(
            self,
            TrafficModel::Poisson(_) | TrafficModel::Jittered { .. }
        )
    }

    /// Expected trains per day.
    pub fn mean_trains_per_day(&self) -> f64 {
        match self {
            TrafficModel::Deterministic(t) => t.trains_per_day() as f64,
            TrafficModel::Poisson(p) => p.rate_per_hour() * p.service_window().value(),
            TrafficModel::Jittered { base, .. } => base.trains_per_day() as f64,
            TrafficModel::Mixed(m) => m.trains_per_day() as f64,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficModel::Deterministic(_) => "deterministic",
            TrafficModel::Poisson(_) => "poisson",
            TrafficModel::Jittered { .. } => "jittered",
            TrafficModel::Mixed(_) => "mixed",
        }
    }
}

/// Traffic on a bidirectional double-track corridor: one source per
/// direction.
///
/// Down-direction trains run the corridor mirrored (their head crosses
/// the *far* end at their origin time); the event-driven simulator
/// mirrors the coverage sections accordingly when computing occupancy.
///
/// # Examples
///
/// ```
/// use corridor_traffic::{DoubleTrack, Timetable, TrafficModel};
/// use rand::SeedableRng;
///
/// let line = DoubleTrack::new(
///     TrafficModel::Deterministic(Timetable::paper_default()),
///     TrafficModel::Deterministic(Timetable::paper_default()),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let (up, down) = line.sample(&mut rng);
/// assert_eq!(up.len() + down.len(), 304);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DoubleTrack {
    up: TrafficModel,
    down: TrafficModel,
}

impl DoubleTrack {
    /// A double-track line with the given per-direction sources.
    pub fn new(up: TrafficModel, down: TrafficModel) -> Self {
        DoubleTrack { up, down }
    }

    /// The up-direction source.
    pub fn up(&self) -> &TrafficModel {
        &self.up
    }

    /// The down-direction source.
    pub fn down(&self) -> &TrafficModel {
        &self.down
    }

    /// True if either direction consumes randomness.
    pub fn is_stochastic(&self) -> bool {
        self.up.is_stochastic() || self.down.is_stochastic()
    }

    /// Samples one day per direction: `(up_passes, down_passes)`. The up
    /// direction draws first, so a seeded RNG reproduces both streams.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<TrainPass>, Vec<TrainPass>) {
        (self.up.passes(rng), self.down.passes(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Hours;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn delay_model_preserves_count_and_order() {
        let delays = DelayModel::typical();
        let base = Timetable::paper_default().passes();
        let disturbed = delays.apply(&base, &mut rng(1));
        assert_eq!(disturbed.len(), base.len());
        for w in disturbed.windows(2) {
            assert!(w[0].origin_time() <= w[1].origin_time());
        }
    }

    #[test]
    fn delay_model_is_seeded() {
        let delays = DelayModel::typical();
        let base = Timetable::paper_default().passes();
        let a = delays.apply(&base, &mut rng(9));
        let b = delays.apply(&base, &mut rng(9));
        assert_eq!(a, b);
        let c = delays.apply(&base, &mut rng(10));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_model_is_identity() {
        let delays = DelayModel::new(0.0, Seconds::ZERO, Seconds::ZERO);
        let base = Timetable::paper_default().passes();
        assert_eq!(delays.apply(&base, &mut rng(4)), base);
    }

    #[test]
    fn delays_only_push_later_on_average() {
        let delays = DelayModel::new(1.0, Seconds::new(600.0), Seconds::ZERO);
        let base = Timetable::paper_default().passes();
        let disturbed = delays.apply(&base, &mut rng(2));
        let base_sum: f64 = base.iter().map(|p| p.origin_time().value()).sum();
        let new_sum: f64 = disturbed.iter().map(|p| p.origin_time().value()).sum();
        assert!(new_sum > base_sum);
        for (orig, moved) in base.iter().zip(&disturbed) {
            assert!(moved.origin_time() >= orig.origin_time());
        }
    }

    #[test]
    fn delay_accessors() {
        let d = DelayModel::new(0.25, Seconds::new(120.0), Seconds::new(5.0));
        assert_eq!(d.delay_probability(), 0.25);
        assert_eq!(d.max_delay(), Seconds::new(120.0));
        assert_eq!(d.jitter(), Seconds::new(5.0));
    }

    #[test]
    #[should_panic(expected = "delay probability")]
    fn invalid_probability_rejected() {
        let _ = DelayModel::new(1.5, Seconds::ZERO, Seconds::ZERO);
    }

    #[test]
    fn mixed_timetable_merges_sorted() {
        let mixed = MixedTimetable::paper_mixed();
        assert_eq!(mixed.services().len(), 2);
        assert_eq!(mixed.trains_per_day(), 152);
        let passes = mixed.passes();
        assert_eq!(passes.len(), 152);
        for w in passes.windows(2) {
            assert!(w[0].origin_time() <= w[1].origin_time());
        }
        // both rolling-stock classes appear
        let slow = passes
            .iter()
            .filter(|p| p.train().length() == Meters::new(150.0))
            .count();
        assert_eq!(slow, 38); // 2/h x 19 h
    }

    #[test]
    #[should_panic(expected = "needs a service")]
    fn empty_mixed_rejected() {
        let _ = MixedTimetable::new(Vec::new());
    }

    #[test]
    fn traffic_model_dispatch() {
        let det = TrafficModel::Deterministic(Timetable::paper_default());
        assert!(!det.is_stochastic());
        assert_eq!(det.label(), "deterministic");
        assert_eq!(det.mean_trains_per_day(), 152.0);
        assert_eq!(det.passes(&mut rng(0)), Timetable::paper_default().passes());

        let poisson = TrafficModel::Poisson(PoissonTimetable::paper_rate());
        assert!(poisson.is_stochastic());
        assert_eq!(poisson.label(), "poisson");
        assert_eq!(poisson.mean_trains_per_day(), 152.0);
        assert_eq!(poisson.passes(&mut rng(5)), poisson.passes(&mut rng(5)));

        let jittered = TrafficModel::Jittered {
            base: Timetable::paper_default(),
            delays: DelayModel::typical(),
        };
        assert!(jittered.is_stochastic());
        assert_eq!(jittered.label(), "jittered");
        assert_eq!(jittered.mean_trains_per_day(), 152.0);

        let mixed = TrafficModel::Mixed(MixedTimetable::paper_mixed());
        assert!(!mixed.is_stochastic());
        assert_eq!(mixed.label(), "mixed");
        assert_eq!(mixed.mean_trains_per_day(), 152.0);
    }

    #[test]
    fn double_track_samples_both_directions() {
        let line = DoubleTrack::new(
            TrafficModel::Deterministic(Timetable::paper_default()),
            TrafficModel::Poisson(PoissonTimetable::new(
                4.0,
                Hours::new(19.0),
                Hours::new(5.0).seconds(),
                Train::paper_default(),
            )),
        );
        assert!(line.is_stochastic());
        assert!(!line.up().is_stochastic());
        assert!(line.down().is_stochastic());
        let (up_a, down_a) = line.sample(&mut rng(11));
        let (up_b, down_b) = line.sample(&mut rng(11));
        assert_eq!(up_a.len(), 152);
        assert_eq!(up_a, up_b);
        assert_eq!(down_a, down_b);
    }
}
