//! The corridor SNR model (paper eq. (2)).

use corridor_propagation::PathLoss;
use corridor_units::{sum_power_dbm, Db, Dbm, Meters};

use crate::{NrCarrier, SignalSource};

/// SNR along the track, combining every signal source and noise contributor.
///
/// Implements paper eq. (2):
///
/// ```text
///            P_HP,left(d) + P_HP,right(d) + Σ P_LP,n(d)
/// SNR(d) = ─────────────────────────────────────────────
///            N_RSRP · NF_MT + Σ N_LP,n(d)
/// ```
///
/// where the numerator sums the *linear* received powers of all sources and
/// the denominator adds the terminal's thermal noise (floor × noise figure)
/// and the amplified noise received from every repeater.
///
/// The linear cell is single-frequency: all sources carry the *same* cell
/// signal, so their powers combine constructively (a distributed antenna
/// system), not as interference.
///
/// # Examples
///
/// ```
/// use corridor_link::{NrCarrier, SignalSource, SnrModel};
/// use corridor_propagation::CalibratedFriis;
/// use corridor_units::{Db, Dbm, Hertz, Meters};
///
/// let hp = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
/// let model = SnrModel::new(NrCarrier::paper_100mhz())
///     .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.8), hp));
/// let snr = model.snr_at(Meters::new(250.0)).unwrap();
/// assert!(snr.value() > 25.0 && snr.value() < 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnrModel<M> {
    carrier: NrCarrier,
    noise_floor: Dbm,
    terminal_noise_figure: Db,
    sources: Vec<SignalSource<M>>,
}

impl<M: PathLoss> SnrModel<M> {
    /// Paper value: thermal noise floor per subcarrier, −132 dBm.
    pub const PAPER_NOISE_FLOOR: Dbm = Dbm::new(-132.0);
    /// Paper value: mobile terminal noise figure, 5 dB.
    pub const PAPER_TERMINAL_NF: Db = Db::new(5.0);

    /// Creates an empty model with the paper's noise constants
    /// (−132 dBm floor, 5 dB terminal noise figure).
    pub fn new(carrier: NrCarrier) -> Self {
        SnrModel {
            carrier,
            noise_floor: Self::PAPER_NOISE_FLOOR,
            terminal_noise_figure: Self::PAPER_TERMINAL_NF,
            sources: Vec::new(),
        }
    }

    /// Overrides the per-subcarrier thermal noise floor `N_RSRP`.
    #[must_use]
    pub fn with_noise_floor(mut self, noise_floor: Dbm) -> Self {
        self.noise_floor = noise_floor;
        self
    }

    /// Overrides the mobile-terminal noise figure `NF_MT`.
    #[must_use]
    pub fn with_terminal_noise_figure(mut self, nf: Db) -> Self {
        self.terminal_noise_figure = nf;
        self
    }

    /// Adds a source (builder style).
    #[must_use]
    pub fn with_source(mut self, source: SignalSource<M>) -> Self {
        self.sources.push(source);
        self
    }

    /// Adds many sources (builder style).
    #[must_use]
    pub fn with_sources<I: IntoIterator<Item = SignalSource<M>>>(mut self, sources: I) -> Self {
        self.sources.extend(sources);
        self
    }

    /// Adds a source in place.
    pub fn add_source(&mut self, source: SignalSource<M>) {
        self.sources.push(source);
    }

    /// The carrier configuration.
    pub fn carrier(&self) -> &NrCarrier {
        &self.carrier
    }

    /// The configured noise floor.
    pub fn noise_floor(&self) -> Dbm {
        self.noise_floor
    }

    /// The configured terminal noise figure.
    pub fn terminal_noise_figure(&self) -> Db {
        self.terminal_noise_figure
    }

    /// All signal sources.
    pub fn sources(&self) -> &[SignalSource<M>] {
        &self.sources
    }

    /// The terminal's own noise: `N_RSRP · NF_MT`, independent of position.
    pub fn terminal_noise(&self) -> Dbm {
        self.noise_floor + self.terminal_noise_figure
    }

    /// Per-source RSRP at track position `at`.
    pub fn rsrp_per_source(&self, at: Meters) -> Vec<Dbm> {
        self.sources.iter().map(|s| s.rsrp_at(at)).collect()
    }

    /// Total received signal power at `at` (linear sum of all sources), or
    /// `None` if the model has no sources.
    pub fn total_signal_at(&self, at: Meters) -> Option<Dbm> {
        sum_power_dbm(self.sources.iter().map(|s| s.rsrp_at(at)))
    }

    /// Total noise power at `at`: terminal noise plus every repeater's
    /// received re-emitted noise.
    pub fn total_noise_at(&self, at: Meters) -> Dbm {
        let repeater_noise = self.sources.iter().filter_map(|s| s.received_noise_at(at));
        sum_power_dbm(repeater_noise.chain(std::iter::once(self.terminal_noise())))
            .unwrap_or_else(|| self.terminal_noise())
    }

    /// SNR at `at` (eq. (2)), or `None` if the model has no sources.
    pub fn snr_at(&self, at: Meters) -> Option<Db> {
        Some(self.total_signal_at(at)? - self.total_noise_at(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_propagation::CalibratedFriis;
    use corridor_units::Hertz;

    fn hp_model() -> CalibratedFriis {
        CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0))
    }

    fn lp_model() -> CalibratedFriis {
        CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(20.0))
    }

    fn hp_pair(isd: f64) -> SnrModel<CalibratedFriis> {
        SnrModel::new(NrCarrier::paper_100mhz())
            .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.81), hp_model()))
            .with_source(SignalSource::new(
                Meters::new(isd),
                Dbm::new(28.81),
                hp_model(),
            ))
    }

    #[test]
    fn empty_model_has_no_snr() {
        let m: SnrModel<CalibratedFriis> = SnrModel::new(NrCarrier::paper_100mhz());
        assert_eq!(m.snr_at(Meters::ZERO), None);
        assert_eq!(m.total_signal_at(Meters::ZERO), None);
    }

    #[test]
    fn terminal_noise_is_paper_value() {
        let m = hp_pair(500.0);
        assert_eq!(m.terminal_noise(), Dbm::new(-127.0));
    }

    #[test]
    fn conventional_midpoint_snr_exceeds_peak_threshold() {
        // At ISD 500 m the paper's conventional corridor maintains peak rate.
        let m = hp_pair(500.0);
        let snr = m.snr_at(Meters::new(250.0)).unwrap();
        assert!(snr.value() > 29.0, "got {snr}");
    }

    #[test]
    fn snr_symmetric_for_symmetric_deployment() {
        let m = hp_pair(500.0);
        let a = m.snr_at(Meters::new(100.0)).unwrap();
        let b = m.snr_at(Meters::new(400.0)).unwrap();
        assert!((a.value() - b.value()).abs() < 1e-9);
    }

    #[test]
    fn second_source_never_decreases_snr_without_noise() {
        let single = SnrModel::new(NrCarrier::paper_100mhz()).with_source(SignalSource::new(
            Meters::ZERO,
            Dbm::new(28.81),
            hp_model(),
        ));
        let pair = hp_pair(500.0);
        for d in [50.0, 150.0, 250.0, 400.0] {
            let s1 = single.snr_at(Meters::new(d)).unwrap();
            let s2 = pair.snr_at(Meters::new(d)).unwrap();
            assert!(s2 >= s1, "at {d} m: {s2} < {s1}");
        }
    }

    #[test]
    fn repeater_noise_raises_noise_level() {
        let repeater = SignalSource::new(Meters::new(250.0), Dbm::new(4.81), lp_model())
            .with_emitted_noise(Dbm::new(-124.0));
        let without = hp_pair(500.0);
        let with = without.clone().with_source(repeater);
        let at = Meters::new(250.0);
        assert!(with.total_noise_at(at) > without.total_noise_at(at));
        // ... but terminal noise still dominates far from the repeater,
        // since the emitted noise is re-attenuated by the path loss.
        let far = Meters::new(10.0);
        let delta = with.total_noise_at(far) - without.total_noise_at(far);
        assert!(delta.value() < 0.1, "noise delta {delta} too large");
    }

    #[test]
    fn builder_accessors() {
        let m = hp_pair(500.0)
            .with_noise_floor(Dbm::new(-129.2))
            .with_terminal_noise_figure(Db::new(7.0));
        assert_eq!(m.noise_floor(), Dbm::new(-129.2));
        assert_eq!(m.terminal_noise_figure(), Db::new(7.0));
        assert_eq!(m.sources().len(), 2);
        assert_eq!(m.rsrp_per_source(Meters::new(100.0)).len(), 2);
        let mut m2 = m.clone();
        m2.add_source(SignalSource::new(
            Meters::new(250.0),
            Dbm::new(4.81),
            lp_model(),
        ));
        assert_eq!(m2.sources().len(), 3);
    }

    #[test]
    fn total_signal_matches_manual_sum() {
        let m = hp_pair(2400.0);
        let at = Meters::new(777.0);
        let manual = corridor_units::sum_power_dbm(m.rsrp_per_source(at)).unwrap();
        let total = m.total_signal_at(at).unwrap();
        assert!((total.value() - manual.value()).abs() < 1e-12);
    }
}
