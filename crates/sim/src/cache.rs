//! Scenario-hash result cache: persisted per-cell report rows keyed by
//! a stable hash of everything that could change the row's bytes.
//!
//! A cache key is the SHA-256 of a canonical description of the work:
//! a code-version salt, the engine tag, the engine's configuration
//! (evaluator, wake policy, PV sizing, replication plan, search space —
//! whichever apply) and the cell's full parameter fingerprint, with
//! every `f64` contributing its exact bit pattern. Identical inputs
//! always map to the same key; perturbing any single axis value, seed,
//! policy or threshold changes the keys of exactly the affected cells,
//! so a dirty re-run recomputes only those.
//!
//! Each entry is one file under `root/<key[..2]>/<key>.entry`:
//!
//! ```text
//! corridor-result-cache v1\n
//! <sha256 of payload, hex>\n
//! <csv row bytes> 0x1f <json row bytes>
//! ```
//!
//! The payload carries the cell's row in *both* formats, so one
//! evaluation warms the CSV and JSON streams alike. Entries are written
//! to a temporary file and renamed into place (atomic on POSIX), and
//! verified against their embedded checksum on load — a corrupt or
//! truncated entry is treated as a miss and recomputed, never served.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use corridor_core::hash::sha256_hex;

use crate::stream::RowPair;
use crate::ScenarioCell;

/// Code-version salt baked into every key: bump the suffix whenever row
/// rendering or evaluation semantics change, so stale caches from older
/// builds can never be served.
const CACHE_SALT: &str = concat!("corridor-sim-", env!("CARGO_PKG_VERSION"), "-rows-v1");

const ENTRY_MAGIC: &str = "corridor-result-cache v1";

/// Separator between the CSV and JSON renderings in an entry payload
/// (ASCII unit separator — it can appear in neither rendering).
const PAYLOAD_SEP: u8 = 0x1f;

/// A directory of persisted result rows, shared by the streaming
/// engines.
///
/// # Examples
///
/// ```
/// use corridor_core::sink::{RowFormat, StringSink};
/// use corridor_sim::{ResultCache, ScenarioGrid, SweepEngine};
///
/// let dir = std::env::temp_dir().join("corridor-cache-doc");
/// let cache = ResultCache::open(&dir).unwrap();
/// let engine = SweepEngine::new().workers(1).pv_sizing(false);
/// let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0]);
///
/// let mut cold = StringSink::new();
/// engine.stream_with(&grid, RowFormat::Csv, &mut cold, Some(&cache)).unwrap();
///
/// let mut warm = StringSink::new();
/// let summary = engine.stream_with(&grid, RowFormat::Csv, &mut warm, Some(&cache)).unwrap();
/// assert_eq!(warm.as_str(), cold.as_str());
/// assert_eq!(summary.cache_hits, 2); // the warm run computed nothing
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    temp_seq: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the error of creating the root directory.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(ResultCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Lookups served from disk since this handle was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no (valid) entry since this handle was opened.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join(&key[..2]).join(format!("{key}.entry"))
    }

    /// Loads the row pair stored under `key`, or `None` on a miss — a
    /// missing file, a foreign or truncated entry, or a payload whose
    /// checksum no longer matches (silent corruption must recompute,
    /// never propagate).
    pub(crate) fn load(&self, key: &str) -> Option<RowPair> {
        let loaded = self.load_verified(key);
        match loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn load_verified(&self, key: &str) -> Option<RowPair> {
        let bytes = fs::read(self.entry_path(key)).ok()?;
        let (magic, rest) = split_line(&bytes)?;
        if magic != ENTRY_MAGIC.as_bytes() {
            return None;
        }
        let (checksum, payload) = split_line(rest)?;
        let checksum = core::str::from_utf8(checksum).ok()?;
        if sha256_hex(payload) != checksum {
            return None;
        }
        let sep = payload.iter().position(|&b| b == PAYLOAD_SEP)?;
        Some(RowPair {
            csv: String::from_utf8(payload[..sep].to_vec()).ok()?,
            json: String::from_utf8(payload[sep + 1..].to_vec()).ok()?,
        })
    }

    /// Persists `rows` under `key`, best-effort: the cache is an
    /// optimization, so a full disk or permission error must not abort
    /// a sweep — the next run simply misses again.
    pub(crate) fn store(&self, key: &str, rows: &RowPair) {
        let _ = self.try_store(key, rows);
    }

    fn try_store(&self, key: &str, rows: &RowPair) -> io::Result<()> {
        let path = self.entry_path(key);
        let dir = path
            .parent()
            .ok_or_else(|| io::Error::other("cache entry path has no parent directory"))?;
        fs::create_dir_all(dir)?;
        let mut payload = Vec::with_capacity(rows.csv.len() + 1 + rows.json.len());
        payload.extend_from_slice(rows.csv.as_bytes());
        payload.push(PAYLOAD_SEP);
        payload.extend_from_slice(rows.json.as_bytes());
        let mut entry = Vec::with_capacity(ENTRY_MAGIC.len() + 1 + 64 + 1 + payload.len());
        entry.extend_from_slice(ENTRY_MAGIC.as_bytes());
        entry.push(b'\n');
        entry.extend_from_slice(sha256_hex(&payload).as_bytes());
        entry.push(b'\n');
        entry.extend_from_slice(&payload);
        // temp + rename: readers only ever see complete entries
        let temp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&temp, &entry)?;
        fs::rename(&temp, &path)
    }
}

fn split_line(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let at = bytes.iter().position(|&b| b == b'\n')?;
    Some((&bytes[..at], &bytes[at + 1..]))
}

/// Builds canonical key strings field by field and hashes them. The
/// canonical form is `label=value;` pairs; every `f64` is written as
/// its exact bit pattern, so keys never depend on decimal formatting.
pub(crate) struct KeyBuilder {
    raw: String,
}

impl KeyBuilder {
    /// Starts a key for one engine's work unit.
    pub(crate) fn new(engine: &str) -> Self {
        let mut raw = String::with_capacity(256);
        raw.push_str(CACHE_SALT);
        raw.push(';');
        raw.push_str("engine=");
        raw.push_str(engine);
        raw.push(';');
        KeyBuilder { raw }
    }

    pub(crate) fn text(&mut self, label: &str, value: &str) -> &mut Self {
        use core::fmt::Write as _;
        // length-prefix free-form text so adjacent fields cannot collide
        let _ = write!(self.raw, "{label}={}:{value};", value.len());
        self
    }

    pub(crate) fn int(&mut self, label: &str, value: u64) -> &mut Self {
        use core::fmt::Write as _;
        let _ = write!(self.raw, "{label}={value};");
        self
    }

    pub(crate) fn f64(&mut self, label: &str, value: f64) -> &mut Self {
        use core::fmt::Write as _;
        let _ = write!(self.raw, "{label}={:016x};", value.to_bits());
        self
    }

    /// Appends the cell's full fingerprint: grid position, every axis
    /// value, the power models and the climate. Locations are
    /// fingerprinted by name — the built-in climates have distinct
    /// names, and custom ones must too for caching to be sound.
    pub(crate) fn cell(&mut self, cell: &ScenarioCell) -> &mut Self {
        let params = cell.params();
        let lp = params.lp_node();
        let hp = params.hp_mast();
        self.int("cell", cell.index() as u64)
            .f64("tph", cell.trains_per_hour())
            .f64("window", cell.service_window_h())
            .f64("speed", cell.train_speed_kmh())
            .f64("length", cell.train_length_m())
            .f64("spacing", cell.lp_spacing_m())
            .f64("conv_isd", cell.conventional_isd_m())
            .text("profile", cell.profile_name())
            .f64("lp_pmax", lp.p_max().value())
            .f64("lp_dp", lp.delta_p())
            .f64("lp_sleep", lp.p_sleep().value())
            .f64("hp_pmax", hp.p_max().value())
            .f64("hp_dp", hp.delta_p())
            .f64("hp_sleep", hp.p_sleep().value())
            .text("climate", cell.location().name())
            .int("nodes", cell.nodes() as u64)
            .f64("isd", cell.isd().value())
    }

    /// Hashes the canonical string into the entry key.
    pub(crate) fn finish(&self) -> String {
        sha256_hex(self.raw.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_core::ScenarioParams;
    use corridor_solar::climate;
    use corridor_units::Meters;

    fn pair() -> RowPair {
        RowPair {
            csv: "1,2,3\n".to_owned(),
            json: "  {\"cell\": 1}".to_owned(),
        }
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("corridor-cache-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_load_roundtrips() {
        let cache = temp_cache("roundtrip");
        let key = sha256_hex(b"some-key");
        assert!(cache.load(&key).is_none());
        cache.store(&key, &pair());
        assert_eq!(cache.load(&key).unwrap(), pair());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_and_truncated_entries_miss() {
        let cache = temp_cache("corrupt");
        let key = sha256_hex(b"entry");
        cache.store(&key, &pair());
        let path = cache.entry_path(&key);

        // flip a payload byte → checksum mismatch
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&key).is_none());

        // truncate mid-checksum → structurally invalid
        fs::write(&path, &fs::read(&path).unwrap()[..30]).unwrap();
        assert!(cache.load(&key).is_none());

        // wrong magic → foreign file, never parsed further
        fs::write(&path, b"not-a-cache-entry\nwhatever\npayload").unwrap();
        assert!(cache.load(&key).is_none());

        // a fresh store heals the slot
        cache.store(&key, &pair());
        assert_eq!(cache.load(&key).unwrap(), pair());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn payload_may_contain_newlines() {
        // optimizer CSV chunks are multi-line; the entry format must
        // treat everything after the checksum line as payload
        let cache = temp_cache("multiline");
        let key = sha256_hex(b"multiline");
        let rows = RowPair {
            csv: "a,b\nc,d\ne,f\n".to_owned(),
            json: "  {\"x\": [1,\n2]}".to_owned(),
        };
        cache.store(&key, &rows);
        assert_eq!(cache.load(&key).unwrap(), rows);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn key_builder_separates_fields_and_bits() {
        let base = KeyBuilder::new("sweep").finish();
        assert_ne!(base, KeyBuilder::new("mc").finish());
        // adjacent text fields cannot collide thanks to length prefixes
        let mut a = KeyBuilder::new("sweep");
        a.text("p", "ab").text("q", "c");
        let mut b = KeyBuilder::new("sweep");
        b.text("p", "a").text("q", "bc");
        assert_ne!(a.finish(), b.finish());
        // f64 keys are bit-exact: 0.1 + 0.2 != 0.3
        let mut x = KeyBuilder::new("sweep");
        x.f64("v", 0.1 + 0.2);
        let mut y = KeyBuilder::new("sweep");
        y.f64("v", 0.3);
        assert_ne!(x.finish(), y.finish());
    }

    #[test]
    fn cell_fingerprint_tracks_every_axis() {
        let cell = |isd: f64| {
            ScenarioCell::new(
                0,
                ScenarioParams::paper_default(),
                climate::berlin(),
                "paper".to_owned(),
                10,
                Meters::new(isd),
            )
        };
        let key_of = |c: &ScenarioCell| {
            let mut k = KeyBuilder::new("sweep");
            k.cell(c);
            k.finish()
        };
        assert_eq!(key_of(&cell(2650.0)), key_of(&cell(2650.0)));
        assert_ne!(key_of(&cell(2650.0)), key_of(&cell(2600.0)));
    }
}
