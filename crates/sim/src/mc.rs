//! Monte-Carlo replication sweeps: seeded stochastic days at grid scale,
//! folded into per-cell statistics with confidence intervals.
//!
//! The deterministic sweep ([`SweepEngine`](crate::SweepEngine)) gives
//! one number per cell; this module gives each cell a *distribution*. A
//! [`ReplicationPlan`] selects a stochastic traffic pattern
//! ([`TrafficSpec`]), a replication count and a master seed; the
//! [`McEngine`] expands every [`ScenarioGrid`] cell into
//! `(cell × replication)` work items with [`SeedSequence`]-derived RNG
//! streams, replays each seeded day through the event-driven backend (one
//! prepared [`SegmentReplicator`] per cell geometry, reused across all of
//! the cell's seeds), and folds the daily metrics through streaming
//! [`Welford`] accumulators into a [`McReport`] — mean, standard
//! deviation, 95 % confidence interval, min and max per cell and metric,
//! rendered by deterministic CSV/JSON writers that are byte-identical
//! regardless of worker count.

use corridor_core::sink::{RowEmitter, RowFormat, RowSink, SinkResult, StringSink};
use corridor_core::stats::{SummaryStats, Welford};
use corridor_core::{EnergyStrategy, ScenarioError};
use corridor_events::{EventDrivenEvaluator, NodeKind, SegmentReplicator, WakePolicy};
use corridor_traffic::{DelayModel, PoissonTimetable, SeedSequence, Timetable, TrafficModel};
use rand::SeedableRng;
use rayon::prelude::*;

use core::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::cache::{KeyBuilder, ResultCache};
use crate::report::{csv_field, json_string};
use crate::stream::{self, ChunkRows, RowPair, StreamError, StreamSummary};
use crate::{ScenarioCell, ScenarioGrid};

/// Which stochastic traffic pattern every replication samples, applied
/// per cell (each cell's own timetable density, train and service window
/// parameterize the pattern).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSpec {
    /// The cell's deterministic timetable (every replication replays the
    /// same day — useful as a zero-variance control).
    Deterministic,
    /// Poisson arrivals at the cell's mean rate over the cell's service
    /// window.
    Poisson,
    /// The cell's timetable with seeded jitter and delays applied.
    Jittered(DelayModel),
}

impl TrafficSpec {
    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficSpec::Deterministic => "deterministic",
            TrafficSpec::Poisson => "poisson",
            TrafficSpec::Jittered(_) => "jittered",
        }
    }

    /// Instantiates the pattern for one cell's timetable.
    pub fn model_for(&self, timetable: &Timetable) -> TrafficModel {
        match self {
            TrafficSpec::Deterministic => TrafficModel::Deterministic(*timetable),
            TrafficSpec::Poisson => TrafficModel::Poisson(PoissonTimetable::new(
                timetable.trains_per_hour(),
                timetable.service_window(),
                timetable.service_start(),
                timetable.train(),
            )),
            TrafficSpec::Jittered(delays) => TrafficModel::Jittered {
                base: *timetable,
                delays: *delays,
            },
        }
    }
}

/// How a grid is replicated: traffic pattern, replication count and the
/// master seed every per-work-item RNG stream derives from.
///
/// # Examples
///
/// ```
/// use corridor_sim::{McEngine, ReplicationPlan, ScenarioGrid};
///
/// let plan = ReplicationPlan::new(10).master_seed(7);
/// let report = McEngine::new().workers(2).run(&ScenarioGrid::new(), &plan).unwrap();
/// assert_eq!(report.len(), 1);
/// assert_eq!(report.replications(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPlan {
    replications: usize,
    seeds: SeedSequence,
    traffic: TrafficSpec,
}

impl ReplicationPlan {
    /// A plan of `replications` Poisson days per cell, master seed 42.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero (statistics over nothing).
    pub fn new(replications: usize) -> Self {
        assert!(replications > 0, "replication count must be positive");
        ReplicationPlan {
            replications,
            seeds: SeedSequence::new(42),
            traffic: TrafficSpec::Poisson,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.seeds = SeedSequence::new(seed);
        self
    }

    /// Sets the traffic pattern.
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Replications per cell.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The seed-splitting sequence (`derive(cell, replication)` gives
    /// every work item its stream).
    pub fn seeds(&self) -> SeedSequence {
        self.seeds
    }

    /// The traffic pattern.
    pub fn traffic_spec(&self) -> TrafficSpec {
        self.traffic
    }
}

/// The per-cell metrics a Monte-Carlo run aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McMetric {
    /// Train passes sampled for the day.
    Passes,
    /// Conventional-baseline energy, Wh per hour per km (sleep-mode
    /// masts at the cell's conventional ISD).
    BaselineWhKm,
    /// Sleep-mode deployment energy, Wh per hour per km.
    SleepWhKm,
    /// Sleep-mode savings versus the day's own baseline, in percent.
    SavingSleepPct,
    /// Daily energy of one service repeater, Wh (the paper's headline
    /// 124.1 Wh/day quantity).
    RepeaterWhDay,
}

impl McMetric {
    /// Every metric, in report column order.
    pub const ALL: [McMetric; 5] = [
        McMetric::Passes,
        McMetric::BaselineWhKm,
        McMetric::SleepWhKm,
        McMetric::SavingSleepPct,
        McMetric::RepeaterWhDay,
    ];

    /// Position of this metric in [`McMetric::ALL`] — and therefore in
    /// every per-cell stats array (the tie is pinned by a unit test).
    pub const fn index(self) -> usize {
        match self {
            McMetric::Passes => 0,
            McMetric::BaselineWhKm => 1,
            McMetric::SleepWhKm => 2,
            McMetric::SavingSleepPct => 3,
            McMetric::RepeaterWhDay => 4,
        }
    }

    /// The stable column-name stem used by the writers.
    pub fn key(&self) -> &'static str {
        match self {
            McMetric::Passes => "passes",
            McMetric::BaselineWhKm => "baseline_wh_km",
            McMetric::SleepWhKm => "sleep_wh_km",
            McMetric::SavingSleepPct => "saving_sleep_pct",
            McMetric::RepeaterWhDay => "repeater_wh_day",
        }
    }
}

/// One simulated day reduced to the tracked metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DaySample {
    values: [f64; 5],
}

/// The aggregated statistics of one cell over all its replications.
#[derive(Debug, Clone, PartialEq)]
pub struct McCellResult {
    cell: ScenarioCell,
    stats: [SummaryStats; 5],
}

impl McCellResult {
    /// The cell these statistics describe.
    pub fn cell(&self) -> &ScenarioCell {
        &self.cell
    }

    /// The statistics of one metric.
    pub fn stats(&self, metric: McMetric) -> &SummaryStats {
        &self.stats[metric.index()]
    }
}

/// The prepared per-cell contexts plus the flat `(cell, seed)` work
/// list, in deterministic `(cell, replication)` order.
type ExpandedPlan = (Vec<CellContext>, Vec<(usize, u64)>);

/// Everything a cell's replications need, prepared once: the cell, its
/// traffic model, and prebuilt deployment/baseline simulators.
struct CellContext {
    cell: ScenarioCell,
    model: TrafficModel,
    deployment: SegmentReplicator,
    baseline: SegmentReplicator,
}

impl CellContext {
    fn new(cell: ScenarioCell, spec: TrafficSpec, policy: WakePolicy) -> Self {
        let params = cell.params();
        let evaluator = EventDrivenEvaluator::with_policy(policy);
        CellContext {
            model: spec.model_for(params.timetable()),
            deployment: evaluator.replicator(params, cell.nodes(), cell.isd()),
            baseline: evaluator.replicator(params, 0, params.conventional_isd()),
            cell,
        }
    }

    /// Samples one seeded day and reduces it to the tracked metrics.
    fn sample_day(&self, seed: u64) -> DaySample {
        let params = self.cell.params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let passes = self.model.passes(&mut rng);

        let deployment_report = self.deployment.simulate_day(&passes);
        let baseline_report = self.baseline.simulate_day(&passes);
        let sleep = EventDrivenEvaluator::power_from_report(
            params,
            self.cell.nodes(),
            self.cell.isd(),
            EnergyStrategy::SleepModeRepeaters,
            &deployment_report,
        );
        let baseline = EventDrivenEvaluator::power_from_report(
            params,
            0,
            params.conventional_isd(),
            EnergyStrategy::SleepModeRepeaters,
            &baseline_report,
        );

        let service: Vec<f64> = deployment_report
            .nodes_of(NodeKind::ServiceRepeater)
            .map(|node| node.trace().daily_energy(params.lp_node()).value())
            .collect();
        let repeater_wh = if service.is_empty() {
            0.0
        } else {
            service.iter().sum::<f64>() / service.len() as f64
        };

        DaySample {
            values: [
                passes.len() as f64,
                baseline.total().value(),
                sleep.total().value(),
                // a zero-traffic day has a zero baseline; savings_vs
                // returns 0.0 by convention instead of NaN-poisoning
                // the whole cell's statistics
                sleep.savings_vs(&baseline) * 100.0,
                repeater_wh,
            ],
        }
    }
}

/// Executes [`ReplicationPlan`]s over [`ScenarioGrid`]s, serially or on
/// the worker pool.
///
/// The expensive part — simulating seeded days — runs in parallel over
/// the `(cell × replication)` work items; the statistical fold is serial
/// and in fixed `(cell, replication)` order, so the resulting
/// [`McReport`] (and its CSV/JSON renderings) is byte-identical no
/// matter how many workers produced the samples.
///
/// # Examples
///
/// ```
/// use corridor_sim::{McEngine, McMetric, ReplicationPlan, ScenarioGrid};
///
/// let plan = ReplicationPlan::new(25);
/// let report = McEngine::new().workers(1).run(&ScenarioGrid::new(), &plan).unwrap();
/// let headline = report.results()[0].stats(McMetric::RepeaterWhDay);
/// // the replicated Poisson days bracket the analytic 124.07 Wh/day
/// assert!((headline.mean - 124.07).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEngine {
    workers: Option<usize>,
    policy: WakePolicy,
}

impl McEngine {
    /// An engine with automatic worker count and instant wake
    /// transitions (the differential reference policy).
    pub fn new() -> Self {
        McEngine {
            workers: None,
            policy: WakePolicy::instant(),
        }
    }

    /// Sets an explicit worker count (an explicit `0` is rejected by
    /// [`McEngine::run`], mirroring [`SweepEngine`](crate::SweepEngine)).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the wake policy every simulated day runs under.
    #[must_use]
    pub fn wake_policy(mut self, policy: WakePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Expands `grid × plan` into work items and evaluates them on the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::ZeroWorkers`] for an explicit worker
    /// count of zero, [`ScenarioError::WorkerPoolBuild`] if the pool
    /// cannot be built, or the [`ScenarioError`] of the first cell
    /// whose parameters fail validation.
    pub fn run(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
    ) -> Result<McReport, ScenarioError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers);
        }
        let (contexts, items) = self.expand(grid, plan)?;
        let pool = crate::engine::build_pool(self.workers)?;
        let samples: Vec<DaySample> = pool.install(|| {
            items
                .par_iter()
                .map(|&(cell, seed)| contexts[cell].sample_day(seed))
                .collect()
        });
        Ok(Self::fold(contexts, samples, plan))
    }

    /// Evaluates every work item on the calling thread — the reference
    /// path the parallel results are checked against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`McEngine::run`].
    pub fn run_serial(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
    ) -> Result<McReport, ScenarioError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers);
        }
        let (contexts, items) = self.expand(grid, plan)?;
        let samples: Vec<DaySample> = items
            .iter()
            .map(|&(cell, seed)| contexts[cell].sample_day(seed))
            .collect();
        Ok(Self::fold(contexts, samples, plan))
    }

    /// Streams the whole grid into `sink` in grid order without
    /// materializing the report; the emitted bytes are identical to
    /// [`McEngine::run`] + [`McReport::to_csv`] / [`McReport::to_json`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`McEngine::run`], plus
    /// [`StreamError::Sink`] if the sink refuses a row.
    pub fn stream(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
        format: RowFormat,
        sink: &mut dyn RowSink,
    ) -> Result<StreamSummary, StreamError> {
        self.stream_with(grid, plan, format, sink, None)
    }

    /// [`McEngine::stream`] with an optional [`ResultCache`] keyed by
    /// the scenario hash, the plan (traffic, replications, master seed)
    /// and the wake policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`McEngine::stream`].
    pub fn stream_with(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
        format: RowFormat,
        sink: &mut dyn RowSink,
        cache: Option<&ResultCache>,
    ) -> Result<StreamSummary, StreamError> {
        let mut rows = RowEmitter::begin(sink, format, MC_CSV_HEADER).map_err(StreamError::Sink)?;
        let summary = self.stream_rows(grid, plan, 0..grid.len(), format, cache, |row| {
            rows.row(row).map_err(StreamError::Sink)
        })?;
        rows.finish().map_err(StreamError::Sink)?;
        Ok(summary)
    }

    /// Streams the raw rows of a cell range to `emit`, without header or
    /// framing (the `serve` shard primitive). One work item is one cell:
    /// its replications are sampled in plan order on a single worker, so
    /// the folded statistics are bit-identical to the in-memory path.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches past the grid's length.
    ///
    /// # Errors
    ///
    /// Same conditions as [`McEngine::stream`]; an `Err` from `emit`
    /// cancels the remaining evaluation and is returned.
    pub fn stream_rows(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
        range: core::ops::Range<usize>,
        format: RowFormat,
        cache: Option<&ResultCache>,
        mut emit: impl FnMut(&str) -> Result<(), StreamError>,
    ) -> Result<StreamSummary, StreamError> {
        let workers = stream::resolve_workers(self.workers)?;
        stream::drive(
            workers,
            range,
            format,
            |index| self.stream_cell(grid, plan, index, cache),
            &mut emit,
        )
    }

    /// Evaluates (or loads) one cell for the streaming path.
    fn stream_cell(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
        index: usize,
        cache: Option<&ResultCache>,
    ) -> Result<ChunkRows, ScenarioError> {
        let cell = grid.cell_at(index)?;
        let key = match cache {
            Some(store) => {
                let key = self.cache_key(&cell, plan);
                if let Some(pair) = store.load(&key) {
                    return Ok(ChunkRows {
                        rows: vec![pair],
                        cache_hits: 1,
                        cache_misses: 0,
                    });
                }
                key
            }
            None => String::new(),
        };
        let result = evaluate_mc_cell(cell, plan, self.policy);
        let traffic = plan.traffic_spec().label();
        let (reps, seed) = (plan.replications(), plan.seeds().master());
        let pair = RowPair {
            csv: render_mc_row(&result, traffic, reps, seed, RowFormat::Csv),
            json: render_mc_row(&result, traffic, reps, seed, RowFormat::Json),
        };
        if let Some(store) = cache {
            store.store(&key, &pair);
        }
        Ok(ChunkRows {
            rows: vec![pair],
            cache_hits: 0,
            cache_misses: u64::from(cache.is_some()),
        })
    }

    /// The scenario hash of one cell under this engine and plan.
    fn cache_key(&self, cell: &ScenarioCell, plan: &ReplicationPlan) -> String {
        let mut key = KeyBuilder::new("mc");
        key.text("traffic", plan.traffic_spec().label())
            .int("reps", plan.replications() as u64)
            .int("seed", plan.seeds().master())
            .f64("lead", self.policy.lead().value())
            .f64("wake", self.policy.wake_delay().value())
            .f64("guard", self.policy.guard().value());
        if let TrafficSpec::Jittered(model) = plan.traffic_spec() {
            key.f64("jitter", model.jitter().value())
                .f64("delay_p", model.delay_probability())
                .f64("max_delay", model.max_delay().value());
        }
        key.cell(cell);
        key.finish()
    }

    /// Builds the per-cell contexts and the flat `(cell, seed)` work
    /// list, in deterministic `(cell, replication)` order.
    fn expand(
        &self,
        grid: &ScenarioGrid,
        plan: &ReplicationPlan,
    ) -> Result<ExpandedPlan, ScenarioError> {
        let contexts: Vec<CellContext> = grid
            .expand()?
            .into_iter()
            .map(|cell| CellContext::new(cell, plan.traffic_spec(), self.policy))
            .collect();
        let mut items = Vec::with_capacity(contexts.len() * plan.replications());
        for cell in 0..contexts.len() {
            for seed in plan.seeds().cell_seeds(cell as u64, plan.replications()) {
                items.push((cell, seed));
            }
        }
        Ok((contexts, items))
    }

    /// Folds the flat sample list into per-cell statistics, serially and
    /// in work-item order — the step that makes reports byte-identical
    /// across worker counts.
    fn fold(
        contexts: Vec<CellContext>,
        samples: Vec<DaySample>,
        plan: &ReplicationPlan,
    ) -> McReport {
        let reps = plan.replications();
        let results = contexts
            .into_iter()
            .enumerate()
            .map(|(index, context)| {
                let mut accumulators = [Welford::new(); 5];
                for sample in &samples[index * reps..(index + 1) * reps] {
                    for (acc, value) in accumulators.iter_mut().zip(sample.values) {
                        acc.push(value);
                    }
                }
                McCellResult {
                    cell: context.cell,
                    stats: accumulators.map(|acc| acc.summary()),
                }
            })
            .collect();
        McReport {
            results,
            traffic: plan.traffic_spec().label(),
            replications: reps,
            master_seed: plan.seeds().master(),
        }
    }
}

impl Default for McEngine {
    /// Returns [`McEngine::new`].
    fn default() -> Self {
        McEngine::new()
    }
}

/// The CSV header [`McReport::to_csv`] writes: the cell axis labels, the
/// plan, then `mean/stddev/ci95/min/max` per metric.
pub const MC_CSV_HEADER: &str = "cell,trains_per_hour,service_window_h,train_speed_kmh,\
train_length_m,lp_spacing_m,conventional_isd_m,power_profile,climate,nodes,deployment_isd_m,\
traffic,replications,master_seed,\
passes_mean,passes_stddev,passes_ci95,passes_min,passes_max,\
baseline_wh_km_mean,baseline_wh_km_stddev,baseline_wh_km_ci95,baseline_wh_km_min,baseline_wh_km_max,\
sleep_wh_km_mean,sleep_wh_km_stddev,sleep_wh_km_ci95,sleep_wh_km_min,sleep_wh_km_max,\
saving_sleep_pct_mean,saving_sleep_pct_stddev,saving_sleep_pct_ci95,saving_sleep_pct_min,saving_sleep_pct_max,\
repeater_wh_day_mean,repeater_wh_day_stddev,repeater_wh_day_ci95,repeater_wh_day_min,repeater_wh_day_max";

/// The statistics of a whole Monte-Carlo run, in grid order, with
/// deterministic CSV/JSON writers.
///
/// # Examples
///
/// ```
/// use corridor_sim::{McEngine, ReplicationPlan, ScenarioGrid, MC_CSV_HEADER};
///
/// let report = McEngine::new()
///     .workers(1)
///     .run(&ScenarioGrid::new(), &ReplicationPlan::new(5))
///     .unwrap();
/// let csv = report.to_csv();
/// assert!(csv.starts_with(MC_CSV_HEADER));
/// assert_eq!(csv.lines().count(), 2); // header + one cell
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct McReport {
    results: Vec<McCellResult>,
    traffic: &'static str,
    replications: usize,
    master_seed: u64,
}

impl McReport {
    /// The per-cell statistics, in grid order.
    pub fn results(&self) -> &[McCellResult] {
        &self.results
    }

    /// Number of aggregated cells.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the report holds no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The traffic pattern label of the plan that produced this report.
    pub fn traffic(&self) -> &'static str {
        self.traffic
    }

    /// Replications per cell.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The plan's master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Total simulated cell-days (`cells × replications` — the unit of
    /// the `mc` bench's throughput metric).
    pub fn cell_days(&self) -> usize {
        self.results.len() * self.replications
    }

    /// Streams the report's rows into `sink` in grid order, returning
    /// the row count; byte-identical to [`McReport::to_csv`] /
    /// [`McReport::to_json`].
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`](corridor_core::sink::SinkError).
    pub fn stream_into(&self, format: RowFormat, sink: &mut dyn RowSink) -> SinkResult<u64> {
        let mut rows = RowEmitter::begin(sink, format, MC_CSV_HEADER)?;
        for r in &self.results {
            rows.row(&render_mc_row(
                r,
                self.traffic,
                self.replications,
                self.master_seed,
                format,
            ))?;
        }
        rows.finish()
    }

    /// Renders the report as CSV ([`MC_CSV_HEADER`] plus one line per
    /// cell).
    pub fn to_csv(&self) -> String {
        StringSink::render(64 + 400 * self.results.len(), |sink| {
            self.stream_into(RowFormat::Csv, sink)
        })
    }

    /// Renders the report as a JSON array of cell objects.
    pub fn to_json(&self) -> String {
        StringSink::render(64 + 700 * self.results.len(), |sink| {
            self.stream_into(RowFormat::Json, sink)
        })
    }

    /// Writes [`McReport::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Writes [`McReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Evaluates one cell's whole replication set on the calling thread, in
/// plan order — the same `(cell, replication)` ordering as the engine's
/// flat work list, so the folded statistics are bit-identical to the
/// in-memory path's for the same cell.
pub(crate) fn evaluate_mc_cell(
    cell: ScenarioCell,
    plan: &ReplicationPlan,
    policy: WakePolicy,
) -> McCellResult {
    let index = cell.index() as u64;
    let context = CellContext::new(cell, plan.traffic_spec(), policy);
    let mut accumulators = [Welford::new(); 5];
    for seed in plan.seeds().cell_seeds(index, plan.replications()) {
        let sample = context.sample_day(seed);
        for (acc, value) in accumulators.iter_mut().zip(sample.values) {
            acc.push(value);
        }
    }
    McCellResult {
        cell: context.cell,
        stats: accumulators.map(|acc| acc.summary()),
    }
}

/// Renders one cell's Monte-Carlo statistics as a report row. The plan
/// metadata (`traffic`, `replications`, `master_seed`) rides along in
/// every row, so a row renders identically whether it comes from an
/// in-memory [`McReport`] or a streaming evaluation.
pub(crate) fn render_mc_row(
    r: &McCellResult,
    traffic: &str,
    replications: usize,
    master_seed: u64,
    format: RowFormat,
) -> String {
    let c = r.cell();
    match format {
        RowFormat::Csv => {
            let mut out = String::with_capacity(400);
            let _ = write!(
                out,
                "{},{},{},{:.1},{},{},{},{},{},{},{:.0},{},{},{}",
                c.index(),
                c.trains_per_hour(),
                c.service_window_h(),
                c.train_speed_kmh(),
                c.train_length_m(),
                c.lp_spacing_m(),
                c.conventional_isd_m(),
                csv_field(c.profile_name()),
                csv_field(c.location().name()),
                c.nodes(),
                c.isd().value(),
                traffic,
                replications,
                master_seed,
            );
            for metric in McMetric::ALL {
                let s = r.stats(metric);
                let _ = write!(
                    out,
                    ",{:.4},{:.4},{:.4},{:.4},{:.4}",
                    s.mean, s.stddev, s.ci95, s.min, s.max
                );
            }
            out.push('\n');
            out
        }
        RowFormat::Json => {
            let mut out = String::with_capacity(700);
            out.push_str("  {");
            let _ = write!(
                out,
                "\"cell\": {}, \"trains_per_hour\": {}, \"service_window_h\": {}, \
                 \"train_speed_kmh\": {:.1}, \"train_length_m\": {}, \"lp_spacing_m\": {}, \
                 \"conventional_isd_m\": {}, \"power_profile\": {}, \"climate\": {}, \
                 \"nodes\": {}, \"deployment_isd_m\": {}, \"traffic\": {}, \
                 \"replications\": {}, \"master_seed\": {}, \"stats\": {{",
                c.index(),
                c.trains_per_hour(),
                c.service_window_h(),
                c.train_speed_kmh(),
                c.train_length_m(),
                c.lp_spacing_m(),
                c.conventional_isd_m(),
                json_string(c.profile_name()),
                json_string(c.location().name()),
                c.nodes(),
                c.isd().value(),
                json_string(traffic),
                replications,
                master_seed,
            );
            for (j, metric) in McMetric::ALL.into_iter().enumerate() {
                let s = r.stats(metric);
                let _ = write!(
                    out,
                    "{}{}: {{\"mean\": {:.4}, \"stddev\": {:.4}, \"ci95\": {:.4}, \
                     \"min\": {:.4}, \"max\": {:.4}}}",
                    if j == 0 { "" } else { ", " },
                    json_string(metric.key()),
                    s.mean,
                    s.stddev,
                    s.ci95,
                    s.min,
                    s.max,
                );
            }
            out.push_str("}}");
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Seconds;

    fn small_plan() -> ReplicationPlan {
        ReplicationPlan::new(5).master_seed(7)
    }

    #[test]
    fn metric_index_matches_all_order() {
        for (i, metric) in McMetric::ALL.into_iter().enumerate() {
            assert_eq!(metric.index(), i, "{metric:?}");
        }
    }

    #[test]
    fn plan_accessors_and_defaults() {
        let plan = ReplicationPlan::new(25);
        assert_eq!(plan.replications(), 25);
        assert_eq!(plan.seeds().master(), 42);
        assert_eq!(plan.traffic_spec(), TrafficSpec::Poisson);
        let custom = plan
            .master_seed(9)
            .traffic(TrafficSpec::Jittered(DelayModel::typical()));
        assert_eq!(custom.seeds().master(), 9);
        assert_eq!(custom.traffic_spec().label(), "jittered");
    }

    #[test]
    #[should_panic(expected = "replication count must be positive")]
    fn zero_replications_rejected() {
        let _ = ReplicationPlan::new(0);
    }

    #[test]
    fn traffic_spec_instantiates_per_cell() {
        let timetable = Timetable::paper_default();
        assert_eq!(TrafficSpec::Deterministic.label(), "deterministic");
        assert!(!TrafficSpec::Deterministic
            .model_for(&timetable)
            .is_stochastic());
        let poisson = TrafficSpec::Poisson.model_for(&timetable);
        assert!(poisson.is_stochastic());
        assert_eq!(poisson.mean_trains_per_day(), 152.0);
        assert!(TrafficSpec::Jittered(DelayModel::typical())
            .model_for(&timetable)
            .is_stochastic());
    }

    #[test]
    fn explicit_zero_workers_is_rejected() {
        let engine = McEngine::new().workers(0);
        let err = engine.run(&ScenarioGrid::new(), &small_plan()).unwrap_err();
        assert_eq!(err, ScenarioError::ZeroWorkers);
        let err = engine
            .run_serial(&ScenarioGrid::new(), &small_plan())
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroWorkers);
    }

    #[test]
    fn invalid_cell_propagates_scenario_error() {
        let grid = ScenarioGrid::new().lp_spacings_m(vec![0.0]);
        let err = McEngine::new()
            .workers(1)
            .run(&grid, &small_plan())
            .unwrap_err();
        assert_eq!(err, ScenarioError::NonPositiveSpacing);
    }

    #[test]
    fn deterministic_traffic_has_zero_variance() {
        let plan = small_plan().traffic(TrafficSpec::Deterministic);
        let report = McEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &plan)
            .unwrap();
        let r = &report.results()[0];
        for metric in McMetric::ALL {
            let s = r.stats(metric);
            assert_eq!(s.n, 5);
            assert_eq!(s.stddev, 0.0, "{}", metric.key());
            assert_eq!(s.min, s.max, "{}", metric.key());
        }
        // 8 trains/h x 19 h, every day
        assert_eq!(r.stats(McMetric::Passes).mean, 152.0);
        assert_eq!(report.cell_days(), 5);
    }

    #[test]
    fn paper_wake_policy_costs_more_than_instant() {
        let plan = small_plan().traffic(TrafficSpec::Deterministic);
        let grid = ScenarioGrid::new();
        let instant = McEngine::new().workers(1).run(&grid, &plan).unwrap();
        let padded = McEngine::new()
            .workers(1)
            .wake_policy(WakePolicy::paper_default())
            .run(&grid, &plan)
            .unwrap();
        let i = instant.results()[0].stats(McMetric::SleepWhKm).mean;
        let p = padded.results()[0].stats(McMetric::SleepWhKm).mean;
        assert!(p > i, "padded {p} <= instant {i}");
    }

    #[test]
    fn report_metadata_and_writers() {
        let report = McEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &small_plan())
            .unwrap();
        assert_eq!(report.traffic(), "poisson");
        assert_eq!(report.replications(), 5);
        assert_eq!(report.master_seed(), 7);
        assert!(!report.is_empty());

        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], MC_CSV_HEADER);
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "row/header column mismatch"
        );

        let json = report.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"traffic\": \"poisson\""));
        for metric in McMetric::ALL {
            assert!(json.contains(&format!("\"{}\":", metric.key())), "{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn file_writers_roundtrip() {
        let report = McEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &small_plan())
            .unwrap();
        let dir = std::env::temp_dir();
        let csv_path = dir.join("corridor_sim_mc_test.csv");
        let json_path = dir.join("corridor_sim_mc_test.json");
        report.write_csv(&csv_path).unwrap();
        report.write_json(&json_path).unwrap();
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), report.to_csv());
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            report.to_json()
        );
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(json_path);
    }

    #[test]
    fn zero_traffic_days_do_not_poison_statistics() {
        // a degenerate cell whose Poisson rate rounds to ~1 train per
        // day: many sampled days carry zero trains, so the baseline
        // consumes nothing — savings must stay finite (the savings_vs
        // zero-baseline convention) and the fold NaN-free
        let grid = ScenarioGrid::new().trains_per_hour(vec![0.06]);
        let report = McEngine::new()
            .workers(2)
            .run(&grid, &ReplicationPlan::new(16).master_seed(1))
            .unwrap();
        let r = &report.results()[0];
        assert!(
            r.stats(McMetric::Passes).min == 0.0,
            "wanted a zero-train day"
        );
        for metric in McMetric::ALL {
            let s = r.stats(metric);
            for value in [s.mean, s.stddev, s.ci95, s.min, s.max] {
                assert!(value.is_finite(), "{}: {value}", metric.key());
            }
        }
    }

    #[test]
    fn jittered_plan_shifts_but_keeps_all_passes() {
        let plan = small_plan().traffic(TrafficSpec::Jittered(DelayModel::new(
            0.5,
            Seconds::new(120.0),
            Seconds::new(10.0),
        )));
        let report = McEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &plan)
            .unwrap();
        let passes = report.results()[0].stats(McMetric::Passes);
        // jitter never drops a slot
        assert_eq!(passes.min, 152.0);
        assert_eq!(passes.max, 152.0);
    }
}
