//! EARTH load-dependent power models and equipment catalogs.
//!
//! Cellular infrastructure power consumption is modelled with the
//! parameterized linear model of the EU FP7 EARTH project (paper eq. (3)):
//!
//! ```text
//! P_in = P0 + Δp · Pmax · χ     for load χ ∈ (0, 1]
//!      = P_sleep                for χ = 0 (sleep mode)
//! ```
//!
//! * [`LoadDependentPower`] — the model itself, with [`OperatingState`]
//!   distinguishing *sleep* from *idle* (awake, no traffic, `P0`) and
//!   *active* (traffic at load χ);
//! * [`catalog`] — the paper's Table II parameter sets for the high-power
//!   RRH and the low-power repeater node;
//! * [`RepeaterBill`] — the component-level breakdown of the repeater
//!   prototype (paper Table I);
//! * [`DutyCycle`] — time-weighted average power and daily energy for a
//!   node that switches between states as trains pass.
//!
//! # Examples
//!
//! ```
//! use corridor_power::{catalog, DutyCycle, OperatingState};
//! use corridor_units::Hours;
//!
//! let repeater = catalog::low_power_repeater();
//! // full-load: P0 + Δp·Pmax = 24.26 + 4.0·1.0 = 28.26 W (paper rounds 28.38)
//! let full = repeater.input_power(OperatingState::full_load());
//! assert!((full.value() - 28.26).abs() < 1e-9);
//!
//! // a repeater active 0.456 h/day and asleep otherwise:
//! let duty = DutyCycle::over_day(Hours::new(0.456), Hours::ZERO);
//! let daily = duty.daily_energy(&repeater);
//! assert!((daily.value() - 124.0).abs() < 1.0); // paper: 124.1 Wh/day
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod components;
mod duty;
mod model;

pub use components::{ComponentRole, RepeaterBill, RepeaterComponent};
pub use duty::{DutyCycle, DutyCycleError};
pub use model::{LoadDependentPower, OperatingState};
