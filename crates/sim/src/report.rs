//! Typed sweep results with deterministic CSV and JSON writers.

use core::fmt::Write as _;
use std::io;
use std::path::Path;

use corridor_core::sink::{RowEmitter, RowFormat, RowSink, SinkResult, StringSink};
use corridor_core::EnergyStrategy;

use crate::{CellResult, PvOutcome};

/// The CSV header [`SweepReport::to_csv`] writes.
pub const CSV_HEADER: &str = "cell,trains_per_hour,service_window_h,train_speed_kmh,\
train_length_m,lp_spacing_m,conventional_isd_m,power_profile,climate,nodes,deployment_isd_m,\
evaluator,baseline_wh_km,continuous_wh_km,sleep_wh_km,solar_wh_km,\
sleep_hp_wh_km,sleep_service_wh_km,sleep_donor_wh_km,\
saving_continuous_pct,saving_sleep_pct,saving_solar_pct,pv_wp,battery_wh,days_full_pct";

/// The evaluated results of a sweep, in grid order.
///
/// The writers use fixed-precision formatting, so a report's CSV/JSON
/// rendering is byte-identical for identical results — the property the
/// determinism tests pin across worker counts.
///
/// # Examples
///
/// ```
/// use corridor_sim::{ScenarioGrid, SweepEngine};
///
/// let report = SweepEngine::new().pv_sizing(false).run(&ScenarioGrid::new()).unwrap();
/// let csv = report.to_csv();
/// assert!(csv.starts_with("cell,trains_per_hour"));
/// assert_eq!(csv.lines().count(), 2); // header + one cell
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    results: Vec<CellResult>,
}

impl SweepReport {
    /// Wraps evaluated results (kept in grid order by the engine).
    pub fn new(results: Vec<CellResult>) -> Self {
        SweepReport { results }
    }

    /// The per-cell results, in grid order.
    pub fn results(&self) -> &[CellResult] {
        &self.results
    }

    /// Number of evaluated cells.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the report holds no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Mean fractional savings of a strategy across all cells.
    pub fn mean_savings(&self, strategy: EnergyStrategy) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .map(|r| r.savings(strategy))
            .sum::<f64>()
            / self.results.len() as f64
    }

    /// The cell with the highest savings under `strategy`, if any.
    ///
    /// Non-finite savings (still producible by a custom
    /// [`PowerProfile`](crate::PowerProfile) carrying NaN/∞ powers, which
    /// sidestep the zero-baseline convention of
    /// [`SegmentEnergy::savings_vs`](corridor_core::energy::SegmentEnergy::savings_vs))
    /// rank below every finite value, so a poisoned cell can never be
    /// "best" and the comparison never panics. Ties keep the later grid
    /// cell, a deterministic total order via [`f64::total_cmp`].
    pub fn best_cell(&self, strategy: EnergyStrategy) -> Option<&CellResult> {
        let key = |r: &CellResult| {
            let savings = r.savings(strategy);
            // NaN *and* +inf demote (a -inf deployed energy yields +inf
            // "savings", which must not outrank any finite cell)
            if savings.is_finite() {
                savings
            } else {
                f64::NEG_INFINITY
            }
        };
        self.results.iter().max_by(|a, b| key(a).total_cmp(&key(b)))
    }

    /// Streams the report's rows into `sink` in grid order, returning
    /// the row count. The output is byte-identical to
    /// [`SweepReport::to_csv`] / [`SweepReport::to_json`] — those
    /// writers are this method pointed at a [`StringSink`].
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`](corridor_core::sink::SinkError).
    pub fn stream_into(&self, format: RowFormat, sink: &mut dyn RowSink) -> SinkResult<u64> {
        let mut rows = RowEmitter::begin(sink, format, CSV_HEADER)?;
        for r in &self.results {
            rows.row(&render_sweep_row(r, format))?;
        }
        rows.finish()
    }

    /// Renders the report as CSV ([`CSV_HEADER`] plus one line per cell).
    pub fn to_csv(&self) -> String {
        StringSink::render(64 + 160 * self.results.len(), |sink| {
            self.stream_into(RowFormat::Csv, sink)
        })
    }

    /// Renders the report as a JSON array of cell objects.
    pub fn to_json(&self) -> String {
        StringSink::render(64 + 320 * self.results.len(), |sink| {
            self.stream_into(RowFormat::Json, sink)
        })
    }

    /// Writes [`SweepReport::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Writes [`SweepReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Renders one sweep result as a report row: CSV rows carry their own
/// trailing newline; JSON rows start with two spaces of indent and
/// carry no separators (the emitter owns `,\n`).
pub(crate) fn render_sweep_row(r: &CellResult, format: RowFormat) -> String {
    match format {
        RowFormat::Csv => sweep_csv_row(r),
        RowFormat::Json => sweep_json_row(r),
    }
}

fn sweep_csv_row(r: &CellResult) -> String {
    let c = r.cell();
    let (pv_wp, battery_wh, days_full) = match r.pv() {
        PvOutcome::Skipped => (String::new(), String::new(), String::new()),
        PvOutcome::Unsolvable => ("-".into(), "-".into(), "-".into()),
        PvOutcome::Sized {
            pv_wp,
            battery_wh,
            days_full_pct,
        } => (
            format!("{pv_wp:.0}"),
            format!("{battery_wh:.0}"),
            format!("{days_full_pct:.2}"),
        ),
    };
    let sleep = r.split(EnergyStrategy::SleepModeRepeaters);
    let mut out = String::with_capacity(160);
    let _ = writeln!(
        out,
        "{},{},{},{:.1},{},{},{},{},{},{},{:.0},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2},{:.2},{:.2},{pv_wp},{battery_wh},{days_full}",
        c.index(),
        c.trains_per_hour(),
        c.service_window_h(),
        c.train_speed_kmh(),
        c.train_length_m(),
        c.lp_spacing_m(),
        c.conventional_isd_m(),
        csv_field(c.profile_name()),
        csv_field(c.location().name()),
        c.nodes(),
        c.isd().value(),
        r.evaluator(),
        r.baseline().total().value(),
        r.split(EnergyStrategy::ContinuousRepeaters).total().value(),
        sleep.total().value(),
        r.split(EnergyStrategy::SolarPoweredRepeaters).total().value(),
        sleep.hp.value(),
        sleep.service.value(),
        sleep.donor.value(),
        r.savings(EnergyStrategy::ContinuousRepeaters) * 100.0,
        r.savings(EnergyStrategy::SleepModeRepeaters) * 100.0,
        r.savings(EnergyStrategy::SolarPoweredRepeaters) * 100.0,
    );
    out
}

fn sweep_json_row(r: &CellResult) -> String {
    let c = r.cell();
    let sleep = r.split(EnergyStrategy::SleepModeRepeaters);
    let mut out = String::with_capacity(320);
    out.push_str("  {");
    let _ = write!(
        out,
        "\"cell\": {}, \"trains_per_hour\": {}, \"service_window_h\": {}, \
         \"train_speed_kmh\": {:.1}, \"train_length_m\": {}, \"lp_spacing_m\": {}, \
         \"conventional_isd_m\": {}, \"power_profile\": {}, \"climate\": {}, \
         \"nodes\": {}, \"deployment_isd_m\": {}, \"evaluator\": {}, \
         \"baseline_wh_km\": {:.3}, \"continuous_wh_km\": {:.3}, \
         \"sleep_wh_km\": {:.3}, \"solar_wh_km\": {:.3}, \
         \"sleep_split_wh_km\": {{\"hp\": {:.3}, \"service\": {:.3}, \"donor\": {:.3}}}, \
         \"saving_pct\": {{\"continuous\": {:.2}, \"sleep\": {:.2}, \"solar\": {:.2}}}, ",
        c.index(),
        c.trains_per_hour(),
        c.service_window_h(),
        c.train_speed_kmh(),
        c.train_length_m(),
        c.lp_spacing_m(),
        c.conventional_isd_m(),
        json_string(c.profile_name()),
        json_string(c.location().name()),
        c.nodes(),
        c.isd().value(),
        json_string(r.evaluator()),
        r.baseline().total().value(),
        r.split(EnergyStrategy::ContinuousRepeaters).total().value(),
        sleep.total().value(),
        r.split(EnergyStrategy::SolarPoweredRepeaters)
            .total()
            .value(),
        sleep.hp.value(),
        sleep.service.value(),
        sleep.donor.value(),
        r.savings(EnergyStrategy::ContinuousRepeaters) * 100.0,
        r.savings(EnergyStrategy::SleepModeRepeaters) * 100.0,
        r.savings(EnergyStrategy::SolarPoweredRepeaters) * 100.0,
    );
    match r.pv() {
        PvOutcome::Skipped => out.push_str("\"pv_status\": \"skipped\"}"),
        PvOutcome::Unsolvable => out.push_str("\"pv_status\": \"unsolvable\"}"),
        PvOutcome::Sized {
            pv_wp,
            battery_wh,
            days_full_pct,
        } => {
            let _ = write!(
                out,
                "\"pv_status\": \"sized\", \"pv_wp\": {pv_wp:.0}, \
                 \"battery_wh\": {battery_wh:.0}, \"days_full_pct\": {days_full_pct:.2}}}"
            );
        }
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline
/// (RFC 4180): names like `PowerProfile::custom("2x2,mimo", …)` must not
/// shift the column layout.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Quotes a string for JSON (the report only emits short ASCII names).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioGrid, SweepEngine};
    use corridor_solar::climate;

    fn small_report() -> SweepReport {
        SweepEngine::new()
            .workers(1)
            .pv_sizing(false)
            .run(&ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0]))
            .unwrap()
    }

    #[test]
    fn csv_shape_and_header() {
        let report = small_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines[0].split(',').count(), 25);
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 25, "{line}");
            assert!(line.contains(",analytic,"), "{line}");
        }
        // skipped PV → empty trailing columns
        assert!(lines[1].ends_with(",,,"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let report = small_report();
        let json = report.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"cell\":").count(), 2);
        assert_eq!(json.matches("\"evaluator\": \"analytic\"").count(), 2);
        assert_eq!(json.matches("\"pv_status\": \"skipped\"").count(), 2);
        // balanced braces (no nested strings with braces in this report)
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn summary_helpers() {
        let report = small_report();
        let mean = report.mean_savings(EnergyStrategy::SleepModeRepeaters);
        assert!(mean > 0.5 && mean < 1.0);
        let best = report
            .best_cell(EnergyStrategy::SleepModeRepeaters)
            .unwrap();
        // fewer trains → longer sleep → higher savings
        assert_eq!(best.cell().trains_per_hour(), 4.0);
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        assert!(SweepReport::new(Vec::new()).is_empty());
        assert_eq!(
            SweepReport::new(Vec::new()).mean_savings(EnergyStrategy::SleepModeRepeaters),
            0.0
        );
        assert!(SweepReport::new(Vec::new())
            .best_cell(EnergyStrategy::SleepModeRepeaters)
            .is_none());
    }

    #[test]
    fn best_cell_survives_non_finite_savings() {
        use crate::{CellResult, ScenarioCell};
        use corridor_core::energy::SegmentEnergy;
        use corridor_core::ScenarioParams;
        use corridor_units::{Meters, Watts};

        let split = |w: f64| SegmentEnergy {
            hp: Watts::new(w),
            service: Watts::ZERO,
            donor: Watts::ZERO,
        };
        let cell_with = |index: usize, deployed_w: f64| {
            let cell = ScenarioCell::new(
                index,
                ScenarioParams::paper_default(),
                climate::berlin(),
                "nan-profile".to_owned(),
                10,
                Meters::new(2650.0),
            );
            let e = split(deployed_w);
            // finite positive baseline: savings = 1 - deployed/400, so a
            // NaN/inf deployed energy flows straight into the savings
            // (the pre-PR-4 reachability via custom PowerProfiles)
            CellResult::new(cell, "analytic", split(400.0), e, e, e, PvOutcome::Skipped)
        };
        let report = SweepReport::new(vec![
            cell_with(0, f64::NAN),          // savings NaN
            cell_with(1, 100.0),             // savings 0.75 — the real winner
            cell_with(2, f64::INFINITY),     // savings -inf
            cell_with(3, 200.0),             // savings 0.5
            cell_with(4, f64::NEG_INFINITY), // savings +inf — must not win
        ]);
        // regression: this used to panic on partial_cmp of NaN
        let best = report
            .best_cell(EnergyStrategy::SleepModeRepeaters)
            .unwrap();
        assert_eq!(best.cell().index(), 1);
        assert!((best.savings(EnergyStrategy::SleepModeRepeaters) - 0.75).abs() < 1e-12);

        // an all-non-finite report still yields a deterministic winner
        let poisoned = SweepReport::new(vec![cell_with(0, f64::NAN), cell_with(1, f64::INFINITY)]);
        let best = poisoned
            .best_cell(EnergyStrategy::SleepModeRepeaters)
            .unwrap();
        assert_eq!(best.cell().index(), 1);
    }

    #[test]
    fn file_writers_roundtrip() {
        let report = small_report();
        let dir = std::env::temp_dir();
        let csv_path = dir.join("corridor_sim_report_test.csv");
        let json_path = dir.join("corridor_sim_report_test.json");
        report.write_csv(&csv_path).unwrap();
        report.write_json(&json_path).unwrap();
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), report.to_csv());
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            report.to_json()
        );
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(json_path);
    }

    #[test]
    fn sized_pv_lands_in_both_writers() {
        let report = SweepEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new().locations(vec![climate::madrid()]))
            .unwrap();
        let csv = report.to_csv();
        assert!(csv.lines().nth(1).unwrap().contains(",540,720,"), "{csv}");
        assert!(report.to_json().contains("\"pv_status\": \"sized\""));
    }

    #[test]
    fn csv_escapes_awkward_axis_names() {
        use crate::PowerProfile;
        use corridor_power::catalog;
        let grid = ScenarioGrid::new().power_profiles(vec![PowerProfile::custom(
            "2x2,\"mimo\"",
            catalog::high_power_mast(),
            catalog::low_power_repeater_measured(),
        )]);
        let report = SweepEngine::new()
            .workers(1)
            .pv_sizing(false)
            .run(&grid)
            .unwrap();
        let csv = report.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains("\"2x2,\"\"mimo\"\"\""), "{row}");
        // the quoted field keeps the column count at 25 for a CSV parser
        // (naive comma splitting sees the extra comma inside the quotes)
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("a\tb"), "\"a\\u0009b\"");
    }
}
