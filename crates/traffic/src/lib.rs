//! Train traffic, section occupancy and sleep-mode duty computation.
//!
//! The paper's energy results hinge on *when equipment can sleep*: a node
//! serving a track section is at full load only while a train overlaps that
//! section (detected by a photoelectric barrier) and can sleep otherwise.
//! This crate provides:
//!
//! * [`Train`] and [`TrainPass`] — kinematics of a train running along the
//!   corridor;
//! * [`Timetable`] — the paper's deterministic service pattern (8 trains/h
//!   for 19 h, 5 h night pause) and a Poisson alternative
//!   ([`PoissonTimetable`]) for sensitivity studies;
//! * [`TrafficModel`] and friends ([`DelayModel`], [`MixedTimetable`],
//!   [`DoubleTrack`]) — seeded stochastic and irregular traffic sources
//!   for the event-driven corridor simulator;
//! * [`SeedSequence`] — SplitMix64 seed-splitting that gives every
//!   `(cell, replication)` work item of a Monte-Carlo sweep its own
//!   decorrelated RNG stream;
//! * [`TrackSection`] — a coverage section with entry/exit occupancy
//!   computation;
//! * [`ActivityTimeline`] — merged busy intervals for a node over a day,
//!   convertible to full-load hours, including wake-latency effects of the
//!   barrier-triggered sleep controller ([`WakeController`]).
//!
//! # Examples
//!
//! ```
//! use corridor_traffic::{Timetable, TrackSection, ActivityTimeline};
//! use corridor_units::Meters;
//!
//! let timetable = Timetable::paper_default(); // 8 trains/h, 19 h service
//! let section = TrackSection::new(Meters::ZERO, Meters::new(500.0));
//! let activity = ActivityTimeline::for_section(&section, &timetable.passes());
//! // paper: HP RRH at 500 m ISD is at full load 2.85 % of the day
//! let frac = activity.total_active().value() / 86_400.0;
//! assert!((frac - 0.0285).abs() < 0.0005);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod schedule;
mod section;
mod seed;
mod stochastic;
mod train;
mod wake;

pub use activity::ActivityTimeline;
pub use schedule::{PoissonTimetable, Timetable};
pub use section::TrackSection;
pub use seed::SeedSequence;
pub use stochastic::{DelayModel, DoubleTrack, MixedTimetable, TrafficModel};
pub use train::{Train, TrainPass};
pub use wake::WakeController;
