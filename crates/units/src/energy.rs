//! Electrical power and energy quantities.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::{Hours, Seconds};

/// Electrical power in watts.
///
/// # Examples
///
/// ```
/// use corridor_units::{Hours, Watts};
/// let repeater = Watts::new(4.72);            // sleep-mode draw
/// let energy = repeater * Hours::new(24.0);   // one day
/// assert!((energy.value() - 113.28).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Watts(f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power of `value` watts.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Watts(value)
    }

    /// Returns the raw value in watts.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Returns the value in kilowatts.
    #[inline]
    pub fn kilowatts(self) -> f64 {
        self.0 / 1e3
    }

    /// Energy consumed at this power over `duration`.
    #[inline]
    pub fn energy_over(self, duration: Hours) -> WattHours {
        WattHours::new(self.0 * duration.value())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    #[inline]
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    #[inline]
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl SubAssign for Watts {
    #[inline]
    fn sub_assign(&mut self, rhs: Watts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Watts {
    type Output = Watts;
    #[inline]
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Mul<Watts> for f64 {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Watts) -> Watts {
        Watts(self * rhs.0)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Div for Watts {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Hours> for Watts {
    type Output = WattHours;
    #[inline]
    fn mul(self, rhs: Hours) -> WattHours {
        WattHours(self.0 * rhs.value())
    }
}

impl Mul<Seconds> for Watts {
    type Output = WattHours;
    #[inline]
    fn mul(self, rhs: Seconds) -> WattHours {
        WattHours(self.0 * rhs.hours().value())
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, Add::add)
    }
}

/// Electrical energy in watt-hours.
///
/// # Examples
///
/// ```
/// use corridor_units::{Hours, WattHours};
/// let battery = WattHours::new(720.0);
/// let avg = battery / Hours::new(24.0);
/// assert!((avg.value() - 30.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WattHours(f64);

impl WattHours {
    /// Zero energy.
    pub const ZERO: WattHours = WattHours(0.0);

    /// Creates an energy of `value` watt-hours.
    #[inline]
    pub const fn new(value: f64) -> Self {
        WattHours(value)
    }

    /// Returns the raw value in watt-hours.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total order over the raw value, as [`f64::total_cmp`]: NaN sorts
    /// after `+inf`, so comparison-based searches order NaN last instead
    /// of panicking or silently dropping elements.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Returns the value in kilowatt-hours.
    #[inline]
    pub fn kilowatt_hours(self) -> f64 {
        self.0 / 1e3
    }

    /// Clamps this energy into `[lo, hi]` (useful for battery state of charge).
    #[inline]
    #[must_use]
    pub fn clamp(self, lo: WattHours, hi: WattHours) -> WattHours {
        WattHours(self.0.clamp(lo.0, hi.0))
    }

    /// The smaller of two energies.
    #[inline]
    #[must_use]
    pub fn min(self, other: WattHours) -> WattHours {
        WattHours(self.0.min(other.0))
    }

    /// The larger of two energies.
    #[inline]
    #[must_use]
    pub fn max(self, other: WattHours) -> WattHours {
        WattHours(self.0.max(other.0))
    }
}

impl fmt::Display for WattHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Wh", self.0)
    }
}

impl Add for WattHours {
    type Output = WattHours;
    #[inline]
    fn add(self, rhs: WattHours) -> WattHours {
        WattHours(self.0 + rhs.0)
    }
}

impl AddAssign for WattHours {
    #[inline]
    fn add_assign(&mut self, rhs: WattHours) {
        self.0 += rhs.0;
    }
}

impl Sub for WattHours {
    type Output = WattHours;
    #[inline]
    fn sub(self, rhs: WattHours) -> WattHours {
        WattHours(self.0 - rhs.0)
    }
}

impl SubAssign for WattHours {
    #[inline]
    fn sub_assign(&mut self, rhs: WattHours) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for WattHours {
    type Output = WattHours;
    #[inline]
    fn mul(self, rhs: f64) -> WattHours {
        WattHours(self.0 * rhs)
    }
}

impl Div<f64> for WattHours {
    type Output = WattHours;
    #[inline]
    fn div(self, rhs: f64) -> WattHours {
        WattHours(self.0 / rhs)
    }
}

impl Div<Hours> for WattHours {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Hours) -> Watts {
        Watts(self.0 / rhs.value())
    }
}

impl Div for WattHours {
    type Output = f64;
    #[inline]
    fn div(self, rhs: WattHours) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for WattHours {
    fn sum<I: Iterator<Item = WattHours>>(iter: I) -> WattHours {
        iter.fold(WattHours::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(560.0) * Hours::new(2.0);
        assert_eq!(e, WattHours::new(1120.0));
        let e2 = Watts::new(3600.0) * Seconds::new(1.0);
        assert!((e2.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_duration() {
        assert_eq!(
            Watts::new(28.38).energy_over(Hours::new(10.0)),
            WattHours::new(283.8)
        );
    }

    #[test]
    fn energy_div_time_is_power() {
        let p = WattHours::new(124.1) / Hours::new(24.0);
        assert!((p.value() - 5.1708).abs() < 1e-3);
    }

    #[test]
    fn arithmetic_and_sums() {
        let total: Watts = [Watts::new(1.5), Watts::new(2.5)].into_iter().sum();
        assert_eq!(total, Watts::new(4.0));
        let total_e: WattHours = [WattHours::new(1.0), WattHours::new(2.0)].into_iter().sum();
        assert_eq!(total_e, WattHours::new(3.0));
        assert_eq!(Watts::new(10.0) / Watts::new(4.0), 2.5);
        assert_eq!(WattHours::new(10.0) / WattHours::new(4.0), 2.5);
    }

    #[test]
    fn clamp_and_min_max() {
        let lo = WattHours::new(288.0); // 40 % of 720 Wh
        let hi = WattHours::new(720.0);
        assert_eq!(WattHours::new(100.0).clamp(lo, hi), lo);
        assert_eq!(WattHours::new(800.0).clamp(lo, hi), hi);
        assert_eq!(WattHours::new(500.0).clamp(lo, hi), WattHours::new(500.0));
        assert_eq!(lo.min(hi), lo);
        assert_eq!(lo.max(hi), hi);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Watts::new(28.375).to_string(), "28.38 W");
        assert_eq!(WattHours::new(124.1).to_string(), "124.10 Wh");
    }

    #[test]
    fn kilo_conversions() {
        assert!((Watts::new(1500.0).kilowatts() - 1.5).abs() < 1e-12);
        assert!((WattHours::new(1240.0).kilowatt_hours() - 1.24).abs() < 1e-12);
    }
}
