//! Shared coverage-margin accounting for the optimizer and scheduler.
//!
//! Before this module, the margin arithmetic lived in two places: the
//! deployment optimizer computed `min_snr - threshold` inline when
//! building frontier points, and the network sleep scheduler froze the
//! margin entirely (boundary repeaters only, interior untouched). The
//! Pollakis margin-trading search (arXiv 1503.08627) needs one shared
//! model instead: the [`MarginModel`] owns the threshold and the
//! margin/floor arithmetic, prices the *post-sleep* margin of a
//! deployment with repeaters removed through the same
//! [`CoverageCache`] the optimizer uses, and the [`MarginLedger`]
//! tracks the residual margin per edge as the scheduler commits sleeps
//! against a configurable floor.

use corridor_deploy::{CoverageCache, PlacementPolicy};
use corridor_units::{Db, Meters};

/// The coverage-margin model: an SNR threshold plus the arithmetic
/// turning cached minimum-SNR profiles into margins and floor checks.
///
/// # Examples
///
/// ```
/// use corridor_core::margin::MarginModel;
/// use corridor_units::Db;
///
/// let model = MarginModel::paper_default();
/// assert_eq!(model.margin_db(Db::new(32.0)), 3.0);
/// assert!(model.meets_floor(Db::new(32.0), 3.0));
/// assert!(!model.meets_floor(Db::new(31.9), 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginModel {
    threshold: Db,
}

impl MarginModel {
    /// A model at an explicit SNR threshold.
    pub fn new(threshold: Db) -> Self {
        MarginModel { threshold }
    }

    /// The paper's 29 dB repeater-coverage threshold.
    pub fn paper_default() -> Self {
        MarginModel::new(Db::new(29.0))
    }

    /// The SNR threshold the margin is measured against.
    pub fn threshold(&self) -> Db {
        self.threshold
    }

    /// Coverage margin in dB of a deployment whose worst sampled SNR is
    /// `min_snr`: the headroom above (or deficit below) the threshold.
    pub fn margin_db(&self, min_snr: Db) -> f64 {
        (min_snr - self.threshold).value()
    }

    /// True when the deployment's margin is at or above `floor_db`.
    pub fn meets_floor(&self, min_snr: Db, floor_db: f64) -> bool {
        self.margin_db(min_snr) >= floor_db
    }

    /// Margin of the full `n`-repeater deployment at `isd` under
    /// `placement`, through the shared coverage cache. `None` when the
    /// placement cannot realize `n` repeaters in the segment.
    pub fn margin_of(
        &self,
        cache: &CoverageCache,
        n: usize,
        isd: Meters,
        placement: &PlacementPolicy,
    ) -> Option<f64> {
        cache
            .min_snr(n, isd, placement)
            .map(|snr| self.margin_db(snr))
    }

    /// Margin of the deployment after the repeaters at the (sorted,
    /// deduplicated) `slept` position indices are removed: the survivors
    /// keep their positions, so the reduced layout is priced as a
    /// custom placement through the same cache. `None` when the base
    /// placement is unrealizable, an index is out of range, or no
    /// repeater survives.
    pub fn margin_without(
        &self,
        cache: &CoverageCache,
        n: usize,
        isd: Meters,
        placement: &PlacementPolicy,
        slept: &[usize],
    ) -> Option<f64> {
        if slept.iter().any(|&k| k >= n) {
            return None;
        }
        let positions = placement.positions(n, isd).ok()?;
        let remaining: Vec<Meters> = positions
            .iter()
            .enumerate()
            .filter(|(k, _)| !slept.contains(k))
            .map(|(_, &p)| p)
            .collect();
        if remaining.is_empty() {
            return None;
        }
        let custom = PlacementPolicy::Custom(remaining.clone());
        cache
            .min_snr(remaining.len(), isd, &custom)
            .map(|snr| self.margin_db(snr))
    }
}

/// Residual coverage margin per edge as the scheduler spends it, with
/// the floor every edge must stay at or above.
///
/// Entries are `None` for edges without a deployment (unsolvable or
/// zero repeaters) — those neither hold nor spend margin.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginLedger {
    floor_db: f64,
    margins: Vec<Option<f64>>,
}

impl MarginLedger {
    /// A ledger over the edges' starting margins and the floor.
    pub fn new(floor_db: f64, margins: Vec<Option<f64>>) -> Self {
        MarginLedger { floor_db, margins }
    }

    /// The floor no edge may drop below.
    pub fn floor_db(&self) -> f64 {
        self.floor_db
    }

    /// The residual margin of `edge` (`None` for undeployed edges).
    pub fn margin(&self, edge: usize) -> Option<f64> {
        self.margins.get(edge).copied().flatten()
    }

    /// The residual margins, in edge order.
    pub fn margins(&self) -> &[Option<f64>] {
        &self.margins
    }

    /// True when dropping `edge` to `margin_after` keeps it at or above
    /// the floor (and the edge holds margin at all).
    pub fn affords(&self, edge: usize, margin_after: f64) -> bool {
        self.margin(edge).is_some() && margin_after >= self.floor_db
    }

    /// Commits a spend: `edge`'s residual margin becomes `margin_after`.
    ///
    /// # Panics
    ///
    /// Panics if the edge holds no margin or the spend would cross the
    /// floor — callers must gate on [`MarginLedger::affords`] first.
    pub fn commit(&mut self, edge: usize, margin_after: f64) {
        assert!(
            self.affords(edge, margin_after),
            "margin spend on edge {edge} to {margin_after} dB crosses the {} dB floor",
            self.floor_db
        );
        self.margins[edge] = Some(margin_after);
    }

    /// True when every deployed edge sits at or above the floor.
    pub fn all_at_or_above_floor(&self) -> bool {
        self.margins.iter().flatten().all(|&m| m >= self.floor_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_deploy::LinkBudget;

    #[test]
    fn margin_is_headroom_above_the_threshold() {
        let model = MarginModel::new(Db::new(29.0));
        assert_eq!(model.margin_db(Db::new(32.5)), 3.5);
        assert_eq!(model.margin_db(Db::new(27.0)), -2.0);
        assert!(model.meets_floor(Db::new(29.0), 0.0));
        assert!(!model.meets_floor(Db::new(28.9), 0.0));
    }

    #[test]
    fn removing_a_repeater_never_raises_the_margin() {
        let cache = CoverageCache::with_sample_step(LinkBudget::paper_default(), Meters::new(10.0));
        let model = MarginModel::paper_default();
        let placement = PlacementPolicy::paper_default();
        let (n, isd) = (10, Meters::new(2650.0));
        let full = model.margin_of(&cache, n, isd, &placement).unwrap();
        for k in 1..n - 1 {
            let reduced = model
                .margin_without(&cache, n, isd, &placement, &[k])
                .unwrap();
            assert!(
                reduced <= full + 1e-12,
                "dropping repeater {k}: {reduced} > {full}"
            );
        }
        // removing nothing is the identity
        assert_eq!(
            model.margin_without(&cache, n, isd, &placement, &[]),
            Some(full)
        );
        // out-of-range and total removal are unrealizable
        assert_eq!(model.margin_without(&cache, n, isd, &placement, &[n]), None);
        let all: Vec<usize> = (0..n).collect();
        assert_eq!(model.margin_without(&cache, n, isd, &placement, &all), None);
    }

    #[test]
    fn ledger_enforces_the_floor() {
        let mut ledger = MarginLedger::new(-1.0, vec![Some(3.0), None, Some(0.5)]);
        assert_eq!(ledger.margin(0), Some(3.0));
        assert_eq!(ledger.margin(1), None);
        assert!(ledger.affords(0, -1.0));
        assert!(!ledger.affords(0, -1.1));
        assert!(!ledger.affords(1, 5.0), "undeployed edges hold no margin");
        ledger.commit(0, -0.5);
        assert_eq!(ledger.margin(0), Some(-0.5));
        assert!(ledger.all_at_or_above_floor());
        ledger.commit(2, -1.0);
        assert!(ledger.all_at_or_above_floor());
    }

    #[test]
    #[should_panic(expected = "crosses")]
    fn ledger_commit_panics_below_the_floor() {
        let mut ledger = MarginLedger::new(0.0, vec![Some(1.0)]);
        ledger.commit(0, -0.1);
    }
}
