//! Determinism of the `rayon` shim execution path: the same grid must
//! produce byte-identical reports on 1, 2 and 8 workers.

use corridor_sim::{ScenarioGrid, SweepEngine};
use corridor_solar::climate;

/// A small grid that exercises every axis (8 cells, PV sizing included —
/// the only seeded-randomness consumer in the pipeline).
fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
        .locations(vec![climate::madrid(), climate::berlin()])
}

#[test]
fn csv_is_byte_identical_across_worker_counts() {
    let grid = mixed_grid();
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap().to_csv();
    assert!(reference.lines().count() == 9, "8 cells + header");
    for workers in [2, 8] {
        let csv = SweepEngine::new()
            .workers(workers)
            .run(&grid)
            .unwrap()
            .to_csv();
        assert_eq!(csv, reference, "workers = {workers}");
    }
}

#[test]
fn json_is_byte_identical_across_worker_counts() {
    let grid = mixed_grid();
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap().to_json();
    for workers in [2, 8] {
        let json = SweepEngine::new()
            .workers(workers)
            .run(&grid)
            .unwrap()
            .to_json();
        assert_eq!(json, reference, "workers = {workers}");
    }
}

#[test]
fn wide_grid_without_pv_is_deterministic_too() {
    // 36 quick cells stressing the scheduler with more items than workers
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![2.0, 6.0, 10.0])
        .train_speeds_kmh(vec![120.0, 200.0, 280.0])
        .lp_spacings_m(vec![150.0, 250.0])
        .conventional_isds_m(vec![450.0, 550.0]);
    let engine = SweepEngine::new().pv_sizing(false);
    let reference = engine.workers(1).run(&grid).unwrap();
    for workers in [2, 8] {
        let report = engine.workers(workers).run(&grid).unwrap();
        assert_eq!(report.results(), reference.results(), "workers = {workers}");
        assert_eq!(report.to_csv(), reference.to_csv(), "workers = {workers}");
    }
}
