//! Determinism of the `rayon` shim execution path: the same grid must
//! produce byte-identical reports on 1, 2 and 8 workers — pinned by
//! SHA-256 digests of the rendered CSV/JSON, so a regression anywhere
//! in the pipeline (scheduling, batching, float re-ordering, rendering)
//! fails loudly with the digest that changed.

use corridor_sim::{
    DeploymentOptimizer, McEngine, ReplicationPlan, ScenarioGrid, SearchSpace, SweepEngine,
};
use corridor_solar::climate;

/// A small grid that exercises every axis (8 cells, PV sizing included —
/// the only seeded-randomness consumer in the pipeline).
fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
        .locations(vec![climate::madrid(), climate::berlin()])
}

#[test]
fn csv_is_byte_identical_across_worker_counts() {
    let grid = mixed_grid();
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap().to_csv();
    assert!(reference.lines().count() == 9, "8 cells + header");
    for workers in [2, 8] {
        let csv = SweepEngine::new()
            .workers(workers)
            .run(&grid)
            .unwrap()
            .to_csv();
        assert_eq!(csv, reference, "workers = {workers}");
    }
}

#[test]
fn json_is_byte_identical_across_worker_counts() {
    let grid = mixed_grid();
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap().to_json();
    for workers in [2, 8] {
        let json = SweepEngine::new()
            .workers(workers)
            .run(&grid)
            .unwrap()
            .to_json();
        assert_eq!(json, reference, "workers = {workers}");
    }
}

/// Pinned digests of every renderable pipeline output. The sweep, the
/// Monte-Carlo engine and the deployment optimizer must produce these
/// exact bytes on every worker count; any drift (a scheduling change
/// that reorders float accumulation, a batch-layer rewrite, a rendering
/// tweak) trips the pin, not just the cross-worker comparison.
const SWEEP_CSV_SHA256: &str = "781c01105637f4b0c1852558780d88fa9c18d278728ca3e0ae31e277d9e232d1";
const SWEEP_JSON_SHA256: &str = "070b779207ee4e8f1ce90cab5cca0347e2cd0af30b458ab6995f5f20b973ce6a";
const MC_CSV_SHA256: &str = "18ba0069bec57df80976a44c6aa180df59bc918e0ee19548f6e548b8505a7437";
const MC_JSON_SHA256: &str = "7bb58718a526e267e155532111a5118b9a8bcb1b1df33e13d78ec187fc4c94e3";
const OPTIMIZE_CSV_SHA256: &str =
    "c54a5842b41eca5279459a3b5fa3ba63a38d6f44697db3609ea1f65a868e4b57";
const OPTIMIZE_JSON_SHA256: &str =
    "875b9450c19fdf0b1d55aee9f5e48607d45fd3e74a55fd825fb5f322ed211fe0";

#[test]
fn sweep_renderings_are_sha256_pinned_across_worker_counts() {
    for workers in [1usize, 2, 8] {
        let report = SweepEngine::new()
            .workers(workers)
            .run(&mixed_grid())
            .unwrap();
        assert_eq!(
            sha256_hex(report.to_csv().as_bytes()),
            SWEEP_CSV_SHA256,
            "sweep CSV, workers = {workers}"
        );
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            SWEEP_JSON_SHA256,
            "sweep JSON, workers = {workers}"
        );
    }
}

#[test]
fn mc_renderings_are_sha256_pinned_across_worker_counts() {
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .locations(vec![climate::madrid(), climate::vienna()]);
    let plan = ReplicationPlan::new(5).master_seed(7);
    for workers in [1usize, 2, 8] {
        let report = McEngine::new().workers(workers).run(&grid, &plan).unwrap();
        assert_eq!(
            sha256_hex(report.to_csv().as_bytes()),
            MC_CSV_SHA256,
            "mc CSV, workers = {workers}"
        );
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            MC_JSON_SHA256,
            "mc JSON, workers = {workers}"
        );
    }
}

#[test]
fn optimizer_renderings_are_sha256_pinned_across_worker_counts() {
    let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0]);
    let space = SearchSpace::new().node_counts((0..=6).collect());
    for workers in [1usize, 2, 8] {
        let report = DeploymentOptimizer::new()
            .workers(workers)
            .run(&grid, &space)
            .unwrap();
        assert_eq!(
            sha256_hex(report.to_csv().as_bytes()),
            OPTIMIZE_CSV_SHA256,
            "optimize CSV, workers = {workers}"
        );
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            OPTIMIZE_JSON_SHA256,
            "optimize JSON, workers = {workers}"
        );
    }
}

#[test]
fn wide_grid_without_pv_is_deterministic_too() {
    // 36 quick cells stressing the scheduler with more items than workers
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![2.0, 6.0, 10.0])
        .train_speeds_kmh(vec![120.0, 200.0, 280.0])
        .lp_spacings_m(vec![150.0, 250.0])
        .conventional_isds_m(vec![450.0, 550.0]);
    let engine = SweepEngine::new().pv_sizing(false);
    let reference = engine.workers(1).run(&grid).unwrap();
    for workers in [2, 8] {
        let report = engine.workers(workers).run(&grid).unwrap();
        assert_eq!(report.results(), reference.results(), "workers = {workers}");
        assert_eq!(report.to_csv(), reference.to_csv(), "workers = {workers}");
    }
}

/// Minimal SHA-256 (FIPS 180-4) for pinning report digests — the
/// offline environment has no hashing crate to lean on.
fn sha256_hex(data: &[u8]) -> String {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in message.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    h.iter().map(|x| format!("{x:08x}")).collect()
}

#[test]
fn sha256_self_test() {
    // FIPS 180-4 test vectors
    assert_eq!(
        sha256_hex(b""),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        sha256_hex(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}
