//! Fixture: a waiver without a reason suppresses nothing.

pub fn first(xs: &[u32]) -> u32 {
    // corridor-lint: allow(no-panic)
    *xs.first().unwrap()
}
