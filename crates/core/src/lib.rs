//! Scenario API and experiment reproduction for the railway-corridor
//! energy-efficiency study.
//!
//! This is the top-level crate of the reproduction of *"Increasing
//! Cellular Network Energy Efficiency for Railway Corridors"* (Schumacher,
//! Merz, Burg — DATE 2022). It ties the substrates together:
//!
//! * [`ScenarioParams`] — every parameter of the paper's Table III plus
//!   the link budget, equipment catalog and placement policy, with paper
//!   values as defaults;
//! * [`EnergyStrategy`] — the three operating strategies compared in
//!   Fig. 4 (continuously powered repeaters, sleep-mode repeaters,
//!   solar-powered repeaters);
//! * [`energy`] — average energy per hour and kilometre of corridor for
//!   any repeater count/ISD/strategy, and savings versus the conventional
//!   500 m deployment;
//! * [`experiments`] — one function per table/figure of the paper,
//!   returning typed data (the `corridor-bench` binaries print them);
//! * [`report`] — minimal fixed-width table rendering for those binaries;
//! * [`stats`] — streaming Welford statistics (mean/stddev/Student-t
//!   95 % CI) for Monte-Carlo replication sweeps;
//! * [`pareto`] — multi-objective dominance helpers for the deployment
//!   optimizer's frontier search;
//! * [`sink`] — streaming row sinks and format framing, so reports can
//!   be emitted row by row with flat memory;
//! * [`hash`] — streaming SHA-256 for digest-pinned reports, cache
//!   entry checksums and the serve protocol.
//!
//! # Examples
//!
//! ```
//! use corridor_core::{energy, EnergyStrategy, ScenarioParams};
//! use corridor_deploy::IsdTable;
//!
//! let params = ScenarioParams::paper_default();
//! let table = IsdTable::paper();
//! // ten sleep-mode repeaters: the paper's 74 % saving
//! let savings = energy::savings_vs_conventional(
//!     &params, &table, 10, EnergyStrategy::SleepModeRepeaters).unwrap();
//! assert!((savings - 0.74).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
mod evaluator;
pub mod experiments;
pub mod hash;
pub mod margin;
pub mod pareto;
pub mod report;
mod scenario;
pub mod sink;
pub mod stats;
mod strategy;

pub use evaluator::{AnalyticEvaluator, SegmentEvaluator};
pub use scenario::{ScenarioError, ScenarioParams, ScenarioParamsBuilder};
pub use strategy::EnergyStrategy;

pub use corridor_deploy as deploy;
pub use corridor_fronthaul as fronthaul;
pub use corridor_link as link;
pub use corridor_power as power;
pub use corridor_propagation as propagation;
pub use corridor_solar as solar;
pub use corridor_traffic as traffic;
pub use corridor_units as units;

/// One-stop imports for downstream users.
pub mod prelude {
    pub use crate::energy::{self, SegmentEnergy};
    pub use crate::experiments;
    pub use crate::hash::{sha256_hex, Sha256};
    pub use crate::margin::{MarginLedger, MarginModel};
    pub use crate::sink::{
        DigestSink, RowEmitter, RowFormat, RowSink, SinkError, SinkResult, StringSink, WriteSink,
    };
    pub use crate::stats::{SummaryStats, Welford};
    pub use crate::{
        AnalyticEvaluator, EnergyStrategy, ScenarioError, ScenarioParams, ScenarioParamsBuilder,
        SegmentEvaluator,
    };
    pub use corridor_deploy::{
        Corridor, CorridorLayout, CoverageCriterion, IsdOptimizer, IsdTable, LinkBudget,
        PlacementPolicy, SegmentInventory,
    };
    pub use corridor_fronthaul::{FronthaulChain, FronthaulHop, MmWaveBand};
    pub use corridor_link::{
        CoverageProfile, NrCarrier, SignalSource, SnrModel, ThroughputModel, UplinkBudget,
    };
    pub use corridor_power::{
        catalog, DutyCycle, LoadDependentPower, OperatingState, RepeaterBill,
    };
    pub use corridor_propagation::{CalibratedFriis, FreeSpace, PathLoss};
    pub use corridor_solar::{
        climate, sizing, Battery, DailyLoadProfile, OffGridSystem, PvArray, PvModule,
    };
    pub use corridor_traffic::{
        ActivityTimeline, PoissonTimetable, Timetable, TrackSection, Train, TrainPass,
        WakeController,
    };
    pub use corridor_units::prelude::*;
}
