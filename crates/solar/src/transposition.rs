//! Transposition of horizontal irradiance onto a tilted plane.

use crate::{ClearSky, SolarGeometry};

/// Converts global horizontal irradiance to plane-of-array irradiance on a
/// tilted module: Erbs beam/diffuse decomposition followed by an
/// isotropic-sky transposition with ground reflection.
///
/// The paper's repeater modules hang *vertically* (tilt 90°) on catenary
/// masts facing south (azimuth 0°) — [`Transposition::vertical_south`].
///
/// # Examples
///
/// ```
/// use corridor_solar::{SolarGeometry, Transposition};
/// let plane = Transposition::vertical_south(SolarGeometry::at_latitude(52.5));
/// // overcast winter noon in Berlin: mostly diffuse, some POA remains
/// let poa = plane.poa_w_m2(355, 12.0, 0.15);
/// assert!(poa > 10.0 && poa < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transposition {
    geometry: SolarGeometry,
    clear_sky: ClearSky,
    tilt_deg: f64,
    plane_azimuth_deg: f64,
    ground_albedo: f64,
}

impl Transposition {
    /// A plane at the given tilt and azimuth (degrees from south, west
    /// positive) with the default 0.2 ground albedo.
    ///
    /// # Panics
    ///
    /// Panics if `tilt_deg` is outside `[0, 90]`.
    pub fn new(geometry: SolarGeometry, tilt_deg: f64, plane_azimuth_deg: f64) -> Self {
        assert!((0.0..=90.0).contains(&tilt_deg), "tilt out of range");
        Transposition {
            geometry,
            clear_sky: ClearSky::new(geometry),
            tilt_deg,
            plane_azimuth_deg,
            ground_albedo: 0.2,
        }
    }

    /// The paper's mounting: vertical (90°) south-facing (0°).
    pub fn vertical_south(geometry: SolarGeometry) -> Self {
        Transposition::new(geometry, 90.0, 0.0)
    }

    /// Overrides the ground albedo.
    ///
    /// # Panics
    ///
    /// Panics if `albedo` is outside `[0, 1]`.
    #[must_use]
    pub fn with_ground_albedo(mut self, albedo: f64) -> Self {
        assert!((0.0..=1.0).contains(&albedo), "albedo out of range");
        self.ground_albedo = albedo;
        self
    }

    /// Plane tilt from horizontal, degrees.
    pub fn tilt_deg(&self) -> f64 {
        self.tilt_deg
    }

    /// Plane azimuth from south, degrees.
    pub fn plane_azimuth_deg(&self) -> f64 {
        self.plane_azimuth_deg
    }

    /// Ground albedo used for the reflected irradiance term.
    pub fn ground_albedo(&self) -> f64 {
        self.ground_albedo
    }

    /// Erbs diffuse fraction of global irradiance at clearness `kt`.
    pub fn diffuse_fraction(kt: f64) -> f64 {
        let kt = kt.clamp(0.0, 1.0);
        if kt <= 0.22 {
            1.0 - 0.09 * kt
        } else if kt <= 0.80 {
            0.9511 - 0.1604 * kt + 4.388 * kt * kt - 16.638 * kt.powi(3) + 12.336 * kt.powi(4)
        } else {
            0.165
        }
    }

    /// Plane-of-array irradiance (W/m²) at day `doy`, local solar time
    /// `hour`, and daily clearness index `kt`.
    pub fn poa_w_m2(&self, doy: u32, hour: f64, kt: f64) -> f64 {
        let ghi = self.clear_sky.ghi_w_m2(doy, hour) * kt.clamp(0.0, 1.0);
        if ghi <= 0.0 {
            return 0.0;
        }
        let df = Self::diffuse_fraction(kt);
        let diffuse = ghi * df;
        let beam_horizontal = ghi - diffuse;

        let elev = self.geometry.elevation_deg(doy, hour);
        let cos_zenith = elev.to_radians().sin().max(0.05); // avoid horizon blow-up
        let cos_inc =
            self.geometry
                .incidence_cosine(doy, hour, self.tilt_deg, self.plane_azimuth_deg);
        let rb = cos_inc / cos_zenith;

        let tilt_rad = self.tilt_deg.to_radians();
        let sky_view = (1.0 + tilt_rad.cos()) / 2.0;
        let ground_view = (1.0 - tilt_rad.cos()) / 2.0;

        beam_horizontal * rb + diffuse * sky_view + ghi * self.ground_albedo * ground_view
    }

    /// Daily plane-of-array irradiation (Wh/m²) at clearness `kt`.
    pub fn daily_poa_wh_m2(&self, doy: u32, kt: f64) -> f64 {
        (0..24)
            .map(|h| self.poa_w_m2(doy, h as f64 + 0.5, kt))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertical(lat: f64) -> Transposition {
        Transposition::vertical_south(SolarGeometry::at_latitude(lat))
    }

    #[test]
    fn diffuse_fraction_limits() {
        // overcast: nearly all diffuse; clear: mostly beam
        assert!(Transposition::diffuse_fraction(0.1) > 0.95);
        assert!(Transposition::diffuse_fraction(0.75) < 0.30);
        assert_eq!(Transposition::diffuse_fraction(0.9), 0.165);
        // continuous-ish at the 0.22 boundary
        let low = Transposition::diffuse_fraction(0.219);
        let high = Transposition::diffuse_fraction(0.221);
        assert!((low - high).abs() < 0.02);
    }

    #[test]
    fn zero_at_night_and_nonnegative() {
        let plane = vertical(48.2);
        assert_eq!(plane.poa_w_m2(172, 1.0, 0.5), 0.0);
        for h in 0..24 {
            assert!(plane.poa_w_m2(15, h as f64 + 0.5, 0.3) >= 0.0);
        }
    }

    #[test]
    fn vertical_plane_favors_winter_relative_to_horizontal() {
        // the classic reason for vertical mounting at high latitude: the
        // POA/GHI ratio is far higher in winter than in summer
        let plane = vertical(52.5);
        let sky = ClearSky::new(SolarGeometry::at_latitude(52.5));
        let ratio = |doy: u32| plane.daily_poa_wh_m2(doy, 0.6) / (sky.daily_ghi_wh_m2(doy) * 0.6);
        assert!(ratio(355) > 1.2, "winter ratio {}", ratio(355));
        assert!(ratio(172) < 0.6, "summer ratio {}", ratio(172));
    }

    #[test]
    fn clearer_days_yield_more_energy() {
        let plane = vertical(45.8);
        let dim = plane.daily_poa_wh_m2(100, 0.2);
        let bright = plane.daily_poa_wh_m2(100, 0.6);
        assert!(bright > dim);
    }

    #[test]
    fn albedo_adds_ground_reflection() {
        let base = vertical(48.2);
        let snowy = vertical(48.2).with_ground_albedo(0.7);
        assert!(snowy.poa_w_m2(20, 12.0, 0.4) > base.poa_w_m2(20, 12.0, 0.4));
    }

    #[test]
    fn madrid_winter_poa_supports_repeater() {
        // sanity for Table IV: one clear Madrid December day on 1 m² of
        // vertical module produces far more than the repeater's 124 Wh/day
        let plane = vertical(40.4);
        let wh_m2 = plane.daily_poa_wh_m2(355, 0.50);
        // a 540 Wp array converts this to roughly wh_m2 × 0.54 × 0.86 Wh,
        // several times the repeater's 124 Wh/day
        assert!(wh_m2 > 1200.0, "got {wh_m2}");
        assert!(wh_m2 * 0.54 * 0.86 > 3.0 * 124.1);
    }

    #[test]
    fn accessors() {
        let plane = vertical(40.4);
        assert_eq!(plane.tilt_deg(), 90.0);
        assert_eq!(plane.plane_azimuth_deg(), 0.0);
        assert_eq!(plane.ground_albedo(), 0.2);
        assert_eq!(plane.with_ground_albedo(0.7).ground_albedo(), 0.7);
    }

    #[test]
    #[should_panic(expected = "tilt out of range")]
    fn bad_tilt_rejected() {
        let _ = Transposition::new(SolarGeometry::at_latitude(0.0), 120.0, 0.0);
    }
}
