//! `corridor_lint` — workspace-invariant static analysis for the
//! railway-corridor reproduction.
//!
//! The reproduction's value rests on invariants no compiler checks:
//! byte-deterministic reports across worker counts, NaN-safe float
//! ordering and typed errors instead of panics in library crates. This
//! crate is a dependency-free, offline pass that walks every workspace
//! `src/` file, masks comments and string literals with a lossless
//! tokenizer ([`sanitize`]) and runs a rule set ([`rules::Rule`])
//! encoding those invariants. It ships three ways so it cannot rot:
//!
//! * the `lint` binary (human and JSON output) — `make lint`;
//! * the `self_check` workspace test, which runs the pass over the live
//!   tree so `cargo test` fails on a new violation;
//! * fixture tests pinning every rule's trigger/waive/clean behavior.
//!
//! Safe sites are waived inline with a reasoned directive (see
//! [`waiver`]); a waiver without a reason is itself a violation, so the
//! tree can never accumulate undocumented exceptions. The rule
//! catalogue and the waiver syntax are documented in `docs/lints.md`.

#![forbid(unsafe_code)]

pub mod rules;
pub mod sanitize;
pub mod waiver;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::Scope;

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (`no-panic`, `float-ord`, … or one of the waiver
    /// hygiene ids `unknown-rule`, `missing-reason`, `bad-waiver`).
    pub rule_id: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule_id, self.snippet
        )
    }
}

/// One waiver directive found in the tree, with its resolution.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// The rule id as written.
    pub rule_id: String,
    /// The documented reason (present on every healthy waiver).
    pub reason: Option<String>,
    /// Whether the waiver suppressed at least one rule hit.
    pub used: bool,
}

/// The findings of one scanned source text.
#[derive(Debug, Clone, Default)]
pub struct FileFindings {
    /// Violations, in line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every waiver directive in the text.
    pub waivers: Vec<WaiverRecord>,
}

/// The whole-workspace report.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The workspace root that was scanned.
    pub root: PathBuf,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every violation, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every waiver directive, sorted by (file, line).
    pub waivers: Vec<WaiverRecord>,
}

impl LintReport {
    /// True when the tree carries no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Waivers that suppressed nothing (stale candidates).
    pub fn unused_waivers(&self) -> impl Iterator<Item = &WaiverRecord> {
        self.waivers.iter().filter(|w| !w.used)
    }
}

/// A failure of the pass itself (not a lint violation).
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The given root does not look like the workspace (no `Cargo.toml`
    /// with a `[workspace]` table).
    NotAWorkspace(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "cannot read {}: {}", path.display(), source)
            }
            LintError::NotAWorkspace(path) => write!(
                f,
                "{} is not a cargo workspace root (no [workspace] in Cargo.toml)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Scans one source text under `file` (a workspace-relative label) with
/// the rules of `scope`. This is the engine the walker, the fixture
/// tests and the self-check all share.
pub fn check_source(file: &str, source: &str, scope: Scope) -> FileFindings {
    let sanitized = sanitize::sanitize(source);
    let mut waivers = waiver::parse_waivers(&sanitized.comments);
    let hits = rules::scan(&sanitized, scope);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: usize| -> String {
        let text = lines.get(line.saturating_sub(1)).copied().unwrap_or("");
        let trimmed = text.trim();
        if trimmed.len() > 120 {
            let mut end = 117;
            while end > 0 && !trimmed.is_char_boundary(end) {
                end -= 1;
            }
            format!("{}...", &trimmed[..end])
        } else {
            trimmed.to_string()
        }
    };

    let mut used = vec![false; waivers.len()];
    let mut diagnostics = Vec::new();
    for hit in hits {
        let covered = waivers.iter().position(|w| w.covers(hit.rule, hit.line));
        match covered {
            Some(idx) => used[idx] = true,
            None => diagnostics.push(Diagnostic {
                file: file.to_string(),
                line: hit.line,
                rule_id: hit.rule.id(),
                snippet: snippet(hit.line),
            }),
        }
    }

    // Waiver hygiene: malformed directives, unknown rule ids and
    // missing reasons are violations in their own right — "zero
    // undocumented waivers" is enforced here.
    for w in &waivers {
        let rule_id = if !w.well_formed {
            Some("bad-waiver")
        } else if w.rule.is_none() {
            Some("unknown-rule")
        } else if w.reason.is_none() {
            Some("missing-reason")
        } else {
            None
        };
        if let Some(rule_id) = rule_id {
            diagnostics.push(Diagnostic {
                file: file.to_string(),
                line: w.line,
                rule_id,
                snippet: snippet(w.line),
            });
        }
    }
    diagnostics.sort_by(|a, b| (a.line, a.rule_id).cmp(&(b.line, b.rule_id)));

    let records = waivers
        .drain(..)
        .zip(used)
        .map(|(w, used)| WaiverRecord {
            file: file.to_string(),
            line: w.line,
            rule_id: w.rule_id,
            reason: w.reason,
            used,
        })
        .collect();
    FileFindings {
        diagnostics,
        waivers: records,
    }
}

/// The scope a workspace-relative path is scanned under, or `None` for
/// paths the pass does not cover (tests, benches, fixtures, goldens).
pub fn scope_for(rel_path: &str) -> Option<Scope> {
    let p = rel_path.replace('\\', "/");
    if p.starts_with("shims/") && p.contains("/src/") {
        return Some(Scope::Harness);
    }
    if p.starts_with("crates/bench/src/") {
        return Some(Scope::Harness);
    }
    if p.starts_with("crates/") && p.contains("/src/") {
        return Some(Scope::Library);
    }
    if p.starts_with("src/") {
        return Some(Scope::Library);
    }
    None
}

/// Runs the pass over every workspace `src/` file under `root`.
///
/// # Errors
///
/// Returns [`LintError`] when `root` is not the workspace or a source
/// file cannot be read; lint *violations* are not errors — they are the
/// report's [`LintReport::diagnostics`].
pub fn run_workspace(root: &Path) -> Result<LintReport, LintError> {
    let manifest = root.join("Cargo.toml");
    let manifest_text = fs::read_to_string(&manifest).map_err(|source| LintError::Io {
        path: manifest.clone(),
        source,
    })?;
    if !manifest_text.contains("[workspace]") {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }

    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    for family in ["crates", "shims"] {
        let family_dir = root.join(family);
        for member in sorted_dirs(&family_dir)? {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut waivers = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let source = fs::read_to_string(file).map_err(|source| LintError::Io {
            path: file.clone(),
            source,
        })?;
        scanned += 1;
        let findings = check_source(&rel, &source, scope);
        diagnostics.extend(findings.diagnostics);
        waivers.extend(findings.waivers);
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule_id).cmp(&(&b.file, b.line, b.rule_id)));
    waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport {
        root: root.to_path_buf(),
        files_scanned: scanned,
        diagnostics,
        waivers,
    })
}

/// The immediate subdirectories of `dir`, sorted by name; empty when
/// `dir` does not exist.
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(out),
    };
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()),
    };
    let mut batch = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        batch.push(entry.path());
    }
    batch.sort();
    for path in batch {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_hit_produces_no_diagnostic_and_marks_the_waiver_used() {
        let src = "\
// corridor-lint: allow(no-panic, reason = \"documented invariant\")
let x = y.unwrap();
";
        let findings = check_source("lib.rs", src, Scope::Library);
        assert!(
            findings.diagnostics.is_empty(),
            "{:?}",
            findings.diagnostics
        );
        assert_eq!(findings.waivers.len(), 1);
        assert!(findings.waivers[0].used);
    }

    #[test]
    fn waiver_without_reason_is_a_violation_and_suppresses_nothing() {
        let src = "\
// corridor-lint: allow(no-panic)
let x = y.unwrap();
";
        let findings = check_source("lib.rs", src, Scope::Library);
        let ids: Vec<&str> = findings.diagnostics.iter().map(|d| d.rule_id).collect();
        assert!(ids.contains(&"no-panic"), "{ids:?}");
        assert!(ids.contains(&"missing-reason"), "{ids:?}");
    }

    #[test]
    fn scope_mapping_covers_the_workspace_shape() {
        assert_eq!(scope_for("crates/core/src/lib.rs"), Some(Scope::Library));
        assert_eq!(
            scope_for("crates/sim/src/network/day.rs"),
            Some(Scope::Library)
        );
        assert_eq!(
            scope_for("crates/bench/src/bin/mc.rs"),
            Some(Scope::Harness)
        );
        assert_eq!(scope_for("shims/rayon/src/lib.rs"), Some(Scope::Harness));
        assert_eq!(scope_for("src/lib.rs"), Some(Scope::Library));
        assert_eq!(scope_for("crates/sim/tests/mc.rs"), None);
        assert_eq!(scope_for("tests/golden_outputs.rs"), None);
    }

    #[test]
    fn long_snippets_are_truncated_on_a_char_boundary() {
        let long = format!("let x = y.unwrap(); // {}", "é".repeat(80));
        let findings = check_source("lib.rs", &long, Scope::Library);
        assert_eq!(findings.diagnostics.len(), 1);
        assert!(findings.diagnostics[0].snippet.ends_with("..."));
        assert!(findings.diagnostics[0].snippet.len() <= 120);
    }
}
