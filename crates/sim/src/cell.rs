//! Grid cells and their evaluated results.

use core::fmt;

use corridor_core::{energy::SegmentEnergy, EnergyStrategy, ScenarioParams};
use corridor_solar::Location;
use corridor_units::Meters;

/// One point of an expanded [`ScenarioGrid`](crate::ScenarioGrid): a fully
/// built scenario plus the axis labels that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    index: usize,
    params: ScenarioParams,
    location: Location,
    profile_name: String,
    nodes: usize,
    isd: Meters,
}

impl ScenarioCell {
    /// Creates a cell (used by the grid expansion).
    pub(crate) fn new(
        index: usize,
        params: ScenarioParams,
        location: Location,
        profile_name: String,
        nodes: usize,
        isd: Meters,
    ) -> Self {
        ScenarioCell {
            index,
            params,
            location,
            profile_name,
            nodes,
            isd,
        }
    }

    /// The cell's position in the grid's deterministic expansion order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The scenario evaluated in this cell.
    pub fn params(&self) -> &ScenarioParams {
        &self.params
    }

    /// The cell's solar climate.
    pub fn location(&self) -> &Location {
        &self.location
    }

    /// The name of the cell's power profile.
    pub fn profile_name(&self) -> &str {
        &self.profile_name
    }

    /// The deployment's repeater count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The deployment's inter-site distance.
    pub fn isd(&self) -> Meters {
        self.isd
    }

    /// The cell's timetable density (trains per service hour).
    pub fn trains_per_hour(&self) -> f64 {
        self.params.timetable().trains_per_hour()
    }

    /// The cell's daily service window in hours.
    pub fn service_window_h(&self) -> f64 {
        self.params.timetable().service_window().value()
    }

    /// The cell's train speed in km/h.
    pub fn train_speed_kmh(&self) -> f64 {
        self.params.train().speed().kilometers_per_hour().value()
    }

    /// The cell's train length in metres.
    pub fn train_length_m(&self) -> f64 {
        self.params.train().length().value()
    }

    /// The cell's repeater spacing in metres.
    pub fn lp_spacing_m(&self) -> f64 {
        self.params.lp_spacing().value()
    }

    /// The cell's conventional reference ISD in metres.
    pub fn conventional_isd_m(&self) -> f64 {
        self.params.conventional_isd().value()
    }
}

impl fmt::Display for ScenarioCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({} tph, {:.0} km/h, {} @ {}, {})",
            self.index,
            self.trains_per_hour(),
            self.train_speed_kmh(),
            self.nodes,
            self.isd,
            self.location.name()
        )
    }
}

/// The outcome of the per-cell PV sizing step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PvOutcome {
    /// Sizing was disabled on the engine.
    Skipped,
    /// No candidate configuration reached zero downtime.
    Unsolvable,
    /// The smallest zero-downtime configuration.
    Sized {
        /// Selected PV peak power in Wp.
        pv_wp: f64,
        /// Selected battery capacity in Wh.
        battery_wh: f64,
        /// Mean percentage of days with a full battery.
        days_full_pct: f64,
    },
}

/// The evaluated result of one cell: the energy split per strategy, the
/// savings versus the cell's conventional baseline, and the PV sizing.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    cell: ScenarioCell,
    evaluator: &'static str,
    baseline: SegmentEnergy,
    continuous: SegmentEnergy,
    sleep: SegmentEnergy,
    solar: SegmentEnergy,
    pv: PvOutcome,
}

impl CellResult {
    /// Creates a result (used by the engine).
    pub(crate) fn new(
        cell: ScenarioCell,
        evaluator: &'static str,
        baseline: SegmentEnergy,
        continuous: SegmentEnergy,
        sleep: SegmentEnergy,
        solar: SegmentEnergy,
        pv: PvOutcome,
    ) -> Self {
        CellResult {
            cell,
            evaluator,
            baseline,
            continuous,
            sleep,
            solar,
            pv,
        }
    }

    /// The cell this result belongs to.
    pub fn cell(&self) -> &ScenarioCell {
        &self.cell
    }

    /// The label of the energy backend that produced this result.
    pub fn evaluator(&self) -> &'static str {
        self.evaluator
    }

    /// The conventional baseline of this cell (masts at the cell's
    /// conventional ISD, sleeping between trains).
    pub fn baseline(&self) -> &SegmentEnergy {
        &self.baseline
    }

    /// The energy split under the given strategy.
    pub fn split(&self, strategy: EnergyStrategy) -> &SegmentEnergy {
        match strategy {
            EnergyStrategy::ContinuousRepeaters => &self.continuous,
            EnergyStrategy::SleepModeRepeaters => &self.sleep,
            EnergyStrategy::SolarPoweredRepeaters => &self.solar,
        }
    }

    /// Fractional savings of the given strategy versus the baseline.
    pub fn savings(&self, strategy: EnergyStrategy) -> f64 {
        self.split(strategy).savings_vs(&self.baseline)
    }

    /// The PV sizing outcome.
    pub fn pv(&self) -> PvOutcome {
        self.pv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_solar::climate;
    use corridor_units::Watts;

    fn cell() -> ScenarioCell {
        ScenarioCell::new(
            3,
            ScenarioParams::paper_default(),
            climate::madrid(),
            "paper".to_owned(),
            10,
            Meters::new(2650.0),
        )
    }

    fn split(hp: f64, service: f64, donor: f64) -> SegmentEnergy {
        SegmentEnergy {
            hp: Watts::new(hp),
            service: Watts::new(service),
            donor: Watts::new(donor),
        }
    }

    #[test]
    fn accessors_expose_axis_labels() {
        let c = cell();
        assert_eq!(c.index(), 3);
        assert_eq!(c.trains_per_hour(), 8.0);
        assert_eq!(c.service_window_h(), 19.0);
        assert!((c.train_speed_kmh() - 200.0).abs() < 1e-9);
        assert_eq!(c.train_length_m(), 400.0);
        assert_eq!(c.lp_spacing_m(), 200.0);
        assert_eq!(c.conventional_isd_m(), 500.0);
        assert_eq!(c.profile_name(), "paper");
        assert!(c.to_string().contains("Madrid"));
    }

    #[test]
    fn result_savings_and_splits() {
        let result = CellResult::new(
            cell(),
            "analytic",
            split(400.0, 0.0, 0.0),
            split(100.0, 80.0, 20.0),
            split(100.0, 30.0, 10.0),
            split(100.0, 0.0, 0.0),
            PvOutcome::Skipped,
        );
        assert_eq!(
            result.split(EnergyStrategy::SleepModeRepeaters).total(),
            Watts::new(140.0)
        );
        assert!((result.savings(EnergyStrategy::ContinuousRepeaters) - 0.5).abs() < 1e-12);
        assert!((result.savings(EnergyStrategy::SolarPoweredRepeaters) - 0.75).abs() < 1e-12);
        assert_eq!(result.pv(), PvOutcome::Skipped);
        assert_eq!(result.cell().index(), 3);
        assert_eq!(result.evaluator(), "analytic");
        assert_eq!(result.baseline().total(), Watts::new(400.0));
    }
}
