//! Fixture: wall-clock time in library code.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
