//! Property-based tests for the solar substrate.

use corridor_solar::{
    climate, Battery, ClearSky, DailyLoadProfile, Location, OffGridSystem, PvArray, SolarGeometry,
    Transposition, WeatherGenerator,
};
use corridor_units::{WattHours, Watts};
use proptest::prelude::*;

fn latitude() -> impl Strategy<Value = f64> {
    -65.0..65.0f64
}

fn doy() -> impl Strategy<Value = u32> {
    1u32..=365
}

proptest! {
    /// Solar elevation is within [-90, 90] and zenith complements it.
    #[test]
    fn elevation_bounded(lat in latitude(), d in doy(), hour in 0.0..24.0f64) {
        let geo = SolarGeometry::at_latitude(lat);
        let e = geo.elevation_deg(d, hour);
        prop_assert!((-90.0..=90.0).contains(&e));
        prop_assert!((geo.zenith_deg(d, hour) + e - 90.0).abs() < 1e-9);
    }

    /// Clear-sky GHI is non-negative, zero at night, bounded by the solar
    /// constant ballpark.
    #[test]
    fn clear_sky_bounded(lat in latitude(), d in doy(), hour in 0.0..24.0f64) {
        let sky = ClearSky::new(SolarGeometry::at_latitude(lat));
        let g = sky.ghi_w_m2(d, hour);
        prop_assert!((0.0..1100.0).contains(&g));
        if SolarGeometry::at_latitude(lat).elevation_deg(d, hour) <= 0.0 {
            prop_assert_eq!(g, 0.0);
        }
    }

    /// POA is non-negative everywhere; on a *horizontal* plane it is
    /// monotone in the clearness index. (On a vertical plane monotonicity
    /// can fail when the sun is behind the plane: clearer skies move
    /// energy from diffuse, which the plane sees, into beam, which it
    /// does not.)
    #[test]
    fn poa_monotone_in_clearness(lat in latitude(), d in doy(), hour in 6.0..18.0f64,
                                 k1 in 0.05..0.8f64, k2 in 0.05..0.8f64) {
        let vertical = Transposition::vertical_south(SolarGeometry::at_latitude(lat));
        let horizontal = Transposition::new(SolarGeometry::at_latitude(lat), 0.0, 0.0);
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(vertical.poa_w_m2(d, hour, lo) >= 0.0);
        prop_assert!(vertical.poa_w_m2(d, hour, hi) >= 0.0);
        // monotonicity holds away from the near-horizon clamp (elev > 5°)
        if SolarGeometry::at_latitude(lat).elevation_deg(d, hour) > 5.0 {
            let p_lo = horizontal.poa_w_m2(d, hour, lo);
            let p_hi = horizontal.poa_w_m2(d, hour, hi);
            prop_assert!(p_hi >= p_lo - 1e-9);
        }
    }

    /// PV output is monotone in irradiance at fixed temperature.
    #[test]
    fn pv_monotone_in_irradiance(g1 in 0.0..1100.0f64, g2 in 0.0..1100.0f64, t in -20.0..45.0f64) {
        let array = PvArray::standard_modules(3);
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        prop_assert!(array.output_power_w(hi, t) >= array.output_power_w(lo, t));
    }

    /// Battery state of charge always stays within [min_soc, capacity]
    /// and the step never reports negative unmet/curtailed energy.
    #[test]
    fn battery_invariants(
        capacity in 100.0..3000.0f64,
        steps in prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), 1..80),
    ) {
        let mut battery = Battery::with_capacity(WattHours::new(capacity));
        for (generation, load) in steps {
            let result = battery.step(WattHours::new(generation), WattHours::new(load));
            prop_assert!(result.unmet.value() >= 0.0);
            prop_assert!(result.curtailed.value() >= 0.0);
            let soc = battery.state_of_charge();
            prop_assert!(soc >= battery.min_soc() - WattHours::new(1e-9));
            prop_assert!(soc <= battery.capacity() + WattHours::new(1e-9));
        }
    }

    /// Battery energy conservation: SoC change = stored - drawn (with the
    /// configured efficiencies) within each step.
    #[test]
    fn battery_energy_conservation(gen in 0.0..400.0f64, load in 0.0..400.0f64) {
        let mut battery = Battery::with_capacity(WattHours::new(720.0));
        battery.step(WattHours::ZERO, WattHours::new(150.0)); // make headroom
        let before = battery.state_of_charge().value();
        let step = battery.step(WattHours::new(gen), WattHours::new(load));
        let after = battery.state_of_charge().value();
        let net = gen - load;
        if net >= 0.0 {
            let expected = (net - step.curtailed.value()) * 0.95;
            prop_assert!((after - before - expected).abs() < 1e-6);
        } else {
            let expected = (-net - step.unmet.value()) / 0.95;
            prop_assert!((before - after - expected).abs() < 1e-6);
        }
    }

    /// Year simulations are reproducible and consumption matches the
    /// profile exactly regardless of weather.
    #[test]
    fn simulation_reproducible(seed in 0u64..50) {
        let sys = OffGridSystem::new(
            climate::vienna(),
            PvArray::standard_modules(3),
            Battery::paper_default(),
            DailyLoadProfile::repeater_paper_default(),
        );
        let a = sys.simulate_year(seed);
        let b = sys.simulate_year(seed);
        prop_assert_eq!(a, b);
        let expected = DailyLoadProfile::repeater_paper_default().daily_energy().value() * 365.0;
        prop_assert!((a.consumption().value() - expected).abs() < 1e-6);
        prop_assert!(a.full_battery_days() <= 365);
        prop_assert!(a.downtime_days() <= 365);
    }

    /// Weather multipliers stay within the configured bounds for any
    /// variability.
    #[test]
    fn weather_bounds(seed in 0u64..100, variability in 0.0..3.0f64) {
        let mut w = WeatherGenerator::new(climate::berlin(), seed).with_variability(variability);
        for m in w.daily_multipliers_for_year() {
            if variability == 0.0 {
                prop_assert_eq!(m, 1.0);
            } else {
                prop_assert!((WeatherGenerator::MIN_MULTIPLIER
                    ..=WeatherGenerator::MAX_MULTIPLIER).contains(&m));
            }
        }
    }

    /// A larger load never improves the year's outcome.
    #[test]
    fn bigger_load_never_better(seed in 0u64..20, extra in 0.0..20.0f64) {
        let base_load = DailyLoadProfile::constant(Watts::new(5.0));
        let big_load = DailyLoadProfile::constant(Watts::new(5.0 + extra));
        let mk = |load: DailyLoadProfile| {
            OffGridSystem::new(
                climate::berlin(),
                PvArray::standard_modules(3),
                Battery::paper_default(),
                load,
            )
        };
        let small = mk(base_load).simulate_year(seed);
        let big = mk(big_load).simulate_year(seed);
        prop_assert!(big.downtime_days() >= small.downtime_days());
        prop_assert!(big.unmet_energy() >= small.unmet_energy());
        prop_assert!(big.full_battery_days() <= small.full_battery_days());
    }

    /// month_of_doy is consistent with cumulative month lengths.
    #[test]
    fn month_of_doy_consistent(d in 1u32..=365) {
        let m = Location::month_of_doy(d);
        prop_assert!(m < 12);
        const CUM: [u32; 13] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365];
        prop_assert!(d > CUM[m] && d <= CUM[m + 1]);
    }
}
