//! Regenerates the paper's Fig. 3: signal and noise power values for
//! d_ISD = 2400 m and N = 8 low-power repeater nodes.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::fig3());
}
