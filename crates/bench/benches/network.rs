//! Network-optimizer throughput: edges searched per second, serial vs
//! parallel, plus the sleep scheduler alone.
//!
//! The per-edge search dominates (it is the same cached Pareto search
//! the `optimize` bench times); the scheduler adds a greedy pass over
//! the boundary repeaters whose cost this bench pins as negligible next
//! to the search.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use corridor_core::units::Meters;
use corridor_sim::{CorridorNetwork, NetworkOptimizer, SearchSpace};

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn bench_space() -> SearchSpace {
    SearchSpace::new().sample_step(Meters::new(10.0))
}

fn bench_network() -> CorridorNetwork {
    CorridorNetwork::by_name("star4").expect("star4 is a named topology")
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let net = bench_network();
    let space = bench_space();
    let mut group = c.benchmark_group("network_star4");
    group.bench_function("serial", |b| {
        let optimizer = NetworkOptimizer::new().workers(1);
        b.iter(|| {
            optimizer
                .run_serial(black_box(&net), black_box(&space))
                .unwrap()
        })
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                let optimizer = NetworkOptimizer::new().workers(workers);
                b.iter(|| optimizer.run(black_box(&net), black_box(&space)).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_schedule_only(c: &mut Criterion) {
    // re-running `run` on a warmed coverage cache leaves the schedule
    // and fold as the dominant non-cached work
    let net = bench_network();
    let space = bench_space();
    let optimizer = NetworkOptimizer::new().workers(1);
    let _warm = optimizer.run(&net, &space).unwrap();
    c.bench_function("network_schedule_warm", |b| {
        b.iter(|| optimizer.run(black_box(&net), black_box(&space)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_serial_vs_parallel, bench_schedule_only
}
criterion_main!(benches);
