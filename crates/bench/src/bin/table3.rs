//! Regenerates the paper's Table III: parameters for the average energy
//! consumption calculations.

use corridor_bench::scenario;
use corridor_core::report::TextTable;
use corridor_core::traffic::TrackSection;
use corridor_core::units::Meters;

fn main() {
    let params = scenario();
    let train = params.train();
    println!("Table III — parameters for average energy calculations\n");
    let mut table = TextTable::new(vec!["parameter".into(), "value".into()]);
    let rows: Vec<(&str, String)> = vec![
        (
            "Number of trains/h",
            format!("{}", params.timetable().trains_per_hour()),
        ),
        (
            "Hours per night without traffic",
            format!("{} h", 24.0 - params.timetable().service_window().value()),
        ),
        ("Length of a train", format!("{}", train.length())),
        (
            "Velocity of a train",
            format!("{}", train.speed().kilometers_per_hour()),
        ),
        (
            "LP repeater node spacing",
            format!("{}", params.lp_spacing()),
        ),
        (
            "Power for HP RRH mast under full load",
            format!("{}", params.hp_mast().full_load_power()),
        ),
        (
            "Power for HP RRH mast in sleep mode",
            format!("{}", params.hp_mast().p_sleep()),
        ),
        (
            "Power for LP node under full load",
            format!("{}", params.lp_node().full_load_power()),
        ),
        (
            "Power for LP node no load",
            format!("{}", params.lp_node().p0()),
        ),
        (
            "Power for LP node in sleep mode",
            format!("{}", params.lp_node().p_sleep()),
        ),
    ];
    for (k, v) in rows {
        table.add_row(vec![k.to_string(), v]);
    }
    println!("{}", table.render());

    // the derived "operation under full load per train" range of the paper
    let t_500 = TrackSection::new(Meters::ZERO, Meters::new(500.0)).occupancy(
        &corridor_core::traffic::TrainPass::new(train, corridor_core::units::Seconds::ZERO),
    );
    let t_2650 = TrackSection::new(Meters::ZERO, Meters::new(2650.0)).occupancy(
        &corridor_core::traffic::TrainPass::new(train, corridor_core::units::Seconds::ZERO),
    );
    println!(
        "derived full-load time per train: {:.1} s (ISD 500 m) to {:.1} s (ISD 2650 m); paper: 16 s - 55 s",
        (t_500.1 - t_500.0).value(),
        (t_2650.1 - t_2650.0).value()
    );
}
