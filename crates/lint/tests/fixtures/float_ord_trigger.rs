//! Fixture: NaN-unsafe float ordering in library code.

pub fn ordering(a: f64, b: f64) -> Option<core::cmp::Ordering> {
    a.partial_cmp(&b)
}
