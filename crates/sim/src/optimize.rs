//! Corridor deployment optimizer: a joint search over repeater count,
//! inter-site distance, wake policy and PV sizing that emits a Pareto
//! frontier per scenario cell.
//!
//! The paper's Section V answers the deployment question one axis at a
//! time (a fixed 50 m-step ISD sweep per repeater count). This module
//! closes the loop with the energy and PV layers: a [`SearchSpace`]
//! describes the candidate configurations, the [`DeploymentOptimizer`]
//! evaluates every candidate of every [`ScenarioGrid`] cell on the
//! worker pool — coverage through a shared
//! [`CoverageCache`](corridor_deploy::CoverageCache) (each
//! `(layout, budget)` pair profiled once across the whole search),
//! energy through the [`SegmentEvaluator`](corridor_core::SegmentEvaluator)
//! backends, PV sizing through the Table IV methodology — and keeps the
//! Pareto-non-dominated set per cell over three objectives:
//!
//! * **energy/day** — Wh per day per km of corridor (minimize),
//! * **nodes/km** — deployed equipment density, masts + repeaters
//!   (minimize),
//! * **coverage margin** — minimum SNR above the threshold, dB
//!   (maximize).
//!
//! Results land in an [`OptimizeReport`] whose CSV/JSON renderings are
//! byte-identical no matter how many workers produced them.

use core::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use corridor_core::margin::MarginModel;
use corridor_core::sink::{RowEmitter, RowFormat, RowSink, SinkResult, StringSink};
use corridor_core::{pareto, AnalyticEvaluator, EnergyStrategy, ScenarioError, SegmentEvaluator};
use corridor_deploy::{CoverageCache, IsdTable, LinkBudget, SegmentInventory};
use corridor_events::{EventDrivenEvaluator, NodeKind, WakePolicy};
use corridor_traffic::TrackSection;
use corridor_units::{Db, Meters};
use rayon::prelude::*;

use crate::cache::{KeyBuilder, ResultCache};
use crate::engine::{build_pool, size_repeater_pv_for_load};
use crate::report::{csv_field, json_string};
use crate::stream::{self, ChunkRows, RowPair, StreamError, StreamSummary};
use crate::{PvOutcome, ScenarioCell, ScenarioGrid};

/// How the ISD dimension of the search is resolved per repeater count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IsdSearch {
    /// The published Section V anchors ([`IsdTable::paper`]): each
    /// repeater count deploys at the paper's maximum ISD. Counts beyond
    /// the table (> 10) are infeasible candidates, not errors.
    PaperTable,
    /// Model-derived maxima: for each count, the largest grid ISD whose
    /// minimum SNR stays at or above the search's threshold, found by
    /// cached binary search over `min..=max` stepping by `step`.
    ModelGrid {
        /// Smallest candidate ISD.
        min: Meters,
        /// Largest candidate ISD.
        max: Meters,
        /// ISD grid step (the paper uses 50 m).
        step: Meters,
    },
}

impl IsdSearch {
    /// The paper's 50 m-step model search over 100 m – 4000 m.
    pub fn model_paper_grid() -> Self {
        IsdSearch::ModelGrid {
            min: Meters::new(100.0),
            max: Meters::new(4000.0),
            step: Meters::new(50.0),
        }
    }

    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            IsdSearch::PaperTable => "paper-table",
            IsdSearch::ModelGrid { .. } => "model-grid",
        }
    }
}

/// The candidate configurations a [`DeploymentOptimizer`] explores for
/// every scenario cell: repeater counts × ISD resolution × wake
/// policies, with optional per-candidate PV sizing.
///
/// # Examples
///
/// ```
/// use corridor_sim::{DeploymentOptimizer, ScenarioGrid, SearchSpace};
///
/// let space = SearchSpace::new().node_counts((0..=4).collect());
/// let report = DeploymentOptimizer::new()
///     .workers(1)
///     .run(&ScenarioGrid::new(), &space)
///     .unwrap();
/// assert_eq!(report.len(), 1);
/// assert!(!report.results()[0].frontier().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    node_counts: Vec<usize>,
    isd_search: IsdSearch,
    wake_policies: Vec<WakePolicy>,
    pv_sizing: bool,
    snr_threshold: Db,
    sample_step: Meters,
}

impl SearchSpace {
    /// The default space: counts 0–10 at the paper-table ISDs, the
    /// instant wake policy, no PV sizing, the paper's 29 dB threshold
    /// and 5 m profile sampling.
    pub fn new() -> Self {
        SearchSpace {
            node_counts: (0..=10).collect(),
            isd_search: IsdSearch::PaperTable,
            wake_policies: vec![WakePolicy::instant()],
            pv_sizing: false,
            snr_threshold: Db::new(29.0),
            sample_step: Meters::new(5.0),
        }
    }

    /// Sets the repeater-count axis.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty — an empty axis is a configuration
    /// bug, mirroring [`ScenarioGrid`]'s axis setters.
    #[must_use]
    pub fn node_counts(mut self, counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "node count axis must not be empty");
        self.node_counts = counts;
        self
    }

    /// Sets the ISD resolution mode.
    #[must_use]
    pub fn isd_search(mut self, isd_search: IsdSearch) -> Self {
        self.isd_search = isd_search;
        self
    }

    /// Sets the wake-policy axis.
    ///
    /// # Panics
    ///
    /// Panics if `policies` is empty.
    #[must_use]
    pub fn wake_policies(mut self, policies: Vec<WakePolicy>) -> Self {
        assert!(!policies.is_empty(), "wake policy axis must not be empty");
        self.wake_policies = policies;
        self
    }

    /// Enables or disables per-candidate PV sizing (the expensive step:
    /// three seeded weather years per sized candidate).
    #[must_use]
    pub fn pv_sizing(mut self, enabled: bool) -> Self {
        self.pv_sizing = enabled;
        self
    }

    /// Sets the coverage threshold (minimum SNR along the track).
    #[must_use]
    pub fn snr_threshold(mut self, threshold: Db) -> Self {
        self.snr_threshold = threshold;
        self
    }

    /// The coverage threshold — the margin-trading scheduler prices
    /// interior sleeps against the same model the search used.
    pub(crate) fn snr_threshold_value(&self) -> Db {
        self.snr_threshold
    }

    /// Sets the coverage-profile sampling step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn sample_step(mut self, step: Meters) -> Self {
        assert!(step.value() > 0.0, "sample step must be positive");
        self.sample_step = step;
        self
    }

    /// Candidate configurations per cell (counts × policies; the ISD is
    /// resolved, not enumerated).
    pub fn candidates_per_cell(&self) -> usize {
        self.node_counts.len() * self.wake_policies.len()
    }

    /// The ISD resolution label (shared with the network optimizer's
    /// renderings).
    pub(crate) fn isd_search_label(&self) -> &'static str {
        self.isd_search.label()
    }

    /// The coverage-profile sampling step (shared with the network
    /// optimizer's cache construction).
    pub(crate) fn sample_step_value(&self) -> Meters {
        self.sample_step
    }
}

impl Default for SearchSpace {
    /// Returns [`SearchSpace::new`].
    fn default() -> Self {
        SearchSpace::new()
    }
}

/// A short stable label for a wake policy in report columns.
fn policy_label(policy: &WakePolicy) -> String {
    if *policy == WakePolicy::instant() {
        "instant".to_owned()
    } else if *policy == WakePolicy::paper_default() {
        "paper".to_owned()
    } else {
        format!(
            "lead{:.1}s-wake{:.1}s-guard{:.1}s",
            policy.lead().value(),
            policy.wake_delay().value(),
            policy.guard().value()
        )
    }
}

/// One non-dominated deployment configuration of a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Service repeater count.
    pub nodes: usize,
    /// Deployment inter-site distance.
    pub isd: Meters,
    /// Wake-policy label (`instant`, `paper`, or the timing triple).
    pub policy: String,
    /// Energy backend that produced the numbers (`analytic` for the
    /// instant policy, `event-driven` otherwise).
    pub evaluator: &'static str,
    /// Objective 1: corridor energy, Wh per day per km (minimized).
    pub energy_wh_day_km: f64,
    /// Objective 2: deployed nodes (masts + repeaters) per km
    /// (minimized).
    pub nodes_per_km: f64,
    /// Objective 3: minimum SNR above the threshold, dB (maximized).
    /// Negative for paper-table deployments the model considers
    /// marginal.
    pub margin_db: f64,
    /// Sleep-mode savings versus the cell's conventional baseline, %.
    pub saving_sleep_pct: f64,
    /// Daily energy of one service repeater, Wh (the paper's
    /// 124.1 Wh/day headline quantity; `0.0` for a conventional
    /// deployment).
    pub repeater_wh_day: f64,
    /// PV sizing of one service repeater at this geometry.
    pub pv: PvOutcome,
}

/// The searched outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The non-dominated configurations, in candidate order (node count
    /// outermost, wake policy innermost).
    Frontier(Vec<FrontierPoint>),
    /// No candidate satisfied the coverage search — an explicit,
    /// reportable outcome instead of a panic or a silently empty row.
    Unsolvable,
}

/// The evaluated search result of one scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeCellResult {
    cell: ScenarioCell,
    evaluated: usize,
    outcome: CellOutcome,
}

impl OptimizeCellResult {
    /// The cell this frontier belongs to.
    pub fn cell(&self) -> &ScenarioCell {
        &self.cell
    }

    /// Candidate configurations evaluated for this cell (feasible ones;
    /// infeasible counts/policies are skipped before evaluation).
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// The searched outcome.
    pub fn outcome(&self) -> &CellOutcome {
        &self.outcome
    }

    /// The frontier points (empty for an unsolvable cell).
    pub fn frontier(&self) -> &[FrontierPoint] {
        match &self.outcome {
            CellOutcome::Frontier(points) => points,
            CellOutcome::Unsolvable => &[],
        }
    }

    /// True if no candidate was feasible.
    pub fn is_unsolvable(&self) -> bool {
        matches!(self.outcome, CellOutcome::Unsolvable)
    }
}

/// Executes [`SearchSpace`]s over [`ScenarioGrid`]s, serially or on the
/// worker pool.
///
/// Cells evaluate independently and in parallel; they share one
/// [`CoverageCache`](corridor_deploy::CoverageCache) per distinct link
/// budget, so the coverage question for a given `(n, isd, placement)`
/// is profiled once across the whole search instead of once per cell ×
/// policy × probe (the hot path of the naive per-step sweep). Results
/// fold in grid order, so reports are byte-identical across worker
/// counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentOptimizer {
    workers: Option<usize>,
}

impl DeploymentOptimizer {
    /// An optimizer with automatic worker count.
    pub fn new() -> Self {
        DeploymentOptimizer { workers: None }
    }

    /// Sets an explicit worker count (an explicit `0` is rejected by
    /// [`DeploymentOptimizer::run`], mirroring the sweep engines).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Expands the grid and searches every cell on the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::ZeroWorkers`] for an explicit worker
    /// count of zero, [`ScenarioError::WorkerPoolBuild`] if the pool
    /// cannot be built, or the [`ScenarioError`] of the first cell
    /// whose parameters fail validation.
    pub fn run(
        &self,
        grid: &ScenarioGrid,
        space: &SearchSpace,
    ) -> Result<OptimizeReport, ScenarioError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers);
        }
        let (work, caches) = Self::expand(grid, space)?;
        let pool = build_pool(self.workers)?;
        let results: Vec<OptimizeCellResult> = pool.install(|| {
            work.par_iter()
                .map(|(cell, cache)| evaluate_cell(cell, cache, space))
                .collect()
        });
        Ok(Self::fold(results, space, caches))
    }

    /// Searches every cell on the calling thread — the reference path
    /// the parallel results are checked against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeploymentOptimizer::run`].
    pub fn run_serial(
        &self,
        grid: &ScenarioGrid,
        space: &SearchSpace,
    ) -> Result<OptimizeReport, ScenarioError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers);
        }
        let (work, caches) = Self::expand(grid, space)?;
        let results: Vec<OptimizeCellResult> = work
            .iter()
            .map(|(cell, cache)| evaluate_cell(cell, cache, space))
            .collect();
        Ok(Self::fold(results, space, caches))
    }

    /// Streams the whole grid into `sink` in grid order without
    /// materializing the report; the emitted bytes are identical to
    /// [`DeploymentOptimizer::run`] + [`OptimizeReport::to_csv`] /
    /// [`OptimizeReport::to_json`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeploymentOptimizer::run`], plus
    /// [`StreamError::Sink`] if the sink refuses a row.
    pub fn stream(
        &self,
        grid: &ScenarioGrid,
        space: &SearchSpace,
        format: RowFormat,
        sink: &mut dyn RowSink,
    ) -> Result<StreamSummary, StreamError> {
        self.stream_with(grid, space, format, sink, None)
    }

    /// [`DeploymentOptimizer::stream`] with an optional [`ResultCache`]
    /// keyed by the scenario hash and the whole search space (counts,
    /// ISD mode, policies, threshold, sampling step, link budget).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeploymentOptimizer::stream`].
    pub fn stream_with(
        &self,
        grid: &ScenarioGrid,
        space: &SearchSpace,
        format: RowFormat,
        sink: &mut dyn RowSink,
        cache: Option<&ResultCache>,
    ) -> Result<StreamSummary, StreamError> {
        let mut rows =
            RowEmitter::begin(sink, format, OPTIMIZE_CSV_HEADER).map_err(StreamError::Sink)?;
        let summary = self.stream_rows(grid, space, 0..grid.len(), format, cache, |row| {
            rows.row(row).map_err(StreamError::Sink)
        })?;
        rows.finish().map_err(StreamError::Sink)?;
        Ok(summary)
    }

    /// Streams the raw per-cell chunks of a cell range to `emit`,
    /// without header or framing (the `serve` shard primitive). Workers
    /// share one lazily built [`CoverageCache`] per distinct link
    /// budget, exactly like the in-memory expansion.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches past the grid's length.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeploymentOptimizer::stream`]; an `Err`
    /// from `emit` cancels the remaining evaluation and is returned.
    pub fn stream_rows(
        &self,
        grid: &ScenarioGrid,
        space: &SearchSpace,
        range: core::ops::Range<usize>,
        format: RowFormat,
        cache: Option<&ResultCache>,
        mut emit: impl FnMut(&str) -> Result<(), StreamError>,
    ) -> Result<StreamSummary, StreamError> {
        let workers = stream::resolve_workers(self.workers)?;
        let coverage: Mutex<Vec<(LinkBudget, Arc<CoverageCache>)>> = Mutex::new(Vec::new());
        stream::drive(
            workers,
            range,
            format,
            |index| {
                let cell = grid.cell_at(index)?;
                let key = match cache {
                    Some(store) => {
                        let key = cache_key(&cell, space);
                        if let Some(pair) = store.load(&key) {
                            return Ok(ChunkRows {
                                rows: vec![pair],
                                cache_hits: 1,
                                cache_misses: 0,
                            });
                        }
                        key
                    }
                    None => String::new(),
                };
                let shared = {
                    let mut caches = coverage.lock().unwrap_or_else(PoisonError::into_inner);
                    let budget = cell.params().budget();
                    match caches.iter().find(|(b, _)| b == budget) {
                        Some((_, shared)) => Arc::clone(shared),
                        None => {
                            let shared = Arc::new(CoverageCache::with_sample_step(
                                budget.clone(),
                                space.sample_step,
                            ));
                            caches.push((budget.clone(), Arc::clone(&shared)));
                            shared
                        }
                    }
                };
                let result = evaluate_cell(&cell, &shared, space);
                let label = space.isd_search.label();
                let pair = RowPair {
                    csv: render_optimize_row(&result, label, RowFormat::Csv),
                    json: render_optimize_row(&result, label, RowFormat::Json),
                };
                if let Some(store) = cache {
                    store.store(&key, &pair);
                }
                Ok(ChunkRows {
                    rows: vec![pair],
                    cache_hits: 0,
                    cache_misses: u64::from(cache.is_some()),
                })
            },
            &mut emit,
        )
    }

    /// Expands the grid and pairs every cell with the shared coverage
    /// cache of its link budget (one cache per distinct budget, usually
    /// exactly one).
    #[allow(clippy::type_complexity)]
    fn expand(
        grid: &ScenarioGrid,
        space: &SearchSpace,
    ) -> Result<
        (
            Vec<(ScenarioCell, Arc<CoverageCache>)>,
            Vec<Arc<CoverageCache>>,
        ),
        ScenarioError,
    > {
        let cells = grid.expand()?;
        let mut caches: Vec<(LinkBudget, Arc<CoverageCache>)> = Vec::new();
        let work = cells
            .into_iter()
            .map(|cell| {
                let budget = cell.params().budget();
                let cache = match caches.iter().find(|(b, _)| b == budget) {
                    Some((_, cache)) => Arc::clone(cache),
                    None => {
                        let cache = Arc::new(CoverageCache::with_sample_step(
                            budget.clone(),
                            space.sample_step,
                        ));
                        caches.push((budget.clone(), Arc::clone(&cache)));
                        cache
                    }
                };
                (cell, cache)
            })
            .collect();
        Ok((work, caches.into_iter().map(|(_, c)| c).collect()))
    }

    /// Assembles the report and the aggregated cache counters.
    fn fold(
        results: Vec<OptimizeCellResult>,
        space: &SearchSpace,
        caches: Vec<Arc<CoverageCache>>,
    ) -> OptimizeReport {
        let lookups = caches.iter().map(|c| c.lookups()).sum();
        let profile_evaluations = caches.iter().map(|c| c.profile_evaluations()).sum();
        OptimizeReport {
            results,
            isd_search: space.isd_search.label(),
            lookups,
            profile_evaluations,
        }
    }
}

impl Default for DeploymentOptimizer {
    /// Returns [`DeploymentOptimizer::new`].
    fn default() -> Self {
        DeploymentOptimizer::new()
    }
}

/// The scenario hash of one cell under a whole search space. Beyond the
/// common cell fingerprint this folds in every search axis and the link
/// budget's coverage-relevant parameters — perturbing the SNR threshold
/// or a wake policy dirties every cell, while perturbing one grid axis
/// dirties exactly the cells on it.
fn cache_key(cell: &ScenarioCell, space: &SearchSpace) -> String {
    let mut key = KeyBuilder::new("optimize");
    for &count in &space.node_counts {
        key.int("n", count as u64);
    }
    key.text("isd_search", space.isd_search.label());
    if let IsdSearch::ModelGrid { min, max, step } = space.isd_search {
        key.f64("isd_min", min.value())
            .f64("isd_max", max.value())
            .f64("isd_step", step.value());
    }
    for policy in &space.wake_policies {
        key.f64("lead", policy.lead().value())
            .f64("wake", policy.wake_delay().value())
            .f64("guard", policy.guard().value());
    }
    key.int("pv", u64::from(space.pv_sizing))
        .f64("snr", space.snr_threshold.value())
        .f64("step", space.sample_step.value());
    let budget = cell.params().budget();
    key.f64("freq", budget.frequency().value())
        .f64("hp_eirp", budget.hp_eirp().value())
        .f64("lp_eirp", budget.lp_eirp().value())
        .f64("hp_cal", budget.hp_calibration().value())
        .f64("lp_cal", budget.lp_calibration().value())
        .f64("noise", budget.noise_floor().value());
    key.cell(cell);
    key.finish()
}

/// Searches one cell: resolve the ISD per count, evaluate every
/// feasible `(count, policy)` candidate, keep the Pareto frontier.
/// Shared with the network optimizer, whose per-edge search is exactly
/// this function over edge-derived cells — the sharing is what makes
/// the degenerate-path differential test a byte-for-byte identity.
pub(crate) fn evaluate_cell(
    cell: &ScenarioCell,
    cache: &CoverageCache,
    space: &SearchSpace,
) -> OptimizeCellResult {
    let params = cell.params();
    let placement = params.placement();
    let passes = params.timetable().passes();
    // per-policy conventional baselines, computed lazily on the first
    // feasible candidate and shared across the count loop: the baseline
    // deployment has no repeaters, so it is count-invariant, and the
    // event-driven variant is a full simulated day an all-infeasible
    // (Unsolvable) cell must not pay for
    let mut baselines: Vec<Option<corridor_core::energy::SegmentEnergy>> =
        vec![None; space.wake_policies.len()];
    let baseline_for = |policy: &WakePolicy| {
        if *policy == WakePolicy::instant() {
            AnalyticEvaluator.conventional_baseline(params)
        } else {
            let backend = EventDrivenEvaluator::with_policy(*policy);
            let report = backend.simulate_segment(params, 0, params.conventional_isd(), &passes);
            EventDrivenEvaluator::power_from_report(
                params,
                0,
                params.conventional_isd(),
                EnergyStrategy::SleepModeRepeaters,
                &report,
            )
        }
    };
    let mut candidates: Vec<FrontierPoint> = Vec::new();

    // margin arithmetic lives in the shared core model, so the network
    // scheduler's margin-trading prices are the optimizer's own
    let margin_model = MarginModel::new(space.snr_threshold);
    for &n in &space.node_counts {
        let isd = match space.isd_search {
            IsdSearch::PaperTable => IsdTable::paper().isd_for(n),
            IsdSearch::ModelGrid { min, max, step } => {
                cache.max_feasible_isd(n, placement, margin_model.threshold(), min, max, step)
            }
        };
        let Some(isd) = isd else {
            continue; // count infeasible under this ISD resolution
        };
        // coverage margin from the shared cache (placement failures at
        // the paper anchors — e.g. a wide LP spacing — are infeasible)
        let Some(margin_db) = margin_model.margin_of(cache, n, isd, placement) else {
            continue;
        };

        let inventory = SegmentInventory::for_nodes(n, isd);
        let nodes_per_km = (inventory.total_repeaters() as f64 + inventory.masts() as f64)
            * inventory.segments_per_km();

        for (policy, baseline_slot) in space.wake_policies.iter().zip(baselines.iter_mut()) {
            let baseline = *baseline_slot.get_or_insert_with(|| baseline_for(policy));
            // PV sizing is per policy: a padded policy keeps the node
            // powered longer, so its "zero-downtime" system must be
            // sized for the padded load, not the instant-wake floor
            let (evaluator, sleep, repeater_wh_day, pv) = if *policy == WakePolicy::instant() {
                // the closed form models instant transitions exactly
                let backend = AnalyticEvaluator;
                let sleep = backend.average_power_per_km(
                    params,
                    n,
                    isd,
                    EnergyStrategy::SleepModeRepeaters,
                );
                let (repeater_wh_day, pv) = if n == 0 {
                    (0.0, PvOutcome::Skipped)
                } else {
                    let section = TrackSection::around(isd / 2.0, params.lp_spacing());
                    let active = corridor_core::energy::active_hours(params, section);
                    let wh_day =
                        corridor_power::DutyCycle::over_day(active, corridor_units::Hours::ZERO)
                            .daily_energy(params.lp_node())
                            .value();
                    let pv = if space.pv_sizing {
                        // the activity hours are already in hand; skip
                        // size_repeater_pv's identical timeline scan
                        size_repeater_pv_for_load(params, cell.location(), active.value())
                    } else {
                        PvOutcome::Skipped
                    };
                    (wh_day, pv)
                };
                (backend.name(), sleep, repeater_wh_day, pv)
            } else {
                let backend = EventDrivenEvaluator::with_policy(*policy);
                let report = backend.simulate_segment(params, n, isd, &passes);
                let sleep = EventDrivenEvaluator::power_from_report(
                    params,
                    n,
                    isd,
                    EnergyStrategy::SleepModeRepeaters,
                    &report,
                );
                let service: Vec<(f64, f64)> = report
                    .nodes_of(NodeKind::ServiceRepeater)
                    .map(|node| {
                        (
                            node.trace().daily_energy(params.lp_node()).value(),
                            node.trace().powered().value() / 3600.0,
                        )
                    })
                    .collect();
                let (repeater_wh_day, powered_h) = if service.is_empty() {
                    (0.0, 0.0)
                } else {
                    let count = service.len() as f64;
                    (
                        service.iter().map(|(wh, _)| wh).sum::<f64>() / count,
                        service.iter().map(|(_, h)| h).sum::<f64>() / count,
                    )
                };
                let pv = if space.pv_sizing && n > 0 {
                    size_repeater_pv_for_load(params, cell.location(), powered_h)
                } else {
                    PvOutcome::Skipped
                };
                (backend.name(), sleep, repeater_wh_day, pv)
            };

            candidates.push(FrontierPoint {
                nodes: n,
                isd,
                policy: policy_label(policy),
                evaluator,
                energy_wh_day_km: sleep.total().value() * 24.0,
                nodes_per_km,
                margin_db,
                saving_sleep_pct: sleep.savings_vs(&baseline) * 100.0,
                repeater_wh_day,
                pv,
            });
        }
    }

    let evaluated = candidates.len();
    if candidates.is_empty() {
        return OptimizeCellResult {
            cell: cell.clone(),
            evaluated,
            outcome: CellOutcome::Unsolvable,
        };
    }
    let objectives: Vec<Vec<f64>> = candidates
        .iter()
        .map(|c| vec![c.energy_wh_day_km, c.nodes_per_km, -c.margin_db])
        .collect();
    let keep = pareto::frontier_indices(&objectives);
    let frontier: Vec<FrontierPoint> = keep.into_iter().map(|i| candidates[i].clone()).collect();
    // every objective was finite-checked by the frontier builder; an
    // all-non-finite candidate set degenerates to Unsolvable as well
    let outcome = if frontier.is_empty() {
        CellOutcome::Unsolvable
    } else {
        CellOutcome::Frontier(frontier)
    };
    OptimizeCellResult {
        cell: cell.clone(),
        evaluated,
        outcome,
    }
}

/// The CSV header [`OptimizeReport::to_csv`] writes.
pub const OPTIMIZE_CSV_HEADER: &str = "cell,trains_per_hour,service_window_h,train_speed_kmh,\
train_length_m,lp_spacing_m,conventional_isd_m,power_profile,climate,isd_search,status,\
nodes,isd_m,policy,evaluator,energy_wh_day_km,nodes_per_km,margin_db,saving_sleep_pct,\
repeater_wh_day,pv_wp,battery_wh,days_full_pct";

/// The Pareto frontiers of a whole search, in grid order, with
/// deterministic CSV/JSON writers and the shared cache's counters.
///
/// # Examples
///
/// ```
/// use corridor_sim::{DeploymentOptimizer, ScenarioGrid, SearchSpace, OPTIMIZE_CSV_HEADER};
///
/// let report = DeploymentOptimizer::new()
///     .workers(1)
///     .run(&ScenarioGrid::new(), &SearchSpace::new().node_counts(vec![0, 8, 10]))
///     .unwrap();
/// assert!(report.to_csv().starts_with(OPTIMIZE_CSV_HEADER));
/// assert!(report.frontier_points() >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    results: Vec<OptimizeCellResult>,
    isd_search: &'static str,
    lookups: u64,
    profile_evaluations: u64,
}

impl OptimizeReport {
    /// The per-cell search results, in grid order.
    pub fn results(&self) -> &[OptimizeCellResult] {
        &self.results
    }

    /// Number of searched cells.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the report holds no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The ISD resolution label of the search.
    pub fn isd_search(&self) -> &'static str {
        self.isd_search
    }

    /// Candidate configurations evaluated across all cells.
    pub fn candidates_evaluated(&self) -> usize {
        self.results.iter().map(|r| r.evaluated()).sum()
    }

    /// Frontier points across all cells.
    pub fn frontier_points(&self) -> usize {
        self.results.iter().map(|r| r.frontier().len()).sum()
    }

    /// Coverage-cache lookups across the search — what an uncached
    /// per-step sweep would have paid in SNR-profile samples.
    pub fn coverage_lookups(&self) -> u64 {
        self.lookups
    }

    /// SNR profiles actually sampled (cache misses).
    pub fn profile_evaluations(&self) -> u64 {
        self.profile_evaluations
    }

    /// Fraction of coverage lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        1.0 - self.profile_evaluations as f64 / self.lookups as f64
    }

    /// Streams the report's per-cell chunks into `sink` in grid order,
    /// returning the cell count; byte-identical to
    /// [`OptimizeReport::to_csv`] / [`OptimizeReport::to_json`]. A CSV
    /// "row" here is one cell's whole chunk — one line per frontier
    /// point, or a single `unsolvable` line.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`](corridor_core::sink::SinkError).
    pub fn stream_into(&self, format: RowFormat, sink: &mut dyn RowSink) -> SinkResult<u64> {
        let mut rows = RowEmitter::begin(sink, format, OPTIMIZE_CSV_HEADER)?;
        for r in &self.results {
            rows.row(&render_optimize_row(r, self.isd_search, format))?;
        }
        rows.finish()
    }

    /// Renders the report as CSV: one line per frontier point, one
    /// `unsolvable` line per cell without any feasible candidate.
    pub fn to_csv(&self) -> String {
        StringSink::render(64 + 160 * self.frontier_points().max(1), |sink| {
            self.stream_into(RowFormat::Csv, sink)
        })
    }

    /// Renders the report as a JSON array of cell objects, each with
    /// its status and frontier.
    pub fn to_json(&self) -> String {
        StringSink::render(64 + 320 * self.frontier_points().max(1), |sink| {
            self.stream_into(RowFormat::Json, sink)
        })
    }

    /// Writes [`OptimizeReport::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Writes [`OptimizeReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Renders one cell's search outcome as a report chunk. The CSV chunk
/// spans one line per frontier point (each with its own newline); the
/// JSON chunk is one cell object with its nested frontier array.
pub(crate) fn render_optimize_row(
    r: &OptimizeCellResult,
    isd_search: &str,
    format: RowFormat,
) -> String {
    let c = r.cell();
    match format {
        RowFormat::Csv => {
            let mut out = String::with_capacity(160 * r.frontier().len().max(1));
            let mut prefix = String::new();
            let _ = write!(
                prefix,
                "{},{},{},{:.1},{},{},{},{},{},{}",
                c.index(),
                c.trains_per_hour(),
                c.service_window_h(),
                c.train_speed_kmh(),
                c.train_length_m(),
                c.lp_spacing_m(),
                c.conventional_isd_m(),
                csv_field(c.profile_name()),
                csv_field(c.location().name()),
                isd_search,
            );
            if r.is_unsolvable() {
                let _ = writeln!(out, "{prefix},unsolvable,-,-,-,-,-,-,-,-,-,-,-,-");
                return out;
            }
            for p in r.frontier() {
                let (pv_wp, battery_wh, days_full) = match p.pv {
                    PvOutcome::Skipped => (String::new(), String::new(), String::new()),
                    PvOutcome::Unsolvable => ("-".into(), "-".into(), "-".into()),
                    PvOutcome::Sized {
                        pv_wp,
                        battery_wh,
                        days_full_pct,
                    } => (
                        format!("{pv_wp:.0}"),
                        format!("{battery_wh:.0}"),
                        format!("{days_full_pct:.2}"),
                    ),
                };
                let _ = writeln!(
                    out,
                    "{prefix},frontier,{},{:.0},{},{},{:.3},{:.4},{:.3},{:.2},{:.3},{pv_wp},{battery_wh},{days_full}",
                    p.nodes,
                    p.isd.value(),
                    csv_field(&p.policy),
                    p.evaluator,
                    p.energy_wh_day_km,
                    p.nodes_per_km,
                    p.margin_db,
                    p.saving_sleep_pct,
                    p.repeater_wh_day,
                );
            }
            out
        }
        RowFormat::Json => {
            let mut out = String::with_capacity(320 * r.frontier().len().max(1));
            out.push_str("  {");
            let _ = write!(
                out,
                "\"cell\": {}, \"trains_per_hour\": {}, \"service_window_h\": {}, \
                 \"train_speed_kmh\": {:.1}, \"train_length_m\": {}, \"lp_spacing_m\": {}, \
                 \"conventional_isd_m\": {}, \"power_profile\": {}, \"climate\": {}, \
                 \"isd_search\": {}, \"status\": {}, \"frontier\": [",
                c.index(),
                c.trains_per_hour(),
                c.service_window_h(),
                c.train_speed_kmh(),
                c.train_length_m(),
                c.lp_spacing_m(),
                c.conventional_isd_m(),
                json_string(c.profile_name()),
                json_string(c.location().name()),
                json_string(isd_search),
                json_string(if r.is_unsolvable() {
                    "unsolvable"
                } else {
                    "frontier"
                }),
            );
            for (j, p) in r.frontier().iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"nodes\": {}, \"isd_m\": {:.0}, \"policy\": {}, \"evaluator\": {}, \
                     \"energy_wh_day_km\": {:.3}, \"nodes_per_km\": {:.4}, \"margin_db\": {:.3}, \
                     \"saving_sleep_pct\": {:.2}, \"repeater_wh_day\": {:.3}, ",
                    if j == 0 { "" } else { ", " },
                    p.nodes,
                    p.isd.value(),
                    json_string(&p.policy),
                    json_string(p.evaluator),
                    p.energy_wh_day_km,
                    p.nodes_per_km,
                    p.margin_db,
                    p.saving_sleep_pct,
                    p.repeater_wh_day,
                );
                match p.pv {
                    PvOutcome::Skipped => out.push_str("\"pv_status\": \"skipped\"}"),
                    PvOutcome::Unsolvable => out.push_str("\"pv_status\": \"unsolvable\"}"),
                    PvOutcome::Sized {
                        pv_wp,
                        battery_wh,
                        days_full_pct,
                    } => {
                        let _ = write!(
                            out,
                            "\"pv_status\": \"sized\", \"pv_wp\": {pv_wp:.0}, \
                             \"battery_wh\": {battery_wh:.0}, \"days_full_pct\": {days_full_pct:.2}}}"
                        );
                    }
                }
            }
            out.push_str("]}");
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_space() -> SearchSpace {
        // coarse sampling keeps debug-mode tests fast; boundaries are
        // insensitive to 5 m vs 10 m at a 50 m grid
        SearchSpace::new().sample_step(Meters::new(10.0))
    }

    #[test]
    fn space_defaults_and_accessors() {
        let space = SearchSpace::new();
        assert_eq!(space.candidates_per_cell(), 11);
        assert_eq!(space, SearchSpace::default());
        let wider = quick_space()
            .node_counts(vec![0, 8])
            .wake_policies(vec![WakePolicy::instant(), WakePolicy::paper_default()])
            .pv_sizing(true)
            .snr_threshold(Db::new(30.0))
            .isd_search(IsdSearch::model_paper_grid());
        assert_eq!(wider.candidates_per_cell(), 4);
        assert_eq!(wider.isd_search.label(), "model-grid");
        assert_eq!(IsdSearch::PaperTable.label(), "paper-table");
    }

    #[test]
    #[should_panic(expected = "node count axis must not be empty")]
    fn empty_count_axis_rejected() {
        let _ = SearchSpace::new().node_counts(Vec::new());
    }

    #[test]
    #[should_panic(expected = "wake policy axis must not be empty")]
    fn empty_policy_axis_rejected() {
        let _ = SearchSpace::new().wake_policies(Vec::new());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(policy_label(&WakePolicy::instant()), "instant");
        assert_eq!(policy_label(&WakePolicy::paper_default()), "paper");
        let custom = WakePolicy::new(
            corridor_units::Seconds::new(2.0),
            corridor_units::Seconds::new(0.5),
            corridor_units::Seconds::new(1.0),
        );
        assert_eq!(policy_label(&custom), "lead2.0s-wake0.5s-guard1.0s");
    }

    #[test]
    fn zero_workers_rejected() {
        let optimizer = DeploymentOptimizer::new().workers(0);
        let err = optimizer
            .run(&ScenarioGrid::new(), &quick_space())
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroWorkers);
        let err = optimizer
            .run_serial(&ScenarioGrid::new(), &quick_space())
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroWorkers);
    }

    #[test]
    fn invalid_cell_propagates_scenario_error() {
        let grid = ScenarioGrid::new().lp_spacings_m(vec![0.0]);
        let err = DeploymentOptimizer::new()
            .workers(1)
            .run(&grid, &quick_space())
            .unwrap_err();
        assert_eq!(err, ScenarioError::NonPositiveSpacing);
    }

    #[test]
    fn paper_table_frontier_holds_the_whole_monotone_chain() {
        // energy strictly decreases and node density strictly increases
        // with the count at the paper anchors, so every count is a
        // genuine trade-off and survives
        let report = DeploymentOptimizer::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &quick_space())
            .unwrap();
        let frontier = report.results()[0].frontier();
        assert_eq!(frontier.len(), 11);
        let counts: Vec<usize> = frontier.iter().map(|p| p.nodes).collect();
        assert_eq!(counts, (0..=10).collect::<Vec<_>>());
        for pair in frontier.windows(2) {
            assert!(pair[0].energy_wh_day_km > pair[1].energy_wh_day_km);
            assert!(pair[0].nodes_per_km < pair[1].nodes_per_km);
        }
    }

    #[test]
    fn padded_wake_policies_are_dominated_at_equal_geometry() {
        // the paper policy burns strictly more energy at the same node
        // density and margin, so it cannot survive next to instant
        let space = quick_space()
            .node_counts(vec![8])
            .wake_policies(vec![WakePolicy::instant(), WakePolicy::paper_default()]);
        let report = DeploymentOptimizer::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &space)
            .unwrap();
        let r = &report.results()[0];
        assert_eq!(r.evaluated(), 2);
        let frontier = r.frontier();
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].policy, "instant");
        assert_eq!(frontier[0].evaluator, "analytic");
    }

    #[test]
    fn report_writers_roundtrip() {
        let report = DeploymentOptimizer::new()
            .workers(1)
            .run(&ScenarioGrid::new(), &quick_space().node_counts(vec![0, 8]))
            .unwrap();
        let csv = report.to_csv();
        assert!(csv.starts_with(OPTIMIZE_CSV_HEADER));
        assert_eq!(csv.lines().count(), 3); // header + two frontier rows
        for line in csv.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                OPTIMIZE_CSV_HEADER.split(',').count(),
                "{line}"
            );
        }
        let json = report.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let dir = std::env::temp_dir();
        let csv_path = dir.join("corridor_sim_optimize_test.csv");
        let json_path = dir.join("corridor_sim_optimize_test.json");
        report.write_csv(&csv_path).unwrap();
        report.write_json(&json_path).unwrap();
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), csv);
        assert_eq!(std::fs::read_to_string(&json_path).unwrap(), json);
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(json_path);
    }
}
