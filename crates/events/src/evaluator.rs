//! The event-driven energy backend: a [`SegmentEvaluator`] computing the
//! paper's per-kilometre figures from simulated state traces.

use corridor_core::energy::SegmentEnergy;
use corridor_core::{EnergyStrategy, ScenarioParams, SegmentEvaluator};
use corridor_deploy::SegmentInventory;
use corridor_traffic::TrainPass;
use corridor_units::{Meters, Watts};

use crate::{segment_nodes, CorridorSimulator, NodeKind, SimReport, WakePolicy};

/// Computes the corridor energy split by replaying train passes through
/// the discrete-event simulator instead of the closed-form duty-cycle
/// math.
///
/// With the default [`WakePolicy::instant`] the backend reproduces the
/// analytic numbers to float precision on deterministic timetables (the
/// differential suite enforces < 0.1 %); with a realistic policy it
/// quantifies what the closed form leaves out (wake latency, guard
/// intervals), and [`EventDrivenEvaluator::power_from_passes`] accepts
/// arbitrary pass lists — Poisson days, jittered schedules, mixed
/// services — that the closed form cannot express at all.
///
/// # Examples
///
/// ```
/// use corridor_core::{AnalyticEvaluator, EnergyStrategy, ScenarioParams, SegmentEvaluator};
/// use corridor_events::EventDrivenEvaluator;
/// use corridor_units::Meters;
///
/// let params = ScenarioParams::paper_default();
/// let isd = Meters::new(2650.0);
/// let strategy = EnergyStrategy::SleepModeRepeaters;
/// let simulated = EventDrivenEvaluator::new().average_power_per_km(&params, 10, isd, strategy);
/// let analytic = AnalyticEvaluator.average_power_per_km(&params, 10, isd, strategy);
/// let diff = (simulated.total().value() - analytic.total().value()).abs();
/// assert!(diff / analytic.total().value() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EventDrivenEvaluator {
    policy: WakePolicy,
}

impl EventDrivenEvaluator {
    /// An evaluator with instant wake transitions (the differential
    /// reference configuration).
    pub fn new() -> Self {
        EventDrivenEvaluator {
            policy: WakePolicy::instant(),
        }
    }

    /// An evaluator simulating under the given wake policy.
    pub fn with_policy(policy: WakePolicy) -> Self {
        EventDrivenEvaluator { policy }
    }

    /// The wake policy in effect.
    pub fn policy(&self) -> WakePolicy {
        self.policy
    }

    /// Simulates one day of `passes` over a segment with `n` repeaters
    /// at `isd` and returns the raw per-node report.
    pub fn simulate_segment(
        &self,
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        passes: &[TrainPass],
    ) -> SimReport {
        let nodes = segment_nodes(n, isd, params.lp_spacing());
        CorridorSimulator::new()
            .with_policy(self.policy)
            .simulate(&nodes, passes)
    }

    /// The per-kilometre energy split for an arbitrary day of passes —
    /// the entry point for stochastic timetables, where the caller
    /// samples the day (seeded) and hands the passes in.
    pub fn power_from_passes(
        &self,
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        strategy: EnergyStrategy,
        passes: &[TrainPass],
    ) -> SegmentEnergy {
        let report = self.simulate_segment(params, n, isd, passes);
        Self::power_from_report(params, n, isd, strategy, &report)
    }

    /// Derives the per-kilometre energy split of one strategy from an
    /// already simulated [`SimReport`]. The simulation depends only on
    /// the geometry and passes, so one report serves all three
    /// strategies — the sweep engine relies on this to simulate each
    /// cell once, not once per strategy.
    pub fn power_from_report(
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        strategy: EnergyStrategy,
        report: &SimReport,
    ) -> SegmentEnergy {
        let per_km = SegmentInventory::for_nodes(n, isd).segments_per_km();

        // the HP mast sleeps between trains under every strategy
        let hp_avg: Watts = report
            .nodes_of(NodeKind::HighPowerMast)
            .map(|node| node.trace().average_power(params.hp_mast()))
            .sum();

        let repeater_avg = |kind: NodeKind| -> Watts {
            report
                .nodes_of(kind)
                .map(|node| match strategy {
                    EnergyStrategy::ContinuousRepeaters => {
                        node.trace().average_power_idle_fallback(params.lp_node())
                    }
                    EnergyStrategy::SleepModeRepeaters => {
                        node.trace().average_power(params.lp_node())
                    }
                    EnergyStrategy::SolarPoweredRepeaters => Watts::ZERO,
                })
                .sum()
        };

        SegmentEnergy {
            hp: hp_avg * per_km,
            service: repeater_avg(NodeKind::ServiceRepeater) * per_km,
            donor: repeater_avg(NodeKind::DonorRepeater) * per_km,
        }
    }
}

impl SegmentEvaluator for EventDrivenEvaluator {
    fn name(&self) -> &'static str {
        "event-driven"
    }

    fn average_power_per_km(
        &self,
        params: &ScenarioParams,
        n: usize,
        isd: Meters,
        strategy: EnergyStrategy,
    ) -> SegmentEnergy {
        self.power_from_passes(params, n, isd, strategy, &params.timetable().passes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_core::AnalyticEvaluator;
    use corridor_deploy::IsdTable;

    fn relative_diff(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            (a - b).abs() / b.abs()
        }
    }

    #[test]
    fn matches_analytic_on_every_paper_cell() {
        let params = ScenarioParams::paper_default();
        let table = IsdTable::paper();
        let simulated = EventDrivenEvaluator::new();
        for n in 0..=10 {
            let isd = table.isd_for(n).unwrap();
            for strategy in EnergyStrategy::ALL {
                let sim = simulated.average_power_per_km(&params, n, isd, strategy);
                let ana = AnalyticEvaluator.average_power_per_km(&params, n, isd, strategy);
                for (s, a, role) in [
                    (sim.hp, ana.hp, "hp"),
                    (sim.service, ana.service, "service"),
                    (sim.donor, ana.donor, "donor"),
                ] {
                    assert!(
                        relative_diff(s.value(), a.value()) < 1e-9,
                        "n={n} {strategy} {role}: {} vs {}",
                        s,
                        a
                    );
                }
            }
        }
    }

    #[test]
    fn baseline_matches_analytic() {
        let params = ScenarioParams::paper_default();
        let sim = EventDrivenEvaluator::new().conventional_baseline(&params);
        let ana = AnalyticEvaluator.conventional_baseline(&params);
        assert!(relative_diff(sim.total().value(), ana.total().value()) < 1e-9);
        assert_eq!(sim.service, Watts::ZERO);
    }

    #[test]
    fn realistic_policy_costs_slightly_more() {
        let params = ScenarioParams::paper_default();
        let isd = Meters::new(2650.0);
        let instant = EventDrivenEvaluator::new().average_power_per_km(
            &params,
            10,
            isd,
            EnergyStrategy::SleepModeRepeaters,
        );
        let padded = EventDrivenEvaluator::with_policy(WakePolicy::paper_default())
            .average_power_per_km(&params, 10, isd, EnergyStrategy::SleepModeRepeaters);
        assert!(padded.total() > instant.total());
        // ... but the overhead is tiny (the paper's argument): < 1 %
        let overhead = padded.total().value() / instant.total().value() - 1.0;
        assert!(overhead < 0.01, "overhead {overhead}");
    }

    #[test]
    fn name_and_policy_accessors() {
        let ev = EventDrivenEvaluator::with_policy(WakePolicy::paper_default());
        assert_eq!(ev.name(), "event-driven");
        assert_eq!(ev.policy(), WakePolicy::paper_default());
        assert_eq!(EventDrivenEvaluator::default(), EventDrivenEvaluator::new());
    }
}
