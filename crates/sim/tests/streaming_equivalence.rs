//! Streaming ↔ in-memory equivalence: every engine's `stream` path must
//! produce the *same bytes* as building the full report and rendering it
//! — for CSV and JSON, on 1, 2 and 8 workers — pinned by the same
//! SHA-256 digests the determinism suite uses. A drift in either path
//! (chunking, reorder window, cache short-circuit, emitter separators)
//! breaks the comparison or the pin, never silently.

use corridor_core::hash::sha256_hex;
use corridor_core::sink::{DigestSink, RowFormat, StringSink};
use corridor_sim::{
    DeploymentOptimizer, McEngine, ReplicationPlan, ScenarioGrid, SearchSpace, StreamError,
    SweepEngine,
};
use corridor_solar::climate;

/// Same pins as `tests/determinism.rs` — one source of truth per suite
/// keeps each file self-contained while pinning identical bytes.
const SWEEP_CSV_SHA256: &str = "781c01105637f4b0c1852558780d88fa9c18d278728ca3e0ae31e277d9e232d1";
const SWEEP_JSON_SHA256: &str = "070b779207ee4e8f1ce90cab5cca0347e2cd0af30b458ab6995f5f20b973ce6a";
const MC_CSV_SHA256: &str = "18ba0069bec57df80976a44c6aa180df59bc918e0ee19548f6e548b8505a7437";
const MC_JSON_SHA256: &str = "7bb58718a526e267e155532111a5118b9a8bcb1b1df33e13d78ec187fc4c94e3";
const OPTIMIZE_CSV_SHA256: &str =
    "c54a5842b41eca5279459a3b5fa3ba63a38d6f44697db3609ea1f65a868e4b57";
const OPTIMIZE_JSON_SHA256: &str =
    "875b9450c19fdf0b1d55aee9f5e48607d45fd3e74a55fd825fb5f322ed211fe0";

fn mixed_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
        .locations(vec![climate::madrid(), climate::berlin()])
}

fn mc_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .locations(vec![climate::madrid(), climate::vienna()])
}

fn optimize_grid() -> ScenarioGrid {
    ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0])
}

#[test]
fn sweep_stream_is_byte_identical_to_in_memory() {
    let grid = mixed_grid();
    for workers in [1usize, 2, 8] {
        let engine = SweepEngine::new().workers(workers);
        let report = engine.run(&grid).unwrap();
        for (format, in_memory, pin) in [
            (RowFormat::Csv, report.to_csv(), SWEEP_CSV_SHA256),
            (RowFormat::Json, report.to_json(), SWEEP_JSON_SHA256),
        ] {
            let mut sink = StringSink::new();
            let summary = engine.stream(&grid, format, &mut sink).unwrap();
            let streamed = sink.into_string();
            assert_eq!(streamed, in_memory, "{format:?}, workers = {workers}");
            assert_eq!(sha256_hex(streamed.as_bytes()), pin);
            assert_eq!(summary.cells, grid.len() as u64);
            assert_eq!(summary.rows, grid.len() as u64);
            assert_eq!((summary.cache_hits, summary.cache_misses), (0, 0));
        }
    }
}

#[test]
fn mc_stream_is_byte_identical_to_in_memory() {
    let grid = mc_grid();
    let plan = ReplicationPlan::new(5).master_seed(7);
    for workers in [1usize, 2, 8] {
        let engine = McEngine::new().workers(workers);
        let report = engine.run(&grid, &plan).unwrap();
        for (format, in_memory, pin) in [
            (RowFormat::Csv, report.to_csv(), MC_CSV_SHA256),
            (RowFormat::Json, report.to_json(), MC_JSON_SHA256),
        ] {
            let mut sink = StringSink::new();
            let summary = engine.stream(&grid, &plan, format, &mut sink).unwrap();
            let streamed = sink.into_string();
            assert_eq!(streamed, in_memory, "{format:?}, workers = {workers}");
            assert_eq!(sha256_hex(streamed.as_bytes()), pin);
            assert_eq!(summary.cells, grid.len() as u64);
        }
    }
}

#[test]
fn optimize_stream_is_byte_identical_to_in_memory() {
    let grid = optimize_grid();
    let space = SearchSpace::new().node_counts((0..=6).collect());
    for workers in [1usize, 2, 8] {
        let optimizer = DeploymentOptimizer::new().workers(workers);
        let report = optimizer.run(&grid, &space).unwrap();
        for (format, in_memory, pin) in [
            (RowFormat::Csv, report.to_csv(), OPTIMIZE_CSV_SHA256),
            (RowFormat::Json, report.to_json(), OPTIMIZE_JSON_SHA256),
        ] {
            let mut sink = StringSink::new();
            let summary = optimizer.stream(&grid, &space, format, &mut sink).unwrap();
            let streamed = sink.into_string();
            assert_eq!(streamed, in_memory, "{format:?}, workers = {workers}");
            assert_eq!(sha256_hex(streamed.as_bytes()), pin);
            // an optimizer "row" is one cell's whole frontier chunk
            assert_eq!(summary.rows, grid.len() as u64);
        }
    }
}

/// The flat-memory sink: hashing the stream without ever holding it must
/// land on the same digests as rendering the whole report.
#[test]
fn digest_sink_matches_rendered_digests() {
    let grid = mixed_grid();
    let engine = SweepEngine::new().workers(8);
    for (format, pin) in [
        (RowFormat::Csv, SWEEP_CSV_SHA256),
        (RowFormat::Json, SWEEP_JSON_SHA256),
    ] {
        let mut sink = DigestSink::new();
        engine.stream(&grid, format, &mut sink).unwrap();
        assert!(sink.bytes() > 0);
        assert_eq!(sink.hex(), pin, "{format:?}");
    }
}

/// `stream_into` on an already-built report re-emits the exact rendered
/// bytes — the in-memory report really is "one sink implementation".
#[test]
fn report_stream_into_reemits_rendered_bytes() {
    let report = SweepEngine::new().workers(2).run(&mixed_grid()).unwrap();
    for (format, rendered) in [
        (RowFormat::Csv, report.to_csv()),
        (RowFormat::Json, report.to_json()),
    ] {
        let mut sink = StringSink::new();
        let rows = report.stream_into(format, &mut sink).unwrap();
        assert_eq!(rows, report.len() as u64);
        assert_eq!(sink.into_string(), rendered);
    }
}

/// A failing emit callback must cancel the run and surface as a sink
/// error instead of panicking a worker or deadlocking the window.
#[test]
fn consumer_error_cancels_stream() {
    let engine = SweepEngine::new().workers(2);
    let mut emitted = 0u32;
    let result = engine.stream_rows(
        &mixed_grid(),
        0..8,
        RowFormat::Csv,
        None,
        |_row: &str| -> Result<(), StreamError> {
            emitted += 1;
            if emitted >= 3 {
                Err(StreamError::Sink(corridor_core::sink::SinkError::Closed))
            } else {
                Ok(())
            }
        },
    );
    assert!(matches!(result, Err(StreamError::Sink(_))));
    assert_eq!(emitted, 3);
}
