//! End-to-end reproduction tests: every quantitative claim of the paper
//! that the model is expected to reproduce, checked across crate
//! boundaries.

use railway_corridor::prelude::*;

fn params() -> ScenarioParams {
    ScenarioParams::paper_default()
}

/// Paper Section I: "A regular cell site consumes an average power of
/// 3200 W" and the repeaters "consume only 5 % of the energy of a regular
/// cell site".
#[test]
fn repeater_is_five_percent_of_a_cell_site() {
    let site = catalog::macro_site().full_load_power();
    assert_eq!(site.value(), 3200.0);
    let repeater = catalog::low_power_repeater_measured().full_load_power();
    let ratio = repeater / site;
    assert!(ratio < 0.05, "repeater/site = {ratio}");
}

/// Paper Section I: "with two RRHs required per site and an ISD of 500 m,
/// the power consumption rises to 1200 W per kilometer".
#[test]
fn full_load_corridor_power_per_km() {
    let mast = catalog::high_power_mast();
    // 560 W per mast of 2 RRHs... the paper quotes 600 W (2 × 300 W
    // worst-case RRHs); with 2 masts/km the EARTH mast gives 1120 W/km,
    // the worst-case quote 1200 W/km.
    let per_km = mast.full_load_power() * 2.0;
    assert!(per_km.value() >= 1100.0 && per_km.value() <= 1200.0);
}

/// Paper Section V: full-load share of the RRHs — 2.85 % at 500 m ISD,
/// 9.66 % at 2650 m.
#[test]
fn hp_duty_fractions() {
    let h = experiments::headline_numbers(&params());
    assert!((h.hp_duty_500m - 0.0285).abs() < 2e-4);
    assert!((h.hp_duty_2650m - 0.0966).abs() < 2e-4);
}

/// Paper Section III-B / V-A: the repeater's sleep-mode average power is
/// 5.17 W = 124.1 Wh per day.
#[test]
fn repeater_average_power() {
    let h = experiments::headline_numbers(&params());
    assert!((h.repeater_average_power.value() - 5.17).abs() < 0.01);
    assert!((h.repeater_daily_energy.value() - 124.1).abs() < 0.1);
}

/// Paper abstract + Section V: savings of 50–79 % depending on strategy
/// and node count.
#[test]
fn headline_savings_window() {
    let h = experiments::headline_numbers(&params());
    assert!((h.savings_sleep_1 - 0.57).abs() < 0.01);
    assert!((h.savings_sleep_10 - 0.74).abs() < 0.01);
    assert!((h.savings_solar_1 - 0.59).abs() < 0.01);
    assert!((h.savings_solar_10 - 0.79).abs() < 0.01);
}

/// Paper Section V-A: "at least three low-power repeater nodes extends
/// the high-power ISD to a minimum of 1600 m which reduces the average
/// energy consumption ... to below 50 %" (continuous operation).
#[test]
fn continuous_crossover_at_three_nodes() {
    let table = IsdTable::paper();
    let s2 =
        energy::savings_vs_conventional(&params(), &table, 2, EnergyStrategy::ContinuousRepeaters)
            .unwrap();
    let s3 =
        energy::savings_vs_conventional(&params(), &table, 3, EnergyStrategy::ContinuousRepeaters)
            .unwrap();
    assert!(s2 < 0.50 && s3 >= 0.50, "s2 = {s2}, s3 = {s3}");
}

/// Paper Section V: the maximum-ISD sweep. The calibrated model matches
/// the published sequence exactly for 1–4 nodes and within 15 % beyond.
#[test]
fn isd_sweep_tracks_paper() {
    let sweep = experiments::isd_sweep(&params(), Meters::new(5.0));
    for n in 1..=4usize {
        assert_eq!(sweep.computed.isd_for(n), sweep.paper.isd_for(n), "n = {n}");
    }
    for n in 5..=10usize {
        let computed = sweep.computed.isd_for(n).unwrap().value();
        let paper = sweep.paper.isd_for(n).unwrap().value();
        let err = (computed - paper).abs() / paper;
        assert!(err < 0.15, "n = {n}: computed {computed}, paper {paper}");
    }
}

/// Paper Fig. 3: with 8 nodes at ISD 2400 m the total signal stays above
/// −100 dBm and every point of the track reaches the peak rate.
#[test]
fn fig3_scenario_full_coverage() {
    let p = params();
    let samples = experiments::fig3(&p);
    for s in &samples {
        assert!(s.total_signal.value() > -100.0, "at {}", s.position);
    }
    let layout =
        CorridorLayout::with_policy(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
            .unwrap();
    let profile = layout.coverage_profile(p.budget(), Meters::new(5.0));
    assert_eq!(profile.fraction_at_peak(p.budget().throughput()), 1.0);
}

/// Paper Fig. 3 text: "a mobile terminal inside that train would see the
/// decreasing cell signal power from the high-power site at 0 m, which
/// drops below −100 dBm" a few hundred metres out — and each repeater
/// produces a local peak.
#[test]
fn fig3_peaks_at_repeaters() {
    let samples = experiments::fig3(&params());
    // HP-only contribution decays monotonically after the mast
    let hp_at_100 = samples
        .iter()
        .find(|s| s.position.value() == 100.0)
        .unwrap();
    let hp_at_1200 = samples
        .iter()
        .find(|s| s.position.value() == 1200.0)
        .unwrap();
    assert!(hp_at_100.hp_left > hp_at_1200.hp_left);
    // at a repeater position the total signal is locally maximal vs the
    // midgap 100 m away
    let at_node = samples
        .iter()
        .find(|s| s.position.value() == 700.0)
        .unwrap();
    let midgap = samples
        .iter()
        .find(|s| s.position.value() == 800.0)
        .unwrap();
    assert!(at_node.total_signal > midgap.total_signal);
}

/// Paper Table IV: the sizing outcomes for the four regions.
#[test]
fn table4_sizing_outcomes() {
    let rows = experiments::table4();
    let summary: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|r| {
            (
                r.location.name().to_string(),
                r.pv_peak.value(),
                r.battery.value(),
            )
        })
        .collect();
    assert_eq!(
        summary,
        vec![
            ("Madrid".to_string(), 540.0, 720.0),
            ("Lyon".to_string(), 540.0, 720.0),
            ("Vienna".to_string(), 540.0, 1440.0),
            ("Berlin".to_string(), 600.0, 1440.0),
        ]
    );
    // all four regions keep the battery full on the vast majority of days
    for row in &rows {
        assert!(
            row.days_full_pct > 85.0 && row.days_full_pct <= 100.0,
            "{}: {}",
            row.location.name(),
            row.days_full_pct
        );
    }
}

/// Paper Section I: the 1.24 TWh/year figure for 118 000 km of European
/// electrified track is consistent with the conventional corridor model.
#[test]
fn europe_wide_energy_estimate() {
    let baseline = energy::conventional_baseline(&params());
    let twh_per_year = baseline.total().value() * 118_000.0 * 24.0 * 365.0 / 1e12;
    // the paper's 1.24 TWh corresponds to ~1200 W/km installed; our
    // duty-cycled model gives the same order of magnitude
    assert!(
        (0.3..2.0).contains(&twh_per_year),
        "estimate {twh_per_year} TWh"
    );
}

/// Cross-check: Fig. 4 rows from the computed ISD table are within a few
/// percentage points of the rows from the paper's table.
#[test]
fn fig4_computed_vs_paper_mapping() {
    let p = params();
    let paper_rows = experiments::fig4(&p, &IsdTable::paper());
    let computed = experiments::isd_sweep(&p, Meters::new(10.0)).computed;
    let computed_rows = experiments::fig4(&p, &computed);
    let baseline = paper_rows[0].sleep;
    for (pr, cr) in paper_rows.iter().zip(&computed_rows).skip(1) {
        let s_paper = pr.savings_vs(baseline)[1];
        let s_computed = cr.savings_vs(baseline)[1];
        assert!(
            (s_paper - s_computed).abs() < 0.06,
            "n = {}: paper-mapping {s_paper:.3}, computed-mapping {s_computed:.3}",
            pr.n
        );
    }
}

/// The full pipeline is deterministic: re-running every experiment yields
/// identical results.
#[test]
fn experiments_are_deterministic() {
    let p = params();
    assert_eq!(experiments::fig3(&p), experiments::fig3(&p));
    assert_eq!(
        experiments::fig4(&p, &IsdTable::paper()),
        experiments::fig4(&p, &IsdTable::paper())
    );
    let a = experiments::table4();
    let b = experiments::table4();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.days_full_pct, y.days_full_pct);
    }
}
