//! Electromagnetic-field (EMF) exposure compliance.
//!
//! The paper's premise rests on regulation: several countries (the paper
//! names Canada, Italy, Poland, Switzerland, China, Russia) enforce EMF
//! installation limits far below the ICNIRP reference levels, which caps
//! per-site EIRP and forces the short inter-site distances that make
//! corridors expensive. This module quantifies that: far-field power
//! density versus distance and the minimum compliance distance per limit.
//!
//! The numbers also explain why the low-power repeater nodes are easy to
//! deploy: at 40 dBm EIRP their strictest-limit compliance distance is a
//! few metres, versus tens of metres for a 64 dBm macro antenna.

use core::fmt;

use corridor_units::{Dbm, Meters};

/// An EMF exposure limit expressed as a plane-wave power density.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmfLimit {
    name: &'static str,
    power_density_w_m2: f64,
}

impl EmfLimit {
    /// ICNIRP (2020) general-public reference level for frequencies above
    /// 2 GHz: 10 W/m².
    pub fn icnirp_general_public() -> Self {
        EmfLimit {
            name: "ICNIRP general public",
            power_density_w_m2: 10.0,
        }
    }

    /// Switzerland's NISV installation limit for sensitive-use locations:
    /// 6 V/m field strength ≈ 0.095 W/m² (E²/377 Ω).
    pub fn swiss_nisv_installation() -> Self {
        EmfLimit {
            name: "Swiss NISV installation limit",
            power_density_w_m2: 6.0 * 6.0 / 377.0,
        }
    }

    /// A custom limit.
    ///
    /// # Panics
    ///
    /// Panics if the density is not strictly positive.
    pub fn new(name: &'static str, power_density_w_m2: f64) -> Self {
        assert!(power_density_w_m2 > 0.0, "limit must be positive");
        EmfLimit {
            name,
            power_density_w_m2,
        }
    }

    /// Limit name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The limit as a power density, W/m².
    pub fn power_density_w_m2(&self) -> f64 {
        self.power_density_w_m2
    }

    /// The equivalent plane-wave field strength, V/m.
    pub fn field_strength_v_m(&self) -> f64 {
        (self.power_density_w_m2 * 377.0).sqrt()
    }
}

impl fmt::Display for EmfLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.3} W/m² ≈ {:.1} V/m)",
            self.name,
            self.power_density_w_m2,
            self.field_strength_v_m()
        )
    }
}

/// Far-field power density `S = EIRP / (4π d²)` on boresight at
/// `distance` from an antenna radiating `eirp`.
///
/// # Panics
///
/// Panics if `distance` is not strictly positive.
///
/// # Examples
///
/// ```
/// use corridor_propagation::emf;
/// use corridor_units::{Dbm, Meters};
///
/// // 2500 W EIRP at 10 m: ~2 W/m²
/// let s = emf::power_density_w_m2(Dbm::new(64.0), Meters::new(10.0));
/// assert!((s - 2.0).abs() < 0.05);
/// ```
pub fn power_density_w_m2(eirp: Dbm, distance: Meters) -> f64 {
    assert!(distance.value() > 0.0, "distance must be positive");
    let eirp_w = eirp.watts().value();
    eirp_w / (4.0 * std::f64::consts::PI * distance.value() * distance.value())
}

/// Minimum boresight distance at which `eirp` complies with `limit`:
/// `d = sqrt(EIRP / (4π S_limit))`.
///
/// # Examples
///
/// ```
/// use corridor_propagation::emf::{self, EmfLimit};
/// use corridor_units::Dbm;
///
/// let nisv = EmfLimit::swiss_nisv_installation();
/// // the low-power repeater (40 dBm) is compliant within a few metres
/// let d = emf::compliance_distance(Dbm::new(40.0), &nisv);
/// assert!(d.value() < 4.0);
/// ```
pub fn compliance_distance(eirp: Dbm, limit: &EmfLimit) -> Meters {
    let eirp_w = eirp.watts().value();
    Meters::new((eirp_w / (4.0 * std::f64::consts::PI * limit.power_density_w_m2())).sqrt())
}

/// True if `eirp` observed at `distance` satisfies `limit`.
pub fn is_compliant(eirp: Dbm, distance: Meters, limit: &EmfLimit) -> bool {
    power_density_w_m2(eirp, distance) <= limit.power_density_w_m2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_square_law() {
        let eirp = Dbm::new(64.0);
        let near = power_density_w_m2(eirp, Meters::new(10.0));
        let far = power_density_w_m2(eirp, Meters::new(20.0));
        assert!((near / far - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hp_compliance_distances() {
        let eirp = Dbm::new(64.0); // 2500 W
        let icnirp = compliance_distance(eirp, &EmfLimit::icnirp_general_public());
        assert!((icnirp.value() - 4.46).abs() < 0.05, "{icnirp}");
        let nisv = compliance_distance(eirp, &EmfLimit::swiss_nisv_installation());
        assert!((nisv.value() - 45.7).abs() < 0.5, "{nisv}");
    }

    #[test]
    fn lp_nodes_are_emf_trivial() {
        let lp = Dbm::new(40.0); // 10 W
        let nisv = compliance_distance(lp, &EmfLimit::swiss_nisv_installation());
        assert!(nisv.value() < 3.0, "{nisv}");
        // 250x EIRP ratio -> ~16x distance ratio
        let hp = compliance_distance(Dbm::new(64.0), &EmfLimit::swiss_nisv_installation());
        let ratio = hp / nisv;
        assert!((ratio - (10f64.powf(24.0 / 20.0))).abs() < 0.1);
    }

    #[test]
    fn compliance_predicate_consistent_with_distance() {
        let limit = EmfLimit::swiss_nisv_installation();
        let eirp = Dbm::new(64.0);
        let d = compliance_distance(eirp, &limit);
        assert!(is_compliant(eirp, d + Meters::new(0.1), &limit));
        assert!(!is_compliant(eirp, d - Meters::new(0.1), &limit));
    }

    #[test]
    fn limit_conversions() {
        let nisv = EmfLimit::swiss_nisv_installation();
        assert!((nisv.field_strength_v_m() - 6.0).abs() < 1e-9);
        let icnirp = EmfLimit::icnirp_general_public();
        assert!((icnirp.field_strength_v_m() - 61.4).abs() < 0.1);
        assert!(icnirp.power_density_w_m2() > nisv.power_density_w_m2() * 100.0);
    }

    #[test]
    fn display() {
        let s = EmfLimit::swiss_nisv_installation().to_string();
        assert!(s.contains("NISV"));
        assert!(s.contains("6.0 V/m"));
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_rejected() {
        let _ = EmfLimit::new("bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_rejected() {
        let _ = power_density_w_m2(Dbm::new(40.0), Meters::ZERO);
    }
}
