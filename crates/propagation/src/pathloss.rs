//! The [`PathLoss`] trait.

use corridor_units::{Db, Meters};

/// A distance-dependent attenuation model.
///
/// Implementations return the *port-to-port* attenuation between a
/// transmitter and a receiver separated by `distance`: everything from the
/// transmit antenna port to the receive antenna port, including antenna and
/// penetration effects if the model folds them into a calibration constant
/// (as the paper's eq. (1) does).
///
/// # Contract
///
/// * `attenuation` must be non-negative for distances at or beyond the
///   model's minimum distance, and non-decreasing in distance.
/// * Implementations must clamp distances below [`min_distance`] rather than
///   produce unbounded (or negative-infinite) values at `d = 0`.
///
/// [`min_distance`]: PathLoss::min_distance
pub trait PathLoss {
    /// Attenuation (positive dB) at `distance`.
    fn attenuation(&self, distance: Meters) -> Db;

    /// The near-field guard distance below which `attenuation` clamps.
    ///
    /// Defaults to 1 m.
    fn min_distance(&self) -> Meters {
        Meters::new(1.0)
    }
}

/// A boxed, dynamically dispatched path-loss model.
///
/// Useful when mixing heterogeneous models (e.g. different calibrations for
/// high-power and low-power transmitters) in one collection.
///
/// # Examples
///
/// ```
/// use corridor_propagation::{DynPathLoss, FreeSpace, LogDistance, PathLoss};
/// use corridor_units::{Hertz, Meters};
///
/// let models: Vec<DynPathLoss> = vec![
///     Box::new(FreeSpace::new(Hertz::from_ghz(3.7))),
///     Box::new(LogDistance::new(Hertz::from_ghz(3.7), 2.5)),
/// ];
/// for m in &models {
///     assert!(m.attenuation(Meters::new(100.0)).value() > 0.0);
/// }
/// ```
pub type DynPathLoss = Box<dyn PathLoss + Send + Sync>;

impl<T: PathLoss + ?Sized> PathLoss for &T {
    fn attenuation(&self, distance: Meters) -> Db {
        (**self).attenuation(distance)
    }
    fn min_distance(&self) -> Meters {
        (**self).min_distance()
    }
}

impl<T: PathLoss + ?Sized> PathLoss for Box<T> {
    fn attenuation(&self, distance: Meters) -> Db {
        (**self).attenuation(distance)
    }
    fn min_distance(&self) -> Meters {
        (**self).min_distance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FreeSpace;
    use corridor_units::Hertz;

    #[test]
    fn trait_object_usable() {
        let boxed: DynPathLoss = Box::new(FreeSpace::new(Hertz::from_ghz(3.5)));
        assert!(boxed.attenuation(Meters::new(100.0)).value() > 80.0);
        assert_eq!(boxed.min_distance(), Meters::new(1.0));
    }

    #[test]
    fn reference_forwards() {
        let model = FreeSpace::new(Hertz::from_ghz(3.5));
        let by_ref: &dyn PathLoss = &model;
        assert_eq!(
            by_ref.attenuation(Meters::new(10.0)),
            model.attenuation(Meters::new(10.0))
        );
    }
}
