//! Fixture: total order over floats, no rule fires.

pub fn ordering(a: f64, b: f64) -> core::cmp::Ordering {
    a.total_cmp(&b)
}
