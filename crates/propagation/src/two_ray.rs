//! Two-ray ground-reflection path loss baseline.

use corridor_units::{Db, Hertz, Meters};

use crate::{FreeSpace, PathLoss};

/// Two-ray ground-reflection model.
///
/// Below the crossover distance `d_c = 4π·h_t·h_r/λ` the model follows free
/// space; beyond it the direct and ground-reflected rays interfere
/// destructively and the loss grows as `40·log10(d)` independent of
/// frequency: `L = d^4 / (h_t^2 · h_r^2)`.
///
/// Along a railway corridor the mast (≈15 m) and train antenna (≈3 m)
/// heights put the crossover at several kilometres for sub-6 GHz carriers,
/// which is why the paper's Friis-based model is adequate for ISDs up to
/// ~2.6 km; this model quantifies that argument in an ablation bench.
///
/// # Examples
///
/// ```
/// use corridor_propagation::{PathLoss, TwoRayGround};
/// use corridor_units::{Hertz, Meters};
///
/// let model = TwoRayGround::new(Hertz::from_ghz(3.5), Meters::new(15.0), Meters::new(3.0));
/// assert!(model.crossover_distance().value() > 2000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoRayGround {
    free_space: FreeSpace,
    tx_height: Meters,
    rx_height: Meters,
}

impl TwoRayGround {
    /// Creates a two-ray model with the given antenna heights.
    ///
    /// # Panics
    ///
    /// Panics if either height is not strictly positive.
    pub fn new(frequency: Hertz, tx_height: Meters, rx_height: Meters) -> Self {
        assert!(
            tx_height.value() > 0.0 && rx_height.value() > 0.0,
            "antenna heights must be positive"
        );
        TwoRayGround {
            free_space: FreeSpace::new(frequency),
            tx_height,
            rx_height,
        }
    }

    /// The crossover distance `4π·h_t·h_r/λ` beyond which the `d^4` regime
    /// applies.
    pub fn crossover_distance(&self) -> Meters {
        let lambda = self.free_space.frequency().wavelength().value();
        Meters::new(
            4.0 * std::f64::consts::PI * self.tx_height.value() * self.rx_height.value() / lambda,
        )
    }

    /// Transmitter antenna height.
    pub fn tx_height(&self) -> Meters {
        self.tx_height
    }

    /// Receiver antenna height.
    pub fn rx_height(&self) -> Meters {
        self.rx_height
    }
}

impl PathLoss for TwoRayGround {
    fn attenuation(&self, distance: Meters) -> Db {
        let d = distance.abs().max(self.min_distance());
        let crossover = self.crossover_distance();
        if d <= crossover {
            self.free_space.attenuation(d)
        } else {
            // L = d^4 / (h_t^2 h_r^2), continuous at the crossover by
            // construction of the matching constant below.
            let at_crossover = self.free_space.attenuation(crossover);
            at_crossover + Db::new(40.0 * (d.value() / crossover.value()).log10())
        }
    }

    fn min_distance(&self) -> Meters {
        self.free_space.min_distance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TwoRayGround {
        TwoRayGround::new(Hertz::from_ghz(3.5), Meters::new(15.0), Meters::new(3.0))
    }

    #[test]
    fn crossover_distance_value() {
        // 4π · 15 · 3 / 0.08565 ≈ 6.6 km
        let d = model().crossover_distance().value();
        assert!((d - 6602.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn below_crossover_is_free_space() {
        let m = model();
        let fs = FreeSpace::new(Hertz::from_ghz(3.5));
        for d in [10.0, 500.0, 2650.0] {
            assert_eq!(
                m.attenuation(Meters::new(d)),
                fs.attenuation(Meters::new(d)),
                "at {d} m"
            );
        }
    }

    #[test]
    fn continuous_at_crossover() {
        let m = model();
        let dc = m.crossover_distance();
        let just_below = m.attenuation(dc - Meters::new(0.01));
        let just_above = m.attenuation(dc + Meters::new(0.01));
        assert!((just_above - just_below).value().abs() < 0.01);
    }

    #[test]
    fn fourth_power_regime_beyond_crossover() {
        let m = model();
        let dc = m.crossover_distance();
        let l1 = m.attenuation(dc * 2.0);
        let l2 = m.attenuation(dc * 4.0);
        assert!(((l2 - l1).value() - 40.0 * 2f64.log10()).abs() < 1e-6);
    }

    #[test]
    fn corridor_isds_unaffected_by_ground_reflection() {
        // The paper's largest ISD (2650 m) stays in the free-space regime.
        let m = model();
        assert!(m.crossover_distance().value() > 2650.0);
    }

    #[test]
    #[should_panic(expected = "heights must be positive")]
    fn zero_height_rejected() {
        let _ = TwoRayGround::new(Hertz::from_ghz(3.5), Meters::ZERO, Meters::new(3.0));
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.tx_height(), Meters::new(15.0));
        assert_eq!(m.rx_height(), Meters::new(3.0));
    }
}
