//! Render an ASCII coverage map of a corridor segment (the paper's
//! Fig. 3 as a terminal plot) and compare rolling-stock window
//! treatments.
//!
//! Run with `cargo run --release --example coverage_map`.

use railway_corridor::prelude::*;
use railway_corridor::propagation::{PenetrationLoss, WindowTreatment};

fn main() {
    let budget = LinkBudget::paper_default();
    let layout =
        CorridorLayout::with_policy(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
            .expect("Fig. 3 geometry");

    println!("ISD 2400 m, 8 low-power repeaters (o = repeater, M = mast)\n");
    let profile = layout.coverage_profile(&budget, Meters::new(25.0));

    // vertical axis: -60 dBm (top) to -130 dBm (bottom), 2.5 dB per row
    const TOP: f64 = -60.0;
    const BOTTOM: f64 = -130.0;
    const ROWS: usize = 28;
    let row_of = |dbm: f64| -> Option<usize> {
        if !(BOTTOM..=TOP).contains(&dbm) {
            return None;
        }
        Some(((TOP - dbm) / (TOP - BOTTOM) * (ROWS as f64 - 1.0)).round() as usize)
    };
    let columns = profile.len();
    let mut canvas = vec![vec![' '; columns]; ROWS];
    for (col, sample) in profile.samples().iter().enumerate() {
        if let Some(r) = row_of(sample.noise.value()) {
            canvas[r][col] = '.';
        }
        if let Some(r) = row_of(sample.signal.value()) {
            canvas[r][col] = '#';
        }
    }
    for (r, row) in canvas.iter().enumerate() {
        let label = TOP - (TOP - BOTTOM) * r as f64 / (ROWS as f64 - 1.0);
        let line: String = row.iter().collect();
        println!("{label:>7.1} |{line}");
    }
    let mut axis = vec![' '; columns];
    axis[0] = 'M';
    axis[columns - 1] = 'M';
    for &pos in layout.repeater_positions() {
        let col = (pos.value() / 2400.0 * (columns as f64 - 1.0)).round() as usize;
        axis[col] = 'o';
    }
    println!("        +{}", "-".repeat(columns));
    println!("         {}", axis.iter().collect::<String>());
    println!("         0 m {: >width$}", "2400 m", width = columns - 5);
    println!("\n# = total signal [dBm], . = total noise [dBm]");
    println!(
        "min SNR {:.1} dB; {:.0} % of the track at peak rate",
        profile.min_snr().unwrap().value(),
        profile.fraction_at_peak(budget.throughput()) * 100.0
    );

    // Rolling-stock comparison: the calibration constants of the paper
    // assume treated windows; explicit penetration losses show why
    // untreated coated stock kills the link budget.
    println!("\nwindow-treatment comparison at the worst-served point:");
    let worst = profile.worst_sample().unwrap();
    for treatment in WindowTreatment::ALL {
        let loss = PenetrationLoss::new(treatment).loss_at(budget.frequency());
        let inside = worst.snr - loss + Db::new(10.0); // +10 dB: calibration already held ~10 dB of FSS loss
        let thr = budget.throughput().spectral_efficiency(inside);
        println!(
            "  {treatment:13}: extra loss {loss}, in-train SNR {:.1} dB -> {:.2} bps/Hz",
            inside.value(),
            thr
        );
    }
}
