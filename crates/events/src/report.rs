//! Simulation results: per-node traces and aggregate statistics.

use corridor_traffic::TrackSection;
use corridor_units::Seconds;

use crate::{NodeKind, StateTrace};

/// The simulated day of one node: its role, section, and integrated
/// state trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport {
    kind: NodeKind,
    section: TrackSection,
    trace: StateTrace,
}

impl NodeReport {
    /// Wraps a finished trace (used by the simulator).
    pub(crate) fn new(kind: NodeKind, section: TrackSection, trace: StateTrace) -> Self {
        NodeReport {
            kind,
            section,
            trace,
        }
    }

    /// The node's role.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The node's coverage section.
    pub fn section(&self) -> TrackSection {
        self.section
    }

    /// The integrated per-state time trace.
    pub fn trace(&self) -> &StateTrace {
        &self.trace
    }
}

/// The result of one simulated day: per-node reports in simulator node
/// order plus run statistics.
///
/// # Examples
///
/// ```
/// use corridor_events::{segment_nodes, CorridorSimulator, NodeKind};
/// use corridor_traffic::Timetable;
/// use corridor_units::Meters;
///
/// let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
/// let report = CorridorSimulator::new().simulate(&nodes, &Timetable::paper_default().passes());
/// assert_eq!(report.nodes_of(NodeKind::ServiceRepeater).count(), 10);
/// assert!(report.events_processed() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    nodes: Vec<NodeReport>,
    horizon: Seconds,
    events: usize,
    passes: usize,
}

impl SimReport {
    /// Wraps finished node reports (used by the simulator).
    pub(crate) fn new(
        nodes: Vec<NodeReport>,
        horizon: Seconds,
        events: usize,
        passes: usize,
    ) -> Self {
        SimReport {
            nodes,
            horizon,
            events,
            passes,
        }
    }

    /// The per-node reports, in the simulator's node order.
    pub fn nodes(&self) -> &[NodeReport] {
        &self.nodes
    }

    /// The nodes of one role.
    pub fn nodes_of(&self, kind: NodeKind) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(move |node| node.kind() == kind)
    }

    /// The integration horizon of the run.
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// Number of events the queue processed (the denominator of the
    /// events/s throughput metric).
    pub fn events_processed(&self) -> usize {
        self.events
    }

    /// Number of train passes replayed.
    pub fn passes(&self) -> usize {
        self.passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{segment_nodes, CorridorSimulator};
    use corridor_traffic::Timetable;
    use corridor_units::Meters;

    #[test]
    fn report_accessors() {
        let nodes = segment_nodes(3, Meters::new(1600.0), Meters::new(200.0));
        let report =
            CorridorSimulator::new().simulate(&nodes, &Timetable::paper_default().passes());
        assert_eq!(report.nodes().len(), 6);
        assert_eq!(report.nodes_of(NodeKind::HighPowerMast).count(), 1);
        assert_eq!(report.nodes_of(NodeKind::ServiceRepeater).count(), 3);
        assert_eq!(report.nodes_of(NodeKind::DonorRepeater).count(), 2);
        assert_eq!(report.passes(), 152);
        assert_eq!(report.horizon(), Seconds::new(86_400.0));
        let hp = &report.nodes()[0];
        assert_eq!(hp.kind(), NodeKind::HighPowerMast);
        assert_eq!(hp.section().end(), Meters::new(1600.0));
        assert!(hp.trace().powered().value() > 0.0);
    }
}
