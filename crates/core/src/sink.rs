//! Streaming row sinks: report rows flow to a [`RowSink`] as they are
//! produced, so a million-cell study renders with flat memory.
//!
//! The contract is byte-oriented: the engines render each row to the
//! exact bytes the in-memory writers would produce, and a [`RowEmitter`]
//! adds the format's framing (CSV header, JSON array brackets and
//! separators). Streaming any report into a [`StringSink`] therefore
//! yields *byte-identical* output to the report's `to_csv`/`to_json`
//! method — the equivalence the streaming test layer pins with SHA-256
//! digests across worker counts.
//!
//! Sink implementations:
//!
//! * [`StringSink`] — accumulates in memory (the in-memory reports are
//!   this sink plus framing);
//! * [`WriteSink`] — forwards to any [`std::io::Write`] (files, pipes,
//!   sockets);
//! * [`DigestSink`] — O(1) memory: counts bytes and folds them into a
//!   streaming [`Sha256`], for determinism checks at scales where the
//!   rendered report must never exist in memory.
//!
//! # Examples
//!
//! ```
//! use corridor_core::sink::{RowEmitter, RowFormat, RowSink, StringSink};
//!
//! let mut sink = StringSink::new();
//! let mut rows = RowEmitter::begin(&mut sink, RowFormat::Csv, "a,b").unwrap();
//! rows.row("1,2\n").unwrap();
//! rows.row("3,4\n").unwrap();
//! assert_eq!(rows.finish().unwrap(), 2);
//! assert_eq!(sink.as_str(), "a,b\n1,2\n3,4\n");
//! ```

use core::fmt;
use std::io;

use crate::hash::Sha256;

/// Why a sink rejected a chunk.
#[derive(Debug)]
pub enum SinkError {
    /// The underlying writer failed.
    Io(io::Error),
    /// The consumer on the other end of the sink vanished (e.g. a serve
    /// client hung up); producers should stop instead of computing rows
    /// nobody will read.
    Closed,
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Io(err) => write!(f, "row sink I/O error: {err}"),
            SinkError::Closed => write!(f, "row sink closed by consumer"),
        }
    }
}

impl std::error::Error for SinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SinkError::Io(err) => Some(err),
            SinkError::Closed => None,
        }
    }
}

impl From<io::Error> for SinkError {
    fn from(err: io::Error) -> Self {
        SinkError::Io(err)
    }
}

/// Shorthand for sink operations.
pub type SinkResult<T> = Result<T, SinkError>;

/// The two report renderings every engine can stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowFormat {
    /// Comma-separated values: header line, then one line per row.
    #[default]
    Csv,
    /// A JSON array of row objects.
    Json,
}

impl RowFormat {
    /// Stable lowercase label (`csv` / `json`), used by CLI flags and
    /// the serve protocol.
    pub fn label(&self) -> &'static str {
        match self {
            RowFormat::Csv => "csv",
            RowFormat::Json => "json",
        }
    }

    /// Parses [`RowFormat::label`] back; `None` for anything else.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "csv" => Some(RowFormat::Csv),
            "json" => Some(RowFormat::Json),
            _ => None,
        }
    }
}

impl fmt::Display for RowFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A destination for rendered report bytes, fed in grid order.
///
/// Implementations must write chunks verbatim and in call order — the
/// byte-determinism contract of the reports extends through every sink.
pub trait RowSink {
    /// Appends one chunk of rendered output.
    ///
    /// # Errors
    ///
    /// Returns a [`SinkError`] when the chunk cannot be delivered; the
    /// producer stops at the first failure.
    fn write(&mut self, chunk: &str) -> SinkResult<()>;

    /// Flushes any buffered bytes after the final chunk.
    ///
    /// # Errors
    ///
    /// Returns a [`SinkError`] when the flush fails.
    fn finish(&mut self) -> SinkResult<()> {
        Ok(())
    }
}

/// A sink that accumulates everything in one `String` — the in-memory
/// report writers are exactly this sink behind a [`RowEmitter`].
#[derive(Debug, Default, Clone)]
pub struct StringSink {
    out: String,
}

impl StringSink {
    /// An empty sink.
    pub fn new() -> Self {
        StringSink::default()
    }

    /// An empty sink with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        StringSink {
            out: String::with_capacity(capacity),
        }
    }

    /// The accumulated output so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the accumulated output.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Runs `emit` against a fresh sink of the given capacity and
    /// returns the accumulated output — the one-liner behind every
    /// in-memory `to_csv`/`to_json` report renderer.
    ///
    /// [`StringSink`]'s `write` never returns `Err`, and row emitters
    /// fail only by propagating sink errors, so the `expect` below
    /// cannot fire. Centralizing it here keeps that reasoning (and its
    /// lint waiver) in exactly one audited place.
    pub fn render<T, F>(capacity: usize, emit: F) -> String
    where
        F: FnOnce(&mut StringSink) -> SinkResult<T>,
    {
        let mut sink = StringSink::with_capacity(capacity);
        // corridor-lint: allow(no-panic, reason = "StringSink::write is Ok-only and emitters fail only by propagating sink errors, so this expect is unreachable")
        emit(&mut sink).expect("string sinks cannot fail");
        sink.into_string()
    }
}

impl RowSink for StringSink {
    fn write(&mut self, chunk: &str) -> SinkResult<()> {
        self.out.push_str(chunk);
        Ok(())
    }
}

/// A sink forwarding to any [`io::Write`] (file, pipe, socket).
#[derive(Debug)]
pub struct WriteSink<W: io::Write> {
    inner: W,
}

impl<W: io::Write> WriteSink<W> {
    /// Wraps a writer. Callers that care about syscall count should pass
    /// a [`io::BufWriter`].
    pub fn new(inner: W) -> Self {
        WriteSink { inner }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> RowSink for WriteSink<W> {
    fn write(&mut self, chunk: &str) -> SinkResult<()> {
        self.inner.write_all(chunk.as_bytes())?;
        Ok(())
    }

    fn finish(&mut self) -> SinkResult<()> {
        self.inner.flush()?;
        Ok(())
    }
}

/// A constant-memory sink: counts bytes and folds them into a streaming
/// SHA-256. The memory-ceiling regression test pushes ≥ 100k cells
/// through this sink — if anyone reintroduces whole-report buffering
/// upstream, the asserted RSS budget trips.
#[derive(Debug, Default, Clone)]
pub struct DigestSink {
    digest: Sha256,
}

impl DigestSink {
    /// A fresh digest sink.
    pub fn new() -> Self {
        DigestSink::default()
    }

    /// Total bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.digest.bytes_hashed()
    }

    /// Consumes the sink, returning the SHA-256 of everything written,
    /// as 64 lowercase hex characters.
    pub fn hex(self) -> String {
        self.digest.finalize_hex()
    }
}

impl RowSink for DigestSink {
    fn write(&mut self, chunk: &str) -> SinkResult<()> {
        self.digest.update(chunk.as_bytes());
        Ok(())
    }
}

/// Adds a format's framing around raw rows: the CSV header line, or the
/// JSON array brackets and `",\n"` separators.
///
/// Row conventions (matching the in-memory writers byte for byte):
///
/// * CSV rows carry their own trailing newline (a row may span several
///   physical lines, as the optimizer's per-cell frontier blocks do);
/// * JSON rows carry no separators — the emitter inserts `",\n"`
///   between rows, and `finish` closes the array as `"\n]\n"` (or
///   `"]\n"` when no rows were emitted, matching an empty report).
pub struct RowEmitter<'a> {
    sink: &'a mut dyn RowSink,
    format: RowFormat,
    rows: u64,
}

impl<'a> RowEmitter<'a> {
    /// Writes the preamble for `format` (`csv_header` plus a newline, or
    /// `"[\n"`) and returns the emitter.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`].
    pub fn begin(
        sink: &'a mut dyn RowSink,
        format: RowFormat,
        csv_header: &str,
    ) -> SinkResult<Self> {
        match format {
            RowFormat::Csv => {
                sink.write(csv_header)?;
                sink.write("\n")?;
            }
            RowFormat::Json => sink.write("[\n")?,
        }
        Ok(RowEmitter {
            sink,
            format,
            rows: 0,
        })
    }

    /// Emits one rendered row (see the row conventions above).
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`].
    pub fn row(&mut self, row: &str) -> SinkResult<()> {
        if self.format == RowFormat::Json && self.rows > 0 {
            self.sink.write(",\n")?;
        }
        self.sink.write(row)?;
        self.rows += 1;
        Ok(())
    }

    /// Rows emitted so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Writes the postamble, flushes the sink and returns the row count.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`].
    pub fn finish(self) -> SinkResult<u64> {
        match self.format {
            RowFormat::Csv => {}
            RowFormat::Json => {
                if self.rows > 0 {
                    self.sink.write("\n")?;
                }
                self.sink.write("]\n")?;
            }
        }
        self.sink.finish()?;
        Ok(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256_hex;

    #[test]
    fn csv_framing_matches_writeln_style() {
        let mut sink = StringSink::new();
        let mut rows = RowEmitter::begin(&mut sink, RowFormat::Csv, "h1,h2").unwrap();
        rows.row("1,2\n").unwrap();
        rows.row("3,4\n").unwrap();
        assert_eq!(rows.rows(), 2);
        assert_eq!(rows.finish().unwrap(), 2);
        assert_eq!(sink.as_str(), "h1,h2\n1,2\n3,4\n");
    }

    #[test]
    fn json_framing_inserts_separators() {
        let mut sink = StringSink::new();
        let mut rows = RowEmitter::begin(&mut sink, RowFormat::Json, "ignored").unwrap();
        rows.row("  {\"a\": 1}").unwrap();
        rows.row("  {\"a\": 2}").unwrap();
        assert_eq!(rows.finish().unwrap(), 2);
        assert_eq!(sink.as_str(), "[\n  {\"a\": 1},\n  {\"a\": 2}\n]\n");
    }

    #[test]
    fn empty_reports_frame_like_the_in_memory_writers() {
        // CSV: header only; JSON: "[\n]\n" with no blank line
        let mut csv = StringSink::new();
        assert_eq!(
            RowEmitter::begin(&mut csv, RowFormat::Csv, "h")
                .unwrap()
                .finish()
                .unwrap(),
            0
        );
        assert_eq!(csv.as_str(), "h\n");
        let mut json = StringSink::new();
        RowEmitter::begin(&mut json, RowFormat::Json, "h")
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(json.as_str(), "[\n]\n");
    }

    #[test]
    fn digest_sink_matches_string_sink() {
        let mut s = StringSink::new();
        let mut d = DigestSink::new();
        for sink in [&mut s as &mut dyn RowSink, &mut d as &mut dyn RowSink] {
            let mut rows = RowEmitter::begin(sink, RowFormat::Csv, "a,b").unwrap();
            rows.row("1,2\n").unwrap();
            rows.finish().unwrap();
        }
        assert_eq!(d.bytes(), s.as_str().len() as u64);
        assert_eq!(d.hex(), sha256_hex(s.as_str().as_bytes()));
    }

    #[test]
    fn write_sink_forwards_and_flushes() {
        let mut sink = WriteSink::new(Vec::new());
        let mut rows = RowEmitter::begin(&mut sink, RowFormat::Json, "").unwrap();
        rows.row("  {}").unwrap();
        rows.finish().unwrap();
        assert_eq!(sink.into_inner(), b"[\n  {}\n]\n");
    }

    #[test]
    fn format_labels_roundtrip() {
        for format in [RowFormat::Csv, RowFormat::Json] {
            assert_eq!(RowFormat::from_label(format.label()), Some(format));
            assert_eq!(format.to_string(), format.label());
        }
        assert_eq!(RowFormat::from_label("xml"), None);
        assert_eq!(RowFormat::default(), RowFormat::Csv);
    }

    #[test]
    fn sink_error_formats_and_sources() {
        let io_err = SinkError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(SinkError::Closed.to_string().contains("closed"));
        assert!(std::error::Error::source(&SinkError::Closed).is_none());
    }
}
