//! Fixture: a panicking accessor in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
