//! Solar position geometry.

/// Solar geometry for a given latitude: declination, hour angles, and the
/// solar elevation/azimuth used by the transposition model.
///
/// Conventions: angles in degrees at the API surface, radians internally;
/// hour angle 0 at solar noon, negative in the morning; azimuth measured
/// from south, positive towards west (the PV convention, matching the
/// paper's "azimuth angle: 0°" for a south-facing module).
///
/// # Examples
///
/// ```
/// use corridor_solar::SolarGeometry;
/// let geo = SolarGeometry::at_latitude(40.4); // Madrid
/// // summer solstice noon: elevation ≈ 90 − 40.4 + 23.45 ≈ 73°
/// let elev = geo.elevation_deg(172, 12.0);
/// assert!((elev - 73.0).abs() < 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SolarGeometry {
    latitude_deg: f64,
}

impl SolarGeometry {
    /// Geometry for the given latitude (degrees, north positive).
    ///
    /// # Panics
    ///
    /// Panics if `latitude_deg` is outside `[-90, 90]`.
    pub fn at_latitude(latitude_deg: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&latitude_deg),
            "latitude out of range"
        );
        SolarGeometry { latitude_deg }
    }

    /// The site latitude in degrees.
    pub fn latitude_deg(&self) -> f64 {
        self.latitude_deg
    }

    /// Solar declination (degrees) for day of year `doy` (1..=365),
    /// Cooper's formula.
    pub fn declination_deg(doy: u32) -> f64 {
        23.45 * (std::f64::consts::TAU * (284.0 + doy as f64) / 365.0).sin()
    }

    /// Hour angle (degrees) for local solar time `hour` (0.0..24.0):
    /// 15° per hour from solar noon.
    pub fn hour_angle_deg(hour: f64) -> f64 {
        15.0 * (hour - 12.0)
    }

    /// Solar elevation above the horizon (degrees) at day `doy` and local
    /// solar time `hour`; negative below the horizon.
    pub fn elevation_deg(&self, doy: u32, hour: f64) -> f64 {
        let lat = self.latitude_deg.to_radians();
        let dec = Self::declination_deg(doy).to_radians();
        let ha = Self::hour_angle_deg(hour).to_radians();
        (lat.sin() * dec.sin() + lat.cos() * dec.cos() * ha.cos())
            .asin()
            .to_degrees()
    }

    /// Solar zenith angle (degrees): `90 − elevation`.
    pub fn zenith_deg(&self, doy: u32, hour: f64) -> f64 {
        90.0 - self.elevation_deg(doy, hour)
    }

    /// Solar azimuth (degrees from south, west positive).
    pub fn azimuth_deg(&self, doy: u32, hour: f64) -> f64 {
        let lat = self.latitude_deg.to_radians();
        let dec = Self::declination_deg(doy).to_radians();
        let ha = Self::hour_angle_deg(hour).to_radians();
        let elev = self.elevation_deg(doy, hour).to_radians();
        // standard formula; guard the acos argument against rounding
        let cos_az = (elev.sin() * lat.sin() - dec.sin()) / (elev.cos() * lat.cos());
        let az = cos_az.clamp(-1.0, 1.0).acos().to_degrees();
        if ha < 0.0 {
            -az
        } else {
            az
        }
    }

    /// Sunrise hour angle magnitude (degrees); 0 for polar night, 180 for
    /// polar day.
    pub fn sunrise_hour_angle_deg(&self, doy: u32) -> f64 {
        let lat = self.latitude_deg.to_radians();
        let dec = Self::declination_deg(doy).to_radians();
        let cos_ws = -lat.tan() * dec.tan();
        cos_ws.clamp(-1.0, 1.0).acos().to_degrees()
    }

    /// Day length in hours.
    pub fn day_length_hours(&self, doy: u32) -> f64 {
        2.0 * self.sunrise_hour_angle_deg(doy) / 15.0
    }

    /// Cosine of the angle of incidence on a tilted plane.
    ///
    /// `tilt_deg` is the plane's inclination from horizontal (90° =
    /// vertical); `plane_azimuth_deg` from south, west positive. Clamped at
    /// zero (sun behind the plane).
    pub fn incidence_cosine(
        &self,
        doy: u32,
        hour: f64,
        tilt_deg: f64,
        plane_azimuth_deg: f64,
    ) -> f64 {
        let elev = self.elevation_deg(doy, hour).to_radians();
        if elev <= 0.0 {
            return 0.0;
        }
        let sun_az = self.azimuth_deg(doy, hour).to_radians();
        let tilt = tilt_deg.to_radians();
        let plane_az = plane_azimuth_deg.to_radians();
        let cos_inc = elev.sin() * tilt.cos() + elev.cos() * tilt.sin() * (sun_az - plane_az).cos();
        cos_inc.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MADRID: f64 = 40.4;
    const BERLIN: f64 = 52.5;

    #[test]
    fn declination_extremes() {
        // summer solstice ~ +23.45, winter ~ -23.45, equinox ~ 0
        assert!((SolarGeometry::declination_deg(172) - 23.45).abs() < 0.1);
        assert!((SolarGeometry::declination_deg(355) + 23.45).abs() < 0.1);
        assert!(SolarGeometry::declination_deg(81).abs() < 1.0);
    }

    #[test]
    fn noon_elevation_formula() {
        let geo = SolarGeometry::at_latitude(MADRID);
        // at solar noon: elevation = 90 - lat + declination
        for doy in [1u32, 100, 200, 300] {
            let expected = 90.0 - MADRID + SolarGeometry::declination_deg(doy);
            assert!((geo.elevation_deg(doy, 12.0) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn sun_below_horizon_at_midnight() {
        let geo = SolarGeometry::at_latitude(MADRID);
        assert!(geo.elevation_deg(172, 0.0) < 0.0);
        assert!(geo.elevation_deg(355, 0.0) < 0.0);
    }

    #[test]
    fn azimuth_sign_convention() {
        let geo = SolarGeometry::at_latitude(MADRID);
        // morning sun in the east (negative), afternoon in the west
        assert!(geo.azimuth_deg(100, 9.0) < 0.0);
        assert!(geo.azimuth_deg(100, 15.0) > 0.0);
        assert!(geo.azimuth_deg(100, 12.0).abs() < 1.0);
    }

    #[test]
    fn day_length_seasonal_ordering() {
        let berlin = SolarGeometry::at_latitude(BERLIN);
        let madrid = SolarGeometry::at_latitude(MADRID);
        // Berlin summers are longer, winters shorter
        assert!(berlin.day_length_hours(172) > madrid.day_length_hours(172));
        assert!(berlin.day_length_hours(355) < madrid.day_length_hours(355));
        // Berlin mid-winter day is short but not polar night
        let winter = berlin.day_length_hours(355);
        assert!(winter > 7.0 && winter < 9.0, "got {winter}");
    }

    #[test]
    fn vertical_south_plane_sees_winter_sun_well() {
        let geo = SolarGeometry::at_latitude(BERLIN);
        // low winter sun hits a vertical south plane at near-normal incidence
        let winter = geo.incidence_cosine(355, 12.0, 90.0, 0.0);
        let summer = geo.incidence_cosine(172, 12.0, 90.0, 0.0);
        assert!(winter > 0.9, "winter cos(inc) = {winter}");
        assert!(summer < winter);
    }

    #[test]
    fn incidence_zero_when_sun_down_or_behind() {
        let geo = SolarGeometry::at_latitude(MADRID);
        assert_eq!(geo.incidence_cosine(100, 0.0, 90.0, 0.0), 0.0);
        // north-facing vertical plane at noon sees nothing
        assert_eq!(geo.incidence_cosine(100, 12.0, 90.0, 180.0), 0.0);
    }

    #[test]
    fn zenith_complements_elevation() {
        let geo = SolarGeometry::at_latitude(MADRID);
        let e = geo.elevation_deg(150, 10.0);
        assert!((geo.zenith_deg(150, 10.0) + e - 90.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn bad_latitude_rejected() {
        let _ = SolarGeometry::at_latitude(91.0);
    }
}
