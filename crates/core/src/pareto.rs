//! Pareto-dominance helpers for multi-objective deployment searches.
//!
//! The deployment optimizer (`corridor_sim::optimize`) scores every
//! candidate configuration on several objectives at once (energy per
//! day, nodes per km, coverage margin) and keeps the non-dominated set.
//! This module holds the objective-space math, free of any deployment
//! vocabulary, so other searches can reuse it.
//!
//! All objectives are **minimized**; flip the sign of anything to be
//! maximized before building the objective vector. Points carrying a
//! non-finite objective (NaN/∞ from degenerate scenario cells) cannot
//! be ordered meaningfully and are excluded from every frontier — the
//! same "never silently poison the output" convention as
//! [`SegmentEnergy::savings_vs`](crate::energy::SegmentEnergy::savings_vs).

/// True if `a` Pareto-dominates `b`: no objective worse, at least one
/// strictly better (all objectives minimized).
///
/// Non-finite objectives make a point incomparable: it neither
/// dominates nor is dominated (the frontier builder drops such points
/// up front).
///
/// # Examples
///
/// ```
/// use corridor_core::pareto::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0])); // a trade-off
/// assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: no strict edge
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    if !finite(a) || !finite(b) {
        return false;
    }
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// True if every objective of `point` is finite.
pub fn finite(point: &[f64]) -> bool {
    point.iter().all(|x| x.is_finite())
}

/// Indices of the non-dominated points, in input order.
///
/// Duplicated points do not dominate each other, so every copy stays on
/// the frontier (input order keeps the result deterministic). Points
/// with a non-finite objective are excluded outright.
///
/// # Examples
///
/// ```
/// use corridor_core::pareto::frontier_indices;
///
/// let points = vec![
///     vec![1.0, 4.0], // frontier
///     vec![2.0, 2.0], // frontier
///     vec![3.0, 3.0], // dominated by [2, 2]
///     vec![4.0, 1.0], // frontier
/// ];
/// assert_eq!(frontier_indices(&points), vec![0, 1, 3]);
/// ```
pub fn frontier_indices(points: &[Vec<f64>]) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| finite(p))
        .filter(|(i, p)| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != *i && dominates(q, p))
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(frontier_indices(&[vec![1.0, 2.0, 3.0]]), vec![0]);
        assert!(frontier_indices(&[]).is_empty());
    }

    #[test]
    fn dominated_points_are_dropped() {
        let points = vec![
            vec![1.0, 1.0], // dominates everything below
            vec![2.0, 1.0],
            vec![1.0, 2.0],
            vec![5.0, 5.0],
        ];
        assert_eq!(frontier_indices(&points), vec![0]);
    }

    #[test]
    fn trade_off_chain_survives_whole() {
        let points: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, (4 - i) as f64]).collect();
        assert_eq!(frontier_indices(&points), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicates_both_stay() {
        let points = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(frontier_indices(&points), vec![0, 1]);
    }

    #[test]
    fn non_finite_points_are_excluded_not_panicking() {
        let points = vec![
            vec![f64::NAN, 0.0],
            vec![1.0, 1.0],
            vec![f64::INFINITY, -1.0],
            vec![f64::NEG_INFINITY, 5.0], // -inf would "dominate" naively
        ];
        assert_eq!(frontier_indices(&points), vec![1]);
        // and a NaN never shields a point from domination checks
        assert!(!dominates(&[f64::NAN, 0.0], &[1.0, 1.0]));
        assert!(!dominates(&[0.0, 0.0], &[f64::NAN, 1.0]));
    }

    #[test]
    fn three_objectives() {
        let points = vec![
            vec![1.0, 2.0, 3.0],
            vec![1.0, 2.0, 2.0], // dominates the first
            vec![2.0, 1.0, 3.0], // trade-off
        ];
        assert_eq!(frontier_indices(&points), vec![1, 2]);
    }
}
