//! Fixture: mutable global state.

pub static mut COUNTER: u64 = 0;
