//! Property tests for the work-stealing pool: a parallel pipeline must
//! be observationally identical to its serial counterpart — same
//! results, same order — for every worker count and under adversarial
//! task-size skew that forces the stealing path.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Spins a deterministic amount of arithmetic, so task sizes can be
/// skewed precisely without sleeping.
fn busy(units: u64) -> u64 {
    let mut acc = 1u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

fn with_workers<R>(workers: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("shim pool build is infallible")
        .install(op)
}

proptest! {
    /// map/collect: ordered results are identical to the serial map for
    /// 1, 2 and 8 workers, whatever the items.
    #[test]
    fn map_collect_equals_serial(items in prop::collection::vec(0u64..=u64::MAX, 0..80)) {
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0x5bd1_e995).collect();
        for workers in [1usize, 2, 8] {
            let got: Vec<u64> = with_workers(workers, || {
                items.par_iter().map(|&x| x.wrapping_mul(x) ^ 0x5bd1_e995).collect()
            });
            prop_assert_eq!(&got, &expected, "workers = {}", workers);
        }
    }

    /// sum: the parallel reduction equals the serial fold for 1, 2 and 8
    /// workers (u128 accumulator, so the comparison is exact).
    #[test]
    fn sum_equals_serial(items in prop::collection::vec(0u64..=u64::MAX, 0..80)) {
        let expected: u128 = items.iter().map(|&x| u128::from(x)).sum();
        for workers in [1usize, 2, 8] {
            let got: u128 = with_workers(workers, || {
                items.par_iter().map(|&x| u128::from(x)).sum()
            });
            prop_assert_eq!(got, expected, "workers = {}", workers);
        }
    }

    /// Adversarial skew: a few huge tasks randomly placed among many
    /// tiny ones. Workers seeded with only tiny tasks drain early and
    /// must steal from the loaded deques; the ordered results still
    /// match the serial pass exactly.
    #[test]
    fn skewed_task_sizes_equal_serial(
        sizes in prop::collection::vec(0u64..40, 8..64),
        heavy_at in prop::collection::vec(0usize..64, 1..4),
        heavy_units in 20_000u64..60_000,
    ) {
        let mut sizes = sizes;
        for &at in &heavy_at {
            let slot = at % sizes.len();
            sizes[slot] = heavy_units;
        }
        let expected: Vec<u64> = sizes.iter().map(|&units| busy(units)).collect();
        for workers in [2usize, 8] {
            let got: Vec<u64> = with_workers(workers, || {
                sizes.par_iter().map(|&units| busy(units)).collect()
            });
            prop_assert_eq!(&got, &expected, "workers = {}", workers);
        }
    }
}

/// The classic worst case for contiguous-block seeding: all the work at
/// the front (one worker's block), nothing anywhere else — every other
/// worker can make progress only by stealing.
#[test]
fn all_heavy_items_in_one_block_still_match_serial() {
    let sizes: Vec<u64> = (0..64u64).map(|i| if i < 8 { 40_000 } else { 0 }).collect();
    let expected: Vec<u64> = sizes.iter().map(|&units| busy(units)).collect();
    for workers in [2usize, 4, 8] {
        let got: Vec<u64> = with_workers(workers, || {
            sizes.par_iter().map(|&units| busy(units)).collect()
        });
        assert_eq!(got, expected, "workers = {workers}");
    }
}

/// Repeated runs with racy stealing interleavings always produce the
/// same ordered output (determinism does not depend on the schedule).
#[test]
fn repeated_runs_are_identical() {
    let items: Vec<u64> = (0..300).collect();
    let reference: Vec<u64> = items.iter().map(|&x| busy(x % 17)).collect();
    for _ in 0..20 {
        let got: Vec<u64> = with_workers(8, || items.par_iter().map(|&x| busy(x % 17)).collect());
        assert_eq!(got, reference);
    }
}

proptest! {
    /// stream_ordered: the consumed sequence equals the serial map for
    /// every worker count and window size, under task-size skew.
    #[test]
    fn stream_ordered_equals_serial(
        sizes in prop::collection::vec(0u64..200, 1..48),
        window in 1usize..12,
    ) {
        let expected: Vec<u64> = sizes.iter().map(|&units| busy(units)).collect();
        for workers in [1usize, 2, 8] {
            let mut seen = Vec::new();
            rayon::stream_ordered(
                sizes.iter().copied(),
                workers,
                window,
                busy,
                |r| { seen.push(r); Ok::<(), ()>(()) },
            ).unwrap();
            prop_assert_eq!(&seen, &expected, "workers = {}, window = {}", workers, window);
        }
    }
}

/// stream_ordered under adversarial skew (a huge task at the front
/// blocks the emission head): later results must buffer without ever
/// exceeding the window, then drain in order.
#[test]
fn stream_ordered_skewed_head_stays_ordered() {
    let sizes: Vec<u64> = (0..64u64)
        .map(|i| if i == 0 { 60_000 } else { 1 })
        .collect();
    let expected: Vec<u64> = sizes.iter().map(|&units| busy(units)).collect();
    for workers in [2usize, 8] {
        let mut seen = Vec::new();
        rayon::stream_ordered(sizes.iter().copied(), workers, 6, busy, |r| {
            seen.push(r);
            Ok::<(), ()>(())
        })
        .unwrap();
        assert_eq!(seen, expected, "workers = {workers}");
    }
}

/// for_each under skew visits every item exactly once.
#[test]
fn for_each_under_skew_visits_every_item_once() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let visits: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
    with_workers(8, || {
        (0..97usize).into_par_iter().for_each(|i| {
            busy(if i == 0 { 30_000 } else { 3 });
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    for (i, count) in visits.iter().enumerate() {
        assert_eq!(count.load(Ordering::Relaxed), 1, "item {i}");
    }
}
