//! Regenerates the paper's Fig. 4: average energy consumption per hour,
//! normalized to 1 km, for the conventional corridor and 1-10 repeater
//! nodes under the three operating strategies.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::fig4());
}
