//! Network-optimizer integration suite: the degenerate-path differential
//! against the linear corridor optimizer (byte-for-byte, sha256-pinned),
//! cross-worker byte-identity of the streamed frontier, the junction
//! sleep win the per-corridor optimizer cannot express, and properties
//! over random connected topologies.

use corridor_core::hash::sha256_hex;
use corridor_core::sink::{RowFormat, StringSink};
use corridor_sim::{
    CorridorEdge, CorridorNetwork, DeploymentOptimizer, NetworkError, NetworkOptimizer,
    ScenarioGrid, SearchSpace, NETWORK_SCHEDULE_CSV_HEADER,
};
use corridor_units::Meters;
use proptest::prelude::*;

/// Coarse profile sampling, as in the optimize suite: boundary ISDs are
/// insensitive to 5 m vs 10 m, and debug-mode tests stay quick.
fn quick_space() -> SearchSpace {
    SearchSpace::new().sample_step(Meters::new(10.0))
}

/// Pinned digests of the degenerate-path frontier renderings. These are
/// digests of the *linear* optimizer's bytes over `smoke_3`, which the
/// network layer must reproduce exactly on the equivalent path graph.
const LINE3_CSV_SHA256: &str = "4bebad07f877e154375a0fc2d5c789a8bcf084ab5d8c61d6b2b38f499c00d31b";
const LINE3_JSON_SHA256: &str = "ed73cc89b759c3739027fafe75ce5711697708010913d1aed0ff59027b72e657";

#[test]
fn degenerate_path_reproduces_the_linear_frontier_byte_for_byte() {
    // the acceptance differential: a single-path network built from
    // grid-default edges is the *same computation* as the linear
    // corridor sweep — same cells, same search, same rendered bytes
    let net = CorridorNetwork::line(&[4.0, 8.0, 12.0]);
    let report = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    let linear = DeploymentOptimizer::new()
        .workers(1)
        .run(&ScenarioGrid::smoke_3(), &quick_space())
        .unwrap();
    let csv = report.frontier_csv();
    let json = report.frontier_json();
    assert_eq!(csv, linear.to_csv());
    assert_eq!(json, linear.to_json());
    // pin the exact bytes so drift in either pipeline trips loudly
    assert_eq!(
        sha256_hex(csv.as_bytes()),
        LINE3_CSV_SHA256,
        "line3 frontier CSV drifted:\n{csv}"
    );
    assert_eq!(sha256_hex(json.as_bytes()), LINE3_JSON_SHA256);
}

#[test]
fn junction_frontiers_still_match_the_linear_search_per_edge() {
    // topology never bends the per-edge search: the wye's cells (4 tph,
    // 8 tph double-tracked = 16 tph aggregate, 12 tph) are exactly a
    // linear grid over those demands, so the frontier bytes agree even
    // though the graphs differ
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let report = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 16.0, 12.0]);
    let linear = DeploymentOptimizer::new()
        .workers(1)
        .run(&grid, &quick_space())
        .unwrap();
    assert_eq!(report.frontier_csv(), linear.to_csv());
    assert_eq!(report.frontier_json(), linear.to_json());
}

#[test]
fn streamed_frontier_is_byte_identical_across_worker_counts() {
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let report = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    let reference = [report.frontier_csv(), report.frontier_json()];
    for workers in [1usize, 2, 8] {
        for (format, want) in [RowFormat::Csv, RowFormat::Json].iter().zip(&reference) {
            let mut sink = StringSink::with_capacity(4096);
            let summary = NetworkOptimizer::new()
                .workers(workers)
                .stream_frontier(&net, &quick_space(), *format, &mut sink)
                .unwrap();
            assert_eq!(summary.cells, net.edge_count() as u64);
            assert_eq!(&sink.into_string(), want, "{format:?}, workers = {workers}");
        }
    }
}

#[test]
fn junction_sleeps_what_per_corridor_optimization_cannot() {
    // the acceptance win: on the wye the per-corridor picks are optimal
    // per edge (equal coverage margins, pinned above by the frontier
    // differential), yet the network still saves energy by sleeping a
    // boundary repeater into its co-located neighbor across the hub —
    // a move no independent per-corridor optimizer can express
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let report = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    assert!(!report.plan().is_empty(), "the hub must admit a sleep");
    assert!(report.sleep_saving_wh_day() > 0.0);
    assert!(
        report.network_wh_day() < report.corridor_wh_day(),
        "network {} !< corridor {}",
        report.network_wh_day(),
        report.corridor_wh_day()
    );
    // every committed decision is a strict win within capacity
    for d in report.plan() {
        assert!(d.net_wh_day > 0.0);
        assert!((d.slept_wh_day - d.absorber_delta_wh_day - d.net_wh_day).abs() < 1e-9);
        assert!(d.absorbed_demand_tph > 0.0);
    }
    // and the coverage margins of the picks are the per-corridor
    // optimizer's own (sleep touches boundary repeaters, not coverage)
    let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 16.0, 12.0]);
    let linear = DeploymentOptimizer::new()
        .workers(1)
        .run(&grid, &quick_space())
        .unwrap();
    for (e, pick) in report.picks().iter().enumerate() {
        let pick = pick.as_ref().unwrap();
        let best = linear.results()[e]
            .frontier()
            .iter()
            .min_by(|x, y| x.energy_wh_day_km.total_cmp(&y.energy_wh_day_km))
            .unwrap();
        assert_eq!(pick.margin_db, best.margin_db, "edge {e}");
        assert_eq!(pick.isd, best.isd, "edge {e}");
    }
}

#[test]
fn single_station_network_is_a_valid_degenerate_case() {
    let mut net = CorridorNetwork::new();
    net.add_station("only");
    let report = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    assert!(report.is_empty());
    assert!(report.plan().is_empty());
    assert_eq!(report.corridor_wh_day(), 0.0);
    assert_eq!(report.network_wh_day(), 0.0);
    assert_eq!(
        report.schedule_csv().trim_end(),
        NETWORK_SCHEDULE_CSV_HEADER
    );
}

#[test]
fn empty_and_disconnected_networks_are_typed_errors() {
    let err = NetworkOptimizer::new()
        .workers(1)
        .run(&CorridorNetwork::new(), &quick_space())
        .unwrap_err();
    assert!(matches!(err, NetworkError::Empty));

    let mut net = CorridorNetwork::new();
    let a = net.add_station("a");
    let b = net.add_station("b");
    net.add_edge(CorridorEdge::between(a, b)).unwrap();
    net.add_station("island");
    net.add_station("atoll");
    for run in [
        NetworkOptimizer::new().workers(1).run(&net, &quick_space()),
        NetworkOptimizer::new()
            .workers(1)
            .run_serial(&net, &quick_space()),
    ] {
        assert!(matches!(run.unwrap_err(), NetworkError::Disconnected(2)));
    }
    let mut sink = StringSink::with_capacity(64);
    let err = NetworkOptimizer::new()
        .workers(1)
        .stream_frontier(&net, &quick_space(), RowFormat::Csv, &mut sink)
        .unwrap_err();
    assert!(matches!(err, NetworkError::Disconnected(2)));
}

/// Demand pool the random topologies draw from.
const TPH: [f64; 4] = [2.0, 4.0, 8.0, 12.0];

/// Builds one of the three connected topology families from the pool.
fn random_net(shape: usize, n_edges: usize) -> CorridorNetwork {
    let demands: Vec<f64> = TPH.iter().copied().cycle().take(n_edges).collect();
    match shape {
        0 => CorridorNetwork::line(&demands),
        1 => CorridorNetwork::star(&demands),
        _ => {
            // a cycle needs >= 3 edges; pad the ring up to the floor
            let demands: Vec<f64> = TPH.iter().copied().cycle().take(n_edges.max(3)).collect();
            CorridorNetwork::cycle(&demands)
        }
    }
}

proptest! {
    /// Every generated line/star/cycle is connected, searches every
    /// edge, agrees between serial and parallel execution, and never
    /// schedules sleep at a net loss.
    #[test]
    fn random_connected_topologies_hold_the_invariants(
        shape in 0usize..3,
        n_edges in 1usize..=4,
        workers in 2usize..=8,
    ) {
        let net = random_net(shape, n_edges);
        prop_assert!(net.validate().is_ok());
        // a reduced space keeps the 64-case sweep quick; 0 vs 10 nodes
        // still exercises the conventional/deployed split
        let space = quick_space().node_counts(vec![0, 10]);
        let serial = NetworkOptimizer::new().workers(1).run_serial(&net, &space).unwrap();
        let parallel = NetworkOptimizer::new().workers(workers).run(&net, &space).unwrap();
        prop_assert_eq!(serial.results(), parallel.results());
        prop_assert_eq!(serial.plan(), parallel.plan());
        prop_assert_eq!(serial.frontier_csv(), parallel.frontier_csv());
        prop_assert_eq!(serial.len(), net.edge_count());
        // sleep can only help, and each decision is a strict win
        prop_assert!(serial.network_wh_day() <= serial.corridor_wh_day() + 1e-9);
        for d in serial.plan() {
            prop_assert!(d.net_wh_day > 0.0);
            prop_assert!(d.edge != d.absorber_edge);
            prop_assert!(net.edge(d.edge).touches(d.station));
            prop_assert!(net.edge(d.absorber_edge).touches(d.station));
        }
        // at most two boundary repeaters sleep per edge
        for e in 0..net.edge_count() {
            let slept = serial.plan().iter().filter(|d| d.edge == e).count();
            prop_assert!(slept <= 2, "edge {} slept {} boundaries", e, slept);
        }
    }

    /// Disconnecting any generated topology by appending an isolated
    /// station turns the run into the typed `Disconnected` error naming
    /// that station.
    #[test]
    fn appended_island_is_always_a_typed_error(
        shape in 0usize..3,
        n_edges in 1usize..=4,
    ) {
        let mut net = random_net(shape, n_edges);
        let island = net.add_station("island");
        let err = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space().node_counts(vec![10]))
            .unwrap_err();
        prop_assert!(matches!(err, NetworkError::Disconnected(i) if i == island));
    }
}
