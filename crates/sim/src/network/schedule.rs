//! Demand-aware sleep scheduling over the network graph.
//!
//! The per-corridor optimizer answers "which deployment per edge"; this
//! module answers the question it cannot ask: **which boundary
//! repeaters can sleep entirely because a neighbor across the station
//! absorbs their demand?** The formulation follows Pollakis et al.
//! (arXiv 1503.08627): greedily shrink the active set while every
//! demand stays served, here specialized to the rail-corridor geometry:
//!
//! * Each deployed edge parks one **boundary repeater** in the station
//!   throat at each of its endpoints. Where several edges meet, their
//!   boundary repeaters stand co-located with overlapping footprints —
//!   so one awake repeater can serve the combined throat demand while
//!   the others sleep, and the coverage margin along every corridor is
//!   untouched (interior repeaters never move or sleep).
//! * A sleeping boundary repeater saves its full daily energy (the
//!   pick's per-repeater Wh/day). The absorber pays a duty-cycle
//!   premium: its activity hours are re-priced analytically at
//!   own-plus-absorbed demand, and the difference is the absorption
//!   cost. A candidate is viable only when the saving strictly exceeds
//!   the cost and the absorber stays within its demand capacity.
//! * The greedy loop always takes the highest net saving next
//!   (deterministic tie-breaks on edge, station and absorber indices),
//!   so the schedule is a pure function of the network and the picks.

use corridor_core::ScenarioError;
use corridor_power::DutyCycle;
use corridor_traffic::TrackSection;
use corridor_units::{Hours, Meters};

use crate::optimize::FrontierPoint;

use super::graph::CorridorNetwork;

/// One committed sleep decision of the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SleepDecision {
    /// The station whose throat the sleeping repeater served.
    pub station: usize,
    /// The edge whose boundary repeater sleeps.
    pub edge: usize,
    /// The edge whose boundary repeater absorbs the demand.
    pub absorber_edge: usize,
    /// Daily energy of the slept repeater, Wh.
    pub slept_wh_day: f64,
    /// The absorber's duty-cycle premium for the extra demand, Wh/day.
    pub absorber_delta_wh_day: f64,
    /// Net network saving: slept energy minus absorption cost, Wh/day.
    pub net_wh_day: f64,
    /// The demand handed to the absorber, trains per hour.
    pub absorbed_demand_tph: f64,
}

/// A boundary repeater's scheduling state at one `(edge, station)` slot.
#[derive(Debug, Clone)]
struct Boundary {
    edge: usize,
    station: usize,
    /// Slept repeaters no longer exist for coverage or absorption.
    slept: bool,
    /// An absorber is pinned awake for the rest of the schedule.
    pinned: bool,
    /// Demand absorbed so far (on top of the edge's own), trains/h.
    absorbed_tph: f64,
}

/// Prices one boundary repeater of `edge` at `tph` demand: activity
/// hours from the analytic occupancy model at the pick's geometry, then
/// a zero-idle duty cycle over the repeater power model.
fn boundary_wh_day(
    net: &CorridorNetwork,
    edge: usize,
    tph: f64,
    isd: Meters,
) -> Result<f64, ScenarioError> {
    let params = net.edge_params_with_tph(edge, tph)?;
    let section = TrackSection::around(isd / 2.0, params.lp_spacing());
    let active = corridor_core::energy::active_hours(&params, section);
    Ok(DutyCycle::over_day(active, Hours::ZERO)
        .daily_energy(params.lp_node())
        .value())
}

/// Builds the demand-aware sleep schedule for a network whose edges
/// already have their per-corridor picks: a greedy minimum-active-set
/// search over the boundary repeaters at shared stations.
///
/// `picks[e]` is edge `e`'s selected frontier point (`None` for an
/// unsolvable edge, which neither sleeps nor absorbs); `capacity_tph`
/// caps the aggregate demand (own + absorbed) one boundary repeater may
/// serve.
pub(crate) fn schedule_sleep(
    net: &CorridorNetwork,
    picks: &[Option<FrontierPoint>],
    capacity_tph: f64,
) -> Result<Vec<SleepDecision>, ScenarioError> {
    // materialize every boundary slot: deployed edges only, stations
    // where at least one *other* edge is incident (somebody must be
    // there to absorb)
    let mut slots: Vec<Boundary> = Vec::new();
    for (e, pick) in picks.iter().enumerate() {
        let Some(pick) = pick else { continue };
        if pick.nodes == 0 {
            continue;
        }
        let edge = net.edge(e);
        for station in [edge.a(), edge.b()] {
            if net.degree(station) >= 2 {
                slots.push(Boundary {
                    edge: e,
                    station,
                    slept: false,
                    pinned: false,
                    absorbed_tph: 0.0,
                });
            }
        }
    }

    // per-edge sleep budget: at most two boundary repeaters (one per
    // end) and never more than the edge actually deploys
    let budget: Vec<usize> = picks
        .iter()
        .map(|p| p.as_ref().map_or(0, |p| p.nodes.min(2)))
        .collect();
    let mut slept_per_edge = vec![0usize; picks.len()];

    let mut plan: Vec<SleepDecision> = Vec::new();
    loop {
        // evaluate every (sleeper, absorber) pair still on the table
        let mut best: Option<(f64, usize, usize)> = None; // (net, sleeper slot, absorber slot)
        for (si, sleeper) in slots.iter().enumerate() {
            if sleeper.slept || sleeper.pinned {
                continue;
            }
            if slept_per_edge[sleeper.edge] >= budget[sleeper.edge] {
                continue;
            }
            let sleeper_pick = picks[sleeper.edge]
                .as_ref()
                .expect("slots only exist for picked edges");
            let slept_wh = sleeper_pick.repeater_wh_day;
            let handed_tph = net.edge(sleeper.edge).demand_tph();
            for (ai, absorber) in slots.iter().enumerate() {
                if ai == si
                    || absorber.slept
                    || absorber.station != sleeper.station
                    || absorber.edge == sleeper.edge
                {
                    continue;
                }
                let own_tph = net.edge(absorber.edge).demand_tph();
                let before_tph = own_tph + absorber.absorbed_tph;
                let after_tph = before_tph + handed_tph;
                if after_tph > capacity_tph {
                    continue;
                }
                let absorber_pick = picks[absorber.edge]
                    .as_ref()
                    .expect("slots only exist for picked edges");
                let before = boundary_wh_day(net, absorber.edge, before_tph, absorber_pick.isd)?;
                let after = boundary_wh_day(net, absorber.edge, after_tph, absorber_pick.isd)?;
                let delta = after - before;
                let net_wh = slept_wh - delta;
                if net_wh <= 1e-9 {
                    continue;
                }
                // deterministic total order: saving first, then the
                // lowest sleeper edge / station / absorber edge
                let better = match &best {
                    None => true,
                    Some((best_net, best_si, best_ai)) => match net_wh.total_cmp(best_net) {
                        core::cmp::Ordering::Greater => true,
                        core::cmp::Ordering::Less => false,
                        core::cmp::Ordering::Equal => {
                            let key = (slots[si].edge, slots[si].station, slots[ai].edge);
                            let best_key = (
                                slots[*best_si].edge,
                                slots[*best_si].station,
                                slots[*best_ai].edge,
                            );
                            key < best_key
                        }
                    },
                };
                if better {
                    best = Some((net_wh, si, ai));
                }
            }
        }

        let Some((net_wh, si, ai)) = best else {
            break;
        };
        let handed_tph = net.edge(slots[si].edge).demand_tph();
        let absorber_pick = picks[slots[ai].edge]
            .as_ref()
            .expect("slots only exist for picked edges");
        let own_tph = net.edge(slots[ai].edge).demand_tph();
        let before = boundary_wh_day(
            net,
            slots[ai].edge,
            own_tph + slots[ai].absorbed_tph,
            absorber_pick.isd,
        )?;
        let after = boundary_wh_day(
            net,
            slots[ai].edge,
            own_tph + slots[ai].absorbed_tph + handed_tph,
            absorber_pick.isd,
        )?;
        let sleeper_pick = picks[slots[si].edge]
            .as_ref()
            .expect("slots only exist for picked edges");
        plan.push(SleepDecision {
            station: slots[si].station,
            edge: slots[si].edge,
            absorber_edge: slots[ai].edge,
            slept_wh_day: sleeper_pick.repeater_wh_day,
            absorber_delta_wh_day: after - before,
            net_wh_day: net_wh,
            absorbed_demand_tph: handed_tph,
        });
        slept_per_edge[slots[si].edge] += 1;
        slots[si].slept = true;
        slots[ai].pinned = true;
        slots[ai].absorbed_tph += handed_tph;
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkOptimizer, SearchSpace};

    fn quick_space() -> SearchSpace {
        SearchSpace::new().sample_step(Meters::new(10.0))
    }

    #[test]
    fn star_junction_sleeps_boundary_repeaters() {
        let net = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        let plan = report.plan();
        assert!(!plan.is_empty(), "junction must admit at least one sleep");
        for d in plan {
            assert!(d.net_wh_day > 0.0);
            assert!(d.slept_wh_day > d.absorber_delta_wh_day);
            assert_eq!(d.station, 0, "star junctions sleep only at the hub");
            assert_ne!(d.edge, d.absorber_edge);
        }
        // no boundary repeater absorbs and sleeps at once: slept edges
        // never appear as absorbers at the same station
        for d in plan {
            assert!(!plan
                .iter()
                .any(|o| o.edge == d.absorber_edge && o.station == d.station));
        }
    }

    #[test]
    fn capacity_cap_blocks_absorption() {
        let net = CorridorNetwork::star(&[4.0, 8.0, 12.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .capacity_tph(1.0) // nobody can absorb anything
            .run(&net, &quick_space())
            .unwrap();
        assert!(report.plan().is_empty());
        assert_eq!(report.network_wh_day(), report.corridor_wh_day());
    }

    #[test]
    fn isolated_corridor_has_no_sleep_candidates() {
        // a single edge has two degree-1 endpoints: no neighbor can
        // absorb, so the schedule is empty and the network total equals
        // the per-corridor total
        let net = CorridorNetwork::line(&[8.0]);
        let report = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        assert!(report.plan().is_empty());
        assert_eq!(report.network_wh_day(), report.corridor_wh_day());
    }

    #[test]
    fn schedule_is_deterministic() {
        let net = CorridorNetwork::by_name("wye3").unwrap();
        let a = NetworkOptimizer::new()
            .workers(1)
            .run(&net, &quick_space())
            .unwrap();
        let b = NetworkOptimizer::new()
            .workers(4)
            .run(&net, &quick_space())
            .unwrap();
        assert_eq!(a.plan(), b.plan());
        assert_eq!(a.schedule_csv(), b.schedule_csv());
    }
}
