//! Simplified atmospheric attenuation for mmWave links.
//!
//! Rain attenuation follows the ITU-R P.838 power-law form
//! `γ = k · R^α` (dB/km) with coefficients interpolated for the two bands
//! of interest; gaseous absorption is carried by the band preset. The
//! goal is hop-budget realism at the few-hundred-metre scale, not
//! frequency-plan accuracy.

use corridor_units::{Db, Hertz, Meters};

/// ITU-R P.838-style specific rain attenuation (dB/km) at `frequency`
/// for a rain rate of `rain_mm_h` (mm/h).
///
/// Coefficients are log-interpolated between anchor points at 30, 60, 80
/// and 100 GHz (horizontal polarization).
///
/// # Examples
///
/// ```
/// use corridor_fronthaul::atmosphere;
/// use corridor_units::Hertz;
///
/// // heavy rain at 60 GHz: roughly 10-12 dB/km
/// let gamma = atmosphere::rain_db_per_km(Hertz::from_ghz(60.0), 25.0);
/// assert!(gamma.value() > 8.0 && gamma.value() < 14.0);
/// ```
pub fn rain_db_per_km(frequency: Hertz, rain_mm_h: f64) -> Db {
    assert!(rain_mm_h >= 0.0, "rain rate must be non-negative");
    if rain_mm_h == 0.0 {
        return Db::ZERO;
    }
    // anchor points (f GHz, k, alpha), ITU-R P.838-3 ballpark
    const ANCHORS: [(f64, f64, f64); 4] = [
        (30.0, 0.2403, 0.9485),
        (60.0, 0.8606, 0.7656),
        (80.0, 1.1946, 0.7077),
        (100.0, 1.3701, 0.6815),
    ];
    let f = frequency.gigahertz().clamp(ANCHORS[0].0, ANCHORS[3].0);
    let (k, alpha) = interpolate(f, &ANCHORS);
    Db::new(k * rain_mm_h.powf(alpha))
}

fn interpolate(f: f64, anchors: &[(f64, f64, f64)]) -> (f64, f64) {
    for pair in anchors.windows(2) {
        let (f0, k0, a0) = pair[0];
        let (f1, k1, a1) = pair[1];
        if f <= f1 {
            let t = (f - f0) / (f1 - f0);
            return (k0 + t * (k1 - k0), a0 + t * (a1 - a0));
        }
    }
    let last = anchors[anchors.len() - 1];
    (last.1, last.2)
}

/// Total weather + gaseous excess attenuation over a hop of `distance`:
/// `(γ_rain + γ_oxygen) · d`.
pub fn excess_attenuation(distance: Meters, oxygen_db_per_km: Db, rain_db_per_km: Db) -> Db {
    let km = distance.kilometers().value();
    Db::new((oxygen_db_per_km.value() + rain_db_per_km.value()) * km)
}

/// Fraction of the year a European temperate site exceeds a rain rate
/// (simplified ITU-R P.837 relation for rain-zone-H-like climates):
/// `R(p)` in mm/h exceeded for fraction `p` of the time.
///
/// Used to translate a rain margin into link availability.
///
/// # Panics
///
/// Panics unless `0 < percent_of_year <= 1` (e.g. 0.01 = 0.01 % of the
/// year ≈ 53 min).
pub fn rain_rate_exceeded_mm_h(percent_of_year: f64) -> f64 {
    assert!(
        percent_of_year > 0.0 && percent_of_year <= 1.0,
        "percentage out of range"
    );
    // anchored at R(0.01 %) = 32 mm/h with the usual ~ p^-0.55 scaling
    32.0 * (0.01 / percent_of_year).powf(0.55)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rain_no_attenuation() {
        assert_eq!(rain_db_per_km(Hertz::from_ghz(60.0), 0.0), Db::ZERO);
    }

    #[test]
    fn rain_attenuation_grows_with_rate_and_frequency() {
        let f60 = Hertz::from_ghz(60.0);
        let light = rain_db_per_km(f60, 5.0);
        let heavy = rain_db_per_km(f60, 50.0);
        assert!(heavy > light);
        let f80 = Hertz::from_ghz(80.0);
        assert!(rain_db_per_km(f80, 25.0) > rain_db_per_km(f60, 25.0));
    }

    #[test]
    fn anchor_values_ballpark() {
        // 60 GHz, 25 mm/h: k·R^α = 0.8606·25^0.7656 ≈ 10.1 dB/km
        let g = rain_db_per_km(Hertz::from_ghz(60.0), 25.0).value();
        assert!((g - 10.1).abs() < 0.5, "got {g}");
    }

    #[test]
    fn excess_attenuation_scales_with_distance() {
        let rain = rain_db_per_km(Hertz::from_ghz(60.0), 25.0);
        let oxy = Db::new(15.0);
        let short = excess_attenuation(Meters::new(200.0), oxy, rain);
        let long = excess_attenuation(Meters::new(400.0), oxy, rain);
        assert!((long.value() - 2.0 * short.value()).abs() < 1e-9);
        // 200 m at (15 + 10.1) dB/km ≈ 5 dB
        assert!((short.value() - 5.02).abs() < 0.2);
    }

    #[test]
    fn rain_rate_curve() {
        let r001 = rain_rate_exceeded_mm_h(0.01);
        assert!((r001 - 32.0).abs() < 1e-9);
        // rarer events are heavier
        assert!(rain_rate_exceeded_mm_h(0.001) > r001);
        assert!(rain_rate_exceeded_mm_h(0.1) < r001);
    }

    #[test]
    #[should_panic(expected = "percentage out of range")]
    fn bad_percentage_rejected() {
        let _ = rain_rate_exceeded_mm_h(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rain_rejected() {
        let _ = rain_db_per_km(Hertz::from_ghz(60.0), -1.0);
    }
}
