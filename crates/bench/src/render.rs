//! Text rendering of every reproduction artefact.
//!
//! Each function returns *exactly* the bytes its binary prints — the
//! binaries are thin `print!` wrappers, and `tests/golden_outputs.rs` (in
//! the umbrella crate) asserts these strings against the committed
//! reference files under `docs/results/`, so paper fidelity is enforced
//! by `cargo test` instead of by hand.

use core::fmt::Write as _;

use corridor_core::report::TextTable;
use corridor_core::units::Meters;
use corridor_core::{experiments, ScenarioParams};

use crate::{scenario, wh};

/// Renders the Section V headline-number comparison (`headline` binary).
pub fn headline() -> String {
    let h = experiments::headline_numbers(&scenario());
    let mut out = String::from("headline numbers (Section V text)\n\n");
    let mut table = TextTable::new(vec!["quantity".into(), "paper".into(), "this model".into()]);
    let rows: Vec<(&str, &str, String)> = vec![
        (
            "HP full-load share, ISD 500 m",
            "2.85 %",
            format!("{:.2} %", h.hp_duty_500m * 100.0),
        ),
        (
            "HP full-load share, ISD 2650 m",
            "9.66 %",
            format!("{:.2} %", h.hp_duty_2650m * 100.0),
        ),
        (
            "repeater average power (sleep mode)",
            "5.17 W",
            format!("{:.2} W", h.repeater_average_power.value()),
        ),
        (
            "repeater daily energy",
            "124.1 Wh",
            format!("{:.1} Wh", h.repeater_daily_energy.value()),
        ),
        (
            "savings, 1 node, sleep mode",
            "57 %",
            format!("{:.1} %", h.savings_sleep_1 * 100.0),
        ),
        (
            "savings, 10 nodes, sleep mode",
            "74 %",
            format!("{:.1} %", h.savings_sleep_10 * 100.0),
        ),
        (
            "savings, 1 node, solar",
            "59 %",
            format!("{:.1} %", h.savings_solar_1 * 100.0),
        ),
        (
            "savings, 10 nodes, solar",
            "79 %",
            format!("{:.1} %", h.savings_solar_10 * 100.0),
        ),
    ];
    for (q, p, m) in rows {
        table.add_row(vec![q.to_string(), p.to_string(), m]);
    }
    let _ = writeln!(out, "{}", table.render());
    out
}

/// Renders the Table I component bill (`table1` binary).
pub fn table1() -> String {
    let bill = experiments::table1();
    let mut out = String::from("Table I — low-power repeater node power consumption\n\n");
    let mut table = TextTable::new(vec![
        "component".into(),
        "role".into(),
        "active [W]".into(),
        "sleep [W]".into(),
    ]);
    for c in bill.components() {
        table.add_row(vec![
            c.name.to_string(),
            c.role.to_string(),
            format!("{:.3}", c.active.value()),
            format!("{:.2}", c.sleep.value()),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "paths: {} DL, {} UL", bill.dl_paths(), bill.ul_paths());
    let _ = writeln!(
        out,
        "sleep total (computed):      {:.2} W (paper: 4.72 W)",
        bill.sleep_total().value()
    );
    let _ = writeln!(
        out,
        "active total (published):    {:.2} W",
        bill.paper_full_load_total().value()
    );
    let _ = writeln!(
        out,
        "active total (naive sum):    {:.2} W (see DESIGN.md §2.4 on the discrepancy)",
        bill.naive_active_total().value()
    );
    out
}

/// Renders the Table II power-model parameters (`table2` binary).
pub fn table2() -> String {
    let mut out = String::from("Table II — power model parameters\n\n");
    let mut table = TextTable::new(vec![
        "node type".into(),
        "Pmax [W]".into(),
        "P0 [W]".into(),
        "dP".into(),
        "Psleep [W]".into(),
        "full load [W]".into(),
    ]);
    for row in experiments::table2() {
        table.add_row(vec![
            row.node_type.to_string(),
            format!("{:.0}", row.model.p_max().value()),
            format!("{:.2}", row.model.p0().value()),
            format!("{:.1}", row.model.delta_p()),
            format!("{:.2}", row.model.p_sleep().value()),
            format!("{:.2}", row.model.full_load_power().value()),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "a mast carries two RRHs: 560 W full load, 336 W idle, 224 W sleep"
    );
    out
}

/// Renders the Table III scenario parameters (`table3` binary).
pub fn table3() -> String {
    let params = scenario();
    let train = params.train();
    let mut out = String::from("Table III — parameters for average energy calculations\n\n");
    let mut table = TextTable::new(vec!["parameter".into(), "value".into()]);
    let rows: Vec<(&str, String)> = vec![
        (
            "Number of trains/h",
            format!("{}", params.timetable().trains_per_hour()),
        ),
        (
            "Hours per night without traffic",
            format!("{} h", 24.0 - params.timetable().service_window().value()),
        ),
        ("Length of a train", format!("{}", train.length())),
        (
            "Velocity of a train",
            format!("{}", train.speed().kilometers_per_hour()),
        ),
        (
            "LP repeater node spacing",
            format!("{}", params.lp_spacing()),
        ),
        (
            "Power for HP RRH mast under full load",
            format!("{}", params.hp_mast().full_load_power()),
        ),
        (
            "Power for HP RRH mast in sleep mode",
            format!("{}", params.hp_mast().p_sleep()),
        ),
        (
            "Power for LP node under full load",
            format!("{}", params.lp_node().full_load_power()),
        ),
        (
            "Power for LP node no load",
            format!("{}", params.lp_node().p0()),
        ),
        (
            "Power for LP node in sleep mode",
            format!("{}", params.lp_node().p_sleep()),
        ),
    ];
    for (k, v) in rows {
        table.add_row(vec![k.to_string(), v]);
    }
    let _ = writeln!(out, "{}", table.render());

    // the derived "operation under full load per train" range of the paper
    let t_500 =
        corridor_core::traffic::TrackSection::new(Meters::ZERO, Meters::new(500.0)).occupancy(
            &corridor_core::traffic::TrainPass::new(train, corridor_core::units::Seconds::ZERO),
        );
    let t_2650 =
        corridor_core::traffic::TrackSection::new(Meters::ZERO, Meters::new(2650.0)).occupancy(
            &corridor_core::traffic::TrainPass::new(train, corridor_core::units::Seconds::ZERO),
        );
    let _ = writeln!(
        out,
        "derived full-load time per train: {:.1} s (ISD 500 m) to {:.1} s (ISD 2650 m); paper: 16 s - 55 s",
        (t_500.1 - t_500.0).value(),
        (t_2650.1 - t_2650.0).value()
    );
    out
}

/// Renders the Table IV sizing results (`table4` binary).
pub fn table4() -> String {
    let mut out = String::from("Table IV — off-grid PV sizing at the four example regions\n\n");
    let mut table = TextTable::new(vec![
        "parameter".into(),
        "Madrid".into(),
        "Lyon".into(),
        "Vienna".into(),
        "Berlin".into(),
    ]);
    let rows = experiments::table4();
    table.add_row(
        std::iter::once("Required peak PV power [Wp]".to_string())
            .chain(rows.iter().map(|r| format!("{:.0}", r.pv_peak.value())))
            .collect(),
    );
    table.add_row(
        std::iter::once("Required battery capacity [Wh]".to_string())
            .chain(rows.iter().map(|r| format!("{:.0}", r.battery.value())))
            .collect(),
    );
    table.add_row(
        std::iter::once("Days with full battery [%]".to_string())
            .chain(rows.iter().map(|r| format!("{:.2}", r.days_full_pct)))
            .collect(),
    );
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "paper:  540/540/540/600 Wp, 720/720/1440/1440 Wh, 98.13/95.15/93.73/88.0 % days full"
    );
    let _ = writeln!(
        out,
        "(percentages depend on the satellite weather database; see EXPERIMENTS.md)"
    );
    out
}

/// Renders the Fig. 3 signal/noise profile (`fig3` binary).
pub fn fig3() -> String {
    let params: ScenarioParams = scenario();
    let samples = experiments::fig3(&params);

    let mut out = String::from("Fig. 3 — signal and noise power, d_ISD = 2400 m, N = 8\n\n");
    let mut table = TextTable::new(vec![
        "pos [m]".into(),
        "HP left [dBm]".into(),
        "HP right [dBm]".into(),
        "best LP [dBm]".into(),
        "total signal [dBm]".into(),
        "total noise [dBm]".into(),
    ]);
    for s in samples.iter().step_by(10) {
        let best_lp = s
            .lp_nodes
            .iter()
            .map(|p| p.value())
            .fold(f64::NEG_INFINITY, f64::max);
        table.add_row(vec![
            format!("{:.0}", s.position.value()),
            format!("{:.1}", s.hp_left.value()),
            format!("{:.1}", s.hp_right.value()),
            format!("{best_lp:.1}"),
            format!("{:.1}", s.total_signal.value()),
            format!("{:.1}", s.total_noise.value()),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());

    let min_signal = samples
        .iter()
        .map(|s| s.total_signal.value())
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(
        out,
        "minimum total signal along the track: {min_signal:.1} dBm"
    );
    let _ = writeln!(
        out,
        "paper claim: the signal power can be kept above -100 dBm -> {}",
        if min_signal > -100.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    out
}

/// Renders one Fig. 4 table for a given ISD mapping.
fn fig4_table(
    params: &ScenarioParams,
    table: &corridor_core::deploy::IsdTable,
    label: &str,
) -> String {
    let rows = experiments::fig4(params, table);
    let baseline = rows[0].sleep;
    let mut out = format!("Fig. 4 ({label}) — average energy [Wh] per hour per km\n\n");
    let mut text = TextTable::new(vec![
        "nodes".into(),
        "ISD [m]".into(),
        "continuous".into(),
        "sleep".into(),
        "solar".into(),
        "saving cont.".into(),
        "saving sleep".into(),
        "saving solar".into(),
    ]);
    for row in &rows {
        let savings = row.savings_vs(baseline);
        text.add_row(vec![
            row.n.to_string(),
            format!("{:.0}", row.isd.value()),
            wh(row.continuous.value()),
            wh(row.sleep.value()),
            wh(row.solar.value()),
            format!("{:.1} %", savings[0] * 100.0),
            format!("{:.1} %", savings[1] * 100.0),
            format!("{:.1} %", savings[2] * 100.0),
        ]);
    }
    let _ = writeln!(out, "{}", text.render());
    out
}

/// Renders the Fig. 4 strategy comparison (`fig4` binary).
pub fn fig4() -> String {
    let params = scenario();
    let mut out = fig4_table(
        &params,
        &corridor_core::deploy::IsdTable::paper(),
        "paper ISD mapping",
    );
    let computed = experiments::isd_sweep(&params, Meters::new(5.0)).computed;
    out.push_str(&fig4_table(&params, &computed, "computed ISD mapping"));
    let _ = writeln!(
        out,
        "paper claims: 57 %/74 % sleep-mode and 59 %/79 % solar savings at 1/10 nodes."
    );
    out
}

/// Renders the Section V maximum-ISD sweep (`isd_sweep` binary).
pub fn isd_sweep() -> String {
    let sweep = experiments::isd_sweep(&scenario(), Meters::new(5.0));
    let mut out = String::from("maximum ISD per repeater count (50 m grid)\n\n");
    let mut table = TextTable::new(vec![
        "nodes".into(),
        "computed [m]".into(),
        "paper [m]".into(),
        "delta".into(),
    ]);
    for n in 0..=10usize {
        let computed = sweep.computed.isd_for(n);
        let paper = sweep.paper.isd_for(n);
        table.add_row(vec![
            n.to_string(),
            computed.map_or("-".into(), |m| format!("{:.0}", m.value())),
            paper.map_or("-".into(), |m| format!("{:.0}", m.value())),
            match (computed, paper) {
                (Some(c), Some(p)) => format!("{:+.0}", c.value() - p.value()),
                _ => "-".into(),
            },
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "paper sequence: 1250 1450 1600 1800 1950 2100 2250 2400 2500 2650"
    );
    let _ = writeln!(
        out,
        "(n = 0 is the model's own bound; the paper's 500 m reference is the"
    );
    let _ = writeln!(out, "real-world deployment value, not a model output)");
    out
}

/// Renders the fixed-seed Poisson-timetable statistics (`simulate
/// --stats` and the `poisson_stats` golden file): the event-driven
/// simulator replays 20 seeded Poisson days through the paper's 10-node
/// segment and pins the mean and variance of the daily service-repeater
/// energy against the deterministic closed-form value.
pub fn poisson_stats() -> String {
    const SEEDS: u64 = 20;
    let analytic = experiments::headline_numbers(&scenario())
        .repeater_daily_energy
        .value();

    let mut out = String::from(
        "Poisson timetable sensitivity — event-driven corridor simulator\n\n\
         model: Poisson arrivals, mean 8 trains/h over a 19 h service window\n\
         segment: 10 service repeaters at ISD 2650 m, instant wake policy\n\
         metric: mean daily energy of one service repeater (sleep strategy)\n\n",
    );
    let mut table = TextTable::new(vec![
        "seed".into(),
        "trains".into(),
        "powered [s]".into(),
        "energy [Wh/day]".into(),
    ]);
    let mut energies = Vec::with_capacity(SEEDS as usize);
    let mut trains_total = 0usize;
    for seed in 1..=SEEDS {
        let day = crate::poisson_service_day(seed);
        table.add_row(vec![
            seed.to_string(),
            day.trains.to_string(),
            format!("{:.1}", day.powered_s),
            format!("{:.3}", day.energy_wh),
        ]);
        energies.push(day.energy_wh);
        trains_total += day.trains;
    }
    let _ = writeln!(out, "{}", table.render());

    let n = energies.len() as f64;
    let mean = energies.iter().sum::<f64>() / n;
    let variance = energies
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / n;
    let _ = writeln!(out, "runs: {SEEDS}");
    let _ = writeln!(
        out,
        "mean trains/day: {:.1} (rate: 152)",
        trains_total as f64 / n
    );
    let _ = writeln!(
        out,
        "mean energy: {mean:.3} Wh/day (deterministic closed form: {analytic:.3})"
    );
    let _ = writeln!(
        out,
        "deviation from closed form: {:+.3} %",
        (mean / analytic - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "variance: {variance:.4} Wh^2  std dev: {:.4} Wh",
        variance.sqrt()
    );
    out
}

/// Renders the Monte-Carlo smoke report (`mc --smoke` and the
/// `mc_smoke` golden file): a 3-cell timetable-density grid × 10 Poisson
/// replications, master seed 42, folded to per-cell statistics. Small
/// enough for CI, but it exercises the whole replication pipeline —
/// seed-splitting, the reused per-cell simulators, the Welford fold and
/// the deterministic CSV writer.
pub fn mc_smoke() -> String {
    use corridor_sim::{McEngine, McMetric, ReplicationPlan, ScenarioGrid};

    let grid = ScenarioGrid::smoke_3();
    let plan = ReplicationPlan::new(10);
    let report = McEngine::new()
        .workers(1)
        .run(&grid, &plan)
        .expect("smoke grid is valid");

    let mut out = String::from(
        "Monte-Carlo smoke sweep — event-driven replications with CIs\n\n\
         grid: 3 timetable densities (4/8/12 trains/h), paper 10-node segment\n\
         plan: 10 Poisson replications per cell, master seed 42\n\n",
    );
    let mut table = TextTable::new(vec![
        "cell".into(),
        "trains/h".into(),
        "passes".into(),
        "sleep [Wh/h/km]".into(),
        "saving [%]".into(),
        "repeater [Wh/day]".into(),
        "ci95 [Wh/day]".into(),
    ]);
    for r in report.results() {
        let passes = r.stats(McMetric::Passes);
        let sleep = r.stats(McMetric::SleepWhKm);
        let saving = r.stats(McMetric::SavingSleepPct);
        let repeater = r.stats(McMetric::RepeaterWhDay);
        table.add_row(vec![
            r.cell().index().to_string(),
            format!("{}", r.cell().trains_per_hour()),
            format!("{:.1}", passes.mean),
            format!("{:.3}", sleep.mean),
            format!("{:.2}", saving.mean),
            format!("{:.3}", repeater.mean),
            format!("{:.3}", repeater.ci95),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "csv:");
    out.push_str(&report.to_csv());
    out
}

/// Renders the deployment-optimizer smoke search (the committed
/// `optimize_smoke` golden file): the 3-cell timetable-density grid
/// searched against the model grid (counts 0–10, 50 m ISD steps,
/// instant wake policy), reduced to per-cell Pareto frontiers. Small
/// enough for CI, but it exercises the whole optimizer pipeline — the
/// shared coverage cache, the cached max-ISD binary search, the
/// analytic energy backend and the deterministic writers — and pins the
/// cache counters (deterministic across worker counts by design).
pub fn optimize_smoke() -> String {
    use corridor_core::units::Meters;
    use corridor_sim::{DeploymentOptimizer, IsdSearch, ScenarioGrid, SearchSpace};

    let space = SearchSpace::new()
        .sample_step(Meters::new(10.0))
        .isd_search(IsdSearch::model_paper_grid());
    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(&ScenarioGrid::smoke_3(), &space)
        .expect("smoke grid is valid");

    let mut out = String::from(
        "Deployment optimizer smoke search — Pareto frontier per cell\n\n\
         grid: 3 timetable densities (4/8/12 trains/h), paper link budget\n\
         space: 0-10 repeater nodes, model-grid max ISD (50 m steps), instant wake\n\
         objectives: energy/day/km (min), nodes/km (min), coverage margin (max)\n\n",
    );
    let mut table = TextTable::new(vec![
        "cell".into(),
        "trains/h".into(),
        "nodes".into(),
        "ISD [m]".into(),
        "energy [Wh/day/km]".into(),
        "nodes/km".into(),
        "margin [dB]".into(),
        "saving [%]".into(),
    ]);
    for r in report.results() {
        for p in r.frontier() {
            table.add_row(vec![
                r.cell().index().to_string(),
                format!("{}", r.cell().trains_per_hour()),
                p.nodes.to_string(),
                format!("{:.0}", p.isd.value()),
                format!("{:.1}", p.energy_wh_day_km),
                format!("{:.3}", p.nodes_per_km),
                format!("{:.3}", p.margin_db),
                format!("{:.2}", p.saving_sleep_pct),
            ]);
        }
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "candidates: {} evaluated, {} on the frontiers",
        report.candidates_evaluated(),
        report.frontier_points()
    );
    let _ = writeln!(
        out,
        "coverage cache: {} lookups, {} profiles sampled ({:.0} % hit rate)",
        report.coverage_lookups(),
        report.profile_evaluations(),
        report.cache_hit_rate() * 100.0
    );
    let _ = writeln!(out, "csv:");
    out.push_str(&report.to_csv());
    out
}

/// Renders the network-optimizer smoke run (the committed
/// `network_smoke` golden file): the `wye3` junction — three corridor
/// legs at 4/8/12 trains/h meeting at a hub, the 8 tph leg
/// double-tracked — searched at the paper-table anchors and folded
/// through the demand-aware sleep scheduler. Small enough for CI, but
/// it exercises the whole network pipeline: the graph model, the shared
/// per-edge Pareto search, the greedy boundary-repeater schedule and
/// the deterministic frontier/schedule writers.
pub fn network_smoke() -> String {
    use corridor_core::units::Meters;
    use corridor_sim::{CorridorNetwork, NetworkOptimizer, SearchSpace};

    let net = CorridorNetwork::by_name("wye3").expect("wye3 is a named topology");
    let space = SearchSpace::new().sample_step(Meters::new(10.0));
    let report = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &space)
        .expect("wye3 is a valid network");

    let mut out = String::from(
        "Network optimizer smoke run — demand-aware sleep at a junction\n\n\
         topology: wye3 (three legs at 4/8/12 trains/h sharing a hub; the\n\
         8 tph leg is double track, so 16 tph of demand crosses the hub)\n\
         space: 0-10 repeater nodes at the paper-table ISDs, instant wake\n\
         schedule: greedy minimum-active-set over hub boundary repeaters\n\n",
    );
    let mut table = TextTable::new(vec![
        "edge".into(),
        "name".into(),
        "demand [t/h]".into(),
        "pick".into(),
        "ISD [m]".into(),
        "energy [Wh/day/km]".into(),
        "margin [dB]".into(),
    ]);
    for (e, pick) in report.picks().iter().enumerate() {
        let edge = report.network().edge(e);
        match pick {
            Some(p) => table.add_row(vec![
                e.to_string(),
                report.network().edge_name(e).to_owned(),
                format!("{}", edge.demand_tph()),
                format!("{} nodes", p.nodes),
                format!("{:.0}", p.isd.value()),
                format!("{:.1}", p.energy_wh_day_km),
                format!("{:.3}", p.margin_db),
            ]),
            None => table.add_row(vec![
                e.to_string(),
                report.network().edge_name(e).to_owned(),
                format!("{}", edge.demand_tph()),
                "unsolvable".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "sleep schedule: {} boundary repeater(s) sleep, {:.3} Wh/day net saving",
        report.plan().len(),
        report.sleep_saving_wh_day()
    );
    let _ = writeln!(
        out,
        "totals: per-corridor {:.3} Wh/day -> network {:.3} Wh/day",
        report.corridor_wh_day(),
        report.network_wh_day()
    );
    let _ = writeln!(out, "schedule:");
    out.push_str(&report.schedule_csv());
    let _ = writeln!(out, "csv:");
    out.push_str(&report.frontier_csv());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_stats_is_deterministic_and_close_to_analytic() {
        let a = poisson_stats();
        let b = poisson_stats();
        assert_eq!(a, b);
        assert!(a.contains("runs: 20"));
        // the mean sits within a percent of the closed form
        let line = a
            .lines()
            .find(|l| l.starts_with("deviation"))
            .expect("deviation line");
        let pct: f64 = line
            .split_whitespace()
            .nth(4)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct.abs() < 1.0, "{line}");
    }

    #[test]
    fn network_smoke_is_deterministic_and_well_formed() {
        let a = network_smoke();
        assert_eq!(a, network_smoke());
        assert!(a.contains("wye3"));
        assert!(a.contains("sleep schedule"));
        // the double-tracked 8 tph leg crosses the hub at 16 tph
        assert!(a.contains("16"));
        let schedule_lines = a
            .lines()
            .skip_while(|l| *l != "schedule:")
            .skip(1)
            .take_while(|l| *l != "csv:")
            .filter(|l| !l.is_empty())
            .count();
        assert!(schedule_lines >= 2, "header plus at least one decision");
        let csv_lines = a
            .lines()
            .skip_while(|l| *l != "csv:")
            .skip(1)
            .filter(|l| !l.is_empty())
            .count();
        assert_eq!(csv_lines, 34); // header + 3 edges x 11 frontier rows
    }

    #[test]
    fn optimize_smoke_is_deterministic_and_well_formed() {
        let a = optimize_smoke();
        assert_eq!(a, optimize_smoke());
        assert!(a.contains("model-grid"));
        assert!(a.contains("hit rate"));
        // three cells x eleven solvable counts land on the frontiers
        assert!(a.contains("33 on the frontiers"), "{a}");
        let csv_lines = a
            .lines()
            .skip_while(|l| *l != "csv:")
            .skip(1)
            .filter(|l| !l.is_empty())
            .count();
        assert_eq!(csv_lines, 34); // header + 33 frontier rows
    }

    #[test]
    fn mc_smoke_is_deterministic_and_well_formed() {
        let a = mc_smoke();
        assert_eq!(a, mc_smoke());
        assert!(a.contains("10 Poisson replications"));
        // three data rows in the CSV tail (header + 3 cells)
        let csv_lines = a
            .lines()
            .skip_while(|l| *l != "csv:")
            .skip(1)
            .filter(|l| !l.is_empty())
            .count();
        assert_eq!(csv_lines, 4);
    }

    #[test]
    fn every_renderer_ends_with_a_newline() {
        for (name, text) in [
            ("headline", headline()),
            ("table1", table1()),
            ("table2", table2()),
            ("table3", table3()),
            ("table4", table4()),
        ] {
            assert!(text.ends_with('\n'), "{name}");
            assert!(!text.is_empty(), "{name}");
        }
    }

    #[test]
    fn headline_contains_the_reproduced_savings() {
        let text = headline();
        assert!(text.contains("74.0 %"));
        assert!(text.contains("79.3 %"));
    }
}
