//! Corridor layout, repeater placement and maximum-ISD optimization.
//!
//! This crate turns the link-budget machinery of [`corridor_link`] into the
//! paper's deployment question (Section V): *how far apart can the
//! high-power masts be pushed for a given number of low-power repeater
//! nodes, without losing peak 5G NR throughput anywhere on the track?*
//!
//! * [`LinkBudget`] — all RF parameters of a corridor deployment in one
//!   place, with the paper's values as defaults;
//! * [`PlacementPolicy`] — where the repeater nodes go between two masts
//!   (fixed 200 m spacing per Table III, evenly spread, or custom);
//! * [`CorridorLayout`] — one inter-site segment: two HP masts plus
//!   repeaters, convertible to an [`SnrModel`](corridor_link::SnrModel);
//! * [`CoverageCriterion`] — what "maintaining capacity" means (the paper:
//!   SNR ≥ 29 dB everywhere ⇒ peak throughput);
//! * [`IsdOptimizer`] — the 50 m-step sweep producing an [`IsdTable`]
//!   (maximum ISD per repeater count), with [`IsdTable::paper`] carrying
//!   the published sequence;
//! * [`CoverageCache`] — memoized minimum-SNR profiling with
//!   lookup/evaluation counters, so layered searches (per scenario cell,
//!   per wake policy) sample each `(layout, budget)` pair exactly once;
//! * [`SegmentInventory`] — node counts (service + donor repeaters, masts)
//!   per segment and per kilometre.
//!
//! # Examples
//!
//! ```
//! use corridor_deploy::{CorridorLayout, LinkBudget, PlacementPolicy};
//! use corridor_units::Meters;
//!
//! let budget = LinkBudget::paper_default();
//! let layout = CorridorLayout::with_policy(
//!     Meters::new(2400.0),
//!     8,
//!     &PlacementPolicy::paper_default(),
//! )?;
//! let profile = layout.coverage_profile(&budget, Meters::new(10.0));
//! assert!(profile.min_snr().unwrap().value() > 25.0);
//! # Ok::<(), corridor_deploy::PlacementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cache;
mod corridor;
mod criteria;
mod inventory;
mod layout;
mod placement;
mod search;
mod sweep;
mod table;

pub use budget::LinkBudget;
pub use cache::CoverageCache;
pub use corridor::Corridor;
pub use criteria::CoverageCriterion;
pub use inventory::SegmentInventory;
pub use layout::CorridorLayout;
pub use placement::{PlacementError, PlacementPolicy};
pub use sweep::IsdOptimizer;
pub use table::IsdTable;
