//! Link-budget parameters of a corridor deployment.

use corridor_link::{NrCarrier, ThroughputModel};
use corridor_propagation::CalibratedFriis;
use corridor_units::{Db, Dbm, Hertz};

/// Every RF parameter of a corridor deployment, with the paper's values as
/// defaults (Sections III-A and V):
///
/// | parameter | paper value |
/// |---|---|
/// | carrier | 100 MHz NR, 3300 subcarriers |
/// | HP EIRP | 64 dBm (2500 W) |
/// | LP EIRP | 40 dBm (10 W) |
/// | HP calibration | 33 dB |
/// | LP calibration | 20 dB |
/// | noise floor | −132 dBm/subcarrier |
/// | terminal NF | 5 dB |
/// | repeater NF | 8 dB |
///
/// The carrier frequency is not stated in the paper ("sub-6 GHz"); the
/// default of 3.5 GHz (band n78) is the value for which the model
/// reproduces the paper's published maximum-ISD anchors exactly for one to
/// four nodes (1250, 1450, 1600, 1800 m) and within ~13 % beyond.
///
/// # Examples
///
/// ```
/// use corridor_deploy::LinkBudget;
/// let budget = LinkBudget::paper_default();
/// assert!((budget.hp_rstp().value() - 28.81).abs() < 0.01);
/// assert!((budget.lp_rstp().value() - 4.81).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkBudget {
    frequency: Hertz,
    carrier: NrCarrier,
    hp_eirp: Dbm,
    lp_eirp: Dbm,
    hp_calibration: Db,
    lp_calibration: Db,
    noise_floor: Dbm,
    terminal_noise_figure: Db,
    repeater_noise_figure: Db,
    throughput: ThroughputModel,
}

impl LinkBudget {
    /// The paper's parameters (see the type-level table).
    pub fn paper_default() -> Self {
        LinkBudget {
            frequency: Hertz::from_ghz(3.5),
            carrier: NrCarrier::paper_100mhz(),
            hp_eirp: Dbm::new(64.0),
            lp_eirp: Dbm::new(40.0),
            hp_calibration: Db::new(33.0),
            lp_calibration: Db::new(20.0),
            noise_floor: Dbm::new(-132.0),
            terminal_noise_figure: Db::new(5.0),
            repeater_noise_figure: Db::new(8.0),
            throughput: ThroughputModel::nr_default(),
        }
    }

    /// Overrides the carrier frequency.
    #[must_use]
    pub fn with_frequency(mut self, frequency: Hertz) -> Self {
        self.frequency = frequency;
        self
    }

    /// Overrides the NR carrier.
    #[must_use]
    pub fn with_carrier(mut self, carrier: NrCarrier) -> Self {
        self.carrier = carrier;
        self
    }

    /// Overrides the high-power EIRP.
    #[must_use]
    pub fn with_hp_eirp(mut self, eirp: Dbm) -> Self {
        self.hp_eirp = eirp;
        self
    }

    /// Overrides the low-power (repeater) EIRP.
    #[must_use]
    pub fn with_lp_eirp(mut self, eirp: Dbm) -> Self {
        self.lp_eirp = eirp;
        self
    }

    /// Overrides both calibration factors.
    #[must_use]
    pub fn with_calibrations(mut self, hp: Db, lp: Db) -> Self {
        self.hp_calibration = hp;
        self.lp_calibration = lp;
        self
    }

    /// Overrides the noise floor.
    #[must_use]
    pub fn with_noise_floor(mut self, floor: Dbm) -> Self {
        self.noise_floor = floor;
        self
    }

    /// Overrides the repeater noise figure.
    #[must_use]
    pub fn with_repeater_noise_figure(mut self, nf: Db) -> Self {
        self.repeater_noise_figure = nf;
        self
    }

    /// Overrides the throughput model.
    #[must_use]
    pub fn with_throughput(mut self, throughput: ThroughputModel) -> Self {
        self.throughput = throughput;
        self
    }

    /// Carrier frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// NR carrier.
    pub fn carrier(&self) -> &NrCarrier {
        &self.carrier
    }

    /// High-power EIRP (total over the carrier).
    pub fn hp_eirp(&self) -> Dbm {
        self.hp_eirp
    }

    /// Low-power EIRP (total over the carrier).
    pub fn lp_eirp(&self) -> Dbm {
        self.lp_eirp
    }

    /// HP calibration factor `L_HP,calib`.
    pub fn hp_calibration(&self) -> Db {
        self.hp_calibration
    }

    /// LP calibration factor `L_LP,calib`.
    pub fn lp_calibration(&self) -> Db {
        self.lp_calibration
    }

    /// Per-subcarrier noise floor `N_RSRP`.
    pub fn noise_floor(&self) -> Dbm {
        self.noise_floor
    }

    /// Terminal noise figure `NF_MT`.
    pub fn terminal_noise_figure(&self) -> Db {
        self.terminal_noise_figure
    }

    /// Repeater noise figure `NF_LP`.
    pub fn repeater_noise_figure(&self) -> Db {
        self.repeater_noise_figure
    }

    /// Throughput model.
    pub fn throughput(&self) -> &ThroughputModel {
        &self.throughput
    }

    /// Per-subcarrier RSTP of a high-power RRH.
    pub fn hp_rstp(&self) -> Dbm {
        self.carrier.per_subcarrier(self.hp_eirp)
    }

    /// Per-subcarrier RSTP of a low-power repeater.
    pub fn lp_rstp(&self) -> Dbm {
        self.carrier.per_subcarrier(self.lp_eirp)
    }

    /// The calibrated path-loss model of the high-power link.
    pub fn hp_path_loss(&self) -> CalibratedFriis {
        CalibratedFriis::new(self.frequency, self.hp_calibration)
    }

    /// The calibrated path-loss model of the low-power link.
    pub fn lp_path_loss(&self) -> CalibratedFriis {
        CalibratedFriis::new(self.frequency, self.lp_calibration)
    }

    /// Noise re-emitted at a repeater's transmit port per the paper's
    /// eq. (2): `N_RSRP · NF_LP`.
    pub fn repeater_emitted_noise(&self) -> Dbm {
        self.noise_floor + self.repeater_noise_figure
    }
}

impl Default for LinkBudget {
    /// Returns [`LinkBudget::paper_default`].
    fn default() -> Self {
        LinkBudget::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rstps() {
        let b = LinkBudget::paper_default();
        assert!((b.hp_rstp().value() - 28.81).abs() < 0.01);
        assert!((b.lp_rstp().value() - 4.81).abs() < 0.01);
    }

    #[test]
    fn repeater_noise_value() {
        let b = LinkBudget::paper_default();
        assert_eq!(b.repeater_emitted_noise(), Dbm::new(-124.0));
    }

    #[test]
    fn builders_override() {
        let b = LinkBudget::paper_default()
            .with_frequency(Hertz::from_ghz(2.1))
            .with_hp_eirp(Dbm::new(60.0))
            .with_lp_eirp(Dbm::new(36.0))
            .with_calibrations(Db::new(30.0), Db::new(18.0))
            .with_noise_floor(Dbm::new(-129.0))
            .with_repeater_noise_figure(Db::new(6.0));
        assert_eq!(b.frequency(), Hertz::from_ghz(2.1));
        assert_eq!(b.hp_eirp(), Dbm::new(60.0));
        assert_eq!(b.lp_eirp(), Dbm::new(36.0));
        assert_eq!(b.hp_calibration(), Db::new(30.0));
        assert_eq!(b.lp_calibration(), Db::new(18.0));
        assert_eq!(b.noise_floor(), Dbm::new(-129.0));
        assert_eq!(b.repeater_noise_figure(), Db::new(6.0));
        assert_eq!(b.hp_path_loss().frequency(), Hertz::from_ghz(2.1));
        assert_eq!(b.lp_path_loss().calibration(), Db::new(18.0));
    }

    #[test]
    fn hp_model_stronger_than_lp_model() {
        // HP has 13 dB more calibration loss but 24 dB more EIRP: net the
        // HP link reaches farther.
        let b = LinkBudget::paper_default();
        let d = corridor_units::Meters::new(300.0);
        use corridor_propagation::PathLoss;
        let hp_rsrp = b.hp_rstp() - b.hp_path_loss().attenuation(d);
        let lp_rsrp = b.lp_rstp() - b.lp_path_loss().attenuation(d);
        assert!(hp_rsrp.value() > lp_rsrp.value());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LinkBudget::default(), LinkBudget::paper_default());
    }
}
