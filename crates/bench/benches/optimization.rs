//! Criterion benches for the maximum-ISD optimizer, plus the placement
//! and criterion ablations called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}
use std::hint::black_box;

use corridor_core::prelude::*;

fn optimizer() -> IsdOptimizer {
    IsdOptimizer::new(LinkBudget::paper_default()).with_sample_step(Meters::new(10.0))
}

fn bench_max_isd(c: &mut Criterion) {
    let opt = optimizer();
    let mut group = c.benchmark_group("max_isd");
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| opt.max_isd(black_box(n)))
        });
    }
    group.finish();
}

/// Ablation: placement policy. Prints the resulting ISD tables so the
/// bench log doubles as the ablation record.
fn bench_ablation_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_placement");
    for (label, policy) in [
        ("fixed_200m", PlacementPolicy::paper_default()),
        ("evenly_spaced", PlacementPolicy::EvenlySpaced),
    ] {
        let opt = optimizer().with_placement(policy.clone());
        let table = opt.sweep(8);
        println!("placement ablation [{label}]: {}", summary(&table));
        group.bench_function(BenchmarkId::new("sweep8", label), |b| {
            b.iter(|| opt.max_isd(black_box(8)))
        });
    }
    group.finish();
}

/// Ablation: coverage criterion (29 dB paper threshold vs the exact
/// 29.3 dB cap vs the train-windowed average).
fn bench_ablation_criterion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_criterion");
    let criteria = [
        ("min_snr_29db", CoverageCriterion::paper_default()),
        ("peak_everywhere", CoverageCriterion::PeakEverywhere),
        (
            "train_windowed",
            CoverageCriterion::TrainWindowed {
                window: Meters::new(400.0),
                min_se: 5.84,
            },
        ),
    ];
    for (label, criterion) in criteria {
        let opt = optimizer().with_criterion(criterion);
        let table = opt.sweep(8);
        println!("criterion ablation [{label}]: {}", summary(&table));
        group.bench_function(BenchmarkId::new("sweep8", label), |b| {
            b.iter(|| opt.max_isd(black_box(8)))
        });
    }
    group.finish();
}

fn summary(table: &IsdTable) -> String {
    let entries: Vec<String> = table
        .iter()
        .map(|(n, isd)| format!("{n}:{:.0}", isd.value()))
        .collect();
    entries.join(" ")
}

criterion_group! {
    name = benches;
    config = short_config();
    targets =
    bench_max_isd,
    bench_ablation_placement,
    bench_ablation_criterion
}
criterion_main!(benches);
