//! Criterion benches for the link-budget hot path: SNR evaluation and
//! coverage-profile sampling (the inner loop of the ISD sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}
use std::hint::black_box;

use corridor_core::prelude::*;

fn bench_snr_point(c: &mut Criterion) {
    let layout =
        CorridorLayout::with_policy(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
            .unwrap();
    let model = layout.snr_model(&LinkBudget::paper_default());
    c.bench_function("snr_at/fig3_scenario", |b| {
        b.iter(|| model.snr_at(black_box(Meters::new(777.0))))
    });
}

fn bench_profile(c: &mut Criterion) {
    let budget = LinkBudget::paper_default();
    let mut group = c.benchmark_group("coverage_profile");
    for n in [0usize, 4, 8] {
        let isd = Meters::new(2400.0);
        let layout = if n == 0 {
            CorridorLayout::conventional(isd)
        } else {
            CorridorLayout::with_policy(isd, n, &PlacementPolicy::paper_default()).unwrap()
        };
        group.bench_with_input(BenchmarkId::new("sample_5m", n), &layout, |b, layout| {
            b.iter(|| layout.coverage_profile(black_box(&budget), Meters::new(5.0)))
        });
    }
    group.finish();
}

fn bench_throughput_model(c: &mut Criterion) {
    let thr = ThroughputModel::nr_default();
    c.bench_function("throughput/spectral_efficiency", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for snr in -100..600 {
                acc += thr.spectral_efficiency(black_box(Db::new(f64::from(snr) / 10.0)));
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_snr_point, bench_profile, bench_throughput_model
}
criterion_main!(benches);
