//! Component-level power bill of the low-power repeater prototype
//! (paper Table I).

use core::fmt;

use corridor_units::Watts;

/// The signal path a component belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentRole {
    /// Shared infrastructure (controller, clocking, LO distribution).
    Common,
    /// Downlink amplification chain.
    Downlink,
    /// Uplink amplification chain.
    Uplink,
}

impl fmt::Display for ComponentRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentRole::Common => "common",
            ComponentRole::Downlink => "DL",
            ComponentRole::Uplink => "UL",
        };
        f.write_str(s)
    }
}

/// One row of the repeater's power bill.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RepeaterComponent {
    /// Component name as listed in Table I.
    pub name: &'static str,
    /// Which chain the component belongs to.
    pub role: ComponentRole,
    /// Power draw while the repeater is operating.
    pub active: Watts,
    /// Power draw in sleep mode.
    pub sleep: Watts,
}

/// The full component bill of the prototype repeater node.
///
/// Reproduces paper Table I. Common components are instantiated once; the
/// DL and UL chains exist once per signal path (two paths in the
/// prototype: one per direction along the track).
///
/// The paper's stated full-load total (28.38 W) is smaller than the naive
/// `common + paths·(DL + UL)` sum of the printed rows (31.90 W) — the
/// prototype does not run every amplifier at its maximum simultaneously.
/// [`RepeaterBill::paper_full_load_total`] preserves the published number;
/// [`RepeaterBill::naive_active_total`] exposes the arithmetic sum. The
/// sleep-mode column is internally consistent:
/// `2 + 2.22 + 0.5 = 4.72 W`.
///
/// # Examples
///
/// ```
/// use corridor_power::RepeaterBill;
/// let bill = RepeaterBill::prototype();
/// assert!((bill.sleep_total().value() - 4.72).abs() < 1e-9);
/// assert_eq!(bill.paper_full_load_total().value(), 28.38);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RepeaterBill {
    components: Vec<RepeaterComponent>,
    dl_paths: u32,
    ul_paths: u32,
}

impl RepeaterBill {
    /// The prototype's bill exactly as printed in paper Table I.
    pub fn prototype() -> Self {
        use ComponentRole::{Common, Downlink, Uplink};
        let w = Watts::new;
        let components = vec![
            RepeaterComponent {
                name: "Controller",
                role: Common,
                active: w(2.0),
                sleep: w(2.0),
            },
            RepeaterComponent {
                name: "GNSS DOCXO",
                role: Common,
                active: w(2.22),
                sleep: w(2.22),
            },
            RepeaterComponent {
                name: "Local Oscillator",
                role: Common,
                active: w(5.0),
                sleep: w(0.5),
            },
            RepeaterComponent {
                name: "Frequency Doubler",
                role: Common,
                active: w(0.35),
                sleep: w(0.0),
            },
            RepeaterComponent {
                name: "RF Switches",
                role: Common,
                active: w(0.195),
                sleep: w(0.0),
            },
            RepeaterComponent {
                name: "RX LNA",
                role: Downlink,
                active: w(0.27),
                sleep: w(0.0),
            },
            RepeaterComponent {
                name: "TX PA",
                role: Downlink,
                active: w(5.0),
                sleep: w(0.0),
            },
            RepeaterComponent {
                name: "RX LNA",
                role: Uplink,
                active: w(0.462),
                sleep: w(0.0),
            },
            RepeaterComponent {
                name: "Second RX LNA",
                role: Uplink,
                active: w(0.335),
                sleep: w(0.0),
            },
            RepeaterComponent {
                name: "TX PA",
                role: Uplink,
                active: w(5.0),
                sleep: w(0.0),
            },
        ];
        RepeaterBill {
            components,
            dl_paths: 2,
            ul_paths: 2,
        }
    }

    /// All components.
    pub fn components(&self) -> &[RepeaterComponent] {
        &self.components
    }

    /// Components filtered by role.
    pub fn components_with_role(
        &self,
        role: ComponentRole,
    ) -> impl Iterator<Item = &RepeaterComponent> {
        self.components.iter().filter(move |c| c.role == role)
    }

    /// Number of downlink signal paths.
    pub fn dl_paths(&self) -> u32 {
        self.dl_paths
    }

    /// Number of uplink signal paths.
    pub fn ul_paths(&self) -> u32 {
        self.ul_paths
    }

    fn role_total(&self, role: ComponentRole, active: bool) -> Watts {
        self.components_with_role(role)
            .map(|c| if active { c.active } else { c.sleep })
            .sum()
    }

    /// Active power of the common chain (single instance).
    pub fn common_active(&self) -> Watts {
        self.role_total(ComponentRole::Common, true)
    }

    /// Active power of one downlink chain.
    pub fn dl_active_per_path(&self) -> Watts {
        self.role_total(ComponentRole::Downlink, true)
    }

    /// Active power of one uplink chain.
    pub fn ul_active_per_path(&self) -> Watts {
        self.role_total(ComponentRole::Uplink, true)
    }

    /// Sleep-mode total: only the common chain stays partially powered.
    pub fn sleep_total(&self) -> Watts {
        self.role_total(ComponentRole::Common, false)
            + self.role_total(ComponentRole::Downlink, false) * f64::from(self.dl_paths)
            + self.role_total(ComponentRole::Uplink, false) * f64::from(self.ul_paths)
    }

    /// The arithmetic full-load sum `common + paths·(DL + UL)` of the
    /// printed rows: 31.90 W. See the type-level docs for why this differs
    /// from the paper's stated total.
    pub fn naive_active_total(&self) -> Watts {
        self.common_active()
            + self.dl_active_per_path() * f64::from(self.dl_paths)
            + self.ul_active_per_path() * f64::from(self.ul_paths)
    }

    /// The full-load total as published in Table I: 28.38 W.
    pub fn paper_full_load_total(&self) -> Watts {
        Watts::new(28.38)
    }
}

impl Default for RepeaterBill {
    /// Returns [`RepeaterBill::prototype`].
    fn default() -> Self {
        RepeaterBill::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_total_matches_table_i() {
        let bill = RepeaterBill::prototype();
        assert!((bill.sleep_total().value() - 4.72).abs() < 1e-9);
    }

    #[test]
    fn chain_subtotals() {
        let bill = RepeaterBill::prototype();
        assert!((bill.common_active().value() - 9.765).abs() < 1e-9);
        assert!((bill.dl_active_per_path().value() - 5.27).abs() < 1e-9);
        assert!((bill.ul_active_per_path().value() - 5.797).abs() < 1e-9);
    }

    #[test]
    fn naive_total_documented_discrepancy() {
        let bill = RepeaterBill::prototype();
        assert!((bill.naive_active_total().value() - 31.899).abs() < 1e-3);
        assert!(bill.naive_active_total() > bill.paper_full_load_total());
    }

    #[test]
    fn ten_rows_two_paths() {
        let bill = RepeaterBill::prototype();
        assert_eq!(bill.components().len(), 10);
        assert_eq!(bill.dl_paths(), 2);
        assert_eq!(bill.ul_paths(), 2);
        assert_eq!(bill.components_with_role(ComponentRole::Common).count(), 5);
        assert_eq!(
            bill.components_with_role(ComponentRole::Downlink).count(),
            2
        );
        assert_eq!(bill.components_with_role(ComponentRole::Uplink).count(), 3);
    }

    #[test]
    fn sleep_is_tiny_fraction_of_active() {
        let bill = RepeaterBill::prototype();
        let ratio = bill.sleep_total() / bill.paper_full_load_total();
        assert!(ratio < 0.17, "sleep/active = {ratio}");
    }

    #[test]
    fn default_and_display_roles() {
        assert_eq!(RepeaterBill::default(), RepeaterBill::prototype());
        assert_eq!(ComponentRole::Common.to_string(), "common");
        assert_eq!(ComponentRole::Downlink.to_string(), "DL");
        assert_eq!(ComponentRole::Uplink.to_string(), "UL");
    }
}
