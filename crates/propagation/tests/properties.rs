//! Property-based tests for path-loss model invariants.

use corridor_propagation::{
    AntennaPattern, CalibratedFriis, FreeSpace, LogDistance, PathLoss, TwoRayGround,
};
use corridor_units::{Db, Hertz, Meters};
use proptest::prelude::*;

fn freq() -> impl Strategy<Value = Hertz> {
    (0.7..30.0f64).prop_map(Hertz::from_ghz)
}

fn distance() -> impl Strategy<Value = Meters> {
    (0.0..20_000.0f64).prop_map(Meters::new)
}

proptest! {
    /// Free-space attenuation is non-negative and monotone in distance.
    #[test]
    fn free_space_monotone(f in freq(), d1 in distance(), d2 in distance()) {
        let model = FreeSpace::new(f);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.attenuation(far) >= model.attenuation(near));
        prop_assert!(model.attenuation(near).value() >= 0.0);
    }

    /// Attenuation increases with frequency at fixed distance.
    #[test]
    fn free_space_monotone_in_frequency(d in 10.0..10_000.0f64, f1 in 1.0..5.9f64, f2 in 1.0..5.9f64) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let near = FreeSpace::new(Hertz::from_ghz(lo));
        let far = FreeSpace::new(Hertz::from_ghz(hi));
        prop_assert!(far.attenuation(Meters::new(d)) >= near.attenuation(Meters::new(d)));
    }

    /// Calibration adds exactly its constant at any distance.
    #[test]
    fn calibration_is_constant_offset(f in freq(), d in distance(), c in 0.0..60.0f64) {
        let base = FreeSpace::new(f);
        let calib = CalibratedFriis::new(f, Db::new(c));
        let delta = calib.attenuation(d) - base.attenuation(d);
        prop_assert!((delta.value() - c).abs() < 1e-9);
    }

    /// Log-distance with n = 2 coincides with free space everywhere.
    #[test]
    fn log_distance_reduces_to_friis(f in freq(), d in distance()) {
        let ld = LogDistance::new(f, 2.0);
        let fs = FreeSpace::new(f);
        let a = ld.attenuation(d).value();
        let b = fs.attenuation(d).value();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Log-distance attenuation is monotone in the exponent beyond d0.
    #[test]
    fn log_distance_monotone_in_exponent(f in freq(), d in 2.0..10_000.0f64, n1 in 1.5..4.0f64, n2 in 1.5..4.0f64) {
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let a = LogDistance::new(f, lo).attenuation(Meters::new(d));
        let b = LogDistance::new(f, hi).attenuation(Meters::new(d));
        prop_assert!(b >= a);
    }

    /// Two-ray never predicts less loss than free space.
    #[test]
    fn two_ray_at_least_free_space(f in freq(), d in distance(), ht in 5.0..40.0f64, hr in 1.0..5.0f64) {
        let tr = TwoRayGround::new(f, Meters::new(ht), Meters::new(hr));
        let fs = FreeSpace::new(f);
        prop_assert!(tr.attenuation(d).value() >= fs.attenuation(d).value() - 1e-9);
    }

    /// Two-ray attenuation is monotone in distance.
    #[test]
    fn two_ray_monotone(f in freq(), d1 in distance(), d2 in distance()) {
        let tr = TwoRayGround::new(f, Meters::new(15.0), Meters::new(3.0));
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(tr.attenuation(far) >= tr.attenuation(near));
    }

    /// Antenna gain never exceeds boresight and never drops below the
    /// front-to-back floor.
    #[test]
    fn antenna_gain_bounded(g0 in 0.0..30.0f64, bw in 1.0..120.0f64, angle in -360.0..360.0f64) {
        let p = AntennaPattern::pencil_beam(Db::new(g0), bw);
        let g = p.gain_at(angle);
        prop_assert!(g <= Db::new(g0));
        prop_assert!(g >= Db::new(g0 - 25.0) - Db::new(1e-9));
    }

    /// Pattern is symmetric in the off-axis angle.
    #[test]
    fn antenna_gain_symmetric(g0 in 0.0..30.0f64, bw in 1.0..120.0f64, angle in 0.0..360.0f64) {
        let p = AntennaPattern::pencil_beam(Db::new(g0), bw);
        prop_assert_eq!(p.gain_at(angle), p.gain_at(-angle));
    }
}
