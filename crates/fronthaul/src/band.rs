//! mmWave band presets.

use core::fmt;

use corridor_units::{Db, Dbm, Hertz};

/// A millimetre-wave band usable for the donor fronthaul.
///
/// The two practically relevant choices for unlicensed/lightly-licensed
/// fixed links:
///
/// * **V-band (57–66 GHz)** — unlicensed in most of Europe, but sits on
///   the 60 GHz oxygen absorption peak (~15 dB/km extra), which limits
///   hops to a few hundred metres — exactly the repeater spacing regime;
/// * **E-band (71–76 / 81–86 GHz)** — light-licensed, no oxygen peak,
///   longer reach, higher EIRP allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MmWaveBand {
    name: &'static str,
    frequency: Hertz,
    max_eirp: Dbm,
    oxygen_db_per_km: Db,
}

impl MmWaveBand {
    /// V-band at 60 GHz: 40 dBm EIRP limit (ETSI), ~15 dB/km oxygen
    /// absorption.
    pub fn v_band_60ghz() -> Self {
        MmWaveBand {
            name: "V-band 60 GHz",
            frequency: Hertz::from_ghz(60.0),
            max_eirp: Dbm::new(40.0),
            oxygen_db_per_km: Db::new(15.0),
        }
    }

    /// E-band at 80 GHz: 55 dBm EIRP allowance, negligible oxygen
    /// absorption (~0.4 dB/km).
    pub fn e_band_80ghz() -> Self {
        MmWaveBand {
            name: "E-band 80 GHz",
            frequency: Hertz::from_ghz(80.0),
            max_eirp: Dbm::new(55.0),
            oxygen_db_per_km: Db::new(0.4),
        }
    }

    /// A custom band.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not in the mmWave range (24–300 GHz).
    pub fn new(name: &'static str, frequency: Hertz, max_eirp: Dbm, oxygen_db_per_km: Db) -> Self {
        assert!(
            (24.0..=300.0).contains(&frequency.gigahertz()),
            "not a mmWave frequency"
        );
        MmWaveBand {
            name,
            frequency,
            max_eirp,
            oxygen_db_per_km,
        }
    }

    /// Band name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Carrier frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Regulatory EIRP ceiling.
    pub fn max_eirp(&self) -> Dbm {
        self.max_eirp
    }

    /// Oxygen (gaseous) specific attenuation.
    pub fn oxygen_db_per_km(&self) -> Db {
        self.oxygen_db_per_km
    }
}

impl fmt::Display for MmWaveBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let v = MmWaveBand::v_band_60ghz();
        assert_eq!(v.frequency(), Hertz::from_ghz(60.0));
        assert_eq!(v.max_eirp(), Dbm::new(40.0));
        let e = MmWaveBand::e_band_80ghz();
        assert!(e.oxygen_db_per_km() < v.oxygen_db_per_km());
        assert!(e.max_eirp() > v.max_eirp());
    }

    #[test]
    fn display() {
        assert_eq!(MmWaveBand::v_band_60ghz().to_string(), "V-band 60 GHz");
    }

    #[test]
    #[should_panic(expected = "not a mmWave")]
    fn sub6_rejected() {
        let _ = MmWaveBand::new("bad", Hertz::from_ghz(3.5), Dbm::new(40.0), Db::ZERO);
    }
}
