//! Integration tests for the public `WeatherGenerator` API: edge inputs,
//! bounds, seeding and statistical shape.

use corridor_solar::{climate, WeatherGenerator};

#[test]
fn year_has_365_days_for_every_paper_region() {
    for location in climate::paper_regions() {
        let mut weather = WeatherGenerator::new(location, 1);
        assert_eq!(weather.daily_multipliers_for_year().len(), 365);
    }
}

#[test]
fn zero_variability_degenerates_to_normals() {
    let mut weather = WeatherGenerator::new(climate::berlin(), 99).with_variability(0.0);
    assert!(weather
        .daily_multipliers_for_year()
        .iter()
        .all(|&m| m == 1.0));
}

#[test]
fn multipliers_respect_the_documented_bounds_even_at_extreme_variability() {
    for variability in [0.1, 1.0, 5.0, 50.0] {
        let mut weather = WeatherGenerator::new(climate::madrid(), 3).with_variability(variability);
        for m in weather.daily_multipliers_for_year() {
            assert!(
                (WeatherGenerator::MIN_MULTIPLIER..=WeatherGenerator::MAX_MULTIPLIER).contains(&m),
                "variability {variability}: multiplier {m}"
            );
        }
    }
}

#[test]
fn same_seed_same_year_different_seed_different_year() {
    let a = WeatherGenerator::new(climate::lyon(), 7).daily_multipliers_for_year();
    let b = WeatherGenerator::new(climate::lyon(), 7).daily_multipliers_for_year();
    let c = WeatherGenerator::new(climate::lyon(), 8).daily_multipliers_for_year();
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn consecutive_years_from_one_generator_differ() {
    // the generator keeps drawing from its stream: no accidental reset
    let mut weather = WeatherGenerator::new(climate::vienna(), 5);
    let first = weather.daily_multipliers_for_year();
    let second = weather.daily_multipliers_for_year();
    assert_ne!(first, second);
}

#[test]
fn persistence_increases_lag1_autocorrelation_monotonically() {
    // monotonicity of the AR(1) knob: higher persistence, higher
    // day-to-day correlation
    let autocorr = |persistence: f64| {
        let mut weather = WeatherGenerator::new(climate::berlin(), 17)
            .with_variability(0.5)
            .with_persistence(persistence);
        let year = weather.daily_multipliers_for_year();
        let mean: f64 = year.iter().sum::<f64>() / year.len() as f64;
        let num: f64 = year.windows(2).map(|p| (p[0] - mean) * (p[1] - mean)).sum();
        let den: f64 = year.iter().map(|m| (m - mean) * (m - mean)).sum();
        num / den
    };
    let low = autocorr(0.0);
    let mid = autocorr(0.5);
    let high = autocorr(0.95);
    assert!(low < mid, "{low} !< {mid}");
    assert!(mid < high, "{mid} !< {high}");
    assert!(high > 0.8, "high-persistence autocorrelation {high}");
}

#[test]
fn variability_widens_the_spread() {
    let spread = |variability: f64| {
        let mut weather =
            WeatherGenerator::new(climate::madrid(), 23).with_variability(variability);
        let year = weather.daily_multipliers_for_year();
        let mean: f64 = year.iter().sum::<f64>() / year.len() as f64;
        (year.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / year.len() as f64).sqrt()
    };
    let narrow = spread(0.1);
    let wide = spread(0.9);
    assert!(narrow < wide, "{narrow} !< {wide}");
}

#[test]
fn location_accessor_round_trips() {
    let weather = WeatherGenerator::new(climate::berlin(), 0);
    assert_eq!(weather.location().name(), "Berlin");
}

#[test]
#[should_panic(expected = "variability must be non-negative")]
fn negative_variability_rejected() {
    let _ = WeatherGenerator::new(climate::berlin(), 0).with_variability(-0.1);
}

#[test]
#[should_panic(expected = "persistence must be in [0, 1)")]
fn unit_persistence_rejected() {
    let _ = WeatherGenerator::new(climate::berlin(), 0).with_persistence(1.0);
}
