//! Whole-line corridors: chains of heterogeneous segments.

use core::fmt;

use corridor_link::CoverageProfile;
use corridor_units::{Kilometers, Meters};

use crate::{CorridorLayout, LinkBudget, PlacementError, PlacementPolicy, SegmentInventory};

/// A complete railway line: consecutive corridor segments, each with its
/// own inter-site distance and repeater count.
///
/// Real lines are not homogeneous — station throats and tunnels keep
/// short conventional ISDs while open track stretches out with repeaters.
/// `Corridor` chains [`CorridorLayout`]s and aggregates inventory,
/// coverage and length so whole-line plans can be evaluated with the same
/// machinery as single segments.
///
/// # Examples
///
/// ```
/// use corridor_deploy::{Corridor, LinkBudget, PlacementPolicy};
/// use corridor_units::Meters;
///
/// // 2 km of station approach at 500 m, then open track at 2400 m
/// let mut corridor = Corridor::new();
/// for _ in 0..4 {
///     corridor.push_conventional(Meters::new(500.0));
/// }
/// for _ in 0..3 {
///     corridor.push_with_repeaters(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())?;
/// }
/// assert_eq!(corridor.total_length().meters(), Meters::new(9200.0));
/// assert_eq!(corridor.mast_count(), 8); // 7 segments + closing mast
/// assert_eq!(corridor.service_node_count(), 24);
/// # Ok::<(), corridor_deploy::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Corridor {
    segments: Vec<CorridorLayout>,
}

impl Corridor {
    /// An empty corridor.
    pub fn new() -> Self {
        Corridor::default()
    }

    /// Appends a conventional (repeater-free) segment.
    ///
    /// # Panics
    ///
    /// Panics if `isd` is not strictly positive.
    pub fn push_conventional(&mut self, isd: Meters) {
        self.segments.push(CorridorLayout::conventional(isd));
    }

    /// Appends a repeater-extended segment.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if the policy cannot place `n` nodes.
    pub fn push_with_repeaters(
        &mut self,
        isd: Meters,
        n: usize,
        policy: &PlacementPolicy,
    ) -> Result<(), PlacementError> {
        self.segments
            .push(CorridorLayout::with_policy(isd, n, policy)?);
        Ok(())
    }

    /// Appends an existing layout.
    pub fn push_segment(&mut self, layout: CorridorLayout) {
        self.segments.push(layout);
    }

    /// The segments, in track order.
    pub fn segments(&self) -> &[CorridorLayout] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if no segments have been added.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total line length.
    pub fn total_length(&self) -> Kilometers {
        self.segments
            .iter()
            .map(|s| s.isd())
            .sum::<Meters>()
            .kilometers()
    }

    /// Number of high-power masts: one per segment boundary, so
    /// `segments + 1` for a non-empty line.
    pub fn mast_count(&self) -> usize {
        if self.segments.is_empty() {
            0
        } else {
            self.segments.len() + 1
        }
    }

    /// Total repeater service nodes on the line.
    pub fn service_node_count(&self) -> usize {
        self.segments
            .iter()
            .map(CorridorLayout::repeater_count)
            .sum()
    }

    /// Total donor nodes on the line (the paper's per-segment donor rule).
    pub fn donor_node_count(&self) -> usize {
        self.segments
            .iter()
            .map(|s| SegmentInventory::donor_rule(s.repeater_count()))
            .sum()
    }

    /// Per-segment inventories, in track order.
    pub fn inventories(&self) -> Vec<SegmentInventory> {
        self.segments
            .iter()
            .map(|s| SegmentInventory::for_nodes(s.repeater_count(), s.isd()))
            .collect()
    }

    /// The absolute track position at which segment `index` starts.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_start(&self, index: usize) -> Meters {
        assert!(index < self.segments.len(), "segment index out of range");
        self.segments[..index].iter().map(|s| s.isd()).sum()
    }

    /// The worst (minimum) SNR across all segments under `budget`,
    /// sampling each segment at `step`. Returns `None` for an empty
    /// corridor.
    pub fn min_snr(&self, budget: &LinkBudget, step: Meters) -> Option<corridor_units::Db> {
        self.segments
            .iter()
            .filter_map(|s| s.coverage_profile(budget, step).min_snr())
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Coverage profiles for every segment, in track order.
    pub fn coverage_profiles(&self, budget: &LinkBudget, step: Meters) -> Vec<CoverageProfile> {
        self.segments
            .iter()
            .map(|s| s.coverage_profile(budget, step))
            .collect()
    }
}

impl FromIterator<CorridorLayout> for Corridor {
    fn from_iter<I: IntoIterator<Item = CorridorLayout>>(iter: I) -> Self {
        Corridor {
            segments: iter.into_iter().collect(),
        }
    }
}

impl Extend<CorridorLayout> for Corridor {
    fn extend<I: IntoIterator<Item = CorridorLayout>>(&mut self, iter: I) {
        self.segments.extend(iter);
    }
}

impl fmt::Display for Corridor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corridor of {} segment(s), {}, {} mast(s), {} repeater(s)",
            self.len(),
            self.total_length(),
            self.mast_count(),
            self.service_node_count() + self.donor_node_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_line() -> Corridor {
        let mut c = Corridor::new();
        c.push_conventional(Meters::new(500.0));
        c.push_conventional(Meters::new(500.0));
        c.push_with_repeaters(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
            .unwrap();
        c.push_with_repeaters(Meters::new(1250.0), 1, &PlacementPolicy::paper_default())
            .unwrap();
        c
    }

    #[test]
    fn aggregates() {
        let c = mixed_line();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.total_length().meters(), Meters::new(4650.0));
        assert_eq!(c.mast_count(), 5);
        assert_eq!(c.service_node_count(), 9);
        assert_eq!(c.donor_node_count(), 3); // 0 + 0 + 2 + 1
    }

    #[test]
    fn segment_starts() {
        let c = mixed_line();
        assert_eq!(c.segment_start(0), Meters::ZERO);
        assert_eq!(c.segment_start(1), Meters::new(500.0));
        assert_eq!(c.segment_start(2), Meters::new(1000.0));
        assert_eq!(c.segment_start(3), Meters::new(3400.0));
    }

    #[test]
    fn whole_line_coverage() {
        let c = mixed_line();
        let budget = LinkBudget::paper_default();
        let min = c.min_snr(&budget, Meters::new(10.0)).unwrap();
        // every segment is a paper geometry, so the line keeps peak rate
        assert!(min.value() > 29.0, "min SNR {min}");
        let profiles = c.coverage_profiles(&budget, Meters::new(10.0));
        assert_eq!(profiles.len(), 4);
    }

    #[test]
    fn empty_corridor() {
        let c = Corridor::new();
        assert!(c.is_empty());
        assert_eq!(c.mast_count(), 0);
        assert_eq!(
            c.min_snr(&LinkBudget::paper_default(), Meters::new(10.0)),
            None
        );
        assert_eq!(c.total_length().meters(), Meters::ZERO);
    }

    #[test]
    fn from_iterator_and_extend() {
        let layouts = vec![
            CorridorLayout::conventional(Meters::new(500.0)),
            CorridorLayout::conventional(Meters::new(600.0)),
        ];
        let mut c: Corridor = layouts.clone().into_iter().collect();
        assert_eq!(c.len(), 2);
        c.extend(layouts);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn inventories_match_segments() {
        let c = mixed_line();
        let inv = c.inventories();
        assert_eq!(inv.len(), 4);
        assert_eq!(inv[2].service_nodes(), 8);
        assert_eq!(inv[2].donor_nodes(), 2);
        assert_eq!(inv[3].donor_nodes(), 1);
    }

    #[test]
    fn display() {
        let c = mixed_line();
        let s = c.to_string();
        assert!(s.contains("4 segment(s)"));
        assert!(s.contains("5 mast(s)"));
        assert!(s.contains("12 repeater(s)"));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn bad_segment_index() {
        let _ = mixed_line().segment_start(4);
    }
}
