//! SplitMix64 seed-splitting for replicated stochastic traffic.
//!
//! Monte-Carlo sweeps evaluate thousands of `(scenario cell, replication)`
//! work items, each needing its own RNG stream. Deriving those streams by
//! `master + index` would hand adjacent items nearly identical SplitMix64
//! states; instead every item gets a seed produced by running the indices
//! through the SplitMix64 output mix twice, which decorrelates the
//! streams while staying a pure function of `(master, cell, replication)`
//! — the property that makes replicated sweeps reproducible regardless of
//! execution order or worker count.

/// The SplitMix64 additive constant (the golden-ratio increment).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mix: a bijective avalanche over `u64`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives per-work-item RNG seeds from one master seed.
///
/// # Examples
///
/// ```
/// use corridor_traffic::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// // a pure function of (master, cell, replication) ...
/// assert_eq!(seq.derive(3, 7), SeedSequence::new(42).derive(3, 7));
/// // ... with decorrelated neighbours
/// assert_ne!(seq.derive(3, 7), seq.derive(3, 8));
/// assert_ne!(seq.derive(3, 7), seq.derive(4, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// A sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed this sequence derives from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed of work item `(cell, replication)`.
    ///
    /// Each index is folded in with its own golden-gamma stride and a
    /// full SplitMix64 mix, so items differing in either index (or in
    /// the master) land in unrelated regions of the seed space.
    pub fn derive(&self, cell: u64, replication: u64) -> u64 {
        let cell_key = mix(self
            .master
            .wrapping_add(GOLDEN_GAMMA.wrapping_mul(cell.wrapping_add(1))));
        mix(cell_key.wrapping_add(GOLDEN_GAMMA.wrapping_mul(replication.wrapping_add(1))))
    }

    /// The seeds of all `replications` of one cell, in replication
    /// order — the deterministic per-cell stream a Monte-Carlo engine
    /// folds statistics over.
    pub fn cell_seeds(&self, cell: u64, replications: usize) -> Vec<u64> {
        (0..replications as u64)
            .map(|rep| self.derive(cell, rep))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pure_function_of_inputs() {
        let a = SeedSequence::new(7).derive(123, 456);
        let b = SeedSequence::new(7).derive(123, 456);
        assert_eq!(a, b);
        assert_ne!(a, SeedSequence::new(8).derive(123, 456));
        assert_eq!(SeedSequence::new(7).master(), 7);
    }

    #[test]
    fn no_collisions_over_a_sweep_sized_grid() {
        // 200 cells x 50 replications: every work item distinct
        let seq = SeedSequence::new(42);
        let mut seen = HashSet::new();
        for cell in 0..200 {
            for rep in 0..50 {
                assert!(
                    seen.insert(seq.derive(cell, rep)),
                    "collision at {cell}/{rep}"
                );
            }
        }
    }

    #[test]
    fn adjacent_items_are_decorrelated() {
        // neighbouring seeds should differ in about half their bits
        let seq = SeedSequence::new(0);
        for cell in 0..10u64 {
            for rep in 0..10u64 {
                let here = seq.derive(cell, rep);
                let next = seq.derive(cell, rep + 1);
                let flipped = (here ^ next).count_ones();
                assert!((16..=48).contains(&flipped), "only {flipped} bits differ");
            }
        }
    }

    #[test]
    fn cell_seeds_match_derive() {
        let seq = SeedSequence::new(9);
        let seeds = seq.cell_seeds(5, 4);
        assert_eq!(seeds.len(), 4);
        for (rep, seed) in seeds.iter().enumerate() {
            assert_eq!(*seed, seq.derive(5, rep as u64));
        }
        assert!(seq.cell_seeds(5, 0).is_empty());
    }

    #[test]
    fn zero_master_is_usable() {
        // mix(0) == 0, so the derivation must not collapse at master 0
        let seq = SeedSequence::new(0);
        assert_ne!(seq.derive(0, 0), 0);
        assert_ne!(seq.derive(0, 0), seq.derive(0, 1));
    }
}
