//! Fixture: atomics instead of mutable statics.

use std::sync::atomic::AtomicU64;

pub static COUNTER: AtomicU64 = AtomicU64::new(0);
