//! Guards the committed `BENCH_*.json` throughput snapshots.
//!
//! Always: every snapshot must parse, be internally consistent, and sit
//! above its floor (≥5× events/s, ≥5× Monte-Carlo cell-days/s, ≥3×
//! sweep cells/s over the PR-6 pre-overhaul baselines; ≥1× the PR-9
//! introduction figure for network-day edge-days/s) — so a committed
//! regression below the floor fails even on a loaded CI runner, without
//! re-measuring anything.
//!
//! Opt-in (`BENCH_SNAPSHOT_VERIFY=1`, release builds only): re-measures
//! each path on this machine and fails if it lands >20 % below the
//! committed value — tolerant of scheduler noise, strict on real
//! regressions. Debug builds skip the re-measure entirely; unoptimized
//! throughput says nothing about the committed release numbers.

use corridor_bench::snapshot::{
    measure_events, measure_mc, measure_network, measure_sweep, Snapshot, EVENTS_BASELINE,
    EVENTS_REQUIRED_SPEEDUP, MC_BASELINE, MC_REQUIRED_SPEEDUP, NETWORK_BASELINE,
    NETWORK_REQUIRED_SPEEDUP, SWEEP_BASELINE, SWEEP_REQUIRED_SPEEDUP,
};

/// (file stem, metric, pinned baseline, required multiple).
const EXPECTED: [(&str, &str, f64, f64); 4] = [
    (
        "events",
        "events_per_second",
        EVENTS_BASELINE,
        EVENTS_REQUIRED_SPEEDUP,
    ),
    (
        "mc",
        "cell_days_per_second",
        MC_BASELINE,
        MC_REQUIRED_SPEEDUP,
    ),
    (
        "sweep",
        "cells_per_second",
        SWEEP_BASELINE,
        SWEEP_REQUIRED_SPEEDUP,
    ),
    (
        "network",
        "edge_days_per_second",
        NETWORK_BASELINE,
        NETWORK_REQUIRED_SPEEDUP,
    ),
];

fn committed(name: &str) -> Snapshot {
    let path = format!("{}/../../BENCH_{name}.json", env!("CARGO_MANIFEST_DIR"));
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path} missing — run `make bench-snapshot` ({e})"));
    Snapshot::parse(&json).unwrap_or_else(|| panic!("{path} is not a valid snapshot"))
}

#[test]
fn committed_snapshots_meet_the_floors() {
    for (name, metric, baseline, required) in EXPECTED {
        let snap = committed(name);
        assert_eq!(snap.name, name, "BENCH_{name}.json names the wrong path");
        assert_eq!(snap.metric, metric, "BENCH_{name}.json metric drifted");
        assert_eq!(
            snap.baseline, baseline,
            "BENCH_{name}.json baseline must stay the pre-overhaul figure"
        );
        assert!(snap.host_cores >= 1, "BENCH_{name}.json host_cores");
        assert!(
            snap.value.is_finite() && snap.value > 0.0,
            "BENCH_{name}.json value must be a positive throughput"
        );
        assert!(
            snap.speedup() >= required,
            "BENCH_{name}.json: committed {:.0} {metric} is {:.2}x the {baseline:.0} baseline, \
             below the required {required}x floor",
            snap.value,
            snap.speedup()
        );
    }
}

/// Re-measures this machine against the committed values. Opt-in: noisy
/// shared runners would flake a hard wall-clock gate, so the default
/// `cargo test` run only checks the committed numbers above.
#[test]
fn remeasured_throughput_is_within_20_percent_of_committed() {
    if std::env::var("BENCH_SNAPSHOT_VERIFY").as_deref() != Ok("1") {
        eprintln!("skipped: set BENCH_SNAPSHOT_VERIFY=1 to re-measure");
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("skipped: re-measurement is only meaningful with --release");
        return;
    }
    for (name, measure) in [
        ("events", measure_events as fn() -> Snapshot),
        ("mc", measure_mc),
        ("sweep", measure_sweep),
        ("network", measure_network),
    ] {
        let pinned = committed(name);
        let fresh = measure();
        assert!(
            fresh.value >= 0.8 * pinned.value,
            "{name}: measured {:.0} {} regressed >20% below the committed {:.0}",
            fresh.value,
            fresh.metric,
            pinned.value
        );
        eprintln!(
            "{name}: measured {:.0} vs committed {:.0} {} — ok",
            fresh.value, pinned.value, fresh.metric
        );
    }
}
