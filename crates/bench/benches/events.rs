//! Throughput of the discrete-event corridor simulator.
//!
//! Besides the criterion timings, the bench prints a one-shot events/s
//! figure for the paper's 10-node segment (13 state machines, 152
//! passes, ~6k events per simulated day) so the log records the
//! simulator's raw event throughput on this machine.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use corridor_bench::scenario;
use corridor_core::traffic::{PoissonTimetable, Timetable, TrainPass};
use corridor_core::units::Meters;
use corridor_events::{segment_nodes, CorridorSimulator, NodeSpec, WakePolicy};
use rand::SeedableRng;

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn paper_nodes() -> Vec<NodeSpec> {
    segment_nodes(10, Meters::new(2650.0), scenario().lp_spacing())
}

fn paper_day() -> Vec<TrainPass> {
    Timetable::paper_default().passes()
}

fn bench_simulate_day(c: &mut Criterion) {
    let nodes = paper_nodes();
    let deterministic = paper_day();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let poisson = PoissonTimetable::paper_rate().sample_passes(&mut rng);

    let mut group = c.benchmark_group("events_day");
    for (name, passes) in [("deterministic", &deterministic), ("poisson", &poisson)] {
        group.bench_with_input(BenchmarkId::new("instant", name), passes, |b, passes| {
            let sim = CorridorSimulator::new();
            b.iter(|| sim.simulate(black_box(&nodes), black_box(passes)))
        });
    }
    group.bench_function("paper_policy", |b| {
        let sim = CorridorSimulator::new().with_policy(WakePolicy::paper_default());
        b.iter(|| sim.simulate(black_box(&nodes), black_box(&deterministic)))
    });
    group.finish();
}

/// One-shot events/s figure, recorded in the bench log.
fn report_throughput(_c: &mut Criterion) {
    let nodes = paper_nodes();
    let passes = paper_day();
    let sim = CorridorSimulator::new().with_policy(WakePolicy::paper_default());

    // warm up, then time a fixed batch of simulated days
    let _ = sim.simulate(&nodes, &passes);
    const DAYS: usize = 200;
    let started = Instant::now();
    let mut events = 0usize;
    for _ in 0..DAYS {
        events += sim.simulate(&nodes, &passes).events_processed();
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "event sim throughput: {DAYS} days, {events} events in {:.0} ms -> {:.2} M events/s",
        elapsed * 1e3,
        events as f64 / elapsed / 1e6
    );
}

criterion_group!(
    name = benches;
    config = short_config();
    targets = bench_simulate_day, report_throughput
);
criterion_main!(benches);
