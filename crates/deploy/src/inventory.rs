//! Node inventory per corridor segment and per kilometre.

use core::fmt;

use corridor_units::{Kilometers, Meters};

/// The equipment deployed per corridor segment (one inter-site distance).
///
/// A corridor is a chain of identical segments, so each segment *owns* one
/// high-power mast (masts sit on segment boundaries and are shared), its
/// repeater service nodes, and the donor repeater nodes mounted at the
/// masts that feed the wireless fronthaul. The paper's donor accounting:
/// one donor node for a single service node, two donors (one per feeding
/// direction) for two or more.
///
/// # Examples
///
/// ```
/// use corridor_deploy::SegmentInventory;
/// use corridor_units::Meters;
///
/// let seg = SegmentInventory::for_nodes(8, Meters::new(2400.0));
/// assert_eq!(seg.service_nodes(), 8);
/// assert_eq!(seg.donor_nodes(), 2);
/// assert!((seg.masts_per_km() - 0.4167).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentInventory {
    service_nodes: usize,
    donor_nodes: usize,
    isd: Meters,
}

impl SegmentInventory {
    /// Inventory for `n` service nodes in a segment of `isd`, using the
    /// paper's donor rule.
    ///
    /// # Panics
    ///
    /// Panics if `isd` is not strictly positive.
    pub fn for_nodes(n: usize, isd: Meters) -> Self {
        assert!(isd.value() > 0.0, "ISD must be positive");
        SegmentInventory {
            service_nodes: n,
            donor_nodes: Self::donor_rule(n),
            isd,
        }
    }

    /// The paper's donor-node rule: 0 for a conventional segment, 1 donor
    /// for one service node, 2 donors for two or more.
    pub fn donor_rule(service_nodes: usize) -> usize {
        match service_nodes {
            0 => 0,
            1 => 1,
            _ => 2,
        }
    }

    /// Service (coverage) repeater nodes per segment.
    pub fn service_nodes(&self) -> usize {
        self.service_nodes
    }

    /// Donor (fronthaul) repeater nodes per segment.
    pub fn donor_nodes(&self) -> usize {
        self.donor_nodes
    }

    /// All repeater nodes per segment.
    pub fn total_repeaters(&self) -> usize {
        self.service_nodes + self.donor_nodes
    }

    /// High-power masts per segment (always 1: shared boundaries).
    pub fn masts(&self) -> usize {
        1
    }

    /// Segment length.
    pub fn isd(&self) -> Meters {
        self.isd
    }

    /// Segments per kilometre of corridor.
    pub fn segments_per_km(&self) -> f64 {
        Kilometers::new(1.0).meters() / self.isd
    }

    /// High-power masts per kilometre.
    pub fn masts_per_km(&self) -> f64 {
        self.segments_per_km()
    }

    /// Service nodes per kilometre.
    pub fn service_nodes_per_km(&self) -> f64 {
        self.service_nodes as f64 * self.segments_per_km()
    }

    /// Donor nodes per kilometre.
    pub fn donor_nodes_per_km(&self) -> f64 {
        self.donor_nodes as f64 * self.segments_per_km()
    }
}

impl fmt::Display for SegmentInventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} segment: 1 mast, {} service + {} donor repeater(s)",
            self.isd, self.service_nodes, self.donor_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn donor_rule_matches_paper() {
        assert_eq!(SegmentInventory::donor_rule(0), 0);
        assert_eq!(SegmentInventory::donor_rule(1), 1);
        assert_eq!(SegmentInventory::donor_rule(2), 2);
        assert_eq!(SegmentInventory::donor_rule(10), 2);
    }

    #[test]
    fn conventional_segment() {
        let seg = SegmentInventory::for_nodes(0, Meters::new(500.0));
        assert_eq!(seg.total_repeaters(), 0);
        assert_eq!(seg.masts(), 1);
        // 2 masts per km at 500 m ISD
        assert!((seg.masts_per_km() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ten_node_segment() {
        let seg = SegmentInventory::for_nodes(10, Meters::new(2650.0));
        assert_eq!(seg.service_nodes(), 10);
        assert_eq!(seg.donor_nodes(), 2);
        assert_eq!(seg.total_repeaters(), 12);
        assert!((seg.masts_per_km() - 0.3774).abs() < 1e-3);
        assert!((seg.service_nodes_per_km() - 3.774).abs() < 1e-2);
        assert!((seg.donor_nodes_per_km() - 0.7547).abs() < 1e-3);
    }

    #[test]
    fn per_km_scaling_consistent() {
        let seg = SegmentInventory::for_nodes(3, Meters::new(1600.0));
        let per_segment = seg.total_repeaters() as f64;
        let per_km = seg.service_nodes_per_km() + seg.donor_nodes_per_km();
        assert!((per_km - per_segment * seg.segments_per_km()).abs() < 1e-12);
    }

    #[test]
    fn display() {
        let seg = SegmentInventory::for_nodes(1, Meters::new(1250.0));
        assert_eq!(
            seg.to_string(),
            "1250.0 m segment: 1 mast, 1 service + 1 donor repeater(s)"
        );
    }

    #[test]
    #[should_panic(expected = "ISD must be positive")]
    fn zero_isd_rejected() {
        let _ = SegmentInventory::for_nodes(1, Meters::ZERO);
    }
}
