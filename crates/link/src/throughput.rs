//! Calibrated Shannon-bound throughput mapping (3GPP TR 36.942, A.2).

use corridor_units::{Db, Hertz};

/// Throughput as a function of SNR, per the calibrated Shannon bound of
/// 3GPP TR 36.942 Annex A.2:
///
/// ```text
/// Thr(SNR) = 0                        SNR < SNR_min
///          = α · log2(1 + SNR)        SNR_min ≤ SNR, below the cap
///          = Thr_MAX                  once α·log2(1+SNR) ≥ Thr_MAX
/// ```
///
/// The paper instantiates it with the attenuation factor `α = 0.6` and the
/// maximum spectral efficiency of 5G NR, `Thr_MAX = 5.84 bps/Hz`; with those
/// values the cap is reached at SNR ≈ 29.3 dB (the paper quotes
/// "SNR > 29 dB").
///
/// # Examples
///
/// ```
/// use corridor_link::ThroughputModel;
/// use corridor_units::Db;
///
/// let m = ThroughputModel::nr_default();
/// assert_eq!(m.spectral_efficiency(Db::new(-15.0)), 0.0);
/// assert_eq!(m.spectral_efficiency(Db::new(40.0)), 5.84);
/// assert!((m.peak_snr().value() - 29.3).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThroughputModel {
    alpha: f64,
    max_spectral_efficiency: f64,
    snr_min: Db,
}

impl ThroughputModel {
    /// The paper's 5G NR parameters: `α = 0.6`, `Thr_MAX = 5.84 bps/Hz`,
    /// `SNR_min = −10 dB`.
    pub fn nr_default() -> Self {
        ThroughputModel {
            alpha: 0.6,
            max_spectral_efficiency: 5.84,
            snr_min: Db::new(-10.0),
        }
    }

    /// TR 36.942's original LTE parameters: `α = 0.6`,
    /// `Thr_MAX = 4.4 bps/Hz`, `SNR_min = −10 dB`.
    pub fn lte_default() -> Self {
        ThroughputModel {
            alpha: 0.6,
            max_spectral_efficiency: 4.4,
            snr_min: Db::new(-10.0),
        }
    }

    /// Creates a custom calibrated Shannon model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `max_spectral_efficiency` is not strictly
    /// positive.
    pub fn new(alpha: f64, max_spectral_efficiency: f64, snr_min: Db) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(
            max_spectral_efficiency > 0.0,
            "max spectral efficiency must be positive"
        );
        ThroughputModel {
            alpha,
            max_spectral_efficiency,
            snr_min,
        }
    }

    /// The attenuation factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The spectral-efficiency cap `Thr_MAX` in bps/Hz.
    pub fn max_spectral_efficiency(&self) -> f64 {
        self.max_spectral_efficiency
    }

    /// The SNR below which throughput is zero.
    pub fn snr_min(&self) -> Db {
        self.snr_min
    }

    /// Spectral efficiency in bps/Hz at `snr`.
    pub fn spectral_efficiency(&self, snr: Db) -> f64 {
        if snr < self.snr_min {
            return 0.0;
        }
        let shannon = self.alpha * (1.0 + snr.linear()).log2();
        shannon.min(self.max_spectral_efficiency)
    }

    /// Throughput in bit/s over `bandwidth` at `snr`.
    pub fn throughput_bps(&self, snr: Db, bandwidth: Hertz) -> f64 {
        self.spectral_efficiency(snr) * bandwidth.value()
    }

    /// The exact SNR at which the cap is reached:
    /// `2^(Thr_MAX / α) − 1`.
    pub fn peak_snr(&self) -> Db {
        Db::from_linear(2f64.powf(self.max_spectral_efficiency / self.alpha) - 1.0)
    }

    /// True if `snr` delivers the full peak rate.
    pub fn is_peak(&self, snr: Db) -> bool {
        snr >= self.peak_snr()
    }
}

impl Default for ThroughputModel {
    /// Returns [`ThroughputModel::nr_default`].
    fn default() -> Self {
        ThroughputModel::nr_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_of_the_curve() {
        let m = ThroughputModel::nr_default();
        // below SNR_min: zero
        assert_eq!(m.spectral_efficiency(Db::new(-10.1)), 0.0);
        // at SNR_min: alpha * log2(1 + 0.1) = 0.0825
        let at_min = m.spectral_efficiency(Db::new(-10.0));
        assert!((at_min - 0.6 * (1.1f64).log2()).abs() < 1e-9);
        // mid-range: 10 dB -> 0.6*log2(11) = 2.076
        let mid = m.spectral_efficiency(Db::new(10.0));
        assert!((mid - 2.0758).abs() < 1e-3);
        // capped
        assert_eq!(m.spectral_efficiency(Db::new(35.0)), 5.84);
    }

    #[test]
    fn peak_snr_is_about_29_3_db() {
        let m = ThroughputModel::nr_default();
        let peak = m.peak_snr().value();
        assert!((peak - 29.3).abs() < 0.05, "got {peak}");
        assert!(m.is_peak(Db::new(29.31)));
        assert!(!m.is_peak(Db::new(29.0)));
    }

    #[test]
    fn continuous_at_cap() {
        let m = ThroughputModel::nr_default();
        let just_below = m.spectral_efficiency(m.peak_snr() - Db::new(0.001));
        assert!((just_below - 5.84).abs() < 0.01);
    }

    #[test]
    fn monotone_nondecreasing() {
        let m = ThroughputModel::nr_default();
        let mut last = 0.0;
        for snr_db in -150..600 {
            let se = m.spectral_efficiency(Db::new(f64::from(snr_db) / 10.0));
            assert!(se >= last);
            last = se;
        }
    }

    #[test]
    fn throughput_over_paper_carrier() {
        let m = ThroughputModel::nr_default();
        // peak over 100 MHz: 584 Mbit/s
        let bps = m.throughput_bps(Db::new(35.0), Hertz::from_mhz(100.0));
        assert!((bps - 584e6).abs() < 1.0);
    }

    #[test]
    fn lte_caps_lower_than_nr() {
        let lte = ThroughputModel::lte_default();
        let nr = ThroughputModel::nr_default();
        assert!(lte.peak_snr() < nr.peak_snr());
        assert_eq!(lte.spectral_efficiency(Db::new(40.0)), 4.4);
    }

    #[test]
    fn default_is_nr() {
        assert_eq!(ThroughputModel::default(), ThroughputModel::nr_default());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_rejected() {
        let _ = ThroughputModel::new(0.0, 5.84, Db::new(-10.0));
    }
}
