//! Train kinematics.

use core::fmt;

use corridor_units::{KilometersPerHour, Meters, MetersPerSecond, Seconds};

/// A train: length and (constant) speed.
///
/// # Examples
///
/// ```
/// use corridor_traffic::Train;
/// let train = Train::paper_default();
/// assert_eq!(train.length().value(), 400.0);
/// assert!((train.speed().value() - 55.56).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Train {
    length: Meters,
    speed: MetersPerSecond,
}

impl Train {
    /// The paper's Table III train: 400 m long at 200 km/h.
    pub fn paper_default() -> Self {
        Train {
            length: Meters::new(400.0),
            speed: KilometersPerHour::new(200.0).meters_per_second(),
        }
    }

    /// Creates a train.
    ///
    /// # Panics
    ///
    /// Panics if length is negative or speed is not strictly positive.
    pub fn new(length: Meters, speed: MetersPerSecond) -> Self {
        assert!(length.value() >= 0.0, "train length must be non-negative");
        assert!(speed.value() > 0.0, "train speed must be positive");
        Train { length, speed }
    }

    /// Train length.
    pub fn length(&self) -> Meters {
        self.length
    }

    /// Train speed.
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// Time for the whole train to clear a section of the given length:
    /// `(section + length) / v` — the paper's full-load duration per train.
    pub fn time_to_clear(&self, section_length: Meters) -> Seconds {
        (section_length + self.length) / self.speed
    }
}

impl Default for Train {
    /// Returns [`Train::paper_default`].
    fn default() -> Self {
        Train::paper_default()
    }
}

impl fmt::Display for Train {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "train ({} at {})", self.length, self.speed)
    }
}

/// One run of a train along the corridor.
///
/// `origin_time` is the time of day at which the train's *head* crosses
/// track position 0 m; the train then proceeds in the positive direction at
/// constant speed.
///
/// # Examples
///
/// ```
/// use corridor_traffic::{Train, TrainPass};
/// use corridor_units::{Meters, Seconds};
///
/// let pass = TrainPass::new(Train::paper_default(), Seconds::new(3600.0));
/// let head = pass.head_position(Seconds::new(3610.0));
/// assert!((head.value() - 555.6).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainPass {
    train: Train,
    origin_time: Seconds,
}

impl TrainPass {
    /// Creates a pass of `train` whose head crosses 0 m at `origin_time`.
    pub fn new(train: Train, origin_time: Seconds) -> Self {
        TrainPass { train, origin_time }
    }

    /// The train making this pass.
    pub fn train(&self) -> Train {
        self.train
    }

    /// Time the head crosses position 0 m.
    pub fn origin_time(&self) -> Seconds {
        self.origin_time
    }

    /// Position of the train head at time `t` (may be negative before the
    /// train reaches the origin).
    pub fn head_position(&self, t: Seconds) -> Meters {
        self.train.speed() * (t - self.origin_time)
    }

    /// Position of the train tail at time `t`.
    pub fn tail_position(&self, t: Seconds) -> Meters {
        self.head_position(t) - self.train.length()
    }

    /// Time at which the head reaches track position `x`.
    pub fn head_reaches(&self, x: Meters) -> Seconds {
        self.origin_time + x / self.train.speed()
    }

    /// Time at which the tail clears track position `x`.
    pub fn tail_clears(&self, x: Meters) -> Seconds {
        self.origin_time + (x + self.train.length()) / self.train.speed()
    }

    /// True if any part of the train overlaps `[from, to]` at time `t`.
    pub fn overlaps(&self, from: Meters, to: Meters, t: Seconds) -> bool {
        let head = self.head_position(t);
        let tail = self.tail_position(t);
        head >= from && tail <= to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let t = Train::paper_default();
        assert_eq!(t.length(), Meters::new(400.0));
        assert!((t.speed().value() - 55.5556).abs() < 1e-3);
        assert_eq!(Train::default(), t);
    }

    #[test]
    fn clear_times_match_paper_range() {
        let t = Train::paper_default();
        // ISD 500 m -> 16.2 s; ISD 2650 m -> 54.9 s (paper: 16 s – 55 s)
        assert!((t.time_to_clear(Meters::new(500.0)).value() - 16.2).abs() < 0.01);
        assert!((t.time_to_clear(Meters::new(2650.0)).value() - 54.9).abs() < 0.01);
    }

    #[test]
    fn head_and_tail_positions() {
        let pass = TrainPass::new(Train::paper_default(), Seconds::new(100.0));
        let t = Seconds::new(100.0 + 18.0); // 18 s after origin: 1000 m
        assert!((pass.head_position(t).value() - 1000.0).abs() < 0.01);
        assert!((pass.tail_position(t).value() - 600.0).abs() < 0.01);
        // before origin the head is negative
        assert!(pass.head_position(Seconds::new(50.0)).value() < 0.0);
    }

    #[test]
    fn reach_and_clear_are_inverse_of_position() {
        let pass = TrainPass::new(Train::paper_default(), Seconds::new(500.0));
        let x = Meters::new(750.0);
        let t_head = pass.head_reaches(x);
        assert!((pass.head_position(t_head).value() - 750.0).abs() < 1e-9);
        let t_tail = pass.tail_clears(x);
        assert!((pass.tail_position(t_tail).value() - 750.0).abs() < 1e-9);
        assert!(t_tail > t_head);
    }

    #[test]
    fn overlap_window() {
        let pass = TrainPass::new(Train::paper_default(), Seconds::ZERO);
        // while head is between 0 and section end + length the train overlaps
        assert!(pass.overlaps(Meters::ZERO, Meters::new(500.0), Seconds::new(5.0)));
        assert!(!pass.overlaps(Meters::ZERO, Meters::new(500.0), Seconds::new(-1.0)));
        // after tail passes 500 m: head at 900 m at t = 16.2 s
        assert!(!pass.overlaps(Meters::ZERO, Meters::new(500.0), Seconds::new(16.3)));
    }

    #[test]
    fn accessors_and_display() {
        let train = Train::new(Meters::new(200.0), MetersPerSecond::new(40.0));
        let pass = TrainPass::new(train, Seconds::new(60.0));
        assert_eq!(pass.train(), train);
        assert_eq!(pass.origin_time(), Seconds::new(60.0));
        assert!(train.to_string().contains("200.0 m"));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = Train::new(Meters::new(400.0), MetersPerSecond::new(0.0));
    }
}
