//! Integration tests for the public `atmosphere` API: edge inputs,
//! monotonicity and scaling of the ITU-R-style attenuation helpers.

use corridor_fronthaul::atmosphere;
use corridor_units::{Db, Hertz, Meters};

#[test]
fn zero_rain_means_zero_attenuation_at_every_frequency() {
    for ghz in [30.0, 45.0, 60.0, 80.0, 100.0] {
        assert_eq!(
            atmosphere::rain_db_per_km(Hertz::from_ghz(ghz), 0.0),
            Db::ZERO
        );
    }
}

#[test]
fn rain_attenuation_is_monotone_in_rain_rate() {
    let f = Hertz::from_ghz(60.0);
    let mut last = Db::ZERO;
    for rate in [0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let gamma = atmosphere::rain_db_per_km(f, rate);
        assert!(gamma > last, "rate {rate}: {gamma} !> {last}");
        last = gamma;
    }
}

#[test]
fn rain_attenuation_is_monotone_in_frequency_over_the_anchored_band() {
    let mut last = Db::ZERO;
    for ghz in [30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
        let gamma = atmosphere::rain_db_per_km(Hertz::from_ghz(ghz), 25.0);
        assert!(gamma > last, "{ghz} GHz: {gamma} !> {last}");
        last = gamma;
    }
}

#[test]
fn out_of_band_frequencies_clamp_to_the_anchors() {
    // below 30 GHz and above 100 GHz the coefficients saturate
    let low = atmosphere::rain_db_per_km(Hertz::from_ghz(10.0), 25.0);
    let at30 = atmosphere::rain_db_per_km(Hertz::from_ghz(30.0), 25.0);
    assert_eq!(low, at30);
    let high = atmosphere::rain_db_per_km(Hertz::from_ghz(150.0), 25.0);
    let at100 = atmosphere::rain_db_per_km(Hertz::from_ghz(100.0), 25.0);
    assert_eq!(high, at100);
}

#[test]
fn interpolation_is_continuous_at_the_anchor_points() {
    for anchor_ghz in [60.0, 80.0] {
        let below = atmosphere::rain_db_per_km(Hertz::from_ghz(anchor_ghz - 1e-6), 25.0);
        let at = atmosphere::rain_db_per_km(Hertz::from_ghz(anchor_ghz), 25.0);
        let above = atmosphere::rain_db_per_km(Hertz::from_ghz(anchor_ghz + 1e-6), 25.0);
        assert!(
            (below.value() - at.value()).abs() < 1e-3,
            "{anchor_ghz} GHz"
        );
        assert!(
            (above.value() - at.value()).abs() < 1e-3,
            "{anchor_ghz} GHz"
        );
    }
}

#[test]
fn excess_attenuation_is_linear_in_distance_and_additive_in_gammas() {
    let oxy = Db::new(15.0);
    let rain = Db::new(10.0);
    let half = atmosphere::excess_attenuation(Meters::new(100.0), oxy, rain);
    let full = atmosphere::excess_attenuation(Meters::new(200.0), oxy, rain);
    assert!((full.value() - 2.0 * half.value()).abs() < 1e-12);
    // additivity: oxygen-only plus rain-only equals combined
    let oxy_only = atmosphere::excess_attenuation(Meters::new(200.0), oxy, Db::ZERO);
    let rain_only = atmosphere::excess_attenuation(Meters::new(200.0), Db::ZERO, rain);
    assert!((oxy_only.value() + rain_only.value() - full.value()).abs() < 1e-12);
    // zero-length hop: no excess loss
    assert_eq!(
        atmosphere::excess_attenuation(Meters::ZERO, oxy, rain),
        Db::ZERO
    );
}

#[test]
fn rain_rate_curve_is_anchored_and_monotone_decreasing_in_probability() {
    // anchored at R(0.01 %) = 32 mm/h
    assert!((atmosphere::rain_rate_exceeded_mm_h(0.01) - 32.0).abs() < 1e-9);
    let mut last = f64::INFINITY;
    for p in [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0] {
        let rate = atmosphere::rain_rate_exceeded_mm_h(p);
        assert!(rate < last, "p {p}: {rate} !< {last}");
        assert!(rate > 0.0);
        last = rate;
    }
}

#[test]
fn rain_rate_edge_of_domain_is_accepted() {
    // the documented domain is (0, 1]: both ends behave
    let whole_year = atmosphere::rain_rate_exceeded_mm_h(1.0);
    assert!(whole_year > 0.0 && whole_year < 32.0);
    let tiny = atmosphere::rain_rate_exceeded_mm_h(1e-6);
    assert!(tiny > 32.0);
}

#[test]
#[should_panic(expected = "percentage out of range")]
fn zero_probability_rejected() {
    let _ = atmosphere::rain_rate_exceeded_mm_h(0.0);
}

#[test]
#[should_panic(expected = "percentage out of range")]
fn over_unity_probability_rejected() {
    let _ = atmosphere::rain_rate_exceeded_mm_h(1.5);
}

#[test]
#[should_panic(expected = "rain rate must be non-negative")]
fn negative_rain_rate_rejected() {
    let _ = atmosphere::rain_db_per_km(Hertz::from_ghz(60.0), -0.1);
}
