//! Replicated simulation of one segment geometry: build once, replay
//! many seeded days.

use corridor_core::energy::SegmentEnergy;
use corridor_core::{EnergyStrategy, ScenarioParams};
use corridor_traffic::TrainPass;
use corridor_units::Meters;

use crate::{segment_nodes, CorridorSimulator, EventDrivenEvaluator, SimReport, WakePolicy};

/// A segment simulation prepared for many replications.
///
/// [`EventDrivenEvaluator::simulate_segment`] rebuilds the node
/// population on every call — fine for a one-off day, wasteful for a
/// Monte-Carlo sweep replaying hundreds of seeded days through the same
/// geometry. A replicator builds the nodes and configures the simulator
/// once; each [`SegmentReplicator::simulate_day`] then only runs the
/// event loop, so the per-day cost is exactly the simulation itself.
///
/// # Examples
///
/// ```
/// use corridor_core::ScenarioParams;
/// use corridor_events::{EventDrivenEvaluator, SegmentReplicator};
/// use corridor_traffic::{PoissonTimetable, Timetable};
/// use corridor_units::Meters;
/// use rand::SeedableRng;
///
/// let params = ScenarioParams::paper_default();
/// let replicator =
///     EventDrivenEvaluator::new().replicator(&params, 10, Meters::new(2650.0));
/// for seed in 0..3u64 {
///     let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
///     let passes = PoissonTimetable::paper_rate().sample_passes(&mut rng);
///     let report = replicator.simulate_day(&passes);
///     assert_eq!(report.nodes().len(), 13);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReplicator {
    simulator: CorridorSimulator,
    nodes: Vec<crate::NodeSpec>,
    n: usize,
    isd: Meters,
}

impl SegmentReplicator {
    /// Prepares the standard segment population (`n` repeaters at `isd`
    /// with the given service-node `spacing`) for replication under
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `isd` is not strictly positive (the node builder's
    /// invariant).
    pub fn new(policy: WakePolicy, n: usize, isd: Meters, spacing: Meters) -> Self {
        SegmentReplicator {
            simulator: CorridorSimulator::new().with_policy(policy),
            nodes: segment_nodes(n, isd, spacing),
            n,
            isd,
        }
    }

    /// The repeater count of the prepared segment.
    pub fn nodes_in_segment(&self) -> usize {
        self.n
    }

    /// The inter-site distance of the prepared segment.
    pub fn isd(&self) -> Meters {
        self.isd
    }

    /// The prepared node population.
    pub fn node_specs(&self) -> &[crate::NodeSpec] {
        &self.nodes
    }

    /// Replays one day of `passes` through the prepared segment.
    pub fn simulate_day(&self, passes: &[TrainPass]) -> SimReport {
        self.simulator.simulate(&self.nodes, passes)
    }

    /// Replays one day and reduces it straight to the per-kilometre
    /// energy split of `strategy` — the common Monte-Carlo reduction.
    pub fn energy_for_day(
        &self,
        params: &ScenarioParams,
        strategy: EnergyStrategy,
        passes: &[TrainPass],
    ) -> SegmentEnergy {
        let report = self.simulate_day(passes);
        EventDrivenEvaluator::power_from_report(params, self.n, self.isd, strategy, &report)
    }
}

impl EventDrivenEvaluator {
    /// Prepares a [`SegmentReplicator`] for this evaluator's wake policy:
    /// the entry point Monte-Carlo engines use to amortize node building
    /// across hundreds of seeded days of the same cell geometry.
    pub fn replicator(&self, params: &ScenarioParams, n: usize, isd: Meters) -> SegmentReplicator {
        SegmentReplicator::new(self.policy(), n, isd, params.lp_spacing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_traffic::Timetable;

    #[test]
    fn replicated_day_matches_one_shot_simulation() {
        let params = ScenarioParams::paper_default();
        let isd = Meters::new(2650.0);
        let passes = Timetable::paper_default().passes();
        let evaluator = EventDrivenEvaluator::new();
        let replicator = evaluator.replicator(&params, 10, isd);
        let one_shot = evaluator.simulate_segment(&params, 10, isd, &passes);
        assert_eq!(replicator.simulate_day(&passes), one_shot);
        // and again: the prepared state is not consumed
        assert_eq!(replicator.simulate_day(&passes), one_shot);
    }

    #[test]
    fn energy_reduction_matches_power_from_passes() {
        let params = ScenarioParams::paper_default();
        let isd = Meters::new(1250.0);
        let passes = Timetable::paper_default().passes();
        let evaluator = EventDrivenEvaluator::new();
        let replicator = evaluator.replicator(&params, 1, isd);
        for strategy in EnergyStrategy::ALL {
            assert_eq!(
                replicator.energy_for_day(&params, strategy, &passes),
                evaluator.power_from_passes(&params, 1, isd, strategy, &passes),
                "{strategy}"
            );
        }
    }

    #[test]
    fn accessors_expose_geometry() {
        let params = ScenarioParams::paper_default();
        let replicator = EventDrivenEvaluator::new().replicator(&params, 10, Meters::new(2650.0));
        assert_eq!(replicator.nodes_in_segment(), 10);
        assert_eq!(replicator.isd(), Meters::new(2650.0));
        assert_eq!(replicator.node_specs().len(), 13);
    }
}
