//! Golden-file regression tests: every reproduction artefact rendered by
//! `corridor_bench::render` must match the committed reference output
//! under `docs/results/` **byte for byte**.
//!
//! These are the same strings the `fig*`/`table*`/`headline`/`isd_sweep`
//! binaries print, so paper fidelity is enforced by `cargo test` instead
//! of by eyeballing diffs. If a model change legitimately moves a number,
//! regenerate the references with `make results` and commit the diff —
//! the failure message says exactly that.

use corridor_bench::render;

/// Compares a rendered artefact against its committed reference.
fn assert_golden(name: &str, rendered: String, golden: &str) {
    if rendered == golden {
        return;
    }
    // locate the first differing line for a readable failure
    let mut detail = String::new();
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        if got != want {
            detail = format!(
                "first differing line {}:\n  golden: {want}\n  now:    {got}",
                i + 1
            );
            break;
        }
    }
    if detail.is_empty() {
        detail = format!(
            "line count changed: golden {} lines, now {} lines",
            golden.lines().count(),
            rendered.lines().count()
        );
    }
    panic!(
        "{name} drifted from docs/results/{name}.txt\n{detail}\n\
         If the change is intentional, regenerate the references with \
         `make results` and commit the diff."
    );
}

macro_rules! golden_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            assert_golden(
                stringify!($name),
                render::$name(),
                include_str!(concat!("../docs/results/", stringify!($name), ".txt")),
            );
        }
    };
}

golden_test!(headline);
golden_test!(table1);
golden_test!(table2);
golden_test!(table3);
golden_test!(table4);
golden_test!(fig3);
golden_test!(fig4);
golden_test!(isd_sweep);
golden_test!(poisson_stats);
golden_test!(mc_smoke);
golden_test!(optimize_smoke);
golden_test!(network_smoke);
