//! Path-loss, antenna and penetration-loss models for railway corridor links.
//!
//! The central abstraction is the [`PathLoss`] trait: a model that maps a
//! transmitter–receiver distance to an attenuation in dB. The paper's
//! calibrated Friis model (eq. (1)) is provided by [`CalibratedFriis`];
//! classic baselines ([`FreeSpace`], [`LogDistance`], [`TwoRayGround`]) are
//! included for comparison and ablation studies.
//!
//! Train-wagon penetration loss (the motivation for the corridor's short
//! inter-site distances) is modelled by [`WindowTreatment`] /
//! [`PenetrationLoss`], and simple antenna directivity by
//! [`AntennaPattern`].
//!
//! # Examples
//!
//! ```
//! use corridor_propagation::{CalibratedFriis, PathLoss};
//! use corridor_units::{Db, Hertz, Meters};
//!
//! // The paper's high-power port-to-port model: Friis + 33 dB calibration.
//! let model = CalibratedFriis::new(Hertz::from_ghz(3.7), Db::new(33.0));
//! let loss = model.attenuation(Meters::new(250.0));
//! assert!(loss.value() > 120.0 && loss.value() < 130.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emf;

mod antenna;
mod friis;
mod log_distance;
mod pathloss;
mod penetration;
mod two_ray;

pub use antenna::AntennaPattern;
pub use friis::{CalibratedFriis, FreeSpace};
pub use log_distance::LogDistance;
pub use pathloss::{DynPathLoss, PathLoss};
pub use penetration::{PenetrationLoss, WindowTreatment};
pub use two_ray::TwoRayGround;
