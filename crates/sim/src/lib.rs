//! Batch scenario-sweep engine for the railway-corridor energy study.
//!
//! The paper evaluates one corridor (its Table III defaults); this crate
//! opens the parameter space. A [`ScenarioGrid`] takes Cartesian sweeps
//! over
//!
//! * timetable density (trains per hour),
//! * train speed and length,
//! * low-power repeater spacing,
//! * the conventional reference ISD,
//! * HP/LP equipment pairings ([`PowerProfile`]),
//! * and solar climate ([`corridor_solar::Location`]),
//!
//! expands them into deterministic per-cell
//! [`ScenarioParams`](corridor_core::ScenarioParams) via the validating
//! builder, and a [`SweepEngine`] evaluates every [`ScenarioCell`] —
//! energy split per strategy, savings versus the cell's conventional
//! baseline, and off-grid PV sizing — serially or on the offline `rayon`
//! worker pool, through either energy backend ([`Evaluator::Analytic`]
//! closed-form math or [`Evaluator::EventDriven`] discrete-event
//! simulation). Results land in a typed [`SweepReport`] whose CSV/JSON
//! renderings are byte-identical no matter how many workers produced
//! them.
//!
//! On top of the sweep sits the deployment optimizer: a [`SearchSpace`]
//! (repeater counts × ISD resolution × wake policies, optional PV
//! sizing) searched per cell by the [`DeploymentOptimizer`] through a
//! shared, memoized coverage cache, yielding a per-cell **Pareto
//! frontier** over energy/day, nodes/km and coverage margin
//! ([`OptimizeReport`]).
//!
//! The optimizer generalizes from one corridor to a rail **network**: a
//! [`CorridorNetwork`] joins corridor edges at shared stations, the
//! [`NetworkOptimizer`] runs the same per-cell search over every edge
//! and then schedules demand-aware sleep — boundary repeaters at
//! junctions sleep whenever a co-located neighbor can absorb their
//! demand at a net energy win ([`NetworkReport`]). A degenerate
//! single-path network reproduces the linear optimizer's frontier
//! byte-for-byte.
//!
//! On top of the deterministic sweep sits the Monte-Carlo layer: a
//! [`ReplicationPlan`] replicates every grid cell over seeded stochastic
//! days (Poisson, jittered — see [`TrafficSpec`]), the [`McEngine`]
//! evaluates the `(cell × replication)` work items on the same worker
//! pool through the event-driven backend, and a [`McReport`] carries
//! per-cell mean/stddev/95 % CI/min/max for each tracked [`McMetric`].
//!
//! # Examples
//!
//! ```
//! use corridor_core::EnergyStrategy;
//! use corridor_sim::{ScenarioGrid, SweepEngine};
//!
//! let grid = ScenarioGrid::new().trains_per_hour(vec![4.0, 8.0, 12.0]);
//! let report = SweepEngine::new().workers(2).pv_sizing(false).run(&grid).unwrap();
//! assert_eq!(report.len(), 3);
//! // denser timetables erode the sleep-mode savings
//! let savings: Vec<f64> = report
//!     .results()
//!     .iter()
//!     .map(|r| r.savings(EnergyStrategy::SleepModeRepeaters))
//!     .collect();
//! assert!(savings[0] > savings[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
mod cell;
mod engine;
mod grid;
mod mc;
mod network;
mod optimize;
mod report;
mod stream;

pub use cache::ResultCache;
pub use cell::{CellResult, PvOutcome, ScenarioCell};
pub use engine::{Evaluator, SweepEngine};
pub use grid::{PowerProfile, ScenarioGrid};
pub use mc::{
    McCellResult, McEngine, McMetric, McReport, ReplicationPlan, TrafficSpec, MC_CSV_HEADER,
};
pub use network::{
    CorridorEdge, CorridorNetwork, EdgeDayStats, NetworkDayEngine, NetworkDayReport, NetworkError,
    NetworkOptimizer, NetworkReport, SleepDecision, TrainRoute, NETWORK_DAY_CSV_HEADER,
    NETWORK_SCHEDULE_CSV_HEADER,
};
pub use optimize::{
    CellOutcome, DeploymentOptimizer, FrontierPoint, IsdSearch, OptimizeCellResult, OptimizeReport,
    SearchSpace, OPTIMIZE_CSV_HEADER,
};
pub use report::{SweepReport, CSV_HEADER};
pub use stream::{StreamError, StreamSummary};

pub use corridor_events::WakePolicy;
