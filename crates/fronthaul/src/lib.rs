//! mmWave out-of-band fronthaul for the repeater chain.
//!
//! The paper's repeater architecture (its Fig. 1, based on the authors'
//! mmWave-bridge prototype, refs. \[16\], \[17\]) forwards the sub-6 GHz cell
//! signal from a *donor* node at the high-power mast to the *service*
//! nodes on catenary masts over an upconverted mmWave link — out-of-band,
//! so no licensed sub-6 GHz spectrum is consumed and no donor/service
//! isolation problem arises.
//!
//! This crate provides the substrate the paper assumes but does not
//! model: the mmWave hop budget that determines whether a donor can
//! actually feed service nodes several hundred metres down the track.
//!
//! * [`MmWaveBand`] — V-band (60 GHz, oxygen absorption) and E-band
//!   (70/80 GHz) presets;
//! * [`atmosphere`] — simplified ITU-R style gaseous and rain specific
//!   attenuation;
//! * [`FronthaulHop`] — one donor→service (or service→service daisy
//!   chain) hop: EIRP, antenna gains, path and weather losses → SNR and
//!   link margin;
//! * [`FronthaulChain`] — a chain of hops feeding all service nodes of a
//!   segment, with end-to-end margin and availability checks.
//!
//! # Examples
//!
//! ```
//! use corridor_fronthaul::{FronthaulHop, MmWaveBand};
//! use corridor_units::Meters;
//!
//! // the paper's geometry: service nodes every 200 m
//! let hop = FronthaulHop::paper_default(Meters::new(200.0));
//! assert!(hop.clear_sky_margin().value() > 10.0);
//! // heavy rain (25 mm/h) must not break the hop
//! assert!(hop.margin_in_rain(25.0).value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atmosphere;
mod band;
mod chain;
mod hop;

pub use band::MmWaveBand;
pub use chain::{ChainReport, FronthaulChain};
pub use hop::FronthaulHop;
