//! Regenerates the paper's Table III: parameters for the average energy
//! consumption calculations.
//!
//! The rendering lives in [`corridor_bench::render`] so the golden-file
//! test can assert it against `docs/results/`.

fn main() {
    print!("{}", corridor_bench::render::table3());
}
