//! Uplink budget along the corridor.
//!
//! The paper treats the uplink "similarly, but in the reverse direction":
//! the distributed receive ports (the high-power masts' antennas and the
//! repeaters' service antennas, whose uplink chains forward to the donor)
//! all collect the terminal's transmission through the *same* calibrated
//! port-to-port attenuations as the downlink, and the cell combines them.
//!
//! [`UplinkBudget`] evaluates the resulting uplink SNR at any track
//! position by reciprocity over an existing downlink [`SnrModel`]:
//! each source position becomes a receive port, the UE's per-subcarrier
//! EIRP replaces the port powers, and the noise budget uses the base
//! station / repeater-chain noise figure.

use corridor_propagation::PathLoss;
use corridor_units::{sum_power_dbm, Db, Dbm, Meters};

use crate::{NrCarrier, SnrModel};

/// Uplink link budget over a corridor deployment.
///
/// # Examples
///
/// ```
/// use corridor_link::{NrCarrier, SignalSource, SnrModel, UplinkBudget};
/// use corridor_propagation::CalibratedFriis;
/// use corridor_units::{Db, Dbm, Hertz, Meters};
///
/// let hp = CalibratedFriis::new(Hertz::from_ghz(3.5), Db::new(33.0));
/// let model = SnrModel::new(NrCarrier::paper_100mhz())
///     .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.8), hp))
///     .with_source(SignalSource::new(Meters::new(500.0), Dbm::new(28.8), hp));
/// let uplink = UplinkBudget::paper_default();
/// let snr = uplink.snr_at(&model, Meters::new(250.0)).unwrap();
/// assert!(snr.value() > -10.0); // uplink alive mid-cell
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UplinkBudget {
    ue_eirp: Dbm,
    allocated_subcarriers: u32,
    receiver_noise_figure: Db,
}

impl UplinkBudget {
    /// A power-class-3 terminal: 23 dBm total, spread over a 20 MHz
    /// uplink allocation (660 subcarriers), received through a 5 dB base
    /// station / repeater-chain noise figure.
    pub fn paper_default() -> Self {
        UplinkBudget {
            ue_eirp: Dbm::new(23.0),
            allocated_subcarriers: 660,
            receiver_noise_figure: Db::new(5.0),
        }
    }

    /// A budget with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `allocated_subcarriers` is zero.
    pub fn new(ue_eirp: Dbm, allocated_subcarriers: u32, receiver_noise_figure: Db) -> Self {
        assert!(
            allocated_subcarriers > 0,
            "allocation needs at least one subcarrier"
        );
        UplinkBudget {
            ue_eirp,
            allocated_subcarriers,
            receiver_noise_figure,
        }
    }

    /// The terminal's total transmit power.
    pub fn ue_eirp(&self) -> Dbm {
        self.ue_eirp
    }

    /// Subcarriers in the uplink allocation.
    pub fn allocated_subcarriers(&self) -> u32 {
        self.allocated_subcarriers
    }

    /// Receive-chain noise figure.
    pub fn receiver_noise_figure(&self) -> Db {
        self.receiver_noise_figure
    }

    /// The terminal's per-subcarrier transmit power.
    pub fn ue_rstp(&self) -> Dbm {
        let carrier = NrCarrier::new(
            corridor_units::Hertz::from_khz(30.0) * f64::from(self.allocated_subcarriers),
            self.allocated_subcarriers,
        );
        carrier.per_subcarrier(self.ue_eirp)
    }

    /// Uplink SNR at track position `at`, combining every receive port of
    /// `model` by reciprocity. Returns `None` if the model has no
    /// sources.
    pub fn snr_at<M: PathLoss>(&self, model: &SnrModel<M>, at: Meters) -> Option<Db> {
        let rstp = self.ue_rstp();
        let received = sum_power_dbm(model.sources().iter().map(|s| rstp - s.attenuation_to(at)))?;
        let noise = model.noise_floor() + self.receiver_noise_figure;
        Some(received - noise)
    }

    /// The uplink's worst SNR over `[0, length]` sampled at `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn min_snr<M: PathLoss>(
        &self,
        model: &SnrModel<M>,
        length: Meters,
        step: Meters,
    ) -> Option<Db> {
        assert!(step.value() > 0.0, "step must be positive");
        let n = (length.value() / step.value()).round() as usize;
        (0..=n)
            .filter_map(|i| self.snr_at(model, Meters::new(i as f64 * step.value()).min(length)))
            .min_by(|a, b| a.total_cmp(b))
    }
}

impl Default for UplinkBudget {
    /// Returns [`UplinkBudget::paper_default`].
    fn default() -> Self {
        UplinkBudget::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalSource;
    use corridor_propagation::CalibratedFriis;
    use corridor_units::Hertz;

    fn downlink(isd: f64, nodes: usize) -> SnrModel<CalibratedFriis> {
        let hp = CalibratedFriis::new(Hertz::from_ghz(3.5), Db::new(33.0));
        let lp = CalibratedFriis::new(Hertz::from_ghz(3.5), Db::new(20.0));
        let mut model = SnrModel::new(NrCarrier::paper_100mhz())
            .with_source(SignalSource::new(Meters::ZERO, Dbm::new(28.81), hp))
            .with_source(SignalSource::new(Meters::new(isd), Dbm::new(28.81), hp));
        let spacing = 200.0;
        let first = (isd - spacing * (nodes.saturating_sub(1)) as f64) / 2.0;
        for i in 0..nodes {
            model.add_source(SignalSource::new(
                Meters::new(first + spacing * i as f64),
                Dbm::new(4.81),
                lp,
            ));
        }
        model
    }

    #[test]
    fn ue_rstp_value() {
        let b = UplinkBudget::paper_default();
        // 23 dBm over 660 subcarriers: 23 - 28.2 = -5.2 dBm
        assert!((b.ue_rstp().value() - (-5.2)).abs() < 0.05);
    }

    #[test]
    fn repeaters_lift_the_uplink_too() {
        let bare = downlink(2400.0, 0);
        let with_nodes = downlink(2400.0, 8);
        let budget = UplinkBudget::paper_default();
        let mid = Meters::new(700.0);
        let snr_bare = budget.snr_at(&bare, mid).unwrap();
        let snr_nodes = budget.snr_at(&with_nodes, mid).unwrap();
        assert!(snr_nodes > snr_bare + Db::new(3.0));
    }

    #[test]
    fn uplink_weaker_than_downlink() {
        // the UE transmits 41 dB less than the macro: uplink SNR trails
        // downlink SNR everywhere
        let model = downlink(500.0, 0);
        let budget = UplinkBudget::paper_default();
        let at = Meters::new(250.0);
        let ul = budget.snr_at(&model, at).unwrap();
        let dl = model.snr_at(at).unwrap();
        assert!(ul < dl);
    }

    #[test]
    fn min_snr_is_lower_bound() {
        let model = downlink(2400.0, 8);
        let budget = UplinkBudget::paper_default();
        let min = budget
            .min_snr(&model, Meters::new(2400.0), Meters::new(10.0))
            .unwrap();
        for pos in [0.0, 700.0, 1200.0, 2399.0] {
            let snr = budget.snr_at(&model, Meters::new(pos)).unwrap();
            assert!(snr >= min, "at {pos}");
        }
    }

    #[test]
    fn empty_model_yields_none() {
        let empty: SnrModel<CalibratedFriis> = SnrModel::new(NrCarrier::paper_100mhz());
        let budget = UplinkBudget::paper_default();
        assert_eq!(budget.snr_at(&empty, Meters::ZERO), None);
        assert_eq!(
            budget.min_snr(&empty, Meters::new(100.0), Meters::new(10.0)),
            None
        );
    }

    #[test]
    fn accessors_and_default() {
        let b = UplinkBudget::default();
        assert_eq!(b.ue_eirp(), Dbm::new(23.0));
        assert_eq!(b.allocated_subcarriers(), 660);
        assert_eq!(b.receiver_noise_figure(), Db::new(5.0));
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn zero_allocation_rejected() {
        let _ = UplinkBudget::new(Dbm::new(23.0), 0, Db::new(5.0));
    }
}
