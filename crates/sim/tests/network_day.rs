//! Tentpole differentials for the network-day backend and the Pollakis
//! margin-trading schedule: the stochastic wye day end to end through
//! the event engine, cross-worker byte-identity of the streamed day
//! rows, the SHA-pinned `margin_floor = current margin` special case
//! that reproduces the boundary-only schedule exactly, and floor
//! properties over random connected topologies.

use corridor_core::hash::sha256_hex;
use corridor_core::sink::{RowFormat, StringSink};
use corridor_sim::{
    CorridorNetwork, NetworkDayEngine, NetworkError, NetworkOptimizer, SearchSpace,
    NETWORK_DAY_CSV_HEADER,
};
use corridor_units::Meters;
use proptest::prelude::*;

/// Coarse profile sampling, as in the network suite: boundary ISDs are
/// insensitive to 5 m vs 10 m, and debug-mode tests stay quick.
fn quick_space() -> SearchSpace {
    SearchSpace::new().sample_step(Meters::new(10.0))
}

/// Pinned digests of the wye3 boundary-only schedule and frontier under
/// `quick_space()` — the PR 8 bytes the `margin_floor = current margin`
/// special case must reproduce exactly.
const WYE3_SCHEDULE_SHA256: &str =
    "8f033bef8f33bf2c031930d7946eca11b4b0f838c1fcaba3a03e144968f7e65b";
const WYE3_FRONTIER_SHA256: &str =
    "4996ad220df73d73d683e3e17144c0b4f028fc49cf9104715f96fdcf73d60a7e";

#[test]
fn wye3_day_runs_end_to_end_with_correlated_crossings() {
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let report = NetworkDayEngine::new()
        .workers(1)
        .reps(5)
        .run(&net, &quick_space())
        .unwrap();
    assert_eq!(report.per_edge().len(), 3);
    assert_eq!(report.reps(), 5);
    // the demand decomposition must route trains *across* the hub: at
    // least one route with two legs, so junction crossings happen every
    // simulated day
    assert!(
        report.routes().iter().any(|r| r.legs().len() >= 2),
        "wye demands must decompose into junction-crossing routes"
    );
    assert!(
        report.crossings_per_day() > 0.0,
        "a stochastic day on the wye must cross the hub"
    );
    // per-route rates add back to the edge demands (4 / 16 / 12 tph)
    for (e, want) in [(0usize, 4.0), (1, 16.0), (2, 12.0)] {
        let routed: f64 = report
            .routes()
            .iter()
            .filter(|r| r.traverses(e))
            .map(|r| r.rate_tph())
            .sum();
        assert!((routed - want).abs() < 1e-9, "edge {e}: routed {routed}");
        let stats = &report.per_edge()[e];
        assert_eq!(stats.edge, e);
        assert_eq!(stats.demand_tph, want);
        assert!(stats.routes >= 1);
        assert!(stats.mean_wh_day > 0.0);
        assert!(stats.mean_passes > 0.0, "edge {e} saw no trains");
        assert!(stats.ci95_wh_day.is_finite());
    }
    assert!(report.network_mean_wh_day() > 0.0);
}

#[test]
fn day_stream_is_byte_identical_across_worker_counts() {
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let engine = NetworkDayEngine::new().reps(3);
    let report = engine.workers(1).run(&net, &quick_space()).unwrap();
    let reference = [report.to_csv(), report.to_json()];
    assert!(reference[0].starts_with(NETWORK_DAY_CSV_HEADER));
    for workers in [1usize, 2, 8] {
        for (format, want) in [RowFormat::Csv, RowFormat::Json].iter().zip(&reference) {
            let mut sink = StringSink::with_capacity(2048);
            let summary = engine
                .workers(workers)
                .stream(&net, &quick_space(), *format, &mut sink)
                .unwrap();
            assert_eq!(summary.cells, net.edge_count() as u64);
            assert_eq!(&sink.into_string(), want, "{format:?}, workers = {workers}");
        }
    }
}

#[test]
fn day_engine_rejects_invalid_networks() {
    let err = NetworkDayEngine::new()
        .workers(1)
        .run(&CorridorNetwork::new(), &quick_space())
        .unwrap_err();
    assert!(matches!(err, NetworkError::Empty));
}

#[test]
fn margin_floor_at_current_margin_reproduces_the_boundary_schedule() {
    // the acceptance differential: with the floor at the picks' own
    // margin there is no margin to spend, the interior candidate family
    // is empty by construction, and the schedule and frontier are the
    // PR 8 boundary-only bytes exactly
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let base = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    assert_eq!(
        sha256_hex(base.schedule_csv().as_bytes()),
        WYE3_SCHEDULE_SHA256,
        "boundary-only schedule drifted:\n{}",
        base.schedule_csv()
    );
    assert_eq!(
        sha256_hex(base.frontier_csv().as_bytes()),
        WYE3_FRONTIER_SHA256
    );
    let current = base.picks()[0].as_ref().unwrap().margin_db;
    for floor in [current, 3.0] {
        let gated = NetworkOptimizer::new()
            .workers(1)
            .margin_floor_db(floor)
            .run(&net, &quick_space())
            .unwrap();
        assert_eq!(gated.schedule_csv(), base.schedule_csv(), "floor {floor}");
        assert_eq!(gated.frontier_csv(), base.frontier_csv(), "floor {floor}");
        assert_eq!(gated.plan(), base.plan(), "floor {floor}");
        // residual margins are the picks' own, untouched
        assert_eq!(gated.residual_margins(), base.residual_margins());
    }
}

#[test]
fn relaxed_floor_sleeps_interior_repeaters_at_a_strict_net_win() {
    // the acceptance win: relaxing the floor below the picks' ~3 dB
    // margin lets interior repeaters sleep — on the wye, ten of them —
    // while every edge's residual margin stays at or above the floor
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let base = NetworkOptimizer::new()
        .workers(1)
        .run(&net, &quick_space())
        .unwrap();
    let floor = -3.0;
    let traded = NetworkOptimizer::new()
        .workers(1)
        .margin_floor_db(floor)
        .run(&net, &quick_space())
        .unwrap();
    let interior: Vec<_> = traded
        .plan()
        .iter()
        .filter(|d| d.repeater.is_some())
        .collect();
    assert!(
        !interior.is_empty(),
        "a relaxed floor must sleep interior repeaters"
    );
    for d in &interior {
        assert!(d.net_wh_day > 1e-9, "interior sleeps are strict wins");
        assert!((d.slept_wh_day - d.absorber_delta_wh_day - d.net_wh_day).abs() < 1e-9);
        assert!(d.margin_cost_db >= 0.0);
        assert_eq!(
            d.absorber_edge, d.edge,
            "interior absorption stays on the edge"
        );
        let k = d.repeater.unwrap();
        let n = traded.picks()[d.edge].as_ref().unwrap().nodes;
        assert!(k >= 1 && k < n - 1, "repeater {k} is not interior of {n}");
    }
    for (e, margin) in traded.residual_margins().iter().enumerate() {
        let margin = margin.expect("every wye edge deploys");
        assert!(
            margin >= floor,
            "edge {e} residual margin {margin} fell below the {floor} dB floor"
        );
        assert!(
            margin < base.residual_margins()[e].unwrap(),
            "edge {e} must have spent margin"
        );
    }
    // the traded network is strictly cheaper than boundary-only sleep,
    // and the exact plan is pinned: ten interior sleeps plus the
    // boundary sleep the base schedule already had
    assert!(traded.network_wh_day() < base.network_wh_day());
    assert_eq!(interior.len(), 10);
    assert_eq!(traded.plan().len(), base.plan().len() + 10);
    assert!(
        (traded.network_wh_day() - 89962.150).abs() < 5e-3,
        "traded total drifted: {}",
        traded.network_wh_day()
    );
    // deeper floors change nothing: adjacency (every sleeper needs an
    // awake absorbing neighbor) exhausts the candidate set first
    let deeper = NetworkOptimizer::new()
        .workers(1)
        .margin_floor_db(-20.0)
        .run(&net, &quick_space())
        .unwrap();
    assert_eq!(deeper.plan().len(), traded.plan().len());
}

#[test]
fn margin_trading_is_deterministic_across_worker_counts() {
    let net = CorridorNetwork::by_name("wye3").unwrap();
    let a = NetworkOptimizer::new()
        .workers(1)
        .margin_floor_db(-3.0)
        .run(&net, &quick_space())
        .unwrap();
    let b = NetworkOptimizer::new()
        .workers(4)
        .margin_floor_db(-3.0)
        .run(&net, &quick_space())
        .unwrap();
    assert_eq!(a.plan(), b.plan());
    assert_eq!(a.residual_margins(), b.residual_margins());
    assert_eq!(a.schedule_csv(), b.schedule_csv());
}

/// Demand pool the random topologies draw from.
const TPH: [f64; 4] = [2.0, 4.0, 8.0, 12.0];

/// Builds one of the three connected topology families from the pool.
fn random_net(shape: usize, n_edges: usize) -> CorridorNetwork {
    let demands: Vec<f64> = TPH.iter().copied().cycle().take(n_edges).collect();
    match shape {
        0 => CorridorNetwork::line(&demands),
        1 => CorridorNetwork::star(&demands),
        _ => {
            // a cycle needs >= 3 edges; pad the ring up to the floor
            let demands: Vec<f64> = TPH.iter().copied().cycle().take(n_edges.max(3)).collect();
            CorridorNetwork::cycle(&demands)
        }
    }
}

proptest! {
    /// On every generated line/star/cycle, the margin-trading scheduler
    /// never drops any edge below the configured floor, interior sleeps
    /// are strict wins, and raising the floor to the picks' own margin
    /// reproduces the boundary-only schedule byte-for-byte.
    #[test]
    fn random_topologies_hold_the_margin_floor(
        shape in 0usize..3,
        n_edges in 1usize..=3,
    ) {
        let net = random_net(shape, n_edges);
        let space = quick_space().node_counts(vec![0, 10]);
        let base = NetworkOptimizer::new().workers(1).run(&net, &space).unwrap();

        // relaxed floor: margins may be spent but never below the floor
        let floor = -6.0;
        let traded = NetworkOptimizer::new()
            .workers(1)
            .margin_floor_db(floor)
            .run(&net, &space)
            .unwrap();
        for margin in traded.residual_margins().iter().flatten() {
            prop_assert!(*margin >= floor, "residual {} below floor", margin);
        }
        for d in traded.plan() {
            prop_assert!(d.net_wh_day > 0.0);
            if d.repeater.is_some() {
                prop_assert_eq!(d.absorber_edge, d.edge);
                prop_assert!(d.margin_cost_db >= 0.0);
            }
        }
        prop_assert!(traded.network_wh_day() <= base.network_wh_day() + 1e-9);

        // floor at the picks' own margin: the interior family is gated
        // out entirely and the PR 8 boundary-only schedule comes back
        // byte-for-byte
        let current = base
            .picks()
            .iter()
            .flatten()
            .map(|p| p.margin_db)
            .fold(f64::NEG_INFINITY, f64::max);
        if current.is_finite() {
            let gated = NetworkOptimizer::new()
                .workers(1)
                .margin_floor_db(current)
                .run(&net, &space)
                .unwrap();
            prop_assert_eq!(gated.plan(), base.plan());
            prop_assert_eq!(gated.schedule_csv(), base.schedule_csv());
            prop_assert_eq!(gated.residual_margins(), base.residual_margins());
        }
    }
}
