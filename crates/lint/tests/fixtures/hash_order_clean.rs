//! Fixture: ordered container, deterministic iteration.

use std::collections::BTreeMap;

pub type Cache = BTreeMap<String, u64>;
