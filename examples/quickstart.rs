//! Quickstart: the paper's pipeline in five minutes.
//!
//! Run with `cargo run --release --example quickstart`.

use railway_corridor::prelude::*;

fn main() {
    // 1. The RF side: how far can two high-power masts stand apart when
    //    n low-power repeaters fill the gap, without losing peak 5G NR
    //    throughput inside the train?
    let budget = LinkBudget::paper_default();
    let optimizer = IsdOptimizer::new(budget.clone());
    println!("maximum inter-site distance (min SNR ≥ 29 dB everywhere):");
    for n in [0usize, 1, 4, 8] {
        match optimizer.max_isd(n) {
            Some(isd) => println!("  {n:2} repeater(s): {isd}"),
            None => println!("  {n:2} repeater(s): not achievable"),
        }
    }

    // 2. A single coverage profile: the paper's Fig. 3 scenario.
    let layout =
        CorridorLayout::with_policy(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
            .expect("8 nodes fit in 2400 m");
    let profile = layout.coverage_profile(&budget, Meters::new(5.0));
    println!(
        "\nISD 2400 m with 8 repeaters: min SNR {:.1} dB at {}, {:.0} % of track at peak rate",
        profile.min_snr().unwrap().value(),
        profile.worst_sample().unwrap().position,
        profile.fraction_at_peak(budget.throughput()) * 100.0,
    );

    // 3. The energy side: average energy per hour and km of corridor.
    let params = ScenarioParams::paper_default();
    let baseline = energy::conventional_baseline(&params);
    println!(
        "\nconventional corridor (masts every 500 m): {:.0} Wh per hour per km",
        baseline.total().value()
    );
    for strategy in EnergyStrategy::ALL {
        let savings = energy::savings_vs_conventional(&params, &IsdTable::paper(), 10, strategy)
            .expect("the paper ISD table covers 10 nodes");
        println!(
            "  10 repeaters, {strategy}: {:.0} % savings",
            savings * 100.0
        );
    }

    // 4. The solar side: can the repeaters run off-grid?
    let system = OffGridSystem::new(
        climate::madrid(),
        PvArray::standard_modules(3),
        Battery::paper_default(),
        DailyLoadProfile::repeater_paper_default(),
    );
    let stats = system.simulate_year(2);
    println!("\nMadrid, 3 × 180 Wp vertical + 720 Wh battery: {stats}");
}
