//! Property-based tests for unit arithmetic invariants.

use corridor_units::prelude::*;
use proptest::prelude::*;

fn finite_db() -> impl Strategy<Value = f64> {
    -200.0..200.0f64
}

fn positive_linear() -> impl Strategy<Value = f64> {
    1e-12..1e12f64
}

proptest! {
    /// dB -> linear -> dB is the identity (within float tolerance).
    #[test]
    fn db_linear_round_trip(v in finite_db()) {
        let db = Db::new(v);
        prop_assert!((Db::from_linear(db.linear()).value() - v).abs() < 1e-9);
    }

    /// linear -> dB -> linear is the identity (relative tolerance).
    #[test]
    fn linear_db_round_trip(lin in positive_linear()) {
        let back = Db::from_linear(lin).linear();
        prop_assert!(((back - lin) / lin).abs() < 1e-9);
    }

    /// Adding decibels multiplies linear ratios.
    #[test]
    fn db_addition_is_linear_multiplication(a in -80.0..80.0f64, b in -80.0..80.0f64) {
        let sum = Db::new(a) + Db::new(b);
        let prod = Db::new(a).linear() * Db::new(b).linear();
        prop_assert!(((sum.linear() - prod) / prod).abs() < 1e-9);
    }

    /// Combining powers is commutative and exceeds the larger operand.
    #[test]
    fn dbm_combine_commutative_and_monotone(a in -150.0..60.0f64, b in -150.0..60.0f64) {
        let pa = Dbm::new(a);
        let pb = Dbm::new(b);
        let ab = pa.combine(pb);
        let ba = pb.combine(pa);
        prop_assert!((ab.value() - ba.value()).abs() < 1e-9);
        prop_assert!(ab.value() >= a.max(b) - 1e-9);
        // combining can add at most 3.0103 dB (equal powers)
        prop_assert!(ab.value() <= a.max(b) + 3.011);
    }

    /// sum_power_dbm over a list equals sequential combine.
    #[test]
    fn sum_power_matches_sequential_combine(values in prop::collection::vec(-150.0..30.0f64, 1..12)) {
        let powers: Vec<Dbm> = values.iter().copied().map(Dbm::new).collect();
        let seq = powers[1..].iter().fold(powers[0], |acc, &p| acc.combine(p));
        let sum = sum_power_dbm(powers.iter().copied()).unwrap();
        prop_assert!((seq.value() - sum.value()).abs() < 1e-6);
    }

    /// Watts <-> dBm round trip.
    #[test]
    fn watts_dbm_round_trip(w in 1e-9..1e6f64) {
        let p = Dbm::from_watts(Watts::new(w));
        prop_assert!(((p.watts().value() - w) / w).abs() < 1e-9);
    }

    /// Energy integration is linear in duration.
    #[test]
    fn energy_linear_in_time(p in 0.0..1e4f64, h1 in 0.0..100.0f64, h2 in 0.0..100.0f64) {
        let power = Watts::new(p);
        let split = power * Hours::new(h1) + power * Hours::new(h2);
        let joint = power * Hours::new(h1 + h2);
        prop_assert!((split.value() - joint.value()).abs() < 1e-6);
    }

    /// Metres <-> kilometres round trip.
    #[test]
    fn length_round_trip(m in -1e7..1e7f64) {
        let len = Meters::new(m);
        prop_assert!((Meters::from(len.kilometers()).value() - m).abs() < 1e-6);
    }

    /// distance_to is symmetric, non-negative, and satisfies identity.
    #[test]
    fn distance_metric_properties(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let pa = Meters::new(a);
        let pb = Meters::new(b);
        prop_assert_eq!(pa.distance_to(pb), pb.distance_to(pa));
        prop_assert!(pa.distance_to(pb).value() >= 0.0);
        prop_assert_eq!(pa.distance_to(pa), Meters::ZERO);
    }

    /// Speed conversions round trip.
    #[test]
    fn speed_round_trip(kmh in 0.0..1000.0f64) {
        let v = KilometersPerHour::new(kmh);
        let back: KilometersPerHour = v.meters_per_second().into();
        prop_assert!((back.value() - kmh).abs() < 1e-9);
    }

    /// time = distance / speed is consistent with distance = speed * time.
    #[test]
    fn kinematics_consistent(d in 1.0..1e6f64, v in 1.0..200.0f64) {
        let dist = Meters::new(d);
        let speed = MetersPerSecond::new(v);
        let t = dist / speed;
        let back = speed * t;
        prop_assert!(((back.value() - d) / d).abs() < 1e-9);
    }

    /// Hours <-> seconds round trip.
    #[test]
    fn time_round_trip(h in 0.0..1e5f64) {
        let hours = Hours::new(h);
        prop_assert!((Hours::from(hours.seconds()).value() - h).abs() < 1e-9);
    }

    /// LoadFraction::new accepts exactly [0,1].
    #[test]
    fn load_fraction_validation(v in -2.0..3.0f64) {
        let result = LoadFraction::new(v);
        prop_assert_eq!(result.is_ok(), (0.0..=1.0).contains(&v));
        let sat = LoadFraction::saturating(v);
        prop_assert!((0.0..=1.0).contains(&sat.value()));
    }
}
