//! Long-running sweep service: reads grid specs from stdin, shards the
//! cells across worker *processes*, and streams the result rows back on
//! stdout in grid order — byte-identical to the in-memory writers.
//!
//! ```console
//! $ echo "sweep grid=mixed-8 format=csv shards=2" \
//!     | cargo run --release -p corridor_bench --bin serve
//! ```
//!
//! # Request protocol (one request per stdin line)
//!
//! ```text
//! sweep|mc|optimize grid=NAME format=csv|json [shards=N] [reps=N] [seed=N] [cache=DIR]
//! ```
//!
//! `grid` is a named grid (`paper`, `smoke-3`, `mixed-8`,
//! `screening-200`); `shards` is the worker-process count (default 2);
//! `reps`/`seed` configure the Monte-Carlo replication plan (defaults 5
//! and 7); `cache` points every worker at a shared scenario-hash
//! [`ResultCache`] directory.
//!
//! # Response
//!
//! ```text
//! BEGIN <engine> grid=<name> format=<fmt> cells=<n> shards=<n>
//! <the exact bytes the engine's stream writer produces>
//! END rows=<n> sha256=<hex> cache_hits=<n> cache_misses=<n>
//! ```
//!
//! The payload between `BEGIN` and `END` is byte-identical to
//! `SweepEngine::stream` (respectively `McEngine` / `DeploymentOptimizer`)
//! writing into a sink, and the `sha256` trailer is the digest of those
//! payload bytes — so a client can verify integrity without re-hashing
//! upstream state. Diagnostics (worker deaths, retries) go to stderr.
//!
//! # Fault tolerance
//!
//! Cells are cut into chunks and dispatched to a pool of child processes
//! (`serve --worker`) over a line protocol with length-prefixed row
//! frames. A worker death mid-chunk is detected by the broken pipe /
//! truncated frame stream; the coordinator respawns the child and
//! re-dispatches the chunk (the rows are deterministic, so a retry
//! reproduces them exactly). Setting `CORRIDOR_SERVE_CRASH_CELL=<index>`
//! makes the *first* attempt at the chunk holding that cell kill its
//! worker mid-shard — the fault-injection hook the serve tests use.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use corridor_core::hash::Sha256;
use corridor_core::sink::{RowEmitter, RowFormat};
use corridor_sim::{
    DeploymentOptimizer, McEngine, ReplicationPlan, ResultCache, ScenarioGrid, SearchSpace,
    StreamError, SweepEngine, CSV_HEADER, MC_CSV_HEADER, OPTIMIZE_CSV_HEADER,
};

/// Cells per dispatched chunk: small enough that a retry is cheap and
/// the in-flight buffer stays bounded, large enough to amortize the
/// frame protocol.
const CHUNK_CELLS: usize = 64;

/// Attempts per chunk before the request is declared failed.
const MAX_ATTEMPTS: u32 = 3;

const USAGE: &str = "\
usage: serve [--worker]

Coordinator mode (default): reads one request per stdin line —
  sweep|mc|optimize grid=NAME format=csv|json [shards=N] [reps=N] [seed=N] [cache=DIR]
— and streams the rows back on stdout between BEGIN/END markers.

--worker is the internal child-process mode the coordinator spawns;
it is not meant to be invoked by hand.
";

/// Which engine a request drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Sweep,
    Mc,
    Optimize,
}

impl EngineKind {
    fn label(self) -> &'static str {
        match self {
            EngineKind::Sweep => "sweep",
            EngineKind::Mc => "mc",
            EngineKind::Optimize => "optimize",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "sweep" => Some(EngineKind::Sweep),
            "mc" => Some(EngineKind::Mc),
            "optimize" => Some(EngineKind::Optimize),
            _ => None,
        }
    }

    fn csv_header(self) -> &'static str {
        match self {
            EngineKind::Sweep => CSV_HEADER,
            EngineKind::Mc => MC_CSV_HEADER,
            EngineKind::Optimize => OPTIMIZE_CSV_HEADER,
        }
    }
}

/// One parsed request (shared between coordinator and worker: the task
/// lines the coordinator sends are requests plus a cell range).
#[derive(Debug, Clone)]
struct Request {
    engine: EngineKind,
    grid: String,
    format: RowFormat,
    shards: usize,
    replications: usize,
    master_seed: u64,
    cache: Option<String>,
}

impl Request {
    fn parse(line: &str) -> Result<Request, String> {
        let mut words = line.split_whitespace();
        let engine = words
            .next()
            .and_then(EngineKind::from_label)
            .ok_or("request must start with sweep|mc|optimize")?;
        let mut request = Request {
            engine,
            grid: "mixed-8".to_owned(),
            format: RowFormat::Csv,
            shards: 2,
            replications: 5,
            master_seed: 7,
            cache: None,
        };
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("malformed field {word:?} (expected key=value)"))?;
            match key {
                "grid" => request.grid = value.to_owned(),
                "format" => {
                    request.format = RowFormat::from_label(value)
                        .ok_or_else(|| format!("unknown format {value:?}"))?;
                }
                "shards" => {
                    request.shards = value.parse().map_err(|e| format!("shards: {e}"))?;
                    if request.shards == 0 {
                        return Err("shards must be at least 1".into());
                    }
                }
                "reps" => request.replications = value.parse().map_err(|e| format!("reps: {e}"))?,
                "seed" => request.master_seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "cache" => request.cache = Some(value.to_owned()),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(request)
    }

    /// The task line dispatched to a worker for one chunk.
    fn task_line(&self, range: &std::ops::Range<usize>, crash: Option<usize>) -> String {
        let mut line = format!(
            "task {} grid={} format={} range={}:{} reps={} seed={}",
            self.engine.label(),
            self.grid,
            self.format.label(),
            range.start,
            range.end,
            self.replications,
            self.master_seed,
        );
        if let Some(dir) = &self.cache {
            line.push_str(&format!(" cache={dir}"));
        }
        if let Some(cell) = crash {
            line.push_str(&format!(" crash={cell}"));
        }
        line
    }

    fn resolve_grid(&self) -> Result<ScenarioGrid, String> {
        ScenarioGrid::by_name(&self.grid).ok_or_else(|| format!("unknown grid {:?}", self.grid))
    }
}

/// The fixed search space the `optimize` engine serves: the quick
/// variant the optimizer determinism suite pins (0–6 repeaters at the
/// default ISD resolution).
fn serve_search_space() -> SearchSpace {
    SearchSpace::new().node_counts((0..=6).collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match args.as_slice() {
        [] => coordinator_main(),
        ["--worker"] => worker_main(),
        ["--help"] | ["-h"] => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("serve: unknown arguments\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// A chunk's rows as returned by one worker, keyed for in-order release.
struct ChunkResult {
    chunk: usize,
    rows: Vec<Vec<u8>>,
    cache_hits: u64,
    cache_misses: u64,
}

fn coordinator_main() -> ExitCode {
    let stdin = io::stdin();
    let mut failed = false;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(error) => {
                eprintln!("serve: stdin: {error}");
                return ExitCode::FAILURE;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match Request::parse(trimmed) {
            Ok(request) => {
                if let Err(error) = serve_request(&request) {
                    // the protocol stays parseable: an ERROR line instead
                    // of an END trailer tells the client the stream is void
                    println!("ERROR {error}");
                    eprintln!("serve: {error}");
                    failed = true;
                }
            }
            Err(error) => {
                println!("ERROR bad request: {error}");
                eprintln!("serve: bad request: {error}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn serve_request(request: &Request) -> Result<(), String> {
    let grid = request.resolve_grid()?;
    let cells = grid.len();
    // small grids still split across every shard; large grids cap the
    // chunk so a retry never re-evaluates more than CHUNK_CELLS cells
    let chunk_cells = cells.div_ceil(request.shards).clamp(1, CHUNK_CELLS);
    let chunks: Vec<std::ops::Range<usize>> = (0..cells.div_ceil(chunk_cells))
        .map(|i| (i * chunk_cells)..((i + 1) * chunk_cells).min(cells))
        .collect();
    let crash_cell: Option<usize> = std::env::var("CORRIDOR_SERVE_CRASH_CELL")
        .ok()
        .and_then(|v| v.parse().ok());

    println!(
        "BEGIN {} grid={} format={} cells={} shards={}",
        request.engine.label(),
        request.grid,
        request.format.label(),
        cells,
        request.shards,
    );

    let (sender, receiver) = mpsc::channel::<Result<ChunkResult, String>>();
    let next_chunk = AtomicUsize::new(0);
    let workers = request.shards.min(chunks.len()).max(1);

    let summary = thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let (next_chunk, chunks) = (&next_chunk, &chunks);
            scope.spawn(move || {
                let mut worker = WorkerHandle::spawn();
                loop {
                    let index = next_chunk.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = chunks.get(index) else {
                        break;
                    };
                    let result =
                        run_chunk_with_retry(&mut worker, request, index, range, crash_cell);
                    let failed = result.is_err();
                    if sender.send(result).is_err() || failed {
                        break;
                    }
                }
            });
        }
        drop(sender);
        emit_in_order(request, chunks.len(), &receiver)
    })?;

    println!(
        "END rows={} sha256={} cache_hits={} cache_misses={}",
        summary.rows, summary.sha256, summary.cache_hits, summary.cache_misses,
    );
    Ok(())
}

struct EmitSummary {
    rows: u64,
    sha256: String,
    cache_hits: u64,
    cache_misses: u64,
}

/// Releases buffered chunk results in chunk order through a
/// [`RowEmitter`] writing to stdout, hashing the payload as it goes.
fn emit_in_order(
    request: &Request,
    total_chunks: usize,
    receiver: &mpsc::Receiver<Result<ChunkResult, String>>,
) -> Result<EmitSummary, String> {
    let stdout = io::stdout();
    let mut sink = HashingSink {
        out: io::BufWriter::new(stdout.lock()),
        digest: Sha256::new(),
    };
    let mut emitter = RowEmitter::begin(&mut sink, request.format, request.engine.csv_header())
        .map_err(|e| format!("stdout: {e}"))?;

    let mut pending: BTreeMap<usize, ChunkResult> = BTreeMap::new();
    let mut next = 0usize;
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    while next < total_chunks {
        let result = receiver
            .recv()
            .map_err(|_| "worker pool hung up early".to_owned())?
            .map_err(|e| format!("chunk failed: {e}"))?;
        pending.insert(result.chunk, result);
        while let Some(ready) = pending.remove(&next) {
            for row in &ready.rows {
                let text = std::str::from_utf8(row).map_err(|e| format!("bad row bytes: {e}"))?;
                emitter.row(text).map_err(|e| format!("stdout: {e}"))?;
            }
            cache_hits += ready.cache_hits;
            cache_misses += ready.cache_misses;
            next += 1;
        }
    }
    let rows = emitter.finish().map_err(|e| format!("stdout: {e}"))?;
    sink.out.flush().map_err(|e| format!("stdout: {e}"))?;
    Ok(EmitSummary {
        rows,
        sha256: sink.digest.finalize_hex(),
        cache_hits,
        cache_misses,
    })
}

/// Writes to stdout while folding every byte into a SHA-256, so the END
/// trailer can certify exactly what was sent.
struct HashingSink<W: Write> {
    out: W,
    digest: Sha256,
}

impl<W: Write> corridor_core::sink::RowSink for HashingSink<W> {
    fn write(&mut self, chunk: &str) -> corridor_core::sink::SinkResult<()> {
        self.digest.update(chunk.as_bytes());
        self.out
            .write_all(chunk.as_bytes())
            .map_err(corridor_core::sink::SinkError::Io)
    }

    fn finish(&mut self) -> corridor_core::sink::SinkResult<()> {
        self.out.flush().map_err(corridor_core::sink::SinkError::Io)
    }
}

/// One child worker process with line-buffered stdin and framed stdout.
struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerHandle {
    fn spawn() -> io::Result<WorkerHandle> {
        let exe = std::env::current_exe()?;
        let mut child = Command::new(exe)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(WorkerHandle {
            child,
            stdin,
            stdout,
        })
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs one chunk on the thread's worker, respawning the child and
/// re-dispatching on any mid-chunk death, up to [`MAX_ATTEMPTS`].
fn run_chunk_with_retry(
    worker: &mut io::Result<WorkerHandle>,
    request: &Request,
    index: usize,
    range: &std::ops::Range<usize>,
    crash_cell: Option<usize>,
) -> Result<ChunkResult, String> {
    let mut last_error = String::new();
    for attempt in 1..=MAX_ATTEMPTS {
        // the injected fault fires on the first attempt only: the retry
        // must succeed and reproduce the exact rows
        let crash = crash_cell.filter(|cell| attempt == 1 && range.contains(cell));
        let handle = match worker {
            Ok(handle) => handle,
            Err(error) => {
                last_error = format!("cannot spawn worker: {error}");
                *worker = WorkerHandle::spawn();
                continue;
            }
        };
        match run_chunk(handle, request, index, range, crash) {
            Ok(result) => return Ok(result),
            Err(error) => {
                eprintln!(
                    "serve: chunk {index} (cells {}..{}) attempt {attempt} failed: {error}; \
                     respawning worker and retrying",
                    range.start, range.end,
                );
                last_error = error;
                *worker = WorkerHandle::spawn();
            }
        }
    }
    Err(format!(
        "chunk {index} failed after {MAX_ATTEMPTS} attempts: {last_error}"
    ))
}

/// Dispatches one task line and reads the framed rows back.
fn run_chunk(
    worker: &mut WorkerHandle,
    request: &Request,
    index: usize,
    range: &std::ops::Range<usize>,
    crash: Option<usize>,
) -> Result<ChunkResult, String> {
    let task = request.task_line(range, crash);
    writeln!(worker.stdin, "{task}").map_err(|e| format!("worker stdin: {e}"))?;
    worker
        .stdin
        .flush()
        .map_err(|e| format!("worker stdin: {e}"))?;

    let mut rows = Vec::new();
    let mut digest = Sha256::new();
    loop {
        let mut line = String::new();
        let n = worker
            .stdout
            .read_line(&mut line)
            .map_err(|e| format!("worker stdout: {e}"))?;
        if n == 0 {
            return Err("worker died mid-chunk (eof)".into());
        }
        let line = line.trim_end_matches('\n');
        if let Some(length) = line.strip_prefix("row ") {
            let length: usize = length.parse().map_err(|e| format!("bad frame: {e}"))?;
            let mut bytes = vec![0u8; length + 1];
            worker
                .stdout
                .read_exact(&mut bytes)
                .map_err(|_| "worker died mid-frame".to_owned())?;
            if bytes.pop() != Some(b'\n') {
                return Err("frame missing terminator".into());
            }
            digest.update(&bytes);
            rows.push(bytes);
        } else if let Some(trailer) = line.strip_prefix("done ") {
            let (count, hits, misses, sha) = parse_done(trailer)?;
            if count != rows.len() as u64 || sha != digest.finalize_hex() {
                return Err("worker trailer does not match received frames".into());
            }
            return Ok(ChunkResult {
                chunk: index,
                rows,
                cache_hits: hits,
                cache_misses: misses,
            });
        } else if let Some(error) = line.strip_prefix("error ") {
            return Err(format!("worker: {error}"));
        } else {
            return Err(format!("unexpected worker line {line:?}"));
        }
    }
}

fn parse_done(trailer: &str) -> Result<(u64, u64, u64, String), String> {
    let (mut rows, mut hits, mut misses, mut sha) = (None, None, None, None);
    for word in trailer.split_whitespace() {
        match word.split_once('=') {
            Some(("rows", v)) => rows = v.parse().ok(),
            Some(("cache_hits", v)) => hits = v.parse().ok(),
            Some(("cache_misses", v)) => misses = v.parse().ok(),
            Some(("sha256", v)) => sha = Some(v.to_owned()),
            _ => return Err(format!("bad done field {word:?}")),
        }
    }
    match (rows, hits, misses, sha) {
        (Some(r), Some(h), Some(m), Some(s)) => Ok((r, h, m, s)),
        _ => Err("incomplete done trailer".into()),
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Child-process mode: evaluates task lines from the coordinator,
/// streaming each chunk's rows back as length-prefixed frames.
fn worker_main() -> ExitCode {
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return ExitCode::FAILURE,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Err(error) = run_task(trimmed) {
            println!("error {error}");
            let _ = io::stdout().flush();
        }
    }
    ExitCode::SUCCESS
}

fn run_task(line: &str) -> Result<(), String> {
    let rest = line
        .strip_prefix("task ")
        .ok_or_else(|| format!("unexpected line {line:?}"))?;
    let mut range = 0..0;
    let mut crash = None;
    let mut fields = Vec::new();
    for word in rest.split_whitespace().skip(1) {
        match word.split_once('=') {
            Some(("range", value)) => {
                let (a, b) = value.split_once(':').ok_or("range needs a:b")?;
                range = a.parse().map_err(|e| format!("range: {e}"))?
                    ..b.parse().map_err(|e| format!("range: {e}"))?;
            }
            Some(("crash", value)) => {
                crash = Some(value.parse().map_err(|e| format!("crash: {e}"))?);
            }
            Some(("cache", _)) | Some(("grid", _)) | Some(("format", _)) | Some(("reps", _))
            | Some(("seed", _)) => fields.push(word),
            _ => return Err(format!("bad task field {word:?}")),
        }
    }
    let engine = rest.split_whitespace().next().unwrap_or_default();
    let request = Request::parse(&format!("{engine} {}", fields.join(" ")))?;
    let grid = request.resolve_grid()?;
    let cache = match &request.cache {
        Some(dir) => Some(ResultCache::open(dir).map_err(|e| format!("cache {dir}: {e}"))?),
        None => None,
    };

    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let mut emitted = 0usize;
    let mut digest = Sha256::new();
    let mut emit = |row: &str| -> Result<(), StreamError> {
        // the injected fault: die mid-shard right before this cell's row
        if crash == Some(range.start + emitted) {
            let _ = out.flush();
            std::process::exit(101);
        }
        emitted += 1;
        digest.update(row.as_bytes());
        out.write_all(format!("row {}\n", row.len()).as_bytes())
            .and_then(|()| out.write_all(row.as_bytes()))
            .and_then(|()| out.write_all(b"\n"))
            .map_err(|e| StreamError::Sink(corridor_core::sink::SinkError::Io(e)))
    };

    let summary = match request.engine {
        EngineKind::Sweep => SweepEngine::new().workers(1).stream_rows(
            &grid,
            range.clone(),
            request.format,
            cache.as_ref(),
            &mut emit,
        ),
        EngineKind::Mc => {
            let plan = ReplicationPlan::new(request.replications).master_seed(request.master_seed);
            McEngine::new().workers(1).stream_rows(
                &grid,
                &plan,
                range.clone(),
                request.format,
                cache.as_ref(),
                &mut emit,
            )
        }
        EngineKind::Optimize => DeploymentOptimizer::new().workers(1).stream_rows(
            &grid,
            &serve_search_space(),
            range.clone(),
            request.format,
            cache.as_ref(),
            &mut emit,
        ),
    }
    .map_err(|e| format!("{e}"))?;

    writeln!(
        out,
        "done rows={} cache_hits={} cache_misses={} sha256={}",
        summary.rows,
        summary.cache_hits,
        summary.cache_misses,
        digest.finalize_hex(),
    )
    .and_then(|()| out.flush())
    .map_err(|e| format!("stdout: {e}"))
}
