//! Regenerates the paper's Table IV: PVGIS-style sizing results for the
//! four exemplary regions over one year.

use corridor_core::experiments;
use corridor_core::report::TextTable;

fn main() {
    println!("Table IV — off-grid PV sizing at the four example regions\n");
    let mut table = TextTable::new(vec![
        "parameter".into(),
        "Madrid".into(),
        "Lyon".into(),
        "Vienna".into(),
        "Berlin".into(),
    ]);
    let rows = experiments::table4();
    table.add_row(
        std::iter::once("Required peak PV power [Wp]".to_string())
            .chain(rows.iter().map(|r| format!("{:.0}", r.pv_peak.value())))
            .collect(),
    );
    table.add_row(
        std::iter::once("Required battery capacity [Wh]".to_string())
            .chain(rows.iter().map(|r| format!("{:.0}", r.battery.value())))
            .collect(),
    );
    table.add_row(
        std::iter::once("Days with full battery [%]".to_string())
            .chain(rows.iter().map(|r| format!("{:.2}", r.days_full_pct)))
            .collect(),
    );
    println!("{}", table.render());
    println!(
        "paper:  540/540/540/600 Wp, 720/720/1440/1440 Wh, 98.13/95.15/93.73/88.0 % days full"
    );
    println!("(percentages depend on the satellite weather database; see EXPERIMENTS.md)");
}
