//! Average corridor energy per hour and kilometre (the paper's Fig. 4).

// Order-safety audit (hash-order): the memo table below is only ever
// key-probed (`entry`/`get`/`insert`); no code path iterates it, so its
// nondeterministic bucket order cannot reach a report, sink or CSV row.
// corridor-lint: allow(hash-order, reason = "memo table is key-probed only, never iterated; order cannot escape")
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use corridor_deploy::{Corridor, IsdTable, SegmentInventory};
use corridor_traffic::{ActivityTimeline, TrackSection};
use corridor_units::{Hours, Meters, WattHours, Watts};

use crate::{EnergyStrategy, ScenarioError, ScenarioParams};

/// Average mains power per kilometre of corridor, split by equipment role.
///
/// Because the traffic pattern repeats daily, the average power in watts
/// equals the average energy in watt-hours per hour — the unit of the
/// paper's Fig. 4 y-axis.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentEnergy {
    /// High-power masts, W/km.
    pub hp: Watts,
    /// Low-power service repeater nodes, W/km.
    pub service: Watts,
    /// Low-power donor repeater nodes, W/km.
    pub donor: Watts,
}

impl SegmentEnergy {
    /// Total average mains power per kilometre.
    pub fn total(&self) -> Watts {
        self.hp + self.service + self.donor
    }

    /// Average energy per hour per kilometre (numerically equal to
    /// [`SegmentEnergy::total`]).
    pub fn hourly_energy_per_km(&self) -> WattHours {
        WattHours::new(self.total().value())
    }

    /// Fractional savings of this deployment versus `baseline`.
    ///
    /// Convention: a baseline that draws no energy (a degenerate
    /// scenario cell, e.g. a stochastic day that sampled zero trains)
    /// admits no savings, so the method returns `0.0` instead of the
    /// NaN/∞ a naive division would produce — large sweeps must never
    /// silently poison their CSV/JSON output.
    pub fn savings_vs(&self, baseline: &SegmentEnergy) -> f64 {
        let base = baseline.total().value();
        if base <= 0.0 || !base.is_finite() {
            return 0.0;
        }
        1.0 - self.total().value() / base
    }
}

/// Everything the daily activity of a coverage section depends on —
/// the deterministic timetable and the section bounds — compared by
/// bits so distinct floats never alias.
type ActivityKey = [u64; 7];

fn activity_key(params: &ScenarioParams, section: &TrackSection) -> ActivityKey {
    let timetable = params.timetable();
    let train = timetable.train();
    [
        timetable.trains_per_hour().to_bits(),
        timetable.service_window().value().to_bits(),
        timetable.service_start().value().to_bits(),
        train.length().value().to_bits(),
        train.speed().value().to_bits(),
        section.start().value().to_bits(),
        section.end().value().to_bits(),
    ]
}

fn activity_cache() -> &'static Mutex<HashMap<ActivityKey, u64>> {
    static CACHE: OnceLock<Mutex<HashMap<ActivityKey, u64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Daily full-load hours of a node whose coverage section spans
/// `section`, memoized process-wide.
///
/// A sweep evaluates thousands of cells that share a handful of
/// `(timetable, section)` combinations; expanding the timetable into
/// passes and merging the occupancy timeline for each one is the hot
/// analytic-path cost. The memo stores the resulting hours by the bit
/// pattern of every input the timeline depends on, so a hit is exact —
/// never a nearby float — and a cached value is bit-identical to a
/// fresh computation.
pub fn active_hours(params: &ScenarioParams, section: TrackSection) -> Hours {
    let key = activity_key(params, &section);
    if let Some(&bits) = activity_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return Hours::new(f64::from_bits(bits));
    }
    let hours =
        ActivityTimeline::for_section(&section, &params.timetable().passes()).total_active_hours();
    activity_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, hours.value().to_bits());
    hours
}

/// Average mains power per km for `n` repeater nodes at inter-site
/// distance `isd` under `strategy`.
///
/// Model (paper Section V-A):
///
/// * each high-power mast serves one ISD-long section, runs at full load
///   while a train overlaps it and sleeps otherwise;
/// * each service repeater serves a section of the node spacing
///   (Table III: 200 m) around its mast;
/// * donor repeaters (1 for a single service node, else 2) are active
///   whenever the train is inside the segment they feed (ISD-long
///   section);
/// * under [`EnergyStrategy::ContinuousRepeaters`] repeaters idle at `P0`
///   instead of sleeping; under
///   [`EnergyStrategy::SolarPoweredRepeaters`] they draw no mains power.
///
/// # Examples
///
/// ```
/// use corridor_core::{energy, EnergyStrategy, ScenarioParams};
/// use corridor_units::Meters;
///
/// let params = ScenarioParams::paper_default();
/// let conventional = energy::conventional_baseline(&params);
/// // the paper's conventional corridor: ≈ 467 Wh per hour per km
/// assert!((conventional.total().value() - 467.0).abs() < 2.0);
///
/// let one_node = energy::average_power_per_km(
///     &params, 1, Meters::new(1250.0), EnergyStrategy::SleepModeRepeaters);
/// assert!(one_node.total() < conventional.total());
/// ```
pub fn average_power_per_km(
    params: &ScenarioParams,
    n: usize,
    isd: Meters,
    strategy: EnergyStrategy,
) -> SegmentEnergy {
    let hp_active = active_hours(params, TrackSection::new(Meters::ZERO, isd));
    let service_active = active_hours(params, TrackSection::around(isd / 2.0, params.lp_spacing()));
    split_from_active_hours(params, n, isd, strategy, hp_active, service_active)
}

/// [`average_power_per_km`] with the activity integrals already in hand.
///
/// This is the entire split computation downstream of the timeline:
/// `hp_active` is the daily occupancy of the ISD-long section (driving
/// masts and donors), `service_active` that of the spacing-wide section
/// around the mid-segment service node. The scalar path and the
/// struct-of-arrays batch evaluator both call this one function, so
/// their results are bit-identical by construction.
pub fn split_from_active_hours(
    params: &ScenarioParams,
    n: usize,
    isd: Meters,
    strategy: EnergyStrategy,
    hp_active: Hours,
    service_active: Hours,
) -> SegmentEnergy {
    let inventory = SegmentInventory::for_nodes(n, isd);
    let per_km = inventory.segments_per_km();

    // High-power mast: full load while a train is in its ISD section,
    // asleep otherwise (all strategies).
    let hp_duty = corridor_power::DutyCycle::over_day(hp_active, Hours::ZERO);
    let hp_avg = hp_duty.average_power(params.hp_mast());

    // Service node: full load while a train is within its spacing-wide
    // section.
    let service_duty = corridor_power::DutyCycle::over_day(service_active, Hours::ZERO);

    // Donor node: full load while a train is anywhere in the segment.
    let donor_duty = corridor_power::DutyCycle::over_day(hp_active, Hours::ZERO);

    let (service_avg, donor_avg) = match strategy {
        EnergyStrategy::ContinuousRepeaters => (
            service_duty.average_power_idle_fallback(params.lp_node()),
            donor_duty.average_power_idle_fallback(params.lp_node()),
        ),
        EnergyStrategy::SleepModeRepeaters => (
            service_duty.average_power(params.lp_node()),
            donor_duty.average_power(params.lp_node()),
        ),
        EnergyStrategy::SolarPoweredRepeaters => (Watts::ZERO, Watts::ZERO),
    };

    SegmentEnergy {
        hp: hp_avg * per_km,
        service: service_avg * (inventory.service_nodes() as f64 * per_km),
        donor: donor_avg * (inventory.donor_nodes() as f64 * per_km),
    }
}

/// Average mains power of a whole line (all segments of `corridor`)
/// under `strategy`, in watts.
///
/// Each segment contributes its per-km average scaled by its length, so
/// heterogeneous lines (station throats at 500 m next to repeater
/// stretches at 2400 m) are evaluated in one call.
///
/// # Examples
///
/// ```
/// use corridor_core::{energy, EnergyStrategy, ScenarioParams};
/// use corridor_deploy::{Corridor, PlacementPolicy};
/// use corridor_units::Meters;
///
/// let params = ScenarioParams::paper_default();
/// let mut line = Corridor::new();
/// line.push_conventional(Meters::new(500.0));
/// line.push_with_repeaters(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())?;
/// let power = energy::line_average_power(
///     &params, &line, EnergyStrategy::SleepModeRepeaters);
/// assert!(power.value() > 0.0);
/// # Ok::<(), corridor_deploy::PlacementError>(())
/// ```
pub fn line_average_power(
    params: &ScenarioParams,
    corridor: &Corridor,
    strategy: EnergyStrategy,
) -> Watts {
    corridor
        .segments()
        .iter()
        .map(|segment| {
            let per_km =
                average_power_per_km(params, segment.repeater_count(), segment.isd(), strategy);
            per_km.total() * segment.isd().kilometers().value()
        })
        .sum()
}

/// Savings of a whole line versus building it conventionally (every
/// segment at the conventional reference ISD).
///
/// Follows the [`SegmentEnergy::savings_vs`] convention: a line whose
/// conventional baseline draws nothing (e.g. an empty corridor) admits
/// no savings and yields `0.0`, never NaN/∞.
pub fn line_savings_vs_conventional(
    params: &ScenarioParams,
    corridor: &Corridor,
    strategy: EnergyStrategy,
) -> f64 {
    let deployed = line_average_power(params, corridor, strategy);
    let baseline = conventional_baseline(params).total() * corridor.total_length().value();
    if baseline.value() <= 0.0 || !baseline.value().is_finite() {
        return 0.0;
    }
    1.0 - deployed / baseline
}

/// The conventional baseline: high-power masts every
/// [`ScenarioParams::conventional_isd`], no repeaters, masts sleeping
/// between trains.
pub fn conventional_baseline(params: &ScenarioParams) -> SegmentEnergy {
    average_power_per_km(
        params,
        0,
        params.conventional_isd(),
        EnergyStrategy::SleepModeRepeaters,
    )
}

/// Savings of the `n`-node deployment (ISD from `table`) under `strategy`
/// versus the conventional baseline, as a fraction in `[0, 1]`.
///
/// # Errors
///
/// Returns [`ScenarioError::NoIsdForNodeCount`] if `table` has no entry
/// for `n` — a recoverable condition for sweep engines expanding
/// machine-generated grids, where a panic would kill the whole parallel
/// run.
pub fn savings_vs_conventional(
    params: &ScenarioParams,
    table: &IsdTable,
    n: usize,
    strategy: EnergyStrategy,
) -> Result<f64, ScenarioError> {
    let isd = table
        .isd_for(n)
        .ok_or(ScenarioError::NoIsdForNodeCount(n))?;
    let deployment = average_power_per_km(params, n, isd, strategy);
    Ok(deployment.savings_vs(&conventional_baseline(params)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams::paper_default()
    }

    #[test]
    fn conventional_baseline_value() {
        // hand calculation: 2 masts/km, each 233.6 W average = 467 W/km
        let base = conventional_baseline(&params());
        assert!((base.total().value() - 467.1).abs() < 1.0, "{:?}", base);
        assert_eq!(base.service, Watts::ZERO);
        assert_eq!(base.donor, Watts::ZERO);
    }

    #[test]
    fn paper_sleep_mode_savings() {
        let table = IsdTable::paper();
        // paper Section V-A: 57 % with one node, 74 % with ten
        let one = savings_vs_conventional(&params(), &table, 1, EnergyStrategy::SleepModeRepeaters)
            .unwrap();
        assert!((one - 0.57).abs() < 0.01, "one node: {one}");
        let ten =
            savings_vs_conventional(&params(), &table, 10, EnergyStrategy::SleepModeRepeaters)
                .unwrap();
        assert!((ten - 0.74).abs() < 0.01, "ten nodes: {ten}");
    }

    #[test]
    fn paper_solar_savings() {
        let table = IsdTable::paper();
        // paper: 59 % with one node, 79 % with ten
        let one =
            savings_vs_conventional(&params(), &table, 1, EnergyStrategy::SolarPoweredRepeaters)
                .unwrap();
        assert!((one - 0.59).abs() < 0.01, "one node: {one}");
        let ten =
            savings_vs_conventional(&params(), &table, 10, EnergyStrategy::SolarPoweredRepeaters)
                .unwrap();
        assert!((ten - 0.79).abs() < 0.01, "ten nodes: {ten}");
    }

    #[test]
    fn paper_continuous_crosses_half_at_three_nodes() {
        let table = IsdTable::paper();
        // paper: "at least three low-power repeater nodes ... below 50 %"
        let two =
            savings_vs_conventional(&params(), &table, 2, EnergyStrategy::ContinuousRepeaters)
                .unwrap();
        let three =
            savings_vs_conventional(&params(), &table, 3, EnergyStrategy::ContinuousRepeaters)
                .unwrap();
        assert!(two < 0.5, "two nodes: {two}");
        assert!(three > 0.5, "three nodes: {three}");
    }

    #[test]
    fn strategy_ordering_everywhere() {
        let table = IsdTable::paper();
        for n in 1..=10 {
            let isd = table.isd_for(n).unwrap();
            let continuous =
                average_power_per_km(&params(), n, isd, EnergyStrategy::ContinuousRepeaters);
            let sleep = average_power_per_km(&params(), n, isd, EnergyStrategy::SleepModeRepeaters);
            let solar =
                average_power_per_km(&params(), n, isd, EnergyStrategy::SolarPoweredRepeaters);
            assert!(continuous.total() > sleep.total(), "n={n}");
            assert!(sleep.total() > solar.total(), "n={n}");
            // HP share identical across strategies
            assert_eq!(continuous.hp, sleep.hp);
            assert_eq!(sleep.hp, solar.hp);
            assert_eq!(solar.service, Watts::ZERO);
        }
    }

    #[test]
    fn savings_increase_with_node_count_for_solar() {
        let table = IsdTable::paper();
        let mut last = 0.0;
        for n in 1..=10 {
            let s = savings_vs_conventional(
                &params(),
                &table,
                n,
                EnergyStrategy::SolarPoweredRepeaters,
            )
            .unwrap();
            assert!(s > last, "n={n}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn segment_energy_helpers() {
        let base = conventional_baseline(&params());
        assert_eq!(base.hourly_energy_per_km().value(), base.total().value());
        assert_eq!(base.savings_vs(&base), 0.0);
    }

    #[test]
    fn line_energy_matches_segment_sum() {
        use corridor_deploy::{Corridor, PlacementPolicy};
        let p = params();
        let mut line = Corridor::new();
        line.push_conventional(Meters::new(500.0));
        line.push_with_repeaters(Meters::new(2400.0), 8, &PlacementPolicy::paper_default())
            .unwrap();
        let total = line_average_power(&p, &line, EnergyStrategy::SleepModeRepeaters);
        let manual = average_power_per_km(
            &p,
            0,
            Meters::new(500.0),
            EnergyStrategy::SleepModeRepeaters,
        )
        .total()
            * 0.5
            + average_power_per_km(
                &p,
                8,
                Meters::new(2400.0),
                EnergyStrategy::SleepModeRepeaters,
            )
            .total()
                * 2.4;
        assert!((total.value() - manual.value()).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_line_savings_match_per_km() {
        use corridor_deploy::{Corridor, PlacementPolicy};
        let p = params();
        let table = IsdTable::paper();
        let isd = table.isd_for(8).unwrap();
        let mut line = Corridor::new();
        for _ in 0..5 {
            line.push_with_repeaters(isd, 8, &PlacementPolicy::paper_default())
                .unwrap();
        }
        let line_savings =
            line_savings_vs_conventional(&p, &line, EnergyStrategy::SleepModeRepeaters);
        let per_km =
            savings_vs_conventional(&p, &table, 8, EnergyStrategy::SleepModeRepeaters).unwrap();
        assert!((line_savings - per_km).abs() < 1e-9);
    }

    #[test]
    fn empty_line_yields_zero_savings_not_nan() {
        // same zero-baseline convention as SegmentEnergy::savings_vs: an
        // empty corridor has a zero-length (zero-energy) baseline
        let empty = Corridor::new();
        let s = line_savings_vs_conventional(&params(), &empty, EnergyStrategy::SleepModeRepeaters);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn missing_table_entry_is_a_recoverable_error() {
        // a missing ISD entry must not panic (it used to kill whole
        // parallel sweeps); it surfaces as a typed ScenarioError instead
        let err = savings_vs_conventional(
            &params(),
            &IsdTable::paper(),
            11,
            EnergyStrategy::SleepModeRepeaters,
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::NoIsdForNodeCount(11));
        assert!(err.to_string().contains("11"));
    }

    #[test]
    fn zero_baseline_yields_zero_savings_not_nan() {
        // regression: a zero-energy baseline used to produce NaN (0/0)
        // or -inf (x/0) that flowed silently into sweep CSV/JSON
        let zero = SegmentEnergy {
            hp: Watts::ZERO,
            service: Watts::ZERO,
            donor: Watts::ZERO,
        };
        let deployed = SegmentEnergy {
            hp: Watts::new(100.0),
            service: Watts::new(10.0),
            donor: Watts::new(5.0),
        };
        assert_eq!(deployed.savings_vs(&zero), 0.0);
        assert_eq!(zero.savings_vs(&zero), 0.0);
        // the sane direction still works
        assert!(deployed.savings_vs(&deployed).abs() < 1e-12);
        assert!(zero.savings_vs(&deployed) > 0.99);
    }
}
