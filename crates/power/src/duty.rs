//! Duty cycles: time-weighted average power and energy.

use core::fmt;

use corridor_units::{Hours, WattHours, Watts};

use crate::{LoadDependentPower, OperatingState};

/// Error constructing a [`DutyCycle`] whose state durations exceed the
/// period or are negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleError {
    active: Hours,
    idle: Hours,
    period: Hours,
}

impl fmt::Display for DutyCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid duty cycle: active {} + idle {} exceeds period {} (or a duration is negative)",
            self.active, self.idle, self.period
        )
    }
}

impl std::error::Error for DutyCycleError {}

/// How a node's time is split between operating states over a period.
///
/// The remainder of the period after `active` (full load) and `idle`
/// (awake, no traffic) hours is spent in whichever fallback state the
/// energy strategy dictates: [`DutyCycle::average_power`] assumes sleep for
/// the remainder, [`DutyCycle::average_power_idle_fallback`] assumes idle
/// (for equipment without a sleep mode, the paper's "continuous
/// operation" repeaters).
///
/// # Examples
///
/// ```
/// use corridor_power::{catalog, DutyCycle};
/// use corridor_units::Hours;
///
/// // HP mast at ISD 500 m: full load 2.85 % of the day, sleep otherwise
/// let duty = DutyCycle::over_day(Hours::new(0.684), Hours::ZERO);
/// let avg = duty.average_power(&catalog::high_power_mast());
/// assert!((avg.value() - 233.6).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DutyCycle {
    active: Hours,
    idle: Hours,
    period: Hours,
}

impl DutyCycle {
    /// A duty cycle over one day with the given active and idle hours; the
    /// rest of the day is the fallback state.
    ///
    /// # Panics
    ///
    /// Panics if durations are negative or exceed 24 h in total; use
    /// [`DutyCycle::new`] for a fallible constructor.
    pub fn over_day(active: Hours, idle: Hours) -> Self {
        // corridor-lint: allow(no-panic, reason = "documented `# Panics` convenience constructor; DutyCycle::new is the fallible form")
        DutyCycle::new(active, idle, Hours::DAY).expect("valid daily duty cycle")
    }

    /// A duty cycle over an arbitrary period.
    ///
    /// # Errors
    ///
    /// Returns [`DutyCycleError`] if a duration is negative or
    /// `active + idle > period`.
    pub fn new(active: Hours, idle: Hours, period: Hours) -> Result<Self, DutyCycleError> {
        let ok = active.value() >= 0.0
            && idle.value() >= 0.0
            && period.value() > 0.0
            && active.value() + idle.value() <= period.value() + 1e-12;
        if ok {
            Ok(DutyCycle {
                active,
                idle,
                period,
            })
        } else {
            Err(DutyCycleError {
                active,
                idle,
                period,
            })
        }
    }

    /// Hours at full load per period.
    pub fn active(&self) -> Hours {
        self.active
    }

    /// Hours awake but idle per period.
    pub fn idle(&self) -> Hours {
        self.idle
    }

    /// The accounting period.
    pub fn period(&self) -> Hours {
        self.period
    }

    /// Hours in the fallback (sleep or idle) state per period.
    pub fn remainder(&self) -> Hours {
        self.period - self.active - self.idle
    }

    /// Fraction of the period spent at full load.
    pub fn active_fraction(&self) -> f64 {
        self.active / self.period
    }

    /// Energy per period when the remainder of the time is spent asleep.
    pub fn energy(&self, model: &LoadDependentPower) -> WattHours {
        self.energy_with_fallback(model, OperatingState::Sleep)
    }

    /// Energy per period when the remainder is spent in `fallback`.
    pub fn energy_with_fallback(
        &self,
        model: &LoadDependentPower,
        fallback: OperatingState,
    ) -> WattHours {
        model.input_power(OperatingState::full_load()) * self.active
            + model.input_power(OperatingState::Idle) * self.idle
            + model.input_power(fallback) * self.remainder()
    }

    /// Time-averaged power with a sleeping remainder.
    pub fn average_power(&self, model: &LoadDependentPower) -> Watts {
        self.energy(model) / self.period
    }

    /// Time-averaged power when the node cannot sleep (remainder idles).
    pub fn average_power_idle_fallback(&self, model: &LoadDependentPower) -> Watts {
        self.energy_with_fallback(model, OperatingState::Idle) / self.period
    }

    /// Energy over one day (scales the period energy to 24 h).
    pub fn daily_energy(&self, model: &LoadDependentPower) -> WattHours {
        self.energy(model) * (Hours::DAY / self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn paper_repeater_daily_energy() {
        // LP service node: 152 trains/day × 10.8 s = 0.456 h at full load,
        // sleeping otherwise -> 124.1 Wh/day, 5.17 W average.
        let duty = DutyCycle::over_day(Hours::new(0.456), Hours::ZERO);
        let model = catalog::low_power_repeater_measured();
        let daily = duty.daily_energy(&model);
        assert!((daily.value() - 124.07).abs() < 0.1, "got {daily}");
        let avg = duty.average_power(&model);
        assert!((avg.value() - 5.17).abs() < 0.01, "got {avg}");
    }

    #[test]
    fn paper_hp_duty_fractions() {
        // ISD 500 m: 2.85 % full load; ISD 2650 m: 9.66 %.
        let short = DutyCycle::over_day(Hours::new(0.684), Hours::ZERO);
        assert!((short.active_fraction() - 0.0285).abs() < 0.0001);
        let long = DutyCycle::over_day(Hours::new(2.318), Hours::ZERO);
        assert!((long.active_fraction() - 0.0966).abs() < 0.0001);
    }

    #[test]
    fn continuous_operation_uses_idle_fallback() {
        let duty = DutyCycle::over_day(Hours::new(0.456), Hours::ZERO);
        let model = catalog::low_power_repeater_measured();
        let avg = duty.average_power_idle_fallback(&model);
        // (0.456·28.38 + 23.544·24.26)/24 = 24.34 W
        assert!((avg.value() - 24.34).abs() < 0.01, "got {avg}");
    }

    #[test]
    fn remainder_and_accessors() {
        let duty = DutyCycle::over_day(Hours::new(2.0), Hours::new(3.0));
        assert_eq!(duty.active(), Hours::new(2.0));
        assert_eq!(duty.idle(), Hours::new(3.0));
        assert_eq!(duty.period(), Hours::DAY);
        assert_eq!(duty.remainder(), Hours::new(19.0));
    }

    #[test]
    fn invalid_cycles_rejected() {
        assert!(DutyCycle::new(Hours::new(20.0), Hours::new(10.0), Hours::DAY).is_err());
        assert!(DutyCycle::new(Hours::new(-1.0), Hours::ZERO, Hours::DAY).is_err());
        assert!(DutyCycle::new(Hours::ZERO, Hours::ZERO, Hours::ZERO).is_err());
        let err = DutyCycle::new(Hours::new(20.0), Hours::new(10.0), Hours::DAY).unwrap_err();
        assert!(err.to_string().contains("exceeds period"));
    }

    #[test]
    fn energy_with_fallbacks_ordering() {
        let duty = DutyCycle::over_day(Hours::new(1.0), Hours::ZERO);
        let model = catalog::low_power_repeater();
        let sleeping = duty.energy(&model);
        let idling = duty.energy_with_fallback(&model, OperatingState::Idle);
        assert!(idling > sleeping);
    }

    #[test]
    fn daily_energy_scales_period() {
        let model = catalog::low_power_repeater();
        let hourly = DutyCycle::new(Hours::new(0.019), Hours::ZERO, Hours::new(1.0)).unwrap();
        let daily = DutyCycle::over_day(Hours::new(0.456), Hours::ZERO);
        assert!(
            (hourly.daily_energy(&model).value() - daily.daily_energy(&model).value()).abs() < 1e-9
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<DutyCycleError>();
    }
}
