//! Serial and parallel sweep execution over pluggable energy backends.

use core::ops::Range;

use corridor_core::energy::SegmentEnergy;
use corridor_core::sink::{RowEmitter, RowFormat, RowSink};
use corridor_core::{AnalyticEvaluator, EnergyStrategy, ScenarioError, SegmentEvaluator};
use corridor_events::{EventDrivenEvaluator, WakePolicy};
use corridor_solar::{sizing, DailyLoadProfile};
use corridor_traffic::TrackSection;
use corridor_units::Watts;
use rayon::prelude::*;

use crate::cache::{KeyBuilder, ResultCache};
use crate::report::{render_sweep_row, CSV_HEADER};
use crate::stream::{self, ChunkRows, RowPair, StreamError, StreamSummary};
use crate::{batch, CellResult, PvOutcome, ScenarioCell, ScenarioGrid, SweepReport};

/// Cells per streaming work item — a whole number of SoA blocks, coarse
/// enough to amortize scheduling, small enough to bound buffered rows.
const STREAM_CHUNK: usize = 8 * batch::BLOCK;

/// Which energy backend evaluates the cells.
///
/// Both backends agree to < 0.1 % on deterministic timetables (enforced
/// by the differential suite); the event-driven one additionally models
/// wake latency and guard intervals through its [`WakePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Evaluator {
    /// Closed-form duty-cycle math (the published model; fastest).
    #[default]
    Analytic,
    /// Discrete-event simulation of every node under the given wake
    /// policy.
    EventDriven(WakePolicy),
}

impl Evaluator {
    /// The event-driven backend with instant wake transitions — the
    /// configuration the differential harness compares against the
    /// analytic backend.
    pub fn event_driven() -> Self {
        Evaluator::EventDriven(WakePolicy::instant())
    }

    /// A short stable label for report columns.
    pub fn name(&self) -> &'static str {
        match self {
            Evaluator::Analytic => AnalyticEvaluator.name(),
            Evaluator::EventDriven(policy) => EventDrivenEvaluator::with_policy(*policy).name(),
        }
    }

    /// Evaluates one cell's baseline and the three strategy splits.
    ///
    /// Returned in `[baseline, continuous, sleep, solar]` order. The
    /// event-driven backend simulates each geometry once (the state
    /// trace is strategy-independent), so a cell costs two simulated
    /// days — deployment and conventional baseline — not four.
    fn splits(&self, cell: &ScenarioCell) -> [SegmentEnergy; 4] {
        let params = cell.params();
        let baseline_isd = params.conventional_isd();
        match self {
            Evaluator::Analytic => {
                let at = |n, isd, strategy| {
                    AnalyticEvaluator.average_power_per_km(params, n, isd, strategy)
                };
                [
                    at(0, baseline_isd, EnergyStrategy::SleepModeRepeaters),
                    at(
                        cell.nodes(),
                        cell.isd(),
                        EnergyStrategy::ContinuousRepeaters,
                    ),
                    at(cell.nodes(), cell.isd(), EnergyStrategy::SleepModeRepeaters),
                    at(
                        cell.nodes(),
                        cell.isd(),
                        EnergyStrategy::SolarPoweredRepeaters,
                    ),
                ]
            }
            Evaluator::EventDriven(policy) => {
                let backend = EventDrivenEvaluator::with_policy(*policy);
                let passes = params.timetable().passes();
                let baseline_report = backend.simulate_segment(params, 0, baseline_isd, &passes);
                let report = backend.simulate_segment(params, cell.nodes(), cell.isd(), &passes);
                let at = |strategy| {
                    EventDrivenEvaluator::power_from_report(
                        params,
                        cell.nodes(),
                        cell.isd(),
                        strategy,
                        &report,
                    )
                };
                [
                    EventDrivenEvaluator::power_from_report(
                        params,
                        0,
                        baseline_isd,
                        EnergyStrategy::SleepModeRepeaters,
                        &baseline_report,
                    ),
                    at(EnergyStrategy::ContinuousRepeaters),
                    at(EnergyStrategy::SleepModeRepeaters),
                    at(EnergyStrategy::SolarPoweredRepeaters),
                ]
            }
        }
    }
}

/// Executes a [`ScenarioGrid`], cell by cell, serially or on a worker
/// pool.
///
/// Each cell is evaluated independently (energy split for the three
/// strategies through the selected [`Evaluator`], savings versus the
/// cell's conventional baseline, and — unless disabled — the off-grid PV
/// sizing for the cell's climate), so the parallel path produces results
/// identical to the serial one, in the same deterministic grid order.
///
/// # Examples
///
/// ```
/// use corridor_core::EnergyStrategy;
/// use corridor_sim::{Evaluator, ScenarioGrid, SweepEngine};
///
/// let engine = SweepEngine::new().workers(2).pv_sizing(false);
/// let report = engine.run(&ScenarioGrid::new()).unwrap();
/// // the paper's 74 % sleep-mode saving, via the sweep path
/// let saving = report.results()[0].savings(EnergyStrategy::SleepModeRepeaters);
/// assert!((saving - 0.74).abs() < 0.01);
///
/// // the same grid through the event-driven backend
/// let simulated = engine.evaluator(Evaluator::event_driven()).run(&ScenarioGrid::new()).unwrap();
/// let sim_saving = simulated.results()[0].savings(EnergyStrategy::SleepModeRepeaters);
/// assert!((sim_saving - saving).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepEngine {
    workers: Option<usize>,
    pv_sizing: bool,
    evaluator: Evaluator,
}

impl SweepEngine {
    /// An engine with automatic worker count, PV sizing enabled and the
    /// analytic backend.
    pub fn new() -> Self {
        SweepEngine {
            workers: None,
            pv_sizing: true,
            evaluator: Evaluator::Analytic,
        }
    }

    /// Sets an explicit worker count.
    ///
    /// An explicit `0` is rejected by [`SweepEngine::run`] with
    /// [`ScenarioError::ZeroWorkers`] — it used to be silently
    /// reinterpreted as "automatic", which hid configuration bugs. Omit
    /// the call (or rebuild the engine) for automatic machine
    /// parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Enables or disables the per-cell PV sizing (the expensive step:
    /// three seeded weather years per candidate configuration).
    #[must_use]
    pub fn pv_sizing(mut self, enabled: bool) -> Self {
        self.pv_sizing = enabled;
        self
    }

    /// Selects the energy backend evaluating every cell.
    #[must_use]
    pub fn evaluator(mut self, evaluator: Evaluator) -> Self {
        self.evaluator = evaluator;
        self
    }

    /// Expands the grid and evaluates every cell on the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::ZeroWorkers`] if an explicit worker
    /// count of zero was configured,
    /// [`ScenarioError::WorkerPoolBuild`] if the pool cannot be built,
    /// or the [`ScenarioError`] of the first cell whose parameters fail
    /// validation.
    pub fn run(&self, grid: &ScenarioGrid) -> Result<SweepReport, ScenarioError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers);
        }
        let cells = grid.expand()?;
        let pool = build_pool(self.workers)?;
        let chunks: Vec<&[ScenarioCell]> = cells.chunks(batch::BLOCK).collect();
        let blocks: Vec<Vec<CellResult>> = pool.install(|| {
            chunks
                .par_iter()
                .map(|chunk| self.evaluate_block(chunk))
                .collect()
        });
        Ok(SweepReport::new(blocks.into_iter().flatten().collect()))
    }

    /// Expands the grid and evaluates every cell on the calling thread —
    /// the reference path the parallel results are checked against.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::ZeroWorkers`] if an explicit worker
    /// count of zero was configured (the serial path needs no pool, but
    /// the configuration is just as wrong), or the [`ScenarioError`] of
    /// the first cell whose parameters fail validation.
    pub fn run_serial(&self, grid: &ScenarioGrid) -> Result<SweepReport, ScenarioError> {
        if self.workers == Some(0) {
            return Err(ScenarioError::ZeroWorkers);
        }
        let cells = grid.expand()?;
        Ok(SweepReport::new(
            cells
                .chunks(batch::BLOCK)
                .flat_map(|chunk| self.evaluate_block(chunk))
                .collect(),
        ))
    }

    /// Streams the whole grid into `sink` in grid order without ever
    /// materializing the report: memory stays flat however many cells
    /// the grid spans, and the emitted bytes are identical to
    /// [`SweepEngine::run`] + [`SweepReport::to_csv`] /
    /// [`SweepReport::to_json`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepEngine::run`], plus
    /// [`StreamError::Sink`] if the sink refuses a row.
    pub fn stream(
        &self,
        grid: &ScenarioGrid,
        format: RowFormat,
        sink: &mut dyn RowSink,
    ) -> Result<StreamSummary, StreamError> {
        self.stream_with(grid, format, sink, None)
    }

    /// [`SweepEngine::stream`] with an optional [`ResultCache`]: cells
    /// whose scenario hash already has a stored row are emitted without
    /// re-evaluation, and freshly computed rows are persisted.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepEngine::stream`].
    pub fn stream_with(
        &self,
        grid: &ScenarioGrid,
        format: RowFormat,
        sink: &mut dyn RowSink,
        cache: Option<&ResultCache>,
    ) -> Result<StreamSummary, StreamError> {
        let mut rows = RowEmitter::begin(sink, format, CSV_HEADER).map_err(StreamError::Sink)?;
        let summary = self.stream_rows(grid, 0..grid.len(), format, cache, |row| {
            rows.row(row).map_err(StreamError::Sink)
        })?;
        rows.finish().map_err(StreamError::Sink)?;
        Ok(summary)
    }

    /// Streams the raw rows of a cell range to `emit`, without header or
    /// framing — the building block the `serve` coordinator shards
    /// across worker processes. Rows arrive in grid order.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches past the grid's length (a caller bug,
    /// like any out-of-range index).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepEngine::stream`]; an `Err` from `emit`
    /// cancels the remaining evaluation and is returned.
    pub fn stream_rows(
        &self,
        grid: &ScenarioGrid,
        range: Range<usize>,
        format: RowFormat,
        cache: Option<&ResultCache>,
        mut emit: impl FnMut(&str) -> Result<(), StreamError>,
    ) -> Result<StreamSummary, StreamError> {
        let workers = stream::resolve_workers(self.workers)?;
        let chunks = stream::chunked_ranges(range, STREAM_CHUNK);
        stream::drive(
            workers,
            chunks,
            format,
            |chunk| self.stream_chunk(grid, chunk, cache),
            &mut emit,
        )
    }

    /// Evaluates one chunk of cells for the streaming path: probe the
    /// cache per cell, evaluate the misses in SoA blocks (bit-identical
    /// to the in-memory path's blocking), render and store their rows.
    fn stream_chunk(
        &self,
        grid: &ScenarioGrid,
        range: Range<usize>,
        cache: Option<&ResultCache>,
    ) -> Result<ChunkRows, ScenarioError> {
        let mut rows: Vec<Option<RowPair>> = Vec::with_capacity(range.len());
        let mut pending_cells: Vec<ScenarioCell> = Vec::new();
        let mut pending_slots: Vec<(usize, String)> = Vec::new();
        let mut cache_hits = 0u64;
        for index in range {
            let cell = grid.cell_at(index)?;
            let key = match cache {
                Some(store) => {
                    let key = self.cache_key(&cell);
                    if let Some(pair) = store.load(&key) {
                        rows.push(Some(pair));
                        cache_hits += 1;
                        continue;
                    }
                    key
                }
                None => String::new(),
            };
            pending_slots.push((rows.len(), key));
            pending_cells.push(cell);
            rows.push(None);
        }
        let cache_misses = if cache.is_some() {
            pending_cells.len() as u64
        } else {
            0
        };
        for (cells, slots) in pending_cells
            .chunks(batch::BLOCK)
            .zip(pending_slots.chunks(batch::BLOCK))
        {
            for ((slot, key), result) in slots.iter().zip(self.evaluate_block(cells)) {
                let pair = RowPair {
                    csv: render_sweep_row(&result, RowFormat::Csv),
                    json: render_sweep_row(&result, RowFormat::Json),
                };
                if let Some(store) = cache {
                    store.store(key, &pair);
                }
                rows[*slot] = Some(pair);
            }
        }
        Ok(ChunkRows {
            rows: rows
                .into_iter()
                // corridor-lint: allow(no-panic, reason = "the loop above writes every slot exactly once before this collect")
                .map(|r| r.expect("every chunk slot is filled"))
                .collect(),
            cache_hits,
            cache_misses,
        })
    }

    /// The scenario hash of one cell under this engine's configuration.
    fn cache_key(&self, cell: &ScenarioCell) -> String {
        let mut key = KeyBuilder::new("sweep");
        key.text("evaluator", self.evaluator.name());
        if let Evaluator::EventDriven(policy) = self.evaluator {
            key.f64("lead", policy.lead().value())
                .f64("wake", policy.wake_delay().value())
                .f64("guard", policy.guard().value());
        }
        key.int("pv", u64::from(self.pv_sizing));
        key.cell(cell);
        key.finish()
    }

    /// Evaluates one cell.
    pub fn evaluate(&self, cell: &ScenarioCell) -> CellResult {
        let [baseline, continuous, sleep, solar] = self.evaluator.splits(cell);
        self.finish(cell, [baseline, continuous, sleep, solar])
    }

    /// Evaluates one block of cells.
    ///
    /// The analytic backend goes through the struct-of-arrays
    /// [`batch::CellBlock`]: gather every activity column for the block
    /// (each lookup memoized process-wide), then emit the splits per
    /// cell from the columns. Batched and scalar evaluation share the
    /// same split function, so their results are bit-identical.
    fn evaluate_block(&self, cells: &[ScenarioCell]) -> Vec<CellResult> {
        match self.evaluator {
            Evaluator::Analytic => {
                let block = batch::CellBlock::gather(cells);
                cells
                    .iter()
                    .enumerate()
                    .map(|(i, cell)| self.finish(cell, block.splits(i, cell)))
                    .collect()
            }
            Evaluator::EventDriven(_) => cells.iter().map(|cell| self.evaluate(cell)).collect(),
        }
    }

    /// Attaches PV sizing and wraps the splits into a [`CellResult`].
    fn finish(&self, cell: &ScenarioCell, splits: [SegmentEnergy; 4]) -> CellResult {
        let [baseline, continuous, sleep, solar] = splits;
        let pv = if self.pv_sizing {
            self.size_pv(cell)
        } else {
            PvOutcome::Skipped
        };
        CellResult::new(
            cell.clone(),
            self.evaluator.name(),
            baseline,
            continuous,
            sleep,
            solar,
            pv,
        )
    }

    /// Sizes the off-grid PV system of one service repeater in this cell
    /// at the cell's deployment ISD.
    fn size_pv(&self, cell: &ScenarioCell) -> PvOutcome {
        size_repeater_pv(cell.params(), cell.location(), cell.isd())
    }
}

/// Builds the worker pool for an explicit worker count (`None` = auto).
///
/// # Errors
///
/// Returns [`ScenarioError::WorkerPoolBuild`] if the pool cannot be
/// built (never with the offline shim, but real `rayon` can fail on
/// resource exhaustion — a sweep must surface that, not panic).
pub(crate) fn build_pool(workers: Option<usize>) -> Result<rayon::ThreadPool, ScenarioError> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(workers.unwrap_or(0))
        .build()
        .map_err(|_| ScenarioError::WorkerPoolBuild)
}

/// Sizes the off-grid PV system of one service repeater at `isd`: the
/// node sleeps through the night pause and serves train bursts during
/// the service window (the paper's Table IV methodology, generalized to
/// the given timetable, equipment and deployment geometry). Shared by
/// the sweep engine (at the cell's fixed ISD) and the deployment
/// optimizer (at each candidate ISD).
pub(crate) fn size_repeater_pv(
    params: &corridor_core::ScenarioParams,
    location: &corridor_solar::Location,
    isd: corridor_units::Meters,
) -> PvOutcome {
    let section = TrackSection::around(isd / 2.0, params.lp_spacing());
    let active_h = corridor_core::energy::active_hours(params, section).value();
    size_repeater_pv_for_load(params, location, active_h)
}

/// [`size_repeater_pv`] with explicit daily full-load hours — the
/// deployment optimizer feeds the *policy-padded* powered time from the
/// event-driven trace here, so a padded wake policy's PV system is
/// sized for the load it actually reports, not the instant-wake
/// activity floor.
pub(crate) fn size_repeater_pv_for_load(
    params: &corridor_core::ScenarioParams,
    location: &corridor_solar::Location,
    active_h: f64,
) -> PvOutcome {
    let lp = params.lp_node();
    let night_h = (24.0 - params.timetable().service_window().value())
        .round()
        .clamp(0.0, 23.0);
    let day_window_h = 24.0 - night_h;
    let day_avg_w = (lp.full_load_power().value() * active_h
        + lp.p_sleep().value() * (day_window_h - active_h).max(0.0))
        / day_window_h;
    let load =
        DailyLoadProfile::repeater_profile(lp.p_sleep(), Watts::new(day_avg_w), night_h as usize);
    match sizing::size_for_zero_downtime(
        location.clone(),
        load,
        &sizing::SizingOptions::paper_default(),
    ) {
        Some(fit) => PvOutcome::Sized {
            pv_wp: fit.pv.peak().value(),
            battery_wh: fit.battery_capacity.value(),
            days_full_pct: fit.mean_full_battery_fraction() * 100.0,
        },
        None => PvOutcome::Unsolvable,
    }
}

impl Default for SweepEngine {
    /// Returns [`SweepEngine::new`].
    fn default() -> Self {
        SweepEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_core::{experiments, ScenarioParams};
    use corridor_solar::climate;

    #[test]
    fn paper_cell_reproduces_headline_savings() {
        let report = SweepEngine::new()
            .workers(1)
            .pv_sizing(false)
            .run(&ScenarioGrid::new())
            .unwrap();
        let h = experiments::headline_numbers(&ScenarioParams::paper_default());
        let r = &report.results()[0];
        assert!((r.savings(EnergyStrategy::SleepModeRepeaters) - h.savings_sleep_10).abs() < 1e-12);
        assert!(
            (r.savings(EnergyStrategy::SolarPoweredRepeaters) - h.savings_solar_10).abs() < 1e-12
        );
        assert_eq!(r.evaluator(), "analytic");
    }

    #[test]
    fn paper_cell_pv_sizing_matches_table4_berlin() {
        // default grid = Berlin climate; Table IV: 600 Wp / 1440 Wh
        let report = SweepEngine::new()
            .workers(1)
            .run(&ScenarioGrid::new())
            .unwrap();
        match report.results()[0].pv() {
            PvOutcome::Sized {
                pv_wp,
                battery_wh,
                days_full_pct,
            } => {
                assert_eq!(pv_wp, 600.0);
                assert_eq!(battery_wh, 1440.0);
                assert!(days_full_pct > 85.0);
            }
            other => panic!("expected sized outcome, got {other:?}"),
        }
    }

    #[test]
    fn heavy_load_profile_is_unsolvable() {
        // a flat 650 W onboard-relay "repeater" cannot be solar-sized
        let grid = ScenarioGrid::new().power_profiles(vec![crate::PowerProfile::custom(
            "flat-650w",
            corridor_power::catalog::high_power_mast(),
            corridor_power::catalog::onboard_relay(),
        )]);
        let report = SweepEngine::new().workers(1).run(&grid).unwrap();
        assert_eq!(report.results()[0].pv(), PvOutcome::Unsolvable);
    }

    #[test]
    fn parallel_matches_serial_on_a_mixed_grid() {
        let grid = ScenarioGrid::new()
            .trains_per_hour(vec![4.0, 8.0])
            .train_speeds_kmh(vec![160.0, 200.0])
            .locations(vec![climate::madrid(), climate::berlin()]);
        let engine = SweepEngine::new().pv_sizing(false);
        let serial = engine.run_serial(&grid).unwrap();
        let parallel = engine.workers(4).run(&grid).unwrap();
        assert_eq!(serial.results(), parallel.results());
    }

    #[test]
    fn strategy_ordering_holds_across_the_screening_grid() {
        let report = SweepEngine::new()
            .pv_sizing(false)
            .run(&ScenarioGrid::screening_200())
            .unwrap();
        assert_eq!(report.len(), 200);
        for r in report.results() {
            let c = r.split(EnergyStrategy::ContinuousRepeaters).total();
            let s = r.split(EnergyStrategy::SleepModeRepeaters).total();
            let z = r.split(EnergyStrategy::SolarPoweredRepeaters).total();
            assert!(c > s, "{}", r.cell());
            assert!(s > z, "{}", r.cell());
        }
    }

    #[test]
    fn explicit_zero_workers_is_rejected() {
        let engine = SweepEngine::new().workers(0).pv_sizing(false);
        let err = engine.run(&ScenarioGrid::new()).unwrap_err();
        assert_eq!(err, ScenarioError::ZeroWorkers);
        // the serial path rejects the same misconfiguration
        let err = engine.run_serial(&ScenarioGrid::new()).unwrap_err();
        assert_eq!(err, ScenarioError::ZeroWorkers);
        // automatic parallelism (no explicit count) still works
        assert!(SweepEngine::new()
            .pv_sizing(false)
            .run(&ScenarioGrid::new())
            .is_ok());
    }

    #[test]
    fn event_driven_backend_matches_analytic_on_the_paper_cell() {
        let grid = ScenarioGrid::new();
        let engine = SweepEngine::new().workers(1).pv_sizing(false);
        let analytic = engine.run(&grid).unwrap();
        let simulated = engine
            .evaluator(Evaluator::event_driven())
            .run(&grid)
            .unwrap();
        let a = &analytic.results()[0];
        let s = &simulated.results()[0];
        assert_eq!(s.evaluator(), "event-driven");
        for strategy in EnergyStrategy::ALL {
            let rel = (s.split(strategy).total().value() - a.split(strategy).total().value()).abs()
                / a.split(strategy).total().value();
            assert!(rel < 1e-3, "{strategy}: {rel}");
        }
    }

    #[test]
    fn evaluator_labels() {
        assert_eq!(Evaluator::Analytic.name(), "analytic");
        assert_eq!(Evaluator::event_driven().name(), "event-driven");
        assert_eq!(Evaluator::default(), Evaluator::Analytic);
    }
}
