//! Memoized coverage profiling: each `(layout, budget)` pair is sampled
//! once, no matter how many search passes ask about it.
//!
//! The deployment searches (the fixed-step [`IsdOptimizer`] and the
//! Pareto optimizer in `corridor_sim::optimize`) keep asking the same
//! question — *what is the worst SNR of `n` repeaters at this ISD?* —
//! from different directions: per scenario cell, per wake policy, per
//! binary-search probe. Sampling a coverage profile is the hot path of
//! that question (hundreds of [`SnrModel`](corridor_link::SnrModel)
//! evaluations per probe), and the answer depends only on the geometry
//! and the RF budget, never on timetables or wake policies. A
//! [`CoverageCache`] therefore memoizes the minimum SNR per
//! `(n, isd, placement)` key under one fixed budget, and counts lookups
//! versus actual profile evaluations so benches and tests can assert
//! the saving.

// Order-safety audit (hash-order): the memo map below is only ever
// probed through `entry()` by exact key; nothing iterates it, so the
// hasher's bucket order cannot influence any result, count or report.
// corridor-lint: allow(hash-order, reason = "cache map is entry()-probed by key only, never iterated; order cannot escape")
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use corridor_units::{Db, Meters};

use crate::{CorridorLayout, CoverageCriterion, LinkBudget, PlacementPolicy};

/// Discretized cache key: geometry in whole millimetres.
///
/// The searches walk metre-scale grids, so millimetre resolution keeps
/// distinct candidates distinct while making the key hashable (raw
/// `f64` is not `Eq`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CoverageKey {
    n: usize,
    isd_mm: u64,
    placement: PlacementKey,
}

/// The placement policy's contribution to the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PlacementKey {
    Fixed(u64),
    Even,
    Custom(Vec<u64>),
}

fn mm(value: Meters) -> u64 {
    (value.value() * 1000.0).round().max(0.0) as u64
}

impl PlacementKey {
    fn of(policy: &PlacementPolicy) -> Self {
        match policy {
            PlacementPolicy::FixedSpacing(spacing) => PlacementKey::Fixed(mm(*spacing)),
            PlacementPolicy::EvenlySpaced => PlacementKey::Even,
            PlacementPolicy::Custom(positions) => {
                PlacementKey::Custom(positions.iter().map(|&p| mm(p)).collect())
            }
        }
    }
}

/// Memoizes minimum-SNR coverage profiles under one [`LinkBudget`].
///
/// Thread-safe: searches running on the worker pool share one cache.
/// The map lock is held only long enough to reserve a per-key slot
/// (`Arc<OnceLock>`); the profile computation itself runs outside it,
/// so distinct keys profile concurrently and hits never wait behind an
/// unrelated miss. Racing workers on the *same* key block on that key's
/// `OnceLock`, which initializes exactly once — keeping the
/// [`CoverageCache::profile_evaluations`] counter deterministic across
/// worker counts (the determinism the golden outputs pin).
///
/// # Examples
///
/// ```
/// use corridor_deploy::{CoverageCache, LinkBudget, PlacementPolicy};
/// use corridor_units::Meters;
///
/// let cache = CoverageCache::new(LinkBudget::paper_default());
/// let placement = PlacementPolicy::paper_default();
/// let first = cache.min_snr(1, Meters::new(1250.0), &placement);
/// let again = cache.min_snr(1, Meters::new(1250.0), &placement);
/// assert_eq!(first, again);
/// assert_eq!(cache.lookups(), 2);
/// assert_eq!(cache.profile_evaluations(), 1); // second call was a hit
/// ```
#[derive(Debug)]
pub struct CoverageCache {
    budget: LinkBudget,
    sample_step: Meters,
    entries: Mutex<HashMap<CoverageKey, Arc<OnceLock<Option<Db>>>>>,
    lookups: AtomicU64,
    profiles: AtomicU64,
}

impl CoverageCache {
    /// A cache under `budget` with the paper's 5 m profile sampling.
    pub fn new(budget: LinkBudget) -> Self {
        Self::with_sample_step(budget, Meters::new(5.0))
    }

    /// A cache under `budget` sampling profiles every `sample_step`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_step` is not strictly positive.
    pub fn with_sample_step(budget: LinkBudget, sample_step: Meters) -> Self {
        assert!(sample_step.value() > 0.0, "sample step must be positive");
        CoverageCache {
            budget,
            sample_step,
            entries: Mutex::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            profiles: AtomicU64::new(0),
        }
    }

    /// The budget every cached profile was sampled under.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// The profile sampling step.
    pub fn sample_step(&self) -> Meters {
        self.sample_step
    }

    /// Minimum SNR along a segment of `isd` with `n` repeaters placed by
    /// `placement`, or `None` if the placement is infeasible (cluster
    /// wider than the segment). Cached per `(n, isd, placement)`.
    pub fn min_snr(&self, n: usize, isd: Meters, placement: &PlacementPolicy) -> Option<Db> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = CoverageKey {
            n,
            isd_mm: mm(isd),
            placement: PlacementKey::of(placement),
        };
        let slot = {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(entries.entry(key).or_default())
        };
        *slot.get_or_init(|| {
            self.profiles.fetch_add(1, Ordering::Relaxed);
            let layout = CorridorLayout::with_policy(isd, n, placement).ok()?;
            layout
                .coverage_profile(&self.budget, self.sample_step)
                .min_snr()
        })
    }

    /// Whether the cached geometry satisfies `criterion`, or `None`
    /// when the criterion cannot be answered from the cache.
    ///
    /// Only the min-SNR criteria are answerable:
    /// [`CoverageCriterion::MinSnr`] and
    /// [`CoverageCriterion::PeakEverywhere`]. The spectral-efficiency
    /// criteria need the full profile, which the cache deliberately does
    /// not retain — callers getting `None` must evaluate uncached (as
    /// [`IsdOptimizer::max_isd_cached`](crate::IsdOptimizer::max_isd_cached)
    /// does). An infeasible placement is `Some(false)`.
    pub fn satisfies(
        &self,
        n: usize,
        isd: Meters,
        placement: &PlacementPolicy,
        criterion: CoverageCriterion,
    ) -> Option<bool> {
        match criterion {
            CoverageCriterion::MinSnr(threshold) => Some(
                self.min_snr(n, isd, placement)
                    .is_some_and(|snr| snr >= threshold),
            ),
            CoverageCriterion::PeakEverywhere => Some(
                self.min_snr(n, isd, placement)
                    .is_some_and(|snr| self.budget.throughput().is_peak(snr)),
            ),
            CoverageCriterion::MeanSpectralEfficiency(_)
            | CoverageCriterion::TrainWindowed { .. } => None,
        }
    }

    /// Number of [`CoverageCache::min_snr`] calls so far — what an
    /// uncached, per-step search would have paid in profile samples.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of profiles actually sampled (cache misses).
    pub fn profile_evaluations(&self) -> u64 {
        self.profiles.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (`0.0` while empty).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        1.0 - self.profile_evaluations() as f64 / lookups as f64
    }

    /// The largest grid ISD (stepping by `isd_step` from `min_isd` up to
    /// and including `max_isd`) for which `n` repeaters keep the minimum
    /// SNR at or above `threshold`, or `None` if no grid point does.
    ///
    /// Binary search over the same monotone structure as
    /// [`IsdOptimizer::max_isd`](crate::IsdOptimizer::max_isd)
    /// (stretching a segment only worsens its worst-served point), with
    /// every probe memoized — repeated searches (other scenario cells,
    /// other wake policies, margin readbacks) hit the cache instead of
    /// re-sampling profiles.
    pub fn max_feasible_isd(
        &self,
        n: usize,
        placement: &PlacementPolicy,
        threshold: Db,
        min_isd: Meters,
        max_isd: Meters,
        isd_step: Meters,
    ) -> Option<Meters> {
        self.max_isd_by(n, placement, min_isd, max_isd, isd_step, |snr| {
            snr >= threshold
        })
    }

    /// The shared-skeleton search with an arbitrary min-SNR acceptance
    /// predicate (also backs the `PeakEverywhere` path of
    /// [`IsdOptimizer::max_isd_cached`](crate::IsdOptimizer::max_isd_cached)).
    pub(crate) fn max_isd_by(
        &self,
        n: usize,
        placement: &PlacementPolicy,
        min_isd: Meters,
        max_isd: Meters,
        isd_step: Meters,
        accepts: impl Fn(Db) -> bool,
    ) -> Option<Meters> {
        crate::search::max_feasible_on_grid(min_isd, max_isd, isd_step, |isd| {
            // min_snr distinguishes the two failure modes the skeleton
            // needs: None = placement infeasible, Some below the
            // acceptance = criterion failed
            match self.min_snr(n, isd, placement) {
                None => crate::search::Probe::PlacementInfeasible,
                Some(snr) if accepts(snr) => crate::search::Probe::Satisfied,
                Some(_) => crate::search::Probe::CriterionFailed,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CoverageCache {
        // 10 m sampling keeps debug-mode tests quick (boundary ISDs are
        // insensitive to 5 m vs 10 m at a 50 m grid)
        CoverageCache::with_sample_step(LinkBudget::paper_default(), Meters::new(10.0))
    }

    #[test]
    fn repeated_lookups_profile_once() {
        let c = cache();
        let placement = PlacementPolicy::paper_default();
        for _ in 0..5 {
            let snr = c.min_snr(8, Meters::new(2400.0), &placement).unwrap();
            assert!(snr.value() > 29.0);
        }
        assert_eq!(c.lookups(), 5);
        assert_eq!(c.profile_evaluations(), 1);
        assert!((c.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn matches_the_uncached_optimizer() {
        let c = cache();
        let opt = crate::IsdOptimizer::new(LinkBudget::paper_default())
            .with_sample_step(Meters::new(10.0));
        let placement = PlacementPolicy::paper_default();
        for n in 0..=3 {
            let cached = c.max_feasible_isd(
                n,
                &placement,
                Db::new(29.0),
                Meters::new(100.0),
                Meters::new(4000.0),
                Meters::new(50.0),
            );
            assert_eq!(cached, opt.max_isd(n), "n={n}");
        }
    }

    #[test]
    fn infeasible_placement_is_none_not_panic() {
        let c = cache();
        // 6 nodes at 200 m spacing cannot fit a 900 m segment
        assert_eq!(
            c.min_snr(
                6,
                Meters::new(900.0),
                &PlacementPolicy::FixedSpacing(Meters::new(200.0))
            ),
            None
        );
        // the infeasibility is cached too
        let profiles = c.profile_evaluations();
        let _ = c.min_snr(
            6,
            Meters::new(900.0),
            &PlacementPolicy::FixedSpacing(Meters::new(200.0)),
        );
        assert_eq!(c.profile_evaluations(), profiles);
    }

    #[test]
    fn impossible_threshold_returns_none() {
        let c = cache();
        assert_eq!(
            c.max_feasible_isd(
                1,
                &PlacementPolicy::paper_default(),
                Db::new(90.0),
                Meters::new(100.0),
                Meters::new(4000.0),
                Meters::new(50.0),
            ),
            None
        );
    }

    #[test]
    fn satisfies_answers_min_snr_criteria() {
        let c = cache();
        let placement = PlacementPolicy::paper_default();
        assert_eq!(
            c.satisfies(
                8,
                Meters::new(2400.0),
                &placement,
                CoverageCriterion::MinSnr(Db::new(29.0))
            ),
            Some(true)
        );
        assert_eq!(
            c.satisfies(
                0,
                Meters::new(2400.0),
                &placement,
                CoverageCriterion::MinSnr(Db::new(29.0))
            ),
            Some(false)
        );
        // infeasible placement counts as unsatisfied
        assert_eq!(
            c.satisfies(
                6,
                Meters::new(900.0),
                &placement,
                CoverageCriterion::MinSnr(Db::new(29.0))
            ),
            Some(false)
        );
    }

    #[test]
    fn spectral_efficiency_criteria_are_unanswerable_not_a_panic() {
        let c = cache();
        let placement = PlacementPolicy::paper_default();
        assert_eq!(
            c.satisfies(
                1,
                Meters::new(1250.0),
                &placement,
                CoverageCriterion::MeanSpectralEfficiency(5.0),
            ),
            None
        );
        assert_eq!(
            c.satisfies(
                1,
                Meters::new(1250.0),
                &placement,
                CoverageCriterion::TrainWindowed {
                    window: Meters::new(400.0),
                    min_se: 5.0,
                },
            ),
            None
        );
    }

    #[test]
    fn distinct_geometries_get_distinct_entries() {
        let c = cache();
        let placement = PlacementPolicy::paper_default();
        let _ = c.min_snr(1, Meters::new(1250.0), &placement);
        let _ = c.min_snr(1, Meters::new(1300.0), &placement);
        let _ = c.min_snr(2, Meters::new(1250.0), &placement);
        let _ = c.min_snr(1, Meters::new(1250.0), &PlacementPolicy::EvenlySpaced);
        assert_eq!(c.profile_evaluations(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(cache());
        let placement = PlacementPolicy::paper_default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                let placement = placement.clone();
                scope.spawn(move || {
                    for _ in 0..3 {
                        let _ = c.min_snr(8, Meters::new(2400.0), &placement);
                    }
                });
            }
        });
        assert_eq!(c.lookups(), 12);
        // per-key OnceLock: exactly one profile even under contention
        assert_eq!(c.profile_evaluations(), 1);
    }
}
