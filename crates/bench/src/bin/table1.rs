//! Regenerates the paper's Table I: low-power repeater node power
//! consumption by component.

use corridor_core::experiments;
use corridor_core::report::TextTable;

fn main() {
    let bill = experiments::table1();
    println!("Table I — low-power repeater node power consumption\n");
    let mut table = TextTable::new(vec![
        "component".into(),
        "role".into(),
        "active [W]".into(),
        "sleep [W]".into(),
    ]);
    for c in bill.components() {
        table.add_row(vec![
            c.name.to_string(),
            c.role.to_string(),
            format!("{:.3}", c.active.value()),
            format!("{:.2}", c.sleep.value()),
        ]);
    }
    println!("{}", table.render());
    println!("paths: {} DL, {} UL", bill.dl_paths(), bill.ul_paths());
    println!(
        "sleep total (computed):      {:.2} W (paper: 4.72 W)",
        bill.sleep_total().value()
    );
    println!(
        "active total (published):    {:.2} W",
        bill.paper_full_load_total().value()
    );
    println!(
        "active total (naive sum):    {:.2} W (see DESIGN.md §2.4 on the discrepancy)",
        bill.naive_active_total().value()
    );
}
