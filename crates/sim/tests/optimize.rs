//! Deployment-optimizer integration suite: paper-anchor consistency,
//! cache-efficiency counters, edge cases (one-point and all-infeasible
//! search spaces) and byte-exact determinism across worker counts,
//! sha256-pinned like the Monte-Carlo suite.

use corridor_core::hash::sha256_hex;
use corridor_core::{experiments, ScenarioParams};
use corridor_sim::{
    DeploymentOptimizer, IsdSearch, OptimizeReport, ScenarioGrid, SearchSpace, WakePolicy,
};
use corridor_units::{Db, Meters};

/// Coarse profile sampling: boundary ISDs are insensitive to 5 m vs
/// 10 m at a 50 m grid, and debug-mode tests stay quick.
fn quick_space() -> SearchSpace {
    SearchSpace::new().sample_step(Meters::new(10.0))
}

/// The fixed configuration of the `optimize --smoke` golden: the 3-cell
/// timetable-density grid searched against the model grid.
fn smoke_report(workers: usize) -> OptimizeReport {
    DeploymentOptimizer::new()
        .workers(workers)
        .run(
            &ScenarioGrid::smoke_3(),
            &quick_space().isd_search(IsdSearch::model_paper_grid()),
        )
        .unwrap()
}

#[test]
fn paper_anchor_point_is_on_the_frontier() {
    // acceptance: the 8-repeater/2400 m point must agree with
    // IsdTable::paper and the analytic 124.07 Wh/day headline
    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(&ScenarioGrid::new(), &quick_space())
        .unwrap();
    let frontier = report.results()[0].frontier();
    let point = frontier
        .iter()
        .find(|p| p.nodes == 8)
        .expect("8-node point on the frontier");
    assert_eq!(point.isd, Meters::new(2400.0));
    let headline = experiments::headline_numbers(&ScenarioParams::paper_default())
        .repeater_daily_energy
        .value();
    assert!(
        (point.repeater_wh_day - headline).abs() < 0.1,
        "repeater {} vs headline {headline}",
        point.repeater_wh_day
    );
    // and the 10-node point reproduces the 74 % sleep-mode saving
    let ten = frontier.iter().find(|p| p.nodes == 10).unwrap();
    assert_eq!(ten.isd, Meters::new(2650.0));
    assert!(
        (ten.saving_sleep_pct - 74.0).abs() < 1.0,
        "{}",
        ten.saving_sleep_pct
    );
}

#[test]
fn model_grid_reproduces_the_published_early_anchors() {
    // the model matches the paper exactly at n = 1, 2 (the same anchors
    // IsdOptimizer pins); the cached search must find the same boundary
    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(
            &ScenarioGrid::new(),
            &quick_space()
                .node_counts(vec![1, 2])
                .isd_search(IsdSearch::model_paper_grid()),
        )
        .unwrap();
    let frontier = report.results()[0].frontier();
    assert_eq!(
        frontier.iter().find(|p| p.nodes == 1).unwrap().isd,
        Meters::new(1250.0)
    );
    assert_eq!(
        frontier.iter().find(|p| p.nodes == 2).unwrap().isd,
        Meters::new(1450.0)
    );
    // model-grid deployments satisfy the criterion by construction
    for p in frontier {
        assert!(p.margin_db >= 0.0, "n={}: margin {}", p.nodes, p.margin_db);
    }
}

#[test]
fn shared_cache_at_least_halves_the_profile_evaluations() {
    // acceptance: >= 2x fewer SNR-profile evaluations than the naive
    // per-step sweep, which would pay one profile per coverage lookup
    let report = smoke_report(1);
    let lookups = report.coverage_lookups();
    let profiles = report.profile_evaluations();
    assert!(profiles > 0);
    assert!(
        lookups >= 2 * profiles,
        "cache saved too little: {lookups} lookups, {profiles} profiles"
    );
    assert!(report.cache_hit_rate() >= 0.5);

    // cross-check the "naive" accounting directly: the 3 cells share
    // every geometry, so an uncached search would profile 3x what one
    // cell needs
    let single = DeploymentOptimizer::new()
        .workers(1)
        .run(
            &ScenarioGrid::new(),
            &quick_space().isd_search(IsdSearch::model_paper_grid()),
        )
        .unwrap();
    assert_eq!(report.profile_evaluations(), single.profile_evaluations());
    assert!(3 * single.profile_evaluations() >= 2 * report.profile_evaluations());
}

#[test]
fn one_point_search_space_yields_one_point_frontier() {
    let space = quick_space()
        .node_counts(vec![8])
        .wake_policies(vec![WakePolicy::instant()]);
    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(&ScenarioGrid::new(), &space)
        .unwrap();
    let r = &report.results()[0];
    assert_eq!(r.evaluated(), 1);
    assert_eq!(r.frontier().len(), 1);
    assert_eq!(r.frontier()[0].nodes, 8);
    assert_eq!(report.frontier_points(), 1);
}

#[test]
fn all_infeasible_cells_are_unsolvable_not_a_panic() {
    // a 90 dB floor is unreachable at any searched geometry
    let space = quick_space()
        .isd_search(IsdSearch::model_paper_grid())
        .snr_threshold(Db::new(90.0));
    let report = DeploymentOptimizer::new()
        .workers(2)
        .run(&ScenarioGrid::smoke_3(), &space)
        .unwrap();
    assert_eq!(report.len(), 3);
    for r in report.results() {
        assert!(r.is_unsolvable(), "{}", r.cell());
        assert!(r.frontier().is_empty());
        assert_eq!(r.evaluated(), 0);
    }
    assert_eq!(report.frontier_points(), 0);
    // the writers render explicit unsolvable rows, not empty output
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 4); // header + one row per cell
    for line in csv.lines().skip(1) {
        assert!(line.contains(",unsolvable,"), "{line}");
    }
    assert_eq!(report.to_json().matches("\"unsolvable\"").count(), 3);
}

#[test]
fn oversized_counts_are_infeasible_candidates_not_errors() {
    // the paper table stops at 10 nodes; 11 must be skipped, and a
    // space holding only unreachable counts degenerates to Unsolvable
    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(
            &ScenarioGrid::new(),
            &quick_space().node_counts(vec![8, 11]),
        )
        .unwrap();
    let r = &report.results()[0];
    assert_eq!(r.evaluated(), 1);
    assert_eq!(r.frontier().len(), 1);
    assert_eq!(r.frontier()[0].nodes, 8);

    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(
            &ScenarioGrid::new(),
            &quick_space().node_counts(vec![11, 12]),
        )
        .unwrap();
    assert!(report.results()[0].is_unsolvable());
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let serial = DeploymentOptimizer::new()
        .workers(1)
        .run_serial(
            &ScenarioGrid::smoke_3(),
            &quick_space().isd_search(IsdSearch::model_paper_grid()),
        )
        .unwrap();
    let reference_csv = serial.to_csv();
    let reference_json = serial.to_json();
    for workers in [1usize, 2, 8] {
        let parallel = smoke_report(workers);
        assert_eq!(parallel.to_csv(), reference_csv, "{workers} workers");
        assert_eq!(parallel.to_json(), reference_json, "{workers} workers");
        assert_eq!(parallel, serial, "{workers} workers");
        // the cache counters are deterministic too (locked compute:
        // every key is profiled exactly once, regardless of racing)
        assert_eq!(parallel.coverage_lookups(), serial.coverage_lookups());
        assert_eq!(parallel.profile_evaluations(), serial.profile_evaluations());
    }
    // pin the exact bytes: any drift in the search, the energy math or
    // the writers shows up as a digest change here
    assert_eq!(
        sha256_hex(reference_csv.as_bytes()),
        SMOKE_CSV_SHA256,
        "smoke CSV drifted:\n{reference_csv}"
    );
    assert_eq!(sha256_hex(reference_json.as_bytes()), SMOKE_JSON_SHA256);
}

#[test]
fn pv_sizing_lands_on_the_frontier_rows() {
    let space = quick_space().node_counts(vec![0, 10]).pv_sizing(true);
    let report = DeploymentOptimizer::new()
        .workers(1)
        .run(&ScenarioGrid::new(), &space)
        .unwrap();
    let frontier = report.results()[0].frontier();
    // conventional deployment has no repeater to size
    let conventional = frontier.iter().find(|p| p.nodes == 0).unwrap();
    assert_eq!(conventional.pv, corridor_sim::PvOutcome::Skipped);
    // the 10-node Berlin cell reproduces Table IV: 600 Wp / 1440 Wh
    let ten = frontier.iter().find(|p| p.nodes == 10).unwrap();
    match ten.pv {
        corridor_sim::PvOutcome::Sized {
            pv_wp, battery_wh, ..
        } => {
            assert_eq!(pv_wp, 600.0);
            assert_eq!(battery_wh, 1440.0);
        }
        other => panic!("expected sized PV, got {other:?}"),
    }
    let csv = report.to_csv();
    assert!(
        csv.lines()
            .any(|l| l.ends_with(",600,1440,100.00") || l.contains(",600,1440,")),
        "{csv}"
    );
}

#[test]
fn padded_policy_pv_is_sized_for_its_own_load() {
    // a padded wake policy keeps the repeater powered longer than the
    // instant-wake activity floor, so its zero-downtime PV system must
    // be at least as large as the instant one on the same geometry
    let instant = DeploymentOptimizer::new()
        .workers(1)
        .run(
            &ScenarioGrid::new(),
            &quick_space().node_counts(vec![10]).pv_sizing(true),
        )
        .unwrap();
    let padded = DeploymentOptimizer::new()
        .workers(1)
        .run(
            &ScenarioGrid::new(),
            &quick_space()
                .node_counts(vec![10])
                .wake_policies(vec![WakePolicy::paper_default()])
                .pv_sizing(true),
        )
        .unwrap();
    let pv_wp = |report: &OptimizeReport| match report.results()[0].frontier()[0].pv {
        corridor_sim::PvOutcome::Sized { pv_wp, .. } => pv_wp,
        other => panic!("expected sized PV, got {other:?}"),
    };
    let instant_wp = pv_wp(&instant);
    let padded_wp = pv_wp(&padded);
    assert_eq!(instant_wp, 600.0); // Table IV Berlin
    assert!(
        padded_wp >= instant_wp,
        "padded {padded_wp} Wp < instant {instant_wp} Wp"
    );
    // the padded row's energy really is higher than the instant one
    let e_instant = instant.results()[0].frontier()[0].repeater_wh_day;
    let e_padded = padded.results()[0].frontier()[0].repeater_wh_day;
    assert!(e_padded > e_instant, "{e_padded} <= {e_instant}");
}

const SMOKE_CSV_SHA256: &str = "2bda3d27d792fe925c7fa6cbcfffa7f7c1a574e1dfe7e1b85843f5b4e43335b8";
const SMOKE_JSON_SHA256: &str = "424801c9b0c65f568a3729b9ede8c9bc9de277b25e3ecb81add32fc8780389e3";

// report digests are pinned through `corridor_core::hash::sha256_hex`,
// the crate-wide streaming SHA-256 (FIPS-vector-tested at its source)
