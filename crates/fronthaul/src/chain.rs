//! Feeding a whole segment: donors, hops and end-to-end checks.

use core::fmt;

use corridor_units::Meters;

use crate::{FronthaulHop, MmWaveBand};

/// The fronthaul of one corridor segment.
///
/// Two donor nodes sit at the high-power masts (positions `0` and `isd`),
/// each feeding the service nodes on its half of the segment. Two
/// topologies are supported:
///
/// * [`for_segment`](FronthaulChain::for_segment) — **daisy chain** (the
///   prototype's architecture): the donor feeds the nearest node, which
///   relays to the next, so every hop is short;
/// * [`star_for_segment`](FronthaulChain::star_for_segment) — direct
///   donor→node hops; simple, but the central nodes of a long segment
///   need km-class hops, which V-band oxygen absorption kills (the
///   evaluation shows exactly that).
///
/// # Examples
///
/// ```
/// use corridor_fronthaul::{FronthaulChain, MmWaveBand};
/// use corridor_units::Meters;
///
/// // the paper's Fig. 3 geometry: 8 nodes at 200 m spacing in 2400 m
/// let positions: Vec<Meters> = (0..8).map(|i| Meters::new(500.0 + 200.0 * i as f64)).collect();
/// let daisy = FronthaulChain::for_segment(
///     MmWaveBand::v_band_60ghz(), &positions, Meters::new(2400.0));
/// assert!(daisy.evaluate().is_feasible());
///
/// // a star of direct hops does NOT close on V-band at this ISD
/// let star = FronthaulChain::star_for_segment(
///     MmWaveBand::v_band_60ghz(), &positions, Meters::new(2400.0));
/// assert!(!star.evaluate().is_feasible());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FronthaulChain {
    hops: Vec<FronthaulHop>,
}

impl FronthaulChain {
    fn validate(positions: &[Meters], isd: Meters) {
        for &pos in positions {
            assert!(
                pos.value() > 0.0 && pos < isd,
                "service node at {pos} outside segment (0, {isd})"
            );
        }
    }

    /// Splits node positions by their feeding mast (nearest wins; ties go
    /// left) and returns (left-side sorted ascending, right-side sorted
    /// descending — i.e. in hop order from each donor).
    fn split_sides(positions: &[Meters], isd: Meters) -> (Vec<Meters>, Vec<Meters>) {
        let mut left: Vec<Meters> = positions
            .iter()
            .copied()
            .filter(|p| *p <= isd / 2.0)
            .collect();
        let mut right: Vec<Meters> = positions
            .iter()
            .copied()
            .filter(|p| *p > isd / 2.0)
            .collect();
        left.sort_by(|a, b| a.total_cmp(b));
        right.sort_by(|a, b| b.total_cmp(a));
        (left, right)
    }

    /// Builds the daisy-chain fronthaul (the prototype architecture):
    /// each donor feeds its nearest node, and each node relays onward, so
    /// hop lengths equal the node gaps.
    ///
    /// # Panics
    ///
    /// Panics if a position lies outside the open segment.
    pub fn for_segment(band: MmWaveBand, positions: &[Meters], isd: Meters) -> Self {
        Self::validate(positions, isd);
        let (left, right) = Self::split_sides(positions, isd);
        let mut hops = Vec::with_capacity(positions.len());
        let mut previous = Meters::ZERO;
        for &pos in &left {
            hops.push(FronthaulHop::new(band, pos.distance_to(previous)));
            previous = pos;
        }
        previous = isd;
        for &pos in &right {
            hops.push(FronthaulHop::new(band, pos.distance_to(previous)));
            previous = pos;
        }
        FronthaulChain { hops }
    }

    /// Builds a star fronthaul: every node is fed by a direct hop from
    /// the nearer mast's donor.
    ///
    /// # Panics
    ///
    /// Panics if a position lies outside the open segment.
    pub fn star_for_segment(band: MmWaveBand, positions: &[Meters], isd: Meters) -> Self {
        Self::validate(positions, isd);
        let hops = positions
            .iter()
            .map(|&pos| FronthaulHop::new(band, pos.min(isd - pos)))
            .collect();
        FronthaulChain { hops }
    }

    /// Builds a chain from explicit hops.
    pub fn from_hops(hops: Vec<FronthaulHop>) -> Self {
        FronthaulChain { hops }
    }

    /// The hops, in feeding order (left donor outward, then right donor
    /// outward for the daisy topology).
    pub fn hops(&self) -> &[FronthaulHop] {
        &self.hops
    }

    /// Evaluates every hop.
    pub fn evaluate(&self) -> ChainReport {
        let margins: Vec<f64> = self
            .hops
            .iter()
            .map(|h| h.clear_sky_margin().value())
            .collect();
        let worst_margin = margins.iter().copied().fold(f64::INFINITY, f64::min);
        let availability = self
            .hops
            .iter()
            .map(FronthaulHop::rain_availability)
            .fold(1.0, |acc, a| acc * a);
        ChainReport {
            hop_count: self.hops.len(),
            worst_margin_db: if self.hops.is_empty() {
                0.0
            } else {
                worst_margin
            },
            availability,
        }
    }
}

/// The evaluation of a segment's fronthaul.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChainReport {
    /// Number of hops (served nodes).
    pub hop_count: usize,
    /// The smallest clear-sky margin across hops, dB.
    pub worst_margin_db: f64,
    /// Joint rain availability (independent-hop approximation).
    pub availability: f64,
}

impl ChainReport {
    /// True if every hop closes its budget under clear sky.
    pub fn is_feasible(&self) -> bool {
        self.hop_count > 0 && self.worst_margin_db > 0.0
    }
}

impl fmt::Display for ChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hop(s), worst margin {:.1} dB, availability {:.4} %",
            self.hop_count,
            self.worst_margin_db,
            self.availability * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_positions() -> Vec<Meters> {
        (0..8)
            .map(|i| Meters::new(500.0 + 200.0 * i as f64))
            .collect()
    }

    #[test]
    fn fig3_daisy_chain_is_feasible() {
        let chain = FronthaulChain::for_segment(
            MmWaveBand::v_band_60ghz(),
            &fig3_positions(),
            Meters::new(2400.0),
        );
        let report = chain.evaluate();
        assert!(report.is_feasible(), "{report}");
        assert_eq!(report.hop_count, 8);
        assert!(report.availability > 0.99);
    }

    #[test]
    fn fig3_star_dies_on_vband_oxygen() {
        let star = FronthaulChain::star_for_segment(
            MmWaveBand::v_band_60ghz(),
            &fig3_positions(),
            Meters::new(2400.0),
        );
        assert!(!star.evaluate().is_feasible());
        // ...but the short hops still close: only the central ones fail
        let feasible_hops = star
            .hops()
            .iter()
            .filter(|h| h.clear_sky_margin().value() > 0.0)
            .count();
        assert!((2..8).contains(&feasible_hops));
    }

    #[test]
    fn daisy_hop_lengths_are_gaps() {
        let chain = FronthaulChain::for_segment(
            MmWaveBand::v_band_60ghz(),
            &fig3_positions(),
            Meters::new(2400.0),
        );
        let lengths: Vec<f64> = chain.hops().iter().map(|h| h.distance().value()).collect();
        // left donor: 500 m to the first node, then 200 m gaps; mirrored
        // on the right side
        assert_eq!(
            lengths,
            vec![500.0, 200.0, 200.0, 200.0, 500.0, 200.0, 200.0, 200.0]
        );
    }

    #[test]
    fn star_nodes_fed_by_nearer_mast() {
        let star = FronthaulChain::star_for_segment(
            MmWaveBand::v_band_60ghz(),
            &fig3_positions(),
            Meters::new(2400.0),
        );
        let longest = star
            .hops()
            .iter()
            .map(|h| h.distance().value())
            .fold(0.0, f64::max);
        assert_eq!(longest, 1100.0);
    }

    #[test]
    fn eband_star_closes_where_vband_fails() {
        let positions = fig3_positions();
        let isd = Meters::new(2400.0);
        let v = FronthaulChain::star_for_segment(MmWaveBand::v_band_60ghz(), &positions, isd);
        let e = FronthaulChain::star_for_segment(MmWaveBand::e_band_80ghz(), &positions, isd);
        assert!(!v.evaluate().is_feasible());
        assert!(e.evaluate().is_feasible());
    }

    #[test]
    fn empty_chain_not_feasible() {
        let chain = FronthaulChain::from_hops(Vec::new());
        let report = chain.evaluate();
        assert!(!report.is_feasible());
        assert_eq!(report.hop_count, 0);
    }

    #[test]
    fn single_node_daisy() {
        let chain = FronthaulChain::for_segment(
            MmWaveBand::v_band_60ghz(),
            &[Meters::new(625.0)],
            Meters::new(1250.0),
        );
        assert_eq!(chain.hops().len(), 1);
        assert_eq!(chain.hops()[0].distance(), Meters::new(625.0));
        assert!(chain.evaluate().to_string().contains("1 hop(s)"));
    }

    #[test]
    #[should_panic(expected = "outside segment")]
    fn out_of_segment_node_rejected() {
        let _ = FronthaulChain::for_segment(
            MmWaveBand::v_band_60ghz(),
            &[Meters::new(3000.0)],
            Meters::new(2400.0),
        );
    }

    #[test]
    fn nan_position_does_not_panic_the_side_sort() {
        // regression: the side sorts used partial_cmp + expect, which
        // panicked on NaN. total_cmp orders NaN deterministically; here a
        // NaN position fails both side filters and lands in neither half.
        let positions = [
            Meters::new(500.0),
            Meters::new(f64::NAN),
            Meters::new(1900.0),
        ];
        let (left, right) = FronthaulChain::split_sides(&positions, Meters::new(2400.0));
        assert_eq!(left, vec![Meters::new(500.0)]);
        assert_eq!(right, vec![Meters::new(1900.0)]);
    }

    #[test]
    #[should_panic(expected = "outside segment")]
    fn nan_position_rejected_by_validation() {
        let _ = FronthaulChain::for_segment(
            MmWaveBand::v_band_60ghz(),
            &[Meters::new(f64::NAN)],
            Meters::new(2400.0),
        );
    }
}
