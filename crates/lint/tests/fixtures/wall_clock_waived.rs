//! Fixture: a reasoned waiver suppresses the wall-clock rule.

pub fn stamp() -> std::time::Instant {
    // corridor-lint: allow(wall-clock, reason = "diagnostic-only timestamp, never feeds a result or report")
    std::time::Instant::now()
}
