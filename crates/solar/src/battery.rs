//! Battery storage with a discharge cutoff.

use core::fmt;

use corridor_units::WattHours;

/// The outcome of one simulation step of a [`Battery`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatteryStep {
    /// Load energy that could not be served (battery at cutoff).
    pub unmet: WattHours,
    /// Generation that could not be stored (battery full).
    pub curtailed: WattHours,
    /// True if the battery was at full capacity after the step.
    pub full_after: bool,
}

/// A battery with usable capacity between a discharge cutoff and full.
///
/// The paper's PVGIS runs use a 720 Wh battery with a 40 % discharge
/// cutoff limit: only the top 60 % of the nominal capacity is usable
/// ([`Battery::paper_default`]). Charging and discharging each apply a
/// 95 % efficiency.
///
/// # Examples
///
/// ```
/// use corridor_solar::Battery;
/// use corridor_units::WattHours;
///
/// let mut battery = Battery::paper_default();
/// // a night of repeater load is easily covered
/// let step = battery.step(WattHours::ZERO, WattHours::new(124.1));
/// assert_eq!(step.unmet, WattHours::ZERO);
/// assert!(battery.state_of_charge() < WattHours::new(720.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Battery {
    capacity: WattHours,
    cutoff_fraction: f64,
    charge_efficiency: f64,
    discharge_efficiency: f64,
    soc: WattHours,
}

impl Battery {
    /// The paper's storage: 720 Wh, 40 % discharge cutoff.
    pub fn paper_default() -> Self {
        Battery::with_capacity(WattHours::new(720.0))
    }

    /// A battery of the given nominal capacity with the paper's 40 %
    /// cutoff and 95 % charge/discharge efficiencies, starting full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn with_capacity(capacity: WattHours) -> Self {
        assert!(capacity.value() > 0.0, "capacity must be positive");
        Battery {
            capacity,
            cutoff_fraction: 0.4,
            charge_efficiency: 0.95,
            discharge_efficiency: 0.95,
            soc: capacity,
        }
    }

    /// Overrides the discharge cutoff fraction (state of charge below
    /// which the battery refuses to discharge).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1)`.
    #[must_use]
    pub fn with_cutoff_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "cutoff must be in [0, 1)");
        self.cutoff_fraction = fraction;
        self.soc = self.soc.max(self.min_soc());
        self
    }

    /// Overrides both conversion efficiencies.
    ///
    /// # Panics
    ///
    /// Panics if an efficiency is outside `(0, 1]`.
    #[must_use]
    pub fn with_efficiencies(mut self, charge: f64, discharge: f64) -> Self {
        assert!(charge > 0.0 && charge <= 1.0, "charge efficiency");
        assert!(discharge > 0.0 && discharge <= 1.0, "discharge efficiency");
        self.charge_efficiency = charge;
        self.discharge_efficiency = discharge;
        self
    }

    /// Nominal capacity.
    pub fn capacity(&self) -> WattHours {
        self.capacity
    }

    /// Discharge cutoff fraction.
    pub fn cutoff_fraction(&self) -> f64 {
        self.cutoff_fraction
    }

    /// The state of charge floor implied by the cutoff.
    pub fn min_soc(&self) -> WattHours {
        self.capacity * self.cutoff_fraction
    }

    /// Usable energy above the cutoff when full.
    pub fn usable_capacity(&self) -> WattHours {
        self.capacity - self.min_soc()
    }

    /// Current state of charge.
    pub fn state_of_charge(&self) -> WattHours {
        self.soc
    }

    /// Current state of charge as a fraction of nominal capacity.
    pub fn soc_fraction(&self) -> f64 {
        self.soc / self.capacity
    }

    /// True if at full capacity.
    pub fn is_full(&self) -> bool {
        (self.capacity - self.soc).value() < 1e-9
    }

    /// Resets to a full battery.
    pub fn reset_full(&mut self) {
        self.soc = self.capacity;
    }

    /// Advances one step: `generation` serves `load` directly; surplus is
    /// stored (with charge losses), deficit is drawn from the battery
    /// (with discharge losses) down to the cutoff.
    pub fn step(&mut self, generation: WattHours, load: WattHours) -> BatteryStep {
        let mut result = BatteryStep::default();
        let net = generation - load;
        if net.value() >= 0.0 {
            let storable = net * self.charge_efficiency;
            let headroom = self.capacity - self.soc;
            let stored = storable.min(headroom);
            self.soc += stored;
            result.curtailed = (storable - stored) / self.charge_efficiency;
        } else {
            let deficit = WattHours::new(-net.value());
            let draw_needed = deficit / self.discharge_efficiency;
            let available = self.soc - self.min_soc();
            if draw_needed <= available {
                self.soc -= draw_needed;
            } else {
                self.soc = self.min_soc();
                result.unmet = (draw_needed - available) * self.discharge_efficiency;
            }
        }
        result.full_after = self.is_full();
        result
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "battery {} (cutoff {:.0} %, SoC {:.1} %)",
            self.capacity,
            self.cutoff_fraction * 100.0,
            self.soc_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wh(v: f64) -> WattHours {
        WattHours::new(v)
    }

    #[test]
    fn paper_battery_parameters() {
        let b = Battery::paper_default();
        assert_eq!(b.capacity(), wh(720.0));
        assert_eq!(b.min_soc(), wh(288.0));
        assert_eq!(b.usable_capacity(), wh(432.0));
        assert!(b.is_full());
    }

    #[test]
    fn discharge_stops_at_cutoff() {
        let mut b = Battery::paper_default();
        // demand far beyond usable capacity
        let step = b.step(WattHours::ZERO, wh(10_000.0));
        assert_eq!(b.state_of_charge(), wh(288.0));
        // unmet = demand - usable*discharge_eff
        let served = 432.0 * 0.95;
        assert!((step.unmet.value() - (10_000.0 - served)).abs() < 1e-6);
        assert!(!step.full_after);
    }

    #[test]
    fn charge_stops_at_capacity() {
        let mut b = Battery::paper_default();
        b.step(WattHours::ZERO, wh(100.0)); // make room
        let step = b.step(wh(10_000.0), WattHours::ZERO);
        assert!(b.is_full());
        assert!(step.full_after);
        assert!(step.curtailed.value() > 0.0);
    }

    #[test]
    fn round_trip_efficiency() {
        let mut b = Battery::paper_default();
        b.step(WattHours::ZERO, wh(100.0)); // draw 100 Wh of load
        let drawn = 720.0 - b.state_of_charge().value();
        assert!((drawn - 100.0 / 0.95).abs() < 1e-9);
        b.step(wh(drawn), WattHours::ZERO); // put the same energy back
        let back = b.state_of_charge().value();
        assert!((720.0 - back - drawn * (1.0 - 0.95)).abs() < 1e-9);
    }

    #[test]
    fn generation_serves_load_first() {
        let mut b = Battery::paper_default();
        // equal generation and load: battery untouched
        let step = b.step(wh(50.0), wh(50.0));
        assert!(b.is_full());
        assert_eq!(step.unmet, WattHours::ZERO);
        assert_eq!(step.curtailed, WattHours::ZERO);
    }

    #[test]
    fn lossless_battery() {
        let mut b = Battery::with_capacity(wh(1000.0))
            .with_efficiencies(1.0, 1.0)
            .with_cutoff_fraction(0.0);
        b.step(WattHours::ZERO, wh(600.0));
        assert_eq!(b.state_of_charge(), wh(400.0));
        b.step(wh(600.0), WattHours::ZERO);
        assert!(b.is_full());
    }

    #[test]
    fn night_of_repeater_load_ok() {
        let mut b = Battery::paper_default();
        // 24 h of the repeater's average 5.17 W = 124.1 Wh
        let step = b.step(WattHours::ZERO, wh(124.1));
        assert_eq!(step.unmet, WattHours::ZERO);
        // about 3.3 such days fit in the usable window
        let mut days = 1;
        loop {
            let s = b.step(WattHours::ZERO, wh(124.1));
            if s.unmet.value() > 0.0 {
                break;
            }
            days += 1;
        }
        assert_eq!(days, 3);
    }

    #[test]
    fn reset_and_accessors() {
        let mut b = Battery::paper_default();
        b.step(WattHours::ZERO, wh(100.0));
        assert!(!b.is_full());
        b.reset_full();
        assert!(b.is_full());
        assert!((b.soc_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(b.cutoff_fraction(), 0.4);
    }

    #[test]
    fn display() {
        let b = Battery::paper_default();
        assert_eq!(
            b.to_string(),
            "battery 720.00 Wh (cutoff 40 %, SoC 100.0 %)"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::with_capacity(WattHours::ZERO);
    }
}
