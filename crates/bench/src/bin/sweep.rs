//! Batch scenario sweeps: expands a Cartesian scenario grid and evaluates
//! every cell on the worker pool, printing a summary and optionally
//! writing the full per-cell report as CSV/JSON.
//!
//! ```console
//! $ cargo run --release -p corridor_bench --bin sweep -- --help
//! $ cargo run --release -p corridor_bench --bin sweep -- --workers 4 --csv sweep.csv
//! ```
//!
//! The default grid is the 200-cell screening sweep (5 conventional ISDs
//! × 5 timetable densities × 4 train speeds × 2 climates); `--demo` runs
//! an 8-cell variant for a quick look. The parallel path produces results
//! identical to `--serial` — only faster.

use std::process::ExitCode;
use std::time::Instant;

use corridor_core::report::TextTable;
use corridor_core::sink::{RowFormat, WriteSink};
use corridor_core::solar::climate;
use corridor_core::EnergyStrategy;
use corridor_sim::{PvOutcome, ResultCache, ScenarioGrid, SweepEngine};

const USAGE: &str = "\
usage: sweep [options]

options:
  --workers N     worker threads (default: machine parallelism; 1 = serial path)
  --serial        run on the calling thread (reference path)
  --nodes N       repeaters per segment, 0-10 (default 10)
  --no-pv         skip the per-cell PV sizing (the expensive step)
  --demo          8-cell demo grid instead of the 200-cell screening grid
  --csv PATH      write the per-cell report as CSV
  --json PATH     write the per-cell report as JSON
  --stream PATH   stream rows straight to PATH with flat memory (no report)
  --format F      row format for --stream: csv (default) or json
  --cache DIR     scenario-hash result cache for --stream: re-runs only
                  recompute cells whose parameters changed
  --help          this text
";

struct Options {
    workers: usize,
    serial: bool,
    nodes: usize,
    pv: bool,
    demo: bool,
    csv: Option<String>,
    json: Option<String>,
    stream: Option<String>,
    format: RowFormat,
    cache: Option<String>,
}

fn parse(mut args: std::env::Args) -> Result<Option<Options>, String> {
    let mut opts = Options {
        workers: 0,
        serial: false,
        nodes: 10,
        pv: true,
        demo: false,
        csv: None,
        json: None,
        stream: None,
        format: RowFormat::Csv,
        cache: None,
    };
    let _ = args.next(); // binary name
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--serial" => opts.serial = true,
            "--nodes" => {
                opts.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
                if opts.nodes > 10 {
                    return Err("--nodes must be 0-10 (the paper's ISD table)".into());
                }
            }
            "--no-pv" => opts.pv = false,
            "--demo" => opts.demo = true,
            "--csv" => opts.csv = Some(value("--csv")?),
            "--json" => opts.json = Some(value("--json")?),
            "--stream" => opts.stream = Some(value("--stream")?),
            "--format" => {
                let label = value("--format")?;
                opts.format = RowFormat::from_label(&label)
                    .ok_or(format!("--format must be csv or json, not {label:?}"))?;
            }
            "--cache" => opts.cache = Some(value("--cache")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args()) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("sweep: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let base = if opts.demo {
        ScenarioGrid::new()
            .trains_per_hour(vec![4.0, 8.0])
            .train_speeds_kmh(vec![160.0, 200.0])
            .locations(vec![climate::madrid(), climate::berlin()])
    } else {
        ScenarioGrid::screening_200()
    };
    let grid = match base.repeater_nodes(opts.nodes) {
        Ok(grid) => grid,
        Err(err) => {
            eprintln!("sweep: {err}");
            return ExitCode::FAILURE;
        }
    };

    // resolve the worker count once and hand it to the engine, so the
    // banner below always matches the pool that actually runs
    let workers = if opts.serial {
        1
    } else if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        opts.workers
    };
    let engine = SweepEngine::new().workers(workers).pv_sizing(opts.pv);

    println!(
        "sweep: {} cells ({} repeater nodes @ {:.0} m), {} worker{}, PV sizing {}",
        grid.len(),
        grid.nodes(),
        grid.deployment_isd().value(),
        workers,
        if workers == 1 { "" } else { "s" },
        if opts.pv { "on" } else { "off" },
    );

    if let Some(path) = &opts.stream {
        // flat-memory path: rows go straight to the file, the full
        // report never exists in memory
        let cache = match &opts.cache {
            Some(dir) => match ResultCache::open(dir) {
                Ok(cache) => Some(cache),
                Err(error) => {
                    eprintln!("sweep: cannot open cache {dir}: {error}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let file = match std::fs::File::create(path) {
            Ok(file) => file,
            Err(error) => {
                eprintln!("sweep: cannot create {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let mut sink = WriteSink::new(std::io::BufWriter::new(file));
        let started = Instant::now();
        let summary = match engine.stream_with(&grid, opts.format, &mut sink, cache.as_ref()) {
            Ok(summary) => summary,
            Err(error) => {
                eprintln!("sweep: streaming failed: {error}");
                return ExitCode::FAILURE;
            }
        };
        let elapsed = started.elapsed();
        println!(
            "streamed {} rows ({}) to {path} in {:.2} s",
            summary.rows,
            opts.format.label(),
            elapsed.as_secs_f64(),
        );
        if opts.cache.is_some() {
            println!(
                "cache: {} hits, {} misses ({:.0} % warm)",
                summary.cache_hits,
                summary.cache_misses,
                summary.hit_rate() * 100.0,
            );
        }
        return ExitCode::SUCCESS;
    }

    let started = Instant::now();
    let run = if opts.serial {
        engine.run_serial(&grid)
    } else {
        engine.run(&grid)
    };
    let report = match run {
        Ok(report) => report,
        Err(error) => {
            eprintln!("sweep: invalid grid: {error}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();
    println!(
        "evaluated in {:.2} s ({:.0} cells/s)\n",
        elapsed.as_secs_f64(),
        report.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    let mut table = TextTable::new(vec![
        "strategy".into(),
        "mean saving".into(),
        "best saving".into(),
        "best cell".into(),
    ]);
    for (label, strategy) in [
        ("continuous", EnergyStrategy::ContinuousRepeaters),
        ("sleep mode", EnergyStrategy::SleepModeRepeaters),
        ("solar", EnergyStrategy::SolarPoweredRepeaters),
    ] {
        let best = report.best_cell(strategy).expect("grid is non-empty");
        table.add_row(vec![
            label.to_string(),
            format!("{:.1} %", report.mean_savings(strategy) * 100.0),
            format!("{:.1} %", best.savings(strategy) * 100.0),
            best.cell().to_string(),
        ]);
    }
    println!("{}", table.render());

    if opts.pv {
        let (mut sized, mut unsolvable) = (0usize, 0usize);
        for r in report.results() {
            match r.pv() {
                PvOutcome::Sized { .. } => sized += 1,
                PvOutcome::Unsolvable => unsolvable += 1,
                PvOutcome::Skipped => {}
            }
        }
        println!("PV sizing: {sized} cells sized, {unsolvable} unsolvable");
    }

    if let Some(path) = &opts.csv {
        if let Err(error) = report.write_csv(path) {
            eprintln!("sweep: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote CSV to {path}");
    }
    if let Some(path) = &opts.json {
        if let Err(error) = report.write_json(path) {
            eprintln!("sweep: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote JSON to {path}");
    }
    ExitCode::SUCCESS
}
