//! The struct-of-arrays batch evaluator must be *bit-identical* to the
//! scalar path: for every cell of the screening grid, every float of
//! every split produced by the batched sweep equals the float the
//! scalar evaluation produces — `assert_eq!` on raw bits, not an
//! epsilon — including the NaN/zero-baseline hardening conventions.

use corridor_core::energy::{self, SegmentEnergy};
use corridor_core::{EnergyStrategy, ScenarioParams};
use corridor_sim::{Evaluator, ScenarioGrid, SweepEngine};
use corridor_traffic::{ActivityTimeline, TrackSection};
use corridor_units::{Meters, Watts};

fn assert_same_bits(label: &str, batched: &SegmentEnergy, scalar: &SegmentEnergy) {
    for (field, b, s) in [
        ("hp", batched.hp, scalar.hp),
        ("service", batched.service, scalar.service),
        ("donor", batched.donor, scalar.donor),
    ] {
        assert_eq!(
            b.value().to_bits(),
            s.value().to_bits(),
            "{label}.{field}: batched {} != scalar {}",
            b.value(),
            s.value(),
        );
    }
}

/// Every cell of the 200-cell screening grid, batched sweep versus
/// per-cell scalar evaluation: all four splits bit-identical.
#[test]
fn screening_grid_batch_matches_scalar_bit_for_bit() {
    let grid = ScenarioGrid::screening_200();
    let engine = SweepEngine::new().workers(1).pv_sizing(false);
    let batched = engine.run_serial(&grid).unwrap();
    assert_eq!(batched.len(), 200);
    for result in batched.results() {
        let scalar = engine.evaluate(result.cell());
        assert_same_bits("baseline", result.baseline(), scalar.baseline());
        for strategy in EnergyStrategy::ALL {
            assert_same_bits(
                &format!("{strategy}"),
                result.split(strategy),
                scalar.split(strategy),
            );
        }
    }
}

/// The batched splits also equal the raw core-crate computation — the
/// path that existed before the batch layer — bit for bit.
#[test]
fn batch_matches_the_core_energy_functions() {
    let grid = ScenarioGrid::screening_200();
    let report = SweepEngine::new()
        .workers(1)
        .pv_sizing(false)
        .run_serial(&grid)
        .unwrap();
    for result in report.results() {
        let cell = result.cell();
        let params = cell.params();
        let baseline = energy::average_power_per_km(
            params,
            0,
            params.conventional_isd(),
            EnergyStrategy::SleepModeRepeaters,
        );
        assert_same_bits("baseline", result.baseline(), &baseline);
        for strategy in EnergyStrategy::ALL {
            let scalar = energy::average_power_per_km(params, cell.nodes(), cell.isd(), strategy);
            assert_same_bits(&format!("{strategy}"), result.split(strategy), &scalar);
        }
    }
}

/// The parallel batched sweep equals the serial batched sweep exactly
/// (same blocks, same order, same bits).
#[test]
fn parallel_batched_sweep_equals_serial() {
    let grid = ScenarioGrid::screening_200();
    let engine = SweepEngine::new().pv_sizing(false);
    let serial = engine.run_serial(&grid).unwrap();
    for workers in [1usize, 2, 8] {
        let parallel = engine.workers(workers).run(&grid).unwrap();
        assert_eq!(serial.results(), parallel.results(), "workers = {workers}");
    }
}

/// The memoized activity lookup is bit-identical to a fresh timeline
/// scan, on first use and on every repeat.
#[test]
fn memoized_active_hours_match_a_fresh_timeline() {
    let params = ScenarioParams::paper_default();
    for isd_m in [500.0, 1250.0, 2650.0, 3062.5] {
        for section in [
            TrackSection::new(Meters::ZERO, Meters::new(isd_m)),
            TrackSection::around(Meters::new(isd_m / 2.0), params.lp_spacing()),
        ] {
            let fresh = ActivityTimeline::for_section(&section, &params.timetable().passes())
                .total_active_hours();
            for round in 0..2 {
                let memoized = energy::active_hours(&params, section);
                assert_eq!(
                    memoized.value().to_bits(),
                    fresh.value().to_bits(),
                    "isd {isd_m}, round {round}"
                );
            }
        }
    }
}

/// The event-driven backend bypasses the batch layer: blocked and
/// per-cell evaluation agree there too.
#[test]
fn event_driven_blocks_match_per_cell_evaluation() {
    let grid = ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0]);
    let engine = SweepEngine::new()
        .workers(1)
        .pv_sizing(false)
        .evaluator(Evaluator::event_driven());
    let report = engine.run_serial(&grid).unwrap();
    for result in report.results() {
        let scalar = engine.evaluate(result.cell());
        assert_eq!(result, &scalar);
    }
}

/// Hardening: no float anywhere in the batched screening sweep is NaN
/// or infinite, and the zero-baseline savings convention (0.0, never
/// NaN/∞) survives the batch path.
#[test]
fn batched_sweep_stays_finite_and_hardened() {
    let grid = ScenarioGrid::screening_200();
    let report = SweepEngine::new()
        .workers(1)
        .pv_sizing(false)
        .run_serial(&grid)
        .unwrap();
    for result in report.results() {
        assert!(result.baseline().total().value().is_finite());
        for strategy in EnergyStrategy::ALL {
            let split = result.split(strategy);
            for w in [split.hp, split.service, split.donor] {
                assert!(w.value().is_finite(), "{}: {w:?}", result.cell());
            }
            assert!(result.savings(strategy).is_finite());
        }
        // the zero-baseline convention is preserved by batched splits
        let zero = SegmentEnergy {
            hp: Watts::ZERO,
            service: Watts::ZERO,
            donor: Watts::ZERO,
        };
        assert_eq!(
            result
                .split(EnergyStrategy::SleepModeRepeaters)
                .savings_vs(&zero),
            0.0
        );
    }
}
