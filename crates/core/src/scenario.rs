//! Scenario parameters (paper Table III plus equipment and RF budget).

use core::fmt;

use corridor_deploy::{LinkBudget, PlacementPolicy};
use corridor_power::{catalog, LoadDependentPower};
use corridor_traffic::{Timetable, Train};
use corridor_units::{Hours, KilometersPerHour, Meters, Seconds};

/// Every parameter of the corridor energy study in one place, defaulting
/// to the paper's Table III values:
///
/// | parameter | value |
/// |---|---|
/// | trains per hour | 8 |
/// | hours per night without traffic | 5 h |
/// | train length / speed | 400 m / 200 km/h |
/// | LP repeater node spacing | 200 m |
/// | HP mast power (full / sleep) | 560 W / 224 W |
/// | LP node power (full / idle / sleep) | 28.4 W / 24.3 W / 4.7 W |
/// | conventional reference ISD | 500 m |
///
/// # Examples
///
/// ```
/// use corridor_core::ScenarioParams;
/// let params = ScenarioParams::paper_default();
/// assert_eq!(params.timetable().trains_per_day(), 152);
/// assert_eq!(params.conventional_isd().value(), 500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParams {
    timetable: Timetable,
    lp_spacing: Meters,
    conventional_isd: Meters,
    hp_mast: LoadDependentPower,
    lp_node: LoadDependentPower,
    budget: LinkBudget,
    placement: PlacementPolicy,
}

impl ScenarioParams {
    /// A validating builder initialized with the paper's defaults.
    ///
    /// Unlike the panicking `with_*` setters, the builder collects plain
    /// numbers and reports invalid combinations as [`ScenarioError`]s —
    /// the right shape for sweep engines expanding machine-generated
    /// parameter grids.
    ///
    /// # Examples
    ///
    /// ```
    /// use corridor_core::ScenarioParams;
    /// let params = ScenarioParams::builder()
    ///     .trains_per_hour(12.0)
    ///     .lp_spacing_m(150.0)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(params.timetable().trains_per_hour(), 12.0);
    /// ```
    pub fn builder() -> ScenarioParamsBuilder {
        ScenarioParamsBuilder::new()
    }

    /// The paper's scenario (see the type-level table).
    pub fn paper_default() -> Self {
        ScenarioParams {
            timetable: Timetable::paper_default(),
            lp_spacing: Meters::new(200.0),
            conventional_isd: Meters::new(500.0),
            hp_mast: catalog::high_power_mast(),
            lp_node: catalog::low_power_repeater_measured(),
            budget: LinkBudget::paper_default(),
            placement: PlacementPolicy::paper_default(),
        }
    }

    /// Overrides the timetable.
    #[must_use]
    pub fn with_timetable(mut self, timetable: Timetable) -> Self {
        self.timetable = timetable;
        self
    }

    /// Overrides the repeater node spacing.
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not strictly positive.
    #[must_use]
    pub fn with_lp_spacing(mut self, spacing: Meters) -> Self {
        assert!(spacing.value() > 0.0, "spacing must be positive");
        self.lp_spacing = spacing;
        self.placement = PlacementPolicy::FixedSpacing(spacing);
        self
    }

    /// Overrides the conventional reference ISD.
    ///
    /// # Panics
    ///
    /// Panics if `isd` is not strictly positive.
    #[must_use]
    pub fn with_conventional_isd(mut self, isd: Meters) -> Self {
        assert!(isd.value() > 0.0, "ISD must be positive");
        self.conventional_isd = isd;
        self
    }

    /// Overrides the high-power mast power model.
    #[must_use]
    pub fn with_hp_mast(mut self, model: LoadDependentPower) -> Self {
        self.hp_mast = model;
        self
    }

    /// Overrides the low-power repeater power model.
    #[must_use]
    pub fn with_lp_node(mut self, model: LoadDependentPower) -> Self {
        self.lp_node = model;
        self
    }

    /// Overrides the link budget.
    #[must_use]
    pub fn with_budget(mut self, budget: LinkBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The daily timetable.
    pub fn timetable(&self) -> &Timetable {
        &self.timetable
    }

    /// The rolling stock.
    pub fn train(&self) -> Train {
        self.timetable.train()
    }

    /// Repeater node spacing (Table III: 200 m).
    pub fn lp_spacing(&self) -> Meters {
        self.lp_spacing
    }

    /// The conventional reference ISD (500 m).
    pub fn conventional_isd(&self) -> Meters {
        self.conventional_isd
    }

    /// The high-power mast power model (two RRHs).
    pub fn hp_mast(&self) -> &LoadDependentPower {
        &self.hp_mast
    }

    /// The low-power repeater power model.
    pub fn lp_node(&self) -> &LoadDependentPower {
        &self.lp_node
    }

    /// The RF link budget.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// The repeater placement policy.
    pub fn placement(&self) -> &PlacementPolicy {
        &self.placement
    }
}

impl Default for ScenarioParams {
    /// Returns [`ScenarioParams::paper_default`].
    fn default() -> Self {
        ScenarioParams::paper_default()
    }
}

/// Why a [`ScenarioParamsBuilder`] rejected its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioError {
    /// The repeater node spacing is zero or negative.
    NonPositiveSpacing,
    /// The conventional reference ISD is zero or negative.
    NonPositiveIsd,
    /// The timetable carries no trains (non-positive rate, or a rate so
    /// low the daily train count rounds to zero).
    EmptyTimetable,
    /// The daily service window is not a finite number of hours in
    /// `(0, 24]` — NaN, zero, negative and longer-than-a-day windows all
    /// produce nonsense duty cycles downstream, so they are rejected at
    /// the builder instead.
    InvalidServiceWindow,
    /// The train speed is zero or negative.
    NonPositiveTrainSpeed,
    /// The train length is negative.
    NegativeTrainLength,
    /// A sweep engine was configured with an explicit worker count of
    /// zero (omit the setting for automatic machine parallelism).
    ZeroWorkers,
    /// An ISD table has no entry for the requested repeater node count
    /// (the paper's table covers 0–10 nodes).
    NoIsdForNodeCount(usize),
    /// The worker thread pool could not be built. The offline `rayon`
    /// shim never fails here, but the real crate can (resource
    /// exhaustion), and engines must surface that instead of panicking
    /// mid-sweep.
    WorkerPoolBuild,
    /// An internal bookkeeping invariant failed (e.g. a scheduler slot
    /// referencing an edge without a committed pick). The payload names
    /// the violated invariant. Reaching this variant is a bug in the
    /// engine, not bad user input — but engines surface it as a typed
    /// error rather than panicking mid-run.
    Invariant(&'static str),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NonPositiveSpacing => {
                f.write_str("repeater node spacing must be strictly positive")
            }
            ScenarioError::NonPositiveIsd => {
                f.write_str("conventional ISD must be strictly positive")
            }
            ScenarioError::EmptyTimetable => f.write_str(
                "timetable is empty: trains per hour must be positive and \
                 yield at least one train per day",
            ),
            ScenarioError::InvalidServiceWindow => {
                f.write_str("service window must be a finite number of hours in (0, 24]")
            }
            ScenarioError::NonPositiveTrainSpeed => {
                f.write_str("train speed must be strictly positive")
            }
            ScenarioError::NegativeTrainLength => f.write_str("train length must be non-negative"),
            ScenarioError::ZeroWorkers => f.write_str(
                "worker count must be strictly positive (omit the setting for \
                 automatic machine parallelism)",
            ),
            ScenarioError::NoIsdForNodeCount(n) => {
                write!(f, "ISD table has no entry for {n} repeater nodes")
            }
            ScenarioError::WorkerPoolBuild => f.write_str("worker thread pool could not be built"),
            ScenarioError::Invariant(what) => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A validating builder for [`ScenarioParams`], initialized with the
/// paper's Table III defaults.
///
/// Every numeric setter takes plain units (trains/h, km/h, metres) so
/// sweep engines can feed machine-generated grids directly; [`build`]
/// validates the combination and returns a [`ScenarioError`] instead of
/// panicking.
///
/// [`build`]: ScenarioParamsBuilder::build
///
/// # Examples
///
/// ```
/// use corridor_core::{ScenarioError, ScenarioParams};
///
/// let err = ScenarioParams::builder().lp_spacing_m(0.0).build().unwrap_err();
/// assert_eq!(err, ScenarioError::NonPositiveSpacing);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParamsBuilder {
    trains_per_hour: f64,
    service_window: Hours,
    service_start: Seconds,
    train_length: Meters,
    train_speed_kmh: f64,
    lp_spacing: Meters,
    conventional_isd: Meters,
    hp_mast: LoadDependentPower,
    lp_node: LoadDependentPower,
    budget: LinkBudget,
}

impl ScenarioParamsBuilder {
    /// A builder holding the paper's defaults.
    pub fn new() -> Self {
        let timetable = Timetable::paper_default();
        let train = timetable.train();
        ScenarioParamsBuilder {
            trains_per_hour: timetable.trains_per_hour(),
            service_window: timetable.service_window(),
            service_start: timetable.service_start(),
            train_length: train.length(),
            train_speed_kmh: train.speed().kilometers_per_hour().value(),
            lp_spacing: Meters::new(200.0),
            conventional_isd: Meters::new(500.0),
            hp_mast: catalog::high_power_mast(),
            lp_node: catalog::low_power_repeater_measured(),
            budget: LinkBudget::paper_default(),
        }
    }

    /// Sets the timetable density (trains per service hour).
    #[must_use]
    pub fn trains_per_hour(mut self, trains_per_hour: f64) -> Self {
        self.trains_per_hour = trains_per_hour;
        self
    }

    /// Sets the daily service window length in hours.
    #[must_use]
    pub fn service_window_h(mut self, hours: f64) -> Self {
        self.service_window = Hours::new(hours);
        self
    }

    /// Sets the train length in metres.
    #[must_use]
    pub fn train_length_m(mut self, metres: f64) -> Self {
        self.train_length = Meters::new(metres);
        self
    }

    /// Sets the train speed in km/h.
    #[must_use]
    pub fn train_speed_kmh(mut self, kmh: f64) -> Self {
        self.train_speed_kmh = kmh;
        self
    }

    /// Sets the low-power repeater node spacing in metres.
    #[must_use]
    pub fn lp_spacing_m(mut self, metres: f64) -> Self {
        self.lp_spacing = Meters::new(metres);
        self
    }

    /// Sets the conventional reference ISD in metres.
    #[must_use]
    pub fn conventional_isd_m(mut self, metres: f64) -> Self {
        self.conventional_isd = Meters::new(metres);
        self
    }

    /// Sets the high-power mast power model.
    #[must_use]
    pub fn hp_mast(mut self, model: LoadDependentPower) -> Self {
        self.hp_mast = model;
        self
    }

    /// Sets the low-power repeater power model.
    #[must_use]
    pub fn lp_node(mut self, model: LoadDependentPower) -> Self {
        self.lp_node = model;
        self
    }

    /// Sets the RF link budget.
    #[must_use]
    pub fn budget(mut self, budget: LinkBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Validates the inputs and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first applicable [`ScenarioError`]:
    /// [`NonPositiveSpacing`](ScenarioError::NonPositiveSpacing),
    /// [`NonPositiveIsd`](ScenarioError::NonPositiveIsd),
    /// [`InvalidServiceWindow`](ScenarioError::InvalidServiceWindow),
    /// [`EmptyTimetable`](ScenarioError::EmptyTimetable),
    /// [`NonPositiveTrainSpeed`](ScenarioError::NonPositiveTrainSpeed) or
    /// [`NegativeTrainLength`](ScenarioError::NegativeTrainLength).
    pub fn build(self) -> Result<ScenarioParams, ScenarioError> {
        let positive = |x: f64| x > 0.0; // false for NaN as well
        if !positive(self.lp_spacing.value()) {
            return Err(ScenarioError::NonPositiveSpacing);
        }
        if !positive(self.conventional_isd.value()) {
            return Err(ScenarioError::NonPositiveIsd);
        }
        let window = self.service_window.value();
        if !positive(window) || window > 24.0 {
            return Err(ScenarioError::InvalidServiceWindow);
        }
        if !positive(self.trains_per_hour) {
            return Err(ScenarioError::EmptyTimetable);
        }
        if (self.trains_per_hour * window).round() < 1.0 {
            return Err(ScenarioError::EmptyTimetable);
        }
        if !positive(self.train_speed_kmh) {
            return Err(ScenarioError::NonPositiveTrainSpeed);
        }
        if self.train_length.value() < 0.0 || self.train_length.value().is_nan() {
            return Err(ScenarioError::NegativeTrainLength);
        }
        let train = Train::new(
            self.train_length,
            KilometersPerHour::new(self.train_speed_kmh).meters_per_second(),
        );
        let timetable = Timetable::new(
            self.trains_per_hour,
            self.service_window,
            self.service_start,
            train,
        );
        Ok(ScenarioParams {
            timetable,
            lp_spacing: self.lp_spacing,
            conventional_isd: self.conventional_isd,
            hp_mast: self.hp_mast,
            lp_node: self.lp_node,
            budget: self.budget,
            placement: PlacementPolicy::FixedSpacing(self.lp_spacing),
        })
    }
}

impl Default for ScenarioParamsBuilder {
    /// Returns [`ScenarioParamsBuilder::new`].
    fn default() -> Self {
        ScenarioParamsBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Watts;

    #[test]
    fn paper_defaults() {
        let p = ScenarioParams::paper_default();
        assert_eq!(p.timetable().trains_per_hour(), 8.0);
        assert_eq!(p.lp_spacing(), Meters::new(200.0));
        assert_eq!(p.conventional_isd(), Meters::new(500.0));
        assert_eq!(p.hp_mast().full_load_power(), Watts::new(560.0));
        assert!((p.lp_node().full_load_power().value() - 28.38).abs() < 1e-9);
        assert_eq!(ScenarioParams::default(), p);
    }

    #[test]
    fn builders() {
        let p = ScenarioParams::paper_default()
            .with_lp_spacing(Meters::new(150.0))
            .with_conventional_isd(Meters::new(600.0));
        assert_eq!(p.lp_spacing(), Meters::new(150.0));
        assert_eq!(p.conventional_isd(), Meters::new(600.0));
        assert_eq!(
            p.placement(),
            &PlacementPolicy::FixedSpacing(Meters::new(150.0))
        );
    }

    #[test]
    fn train_accessor() {
        let p = ScenarioParams::paper_default();
        assert_eq!(p.train().length(), Meters::new(400.0));
    }

    #[test]
    fn builder_defaults_reproduce_paper_default() {
        let built = ScenarioParams::builder().build().unwrap();
        assert_eq!(built, ScenarioParams::paper_default());
        assert_eq!(ScenarioParamsBuilder::default(), ScenarioParams::builder());
    }

    #[test]
    fn builder_sets_every_axis() {
        let p = ScenarioParams::builder()
            .trains_per_hour(4.0)
            .service_window_h(16.0)
            .train_length_m(250.0)
            .train_speed_kmh(160.0)
            .lp_spacing_m(150.0)
            .conventional_isd_m(600.0)
            .hp_mast(catalog::high_power_rrh())
            .lp_node(catalog::low_power_repeater())
            .budget(LinkBudget::paper_default())
            .build()
            .unwrap();
        assert_eq!(p.timetable().trains_per_hour(), 4.0);
        assert_eq!(p.timetable().service_window(), Hours::new(16.0));
        assert_eq!(p.train().length(), Meters::new(250.0));
        assert!((p.train().speed().kilometers_per_hour().value() - 160.0).abs() < 1e-9);
        assert_eq!(p.lp_spacing(), Meters::new(150.0));
        assert_eq!(p.conventional_isd(), Meters::new(600.0));
        assert_eq!(p.hp_mast(), &catalog::high_power_rrh());
        assert_eq!(p.lp_node(), &catalog::low_power_repeater());
        assert_eq!(
            p.placement(),
            &PlacementPolicy::FixedSpacing(Meters::new(150.0))
        );
    }

    #[test]
    fn builder_rejects_zero_spacing() {
        let err = ScenarioParams::builder()
            .lp_spacing_m(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NonPositiveSpacing);
        let err = ScenarioParams::builder()
            .lp_spacing_m(-5.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NonPositiveSpacing);
    }

    #[test]
    fn builder_rejects_non_positive_isd() {
        let err = ScenarioParams::builder()
            .conventional_isd_m(-500.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NonPositiveIsd);
    }

    #[test]
    fn builder_rejects_empty_timetable() {
        for builder in [
            ScenarioParams::builder().trains_per_hour(0.0),
            ScenarioParams::builder().trains_per_hour(-8.0),
            ScenarioParams::builder().trains_per_hour(f64::NAN),
            // rounds to zero trains per day
            ScenarioParams::builder()
                .trains_per_hour(0.02)
                .service_window_h(1.0),
        ] {
            assert_eq!(builder.build().unwrap_err(), ScenarioError::EmptyTimetable);
        }
    }

    #[test]
    fn builder_rejects_invalid_service_window() {
        for hours in [0.0, -3.0, 25.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ScenarioParams::builder()
                .service_window_h(hours)
                .build()
                .unwrap_err();
            assert_eq!(err, ScenarioError::InvalidServiceWindow, "hours={hours}");
        }
    }

    #[test]
    fn builder_rejects_non_positive_train_speed() {
        let err = ScenarioParams::builder()
            .train_speed_kmh(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NonPositiveTrainSpeed);
    }

    #[test]
    fn builder_rejects_negative_train_length() {
        let err = ScenarioParams::builder()
            .train_length_m(-1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NegativeTrainLength);
    }

    #[test]
    fn scenario_error_displays() {
        assert!(ScenarioError::NonPositiveSpacing
            .to_string()
            .contains("spacing"));
        assert!(ScenarioError::NonPositiveIsd.to_string().contains("ISD"));
        assert!(ScenarioError::EmptyTimetable
            .to_string()
            .contains("timetable"));
        assert!(ScenarioError::InvalidServiceWindow
            .to_string()
            .contains("service window"));
        assert!(ScenarioError::NonPositiveTrainSpeed
            .to_string()
            .contains("speed"));
        assert!(ScenarioError::NegativeTrainLength
            .to_string()
            .contains("length"));
        assert!(ScenarioError::ZeroWorkers.to_string().contains("worker"));
        assert!(ScenarioError::NoIsdForNodeCount(11)
            .to_string()
            .contains("11 repeater nodes"));
        assert!(ScenarioError::WorkerPoolBuild.to_string().contains("pool"));
    }
}
