//! The three operating strategies of the paper's Fig. 4.

use core::fmt;

/// How the low-power repeater nodes are operated and powered.
///
/// The high-power RRHs always use their sleep mode between trains (the
/// paper's Section V-A assumption); the strategies differ only in the
/// repeaters:
///
/// * [`ContinuousRepeaters`](EnergyStrategy::ContinuousRepeaters) — the
///   repeaters stay awake around the clock (idle at `P0` between trains);
/// * [`SleepModeRepeaters`](EnergyStrategy::SleepModeRepeaters) — the
///   barrier-triggered sleep mode drops them to 4.72 W between trains;
/// * [`SolarPoweredRepeaters`](EnergyStrategy::SolarPoweredRepeaters) —
///   sleep mode plus off-grid PV supply: repeaters draw no mains energy at
///   all, only the high-power masts remain grid-powered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EnergyStrategy {
    /// Repeaters powered continuously (idle between trains).
    ContinuousRepeaters,
    /// Repeaters sleep between trains.
    SleepModeRepeaters,
    /// Repeaters sleep and are solar-powered (zero mains draw).
    SolarPoweredRepeaters,
}

impl EnergyStrategy {
    /// All strategies in the paper's Fig. 4 order (left to right).
    pub const ALL: [EnergyStrategy; 3] = [
        EnergyStrategy::ContinuousRepeaters,
        EnergyStrategy::SleepModeRepeaters,
        EnergyStrategy::SolarPoweredRepeaters,
    ];
}

impl fmt::Display for EnergyStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EnergyStrategy::ContinuousRepeaters => "continuous operation",
            EnergyStrategy::SleepModeRepeaters => "sleep mode",
            EnergyStrategy::SolarPoweredRepeaters => "solar powered",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_in_figure_order() {
        assert_eq!(EnergyStrategy::ALL.len(), 3);
        assert_eq!(EnergyStrategy::ALL[0], EnergyStrategy::ContinuousRepeaters);
        assert_eq!(
            EnergyStrategy::ALL[2],
            EnergyStrategy::SolarPoweredRepeaters
        );
    }

    #[test]
    fn display_matches_figure_legend() {
        assert_eq!(
            EnergyStrategy::ContinuousRepeaters.to_string(),
            "continuous operation"
        );
        assert_eq!(EnergyStrategy::SleepModeRepeaters.to_string(), "sleep mode");
        assert_eq!(
            EnergyStrategy::SolarPoweredRepeaters.to_string(),
            "solar powered"
        );
    }
}
