//! Maximum-ISD optimization (paper Section V).

use corridor_units::Meters;

use crate::{CorridorLayout, CoverageCriterion, IsdTable, LinkBudget, PlacementPolicy};

/// Finds, for each repeater count, the largest inter-site distance that
/// still satisfies a coverage criterion — the paper's 50 m-step sweep.
///
/// The search exploits that stretching a segment only ever worsens its
/// worst-served point (for the supported placement policies both the
/// mast-to-cluster gap and the inter-node gaps are non-decreasing in the
/// ISD), so a binary search over the ISD grid finds the boundary; the
/// result is verified against the criterion before being returned.
///
/// # Examples
///
/// ```
/// use corridor_deploy::{IsdOptimizer, LinkBudget};
/// use corridor_units::Meters;
///
/// let optimizer = IsdOptimizer::new(LinkBudget::paper_default());
/// let max = optimizer.max_isd(1).unwrap();
/// // paper: one repeater extends the ISD to 1250 m
/// assert_eq!(max, Meters::new(1250.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IsdOptimizer {
    budget: LinkBudget,
    placement: PlacementPolicy,
    criterion: CoverageCriterion,
    isd_step: Meters,
    sample_step: Meters,
    min_isd: Meters,
    max_isd: Meters,
}

impl IsdOptimizer {
    /// An optimizer with the paper's setup: 50 m ISD grid, 200 m fixed
    /// repeater spacing, min-SNR-29 dB criterion, search range
    /// 100 m – 4000 m, 5 m profile sampling.
    pub fn new(budget: LinkBudget) -> Self {
        IsdOptimizer {
            budget,
            placement: PlacementPolicy::paper_default(),
            criterion: CoverageCriterion::paper_default(),
            isd_step: Meters::new(50.0),
            sample_step: Meters::new(5.0),
            min_isd: Meters::new(100.0),
            max_isd: Meters::new(4000.0),
        }
    }

    /// Overrides the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Overrides the coverage criterion.
    #[must_use]
    pub fn with_criterion(mut self, criterion: CoverageCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Overrides the ISD grid step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn with_isd_step(mut self, step: Meters) -> Self {
        assert!(step.value() > 0.0, "ISD step must be positive");
        self.isd_step = step;
        self
    }

    /// Overrides the profile sampling step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn with_sample_step(mut self, step: Meters) -> Self {
        assert!(step.value() > 0.0, "sample step must be positive");
        self.sample_step = step;
        self
    }

    /// Overrides the search range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-positive.
    #[must_use]
    pub fn with_search_range(mut self, min: Meters, max: Meters) -> Self {
        assert!(min.value() > 0.0 && max >= min, "invalid search range");
        self.min_isd = min;
        self.max_isd = max;
        self
    }

    /// The link budget in use.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// The placement policy in use.
    pub fn placement(&self) -> &PlacementPolicy {
        &self.placement
    }

    /// The criterion in use.
    pub fn criterion(&self) -> CoverageCriterion {
        self.criterion
    }

    /// True if a segment of `isd` with `n` repeaters satisfies the
    /// criterion (placement failures count as unsatisfied).
    pub fn satisfies(&self, n: usize, isd: Meters) -> bool {
        self.probe(n, isd) == crate::search::Probe::Satisfied
    }

    /// One uncached grid-point probe, in the shared skeleton's
    /// vocabulary.
    fn probe(&self, n: usize, isd: Meters) -> crate::search::Probe {
        let Ok(layout) = CorridorLayout::with_policy(isd, n, &self.placement) else {
            return crate::search::Probe::PlacementInfeasible;
        };
        let profile = layout.coverage_profile(&self.budget, self.sample_step);
        if self
            .criterion
            .is_satisfied(&profile, self.budget.throughput())
        {
            crate::search::Probe::Satisfied
        } else {
            crate::search::Probe::CriterionFailed
        }
    }

    /// The largest grid ISD for which `n` repeaters satisfy the criterion,
    /// or `None` if even the smallest feasible ISD fails.
    ///
    /// Every probe samples a fresh coverage profile; layered searches
    /// should prefer [`IsdOptimizer::max_isd_cached`].
    pub fn max_isd(&self, n: usize) -> Option<Meters> {
        crate::search::max_feasible_on_grid(self.min_isd, self.max_isd, self.isd_step, |isd| {
            self.probe(n, isd)
        })
    }

    /// [`IsdOptimizer::max_isd`] through a shared [`CoverageCache`](crate::CoverageCache): the
    /// min-SNR criteria ([`CoverageCriterion::MinSnr`],
    /// [`CoverageCriterion::PeakEverywhere`]) probe the memoized minimum
    /// SNR instead of re-sampling a profile per step — the hot path of
    /// repeated sweeps. Spectral-efficiency criteria need the full
    /// profile and fall back to the uncached search.
    ///
    /// Cached probes sample at the *cache's* step
    /// ([`CoverageCache::sample_step`](crate::CoverageCache::sample_step)), not this optimizer's — build
    /// the cache with the step you want pinned.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was built under a different [`LinkBudget`] than
    /// this optimizer (its memoized answers would be for the wrong RF
    /// configuration).
    pub fn max_isd_cached(&self, cache: &crate::CoverageCache, n: usize) -> Option<Meters> {
        assert!(
            cache.budget() == &self.budget,
            "coverage cache built under a different link budget"
        );
        match self.criterion {
            CoverageCriterion::MinSnr(threshold) => cache.max_feasible_isd(
                n,
                &self.placement,
                threshold,
                self.min_isd,
                self.max_isd,
                self.isd_step,
            ),
            CoverageCriterion::PeakEverywhere => cache.max_isd_by(
                n,
                &self.placement,
                self.min_isd,
                self.max_isd,
                self.isd_step,
                |snr| self.budget.throughput().is_peak(snr),
            ),
            CoverageCriterion::MeanSpectralEfficiency(_)
            | CoverageCriterion::TrainWindowed { .. } => self.max_isd(n),
        }
    }

    /// Sweeps `n = 0..=max_nodes` and collects the results in an
    /// [`IsdTable`].
    pub fn sweep(&self, max_nodes: usize) -> IsdTable {
        IsdTable::from_max_isds((0..=max_nodes).map(|n| self.max_isd(n)).collect())
    }

    /// [`IsdOptimizer::sweep`] through a shared [`CoverageCache`](crate::CoverageCache): a
    /// repeated sweep (another criterion threshold, another caller) hits
    /// the cache instead of re-sampling every profile.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was built under a different [`LinkBudget`]
    /// (see [`IsdOptimizer::max_isd_cached`]).
    pub fn sweep_cached(&self, cache: &crate::CoverageCache, max_nodes: usize) -> IsdTable {
        IsdTable::from_max_isds(
            (0..=max_nodes)
                .map(|n| self.max_isd_cached(cache, n))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Db;

    fn optimizer() -> IsdOptimizer {
        // coarser sampling keeps debug-mode tests quick; the boundary ISDs
        // are insensitive to 5 m vs 10 m sampling at a 50 m grid
        IsdOptimizer::new(LinkBudget::paper_default()).with_sample_step(Meters::new(10.0))
    }

    #[test]
    fn paper_anchor_points() {
        let opt = optimizer();
        // the model reproduces the paper's first two entries exactly
        assert_eq!(opt.max_isd(1), Some(Meters::new(1250.0)));
        assert_eq!(opt.max_isd(2), Some(Meters::new(1450.0)));
    }

    #[test]
    fn monotone_in_node_count() {
        let opt = optimizer();
        let table = opt.sweep(4);
        let mut last = Meters::ZERO;
        for n in 0..=4 {
            let isd = table.isd_for(n).expect("every n solvable");
            assert!(isd >= last, "n={n}: {isd} < {last}");
            last = isd;
        }
    }

    #[test]
    fn boundary_is_tight() {
        let opt = optimizer();
        let isd = opt.max_isd(1).unwrap();
        assert!(opt.satisfies(1, isd));
        assert!(!opt.satisfies(1, isd + Meters::new(50.0)));
    }

    #[test]
    fn conventional_beats_500m_under_model() {
        // the model's N=0 bound exceeds the 500 m "typical deployment"
        // (the paper's 500 m comes from real-world constraints, not from
        // this link budget)
        let opt = optimizer();
        let isd = opt.max_isd(0).unwrap();
        assert!(isd >= Meters::new(500.0));
        assert!(opt.satisfies(0, Meters::new(500.0)));
    }

    #[test]
    fn stricter_criterion_shrinks_isd() {
        let opt = optimizer();
        let strict = optimizer().with_criterion(CoverageCriterion::MinSnr(Db::new(32.0)));
        assert!(strict.max_isd(2).unwrap() < opt.max_isd(2).unwrap());
    }

    #[test]
    fn impossible_criterion_returns_none() {
        let opt = optimizer().with_criterion(CoverageCriterion::MinSnr(Db::new(90.0)));
        assert_eq!(opt.max_isd(1), None);
    }

    #[test]
    fn capped_at_search_range() {
        let opt = optimizer().with_search_range(Meters::new(100.0), Meters::new(800.0));
        // n=1 could reach 1250 m but the range caps it
        assert_eq!(opt.max_isd(1), Some(Meters::new(800.0)));
    }

    #[test]
    fn cached_search_matches_uncached() {
        let opt = optimizer();
        let cache =
            crate::CoverageCache::with_sample_step(LinkBudget::paper_default(), Meters::new(10.0));
        for n in 0..=3 {
            assert_eq!(opt.max_isd_cached(&cache, n), opt.max_isd(n), "n={n}");
        }
        assert_eq!(opt.sweep_cached(&cache, 3), opt.sweep(3));
        // a repeated cached sweep pays zero new profile samples
        let profiles = cache.profile_evaluations();
        let _ = opt.sweep_cached(&cache, 3);
        assert_eq!(cache.profile_evaluations(), profiles);
        // PeakEverywhere routes through the cache too
        let peak = optimizer().with_criterion(CoverageCriterion::PeakEverywhere);
        assert_eq!(peak.max_isd_cached(&cache, 1), peak.max_isd(1));
        // spectral-efficiency criteria fall back to the uncached path
        let se = optimizer().with_criterion(CoverageCriterion::MeanSpectralEfficiency(5.8));
        assert_eq!(se.max_isd_cached(&cache, 1), se.max_isd(1));
    }

    #[test]
    #[should_panic(expected = "different link budget")]
    fn cached_search_rejects_foreign_budget() {
        use corridor_units::Dbm;
        let opt = optimizer();
        let foreign = LinkBudget::paper_default().with_hp_eirp(Dbm::new(10.0));
        let cache = crate::CoverageCache::new(foreign);
        let _ = opt.max_isd_cached(&cache, 1);
    }

    #[test]
    fn accessors() {
        let opt = optimizer();
        assert_eq!(opt.criterion(), CoverageCriterion::paper_default());
        assert_eq!(opt.placement(), &PlacementPolicy::paper_default());
        assert_eq!(opt.budget(), &LinkBudget::paper_default());
    }
}
