//! Fixture: fallible accessor, plus test code where panics are fine.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
