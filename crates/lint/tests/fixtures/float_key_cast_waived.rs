//! Fixture: a reasoned waiver suppresses the float-key-cast rule.

pub fn rank(xs: &mut [f64]) {
    // corridor-lint: allow(float-key-cast, reason = "values are integral by construction, cast is exact")
    xs.sort_by_key(|x| (x * 1000.0) as i64);
}
