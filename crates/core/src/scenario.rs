//! Scenario parameters (paper Table III plus equipment and RF budget).

use corridor_deploy::{LinkBudget, PlacementPolicy};
use corridor_power::{catalog, LoadDependentPower};
use corridor_traffic::{Timetable, Train};
use corridor_units::Meters;

/// Every parameter of the corridor energy study in one place, defaulting
/// to the paper's Table III values:
///
/// | parameter | value |
/// |---|---|
/// | trains per hour | 8 |
/// | hours per night without traffic | 5 h |
/// | train length / speed | 400 m / 200 km/h |
/// | LP repeater node spacing | 200 m |
/// | HP mast power (full / sleep) | 560 W / 224 W |
/// | LP node power (full / idle / sleep) | 28.4 W / 24.3 W / 4.7 W |
/// | conventional reference ISD | 500 m |
///
/// # Examples
///
/// ```
/// use corridor_core::ScenarioParams;
/// let params = ScenarioParams::paper_default();
/// assert_eq!(params.timetable().trains_per_day(), 152);
/// assert_eq!(params.conventional_isd().value(), 500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParams {
    timetable: Timetable,
    lp_spacing: Meters,
    conventional_isd: Meters,
    hp_mast: LoadDependentPower,
    lp_node: LoadDependentPower,
    budget: LinkBudget,
    placement: PlacementPolicy,
}

impl ScenarioParams {
    /// The paper's scenario (see the type-level table).
    pub fn paper_default() -> Self {
        ScenarioParams {
            timetable: Timetable::paper_default(),
            lp_spacing: Meters::new(200.0),
            conventional_isd: Meters::new(500.0),
            hp_mast: catalog::high_power_mast(),
            lp_node: catalog::low_power_repeater_measured(),
            budget: LinkBudget::paper_default(),
            placement: PlacementPolicy::paper_default(),
        }
    }

    /// Overrides the timetable.
    #[must_use]
    pub fn with_timetable(mut self, timetable: Timetable) -> Self {
        self.timetable = timetable;
        self
    }

    /// Overrides the repeater node spacing.
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not strictly positive.
    #[must_use]
    pub fn with_lp_spacing(mut self, spacing: Meters) -> Self {
        assert!(spacing.value() > 0.0, "spacing must be positive");
        self.lp_spacing = spacing;
        self.placement = PlacementPolicy::FixedSpacing(spacing);
        self
    }

    /// Overrides the conventional reference ISD.
    ///
    /// # Panics
    ///
    /// Panics if `isd` is not strictly positive.
    #[must_use]
    pub fn with_conventional_isd(mut self, isd: Meters) -> Self {
        assert!(isd.value() > 0.0, "ISD must be positive");
        self.conventional_isd = isd;
        self
    }

    /// Overrides the high-power mast power model.
    #[must_use]
    pub fn with_hp_mast(mut self, model: LoadDependentPower) -> Self {
        self.hp_mast = model;
        self
    }

    /// Overrides the low-power repeater power model.
    #[must_use]
    pub fn with_lp_node(mut self, model: LoadDependentPower) -> Self {
        self.lp_node = model;
        self
    }

    /// Overrides the link budget.
    #[must_use]
    pub fn with_budget(mut self, budget: LinkBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The daily timetable.
    pub fn timetable(&self) -> &Timetable {
        &self.timetable
    }

    /// The rolling stock.
    pub fn train(&self) -> Train {
        self.timetable.train()
    }

    /// Repeater node spacing (Table III: 200 m).
    pub fn lp_spacing(&self) -> Meters {
        self.lp_spacing
    }

    /// The conventional reference ISD (500 m).
    pub fn conventional_isd(&self) -> Meters {
        self.conventional_isd
    }

    /// The high-power mast power model (two RRHs).
    pub fn hp_mast(&self) -> &LoadDependentPower {
        &self.hp_mast
    }

    /// The low-power repeater power model.
    pub fn lp_node(&self) -> &LoadDependentPower {
        &self.lp_node
    }

    /// The RF link budget.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// The repeater placement policy.
    pub fn placement(&self) -> &PlacementPolicy {
        &self.placement
    }
}

impl Default for ScenarioParams {
    /// Returns [`ScenarioParams::paper_default`].
    fn default() -> Self {
        ScenarioParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corridor_units::Watts;

    #[test]
    fn paper_defaults() {
        let p = ScenarioParams::paper_default();
        assert_eq!(p.timetable().trains_per_hour(), 8.0);
        assert_eq!(p.lp_spacing(), Meters::new(200.0));
        assert_eq!(p.conventional_isd(), Meters::new(500.0));
        assert_eq!(p.hp_mast().full_load_power(), Watts::new(560.0));
        assert!((p.lp_node().full_load_power().value() - 28.38).abs() < 1e-9);
        assert_eq!(ScenarioParams::default(), p);
    }

    #[test]
    fn builders() {
        let p = ScenarioParams::paper_default()
            .with_lp_spacing(Meters::new(150.0))
            .with_conventional_isd(Meters::new(600.0));
        assert_eq!(p.lp_spacing(), Meters::new(150.0));
        assert_eq!(p.conventional_isd(), Meters::new(600.0));
        assert_eq!(
            p.placement(),
            &PlacementPolicy::FixedSpacing(Meters::new(150.0))
        );
    }

    #[test]
    fn train_accessor() {
        let p = ScenarioParams::paper_default();
        assert_eq!(p.train().length(), Meters::new(400.0));
    }
}
