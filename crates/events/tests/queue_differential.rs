//! Differential suite: the calendar/bucket [`EventQueue`] against the
//! binary-heap implementation it replaced.
//!
//! The old heap lives on here as [`ReferenceQueue`], byte-for-byte the
//! implementation that shipped before the arena rewrite. Property tests
//! drive both queues through the same operation sequences — pushes with
//! engineered timestamp ties, interleaved pops, pushes in the past,
//! clear-and-replay cycles — and require identical pop streams. On top
//! of the queue-level properties, the simulator's smoke outputs (paper
//! policy, instant policy, Poisson day, double track) are pinned to
//! digests captured from the pre-rewrite implementation, so the swap is
//! provably invisible end to end.

use core::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

use corridor_core::traffic::{PoissonTimetable, Timetable, TrackSection, TrainPass};
use corridor_core::units::{Meters, Seconds};
use corridor_events::{
    segment_nodes, CorridorSimulator, Event, EventKind, EventQueue, SimReport, WakePolicy,
};
use proptest::prelude::*;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// The reference implementation: the pre-rewrite binary-heap queue,
// kept verbatim (modulo names) as the differential oracle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    event: Event,
    seq: u64,
}

fn kind_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::BarrierTrip => 0,
        EventKind::WakeComplete(_) => 1,
        EventKind::TrainEnter => 2,
        EventKind::TrainExit => 3,
        EventKind::DrainExpire(_) => 4,
    }
}

impl HeapEntry {
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.event
            .time
            .partial_cmp(&other.event.time)
            .expect("event times are never NaN")
            .then_with(|| kind_rank(self.event.kind).cmp(&kind_rank(other.event.kind)))
            .then_with(|| self.event.node.cmp(&other.event.node))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest event
        self.key_cmp(other).reverse()
    }
}

/// The pre-rewrite queue: a plain binary min-heap with an insertion
/// sequence as the final tiebreak.
#[derive(Debug, Default)]
struct ReferenceQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue::default()
    }

    fn push(&mut self, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { event, seq });
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|entry| entry.event)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// An event's observable identity, with the time as raw bits so `-0.0`
/// and `+0.0` cannot alias through `==`.
fn fingerprint(event: Event) -> (u64, usize, EventKind) {
    (event.time.value().to_bits(), event.node, event.kind)
}

fn assert_same_pop(arena: Option<Event>, reference: Option<Event>) {
    assert_eq!(arena.map(fingerprint), reference.map(fingerprint));
}

fn drain_both(arena: &mut EventQueue, reference: &mut ReferenceQueue) {
    loop {
        let (a, r) = (arena.pop(), reference.pop());
        let done = a.is_none() && r.is_none();
        assert_same_pop(a, r);
        if done {
            return;
        }
    }
}

fn kind_of(selector: u8, tag: u64) -> EventKind {
    match selector % 5 {
        0 => EventKind::BarrierTrip,
        1 => EventKind::WakeComplete(tag),
        2 => EventKind::TrainEnter,
        3 => EventKind::TrainExit,
        _ => EventKind::DrainExpire(tag),
    }
}

fn ev(time: f64, node: usize, kind: EventKind) -> Event {
    Event {
        time: Seconds::new(time),
        node,
        kind,
    }
}

/// Times engineered to collide: a handful of exact constants (including
/// the `-0.0`/`+0.0` pair) plus coarse grids, so same-timestamp
/// tie-breaks are exercised constantly rather than almost never.
fn time_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(10.0),
        Just(86_400.0),
        (-50.0..=100.0f64).prop_map(|t| t.floor()),
        (0.0..=25.0f64).prop_map(|t| (t * 2.0).floor() / 2.0),
        -10.0..=90_000.0f64,
    ]
}

// ---------------------------------------------------------------------
// Queue-level differential properties
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary push/pop interleavings: every pop (including mid-stream
    /// and post-exhaustion pops) returns exactly what the reference heap
    /// returns, bit for bit.
    #[test]
    fn arbitrary_interleavings_match_the_reference(
        ops in prop::collection::vec(
            ((0u8..=3, 0u8..=4), (time_strategy(), 0usize..6, 0u64..3)),
            1..120,
        ),
    ) {
        let mut arena = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        for ((opcode, kind_sel), (time, node, tag)) in ops {
            if opcode == 0 {
                // pop both (possibly from empty)
                assert_same_pop(arena.pop(), reference.pop());
            } else {
                let event = ev(time, node, kind_of(kind_sel, tag));
                arena.push(event);
                reference.push(event);
            }
            prop_assert_eq!(arena.len(), reference.len());
            prop_assert_eq!(arena.is_empty(), reference.len() == 0);
        }
        drain_both(&mut arena, &mut reference);
    }

    /// Clear-and-replay cycles: a queue that is cleared and refilled —
    /// sometimes with the identical population (the replay-cache fast
    /// path), sometimes with a fresh one — behaves exactly like a fresh
    /// reference heap every cycle.
    #[test]
    fn cleared_queue_matches_a_fresh_reference(
        population in prop::collection::vec(
            (time_strategy(), 0usize..5, 0u8..=4),
            1..60,
        ),
        replays in 1usize..4,
        mutate in 0u8..=1,
    ) {
        let mut arena = EventQueue::new();
        for round in 0..replays {
            arena.clear();
            let mut reference = ReferenceQueue::new();
            for (i, &(time, node, kind_sel)) in population.iter().enumerate() {
                // optionally perturb the last round so the replay check
                // must reject the population and re-sort
                let t = if mutate == 1 && round + 1 == replays {
                    time + 0.25
                } else {
                    time
                };
                let event = ev(t, node, kind_of(kind_sel, i as u64));
                arena.push(event);
                reference.push(event);
            }
            drain_both(&mut arena, &mut reference);
        }
    }

    /// Pops interleaved into the staging stream: sealing early (first
    /// pop) and then pushing the rest — including events in the past —
    /// must still match the reference pop order exactly.
    #[test]
    fn early_seal_with_late_pushes_matches(
        before in prop::collection::vec((time_strategy(), 0usize..4, 0u8..=4), 1..40),
        after in prop::collection::vec((time_strategy(), 0usize..4, 0u8..=4), 1..40),
        pops_between in 1usize..5,
    ) {
        let mut arena = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        for (i, &(time, node, kind_sel)) in before.iter().enumerate() {
            let event = ev(time, node, kind_of(kind_sel, i as u64));
            arena.push(event);
            reference.push(event);
        }
        for _ in 0..pops_between {
            assert_same_pop(arena.pop(), reference.pop());
        }
        for (i, &(time, node, kind_sel)) in after.iter().enumerate() {
            let event = ev(time, node, kind_of(kind_sel, i as u64));
            arena.push(event);
            reference.push(event);
        }
        drain_both(&mut arena, &mut reference);
    }
}

// ---------------------------------------------------------------------
// Deterministic event populations from the traffic model
// ---------------------------------------------------------------------

/// Pushes the simulator's static event population (barrier, enter,
/// exit per occupancy, with the simulator's horizon-clipping rule) into
/// both queues.
fn push_occupancies(
    arena: &mut EventQueue,
    reference: &mut ReferenceQueue,
    sections: &[TrackSection],
    passes: &[TrainPass],
    lead: Seconds,
    horizon: Seconds,
) {
    for (node, section) in sections.iter().enumerate() {
        for pass in passes {
            let (enter, exit) = section.occupancy(pass);
            if exit <= Seconds::ZERO || enter >= horizon || exit <= enter {
                continue;
            }
            for event in [
                ev((enter - lead).value(), node, EventKind::BarrierTrip),
                ev(enter.value(), node, EventKind::TrainEnter),
                ev(exit.value(), node, EventKind::TrainExit),
            ] {
                arena.push(event);
                reference.push(event);
            }
        }
    }
}

#[test]
fn horizon_clipped_passes_match_the_reference() {
    // passes straddling both horizon edges: one still in the section at
    // midnight, one entirely past the day, one entering before t = 0
    // (negative barrier-trip times via the wake lead)
    let train = corridor_core::traffic::Train::paper_default();
    let passes: Vec<TrainPass> = [-5.0, 0.0, 10.0, 86_390.0, 86_395.0, 90_000.0]
        .into_iter()
        .map(|t| TrainPass::new(train, Seconds::new(t)))
        .collect();
    let sections = [
        TrackSection::new(Meters::ZERO, Meters::new(500.0)),
        TrackSection::new(Meters::new(400.0), Meters::new(900.0)),
    ];
    let mut arena = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    push_occupancies(
        &mut arena,
        &mut reference,
        &sections,
        &passes,
        WakePolicy::paper_default().lead(),
        Seconds::new(86_400.0),
    );
    drain_both(&mut arena, &mut reference);
}

#[test]
fn zero_length_sections_match_the_reference() {
    // a zero-length section still has a positive occupancy (train length
    // over speed), and two nodes at the same point produce full
    // timestamp collisions across all three event kinds
    let train = corridor_core::traffic::Train::paper_default();
    let passes: Vec<TrainPass> = (0..20)
        .map(|i| TrainPass::new(train, Seconds::new(f64::from(i) * 450.0)))
        .collect();
    let at = Meters::new(700.0);
    let sections = [
        TrackSection::new(at, at),
        TrackSection::new(at, at),
        TrackSection::new(Meters::ZERO, at),
    ];
    let mut arena = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    push_occupancies(
        &mut arena,
        &mut reference,
        &sections,
        &passes,
        Seconds::ZERO,
        Seconds::new(86_400.0),
    );
    drain_both(&mut arena, &mut reference);
}

// ---------------------------------------------------------------------
// End-to-end smoke digests pinned from the pre-rewrite implementation
// ---------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A digest over every float bit and counter a [`SimReport`] exposes.
fn report_digest(report: &SimReport) -> u64 {
    let mut s = String::new();
    let _ = write!(
        s,
        "{}|{}|{};",
        report.horizon().value().to_bits(),
        report.events_processed(),
        report.passes()
    );
    for node in report.nodes() {
        let t = node.trace();
        let _ = write!(
            s,
            "{:?}|{}|{}|{}|{}|{}|{}|{};",
            node.kind(),
            t.asleep().value().to_bits(),
            t.waking().value().to_bits(),
            t.active().value().to_bits(),
            t.drain().value().to_bits(),
            t.powered().value().to_bits(),
            t.wakes(),
            t.uncovered().value().to_bits(),
        );
    }
    fnv1a(s.as_bytes())
}

/// Digests of the smoke simulations captured by running this exact
/// digest on the pre-rewrite (binary-heap) implementation. The arena
/// queue must reproduce the old outputs bit for bit.
const PAPER_DIGEST: u64 = 0x0fd6_5c95_c119_d3d6;
const INSTANT_DIGEST: u64 = 0x9f1c_eaef_313f_5acc;
const POISSON_DIGEST: u64 = 0x75a2_3e4d_9ca9_9319;
const DOUBLE_TRACK_DIGEST: u64 = 0x3431_5226_b94f_8a58;

#[test]
fn simulate_smoke_output_is_byte_identical_to_the_heap_era() {
    let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
    let passes = Timetable::paper_default().passes();

    let paper = CorridorSimulator::new()
        .with_policy(WakePolicy::paper_default())
        .simulate(&nodes, &passes);
    assert_eq!(report_digest(&paper), PAPER_DIGEST);

    let instant = CorridorSimulator::new().simulate(&nodes, &passes);
    assert_eq!(report_digest(&instant), INSTANT_DIGEST);

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let poisson_passes = PoissonTimetable::paper_rate().sample_passes(&mut rng);
    let poisson = CorridorSimulator::new()
        .with_policy(WakePolicy::paper_default())
        .simulate(&nodes, &poisson_passes);
    assert_eq!(report_digest(&poisson), POISSON_DIGEST);
}

#[test]
fn double_track_smoke_output_is_byte_identical_to_the_heap_era() {
    let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
    let passes = Timetable::paper_default().passes();
    let length = nodes
        .iter()
        .map(|s| s.section().end())
        .fold(Meters::ZERO, |a, b| if b > a { b } else { a });
    let base = Timetable::paper_default();
    let down = Timetable::new(
        base.trains_per_hour(),
        base.service_window(),
        base.service_start() + Seconds::new(225.0),
        base.train(),
    )
    .passes();
    let double = CorridorSimulator::new()
        .with_policy(WakePolicy::paper_default())
        .simulate_double_track(&nodes, &passes, &down, length);
    assert_eq!(report_digest(&double), DOUBLE_TRACK_DIGEST);
}

#[test]
fn replayed_days_are_byte_identical_to_fresh_days() {
    // the replay cache: simulating the same day repeatedly through one
    // thread's scratch arena must keep producing the heap-era digest
    let nodes = segment_nodes(10, Meters::new(2650.0), Meters::new(200.0));
    let passes = Timetable::paper_default().passes();
    let sim = CorridorSimulator::new().with_policy(WakePolicy::paper_default());
    for _ in 0..3 {
        let report = sim.simulate(&nodes, &passes);
        assert_eq!(report_digest(&report), PAPER_DIGEST);
    }
    // and a different population in between must not poison the cache
    let other =
        PoissonTimetable::paper_rate().sample_passes(&mut rand::rngs::StdRng::seed_from_u64(7));
    assert_eq!(report_digest(&sim.simulate(&nodes, &other)), POISSON_DIGEST);
    assert_eq!(report_digest(&sim.simulate(&nodes, &passes)), PAPER_DIGEST);
}
