//! Monte-Carlo determinism and convergence: byte-identical reports
//! across worker counts, and confidence intervals that shrink like 1/√N
//! toward the analytic headline value.

use corridor_core::{experiments, ScenarioParams};
use corridor_sim::{McEngine, McMetric, McReport, ReplicationPlan, ScenarioGrid, TrafficSpec};

fn small_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .trains_per_hour(vec![4.0, 8.0])
        .train_speeds_kmh(vec![160.0, 200.0])
}

fn headline_mc(replications: usize) -> McReport {
    McEngine::new()
        .workers(1)
        .run(&ScenarioGrid::new(), &ReplicationPlan::new(replications))
        .unwrap()
}

#[test]
fn csv_is_byte_identical_across_worker_counts() {
    let grid = small_grid();
    let plan = ReplicationPlan::new(6).master_seed(13);
    let serial = McEngine::new().workers(1).run_serial(&grid, &plan).unwrap();
    let reference_csv = serial.to_csv();
    let reference_json = serial.to_json();
    for workers in [1usize, 2, 8] {
        let parallel = McEngine::new().workers(workers).run(&grid, &plan).unwrap();
        assert_eq!(parallel.to_csv(), reference_csv, "{workers} workers");
        assert_eq!(parallel.to_json(), reference_json, "{workers} workers");
        assert_eq!(parallel, serial, "{workers} workers");
    }
}

#[test]
fn jittered_plan_is_deterministic_too() {
    let plan = ReplicationPlan::new(5)
        .master_seed(3)
        .traffic(TrafficSpec::Jittered(
            corridor_traffic::DelayModel::typical(),
        ));
    let grid = ScenarioGrid::new();
    let a = McEngine::new().workers(1).run(&grid, &plan).unwrap();
    let b = McEngine::new().workers(4).run(&grid, &plan).unwrap();
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn different_master_seeds_give_different_statistics() {
    let grid = ScenarioGrid::new();
    let a = McEngine::new()
        .workers(1)
        .run(&grid, &ReplicationPlan::new(5).master_seed(1))
        .unwrap();
    let b = McEngine::new()
        .workers(1)
        .run(&grid, &ReplicationPlan::new(5).master_seed(2))
        .unwrap();
    assert_ne!(
        a.results()[0].stats(McMetric::RepeaterWhDay).mean,
        b.results()[0].stats(McMetric::RepeaterWhDay).mean
    );
}

#[test]
fn ci_half_width_shrinks_like_one_over_sqrt_n() {
    let coarse = headline_mc(25);
    let fine = headline_mc(400);
    let coarse_ci = coarse.results()[0].stats(McMetric::RepeaterWhDay).ci95;
    let fine_ci = fine.results()[0].stats(McMetric::RepeaterWhDay).ci95;
    assert!(coarse_ci > 0.0 && fine_ci > 0.0);
    // 16x the replications -> ~4x tighter CI (sampled stddev wobbles,
    // so allow a generous band around sqrt(16) = 4)
    let ratio = coarse_ci / fine_ci;
    assert!((2.5..=6.5).contains(&ratio), "CI shrink ratio {ratio}");
}

#[test]
fn headline_cell_converges_to_the_analytic_energy() {
    let analytic = experiments::headline_numbers(&ScenarioParams::paper_default())
        .repeater_daily_energy
        .value();
    let coarse = headline_mc(25);
    let fine = headline_mc(400);
    let coarse_stats = *coarse.results()[0].stats(McMetric::RepeaterWhDay);
    let fine_stats = *fine.results()[0].stats(McMetric::RepeaterWhDay);

    // the 25-replication mean lands within 1 % of 124.07 Wh/day, the
    // 400-replication mean within 0.5 %
    assert!(
        (coarse_stats.mean / analytic - 1.0).abs() < 0.01,
        "25 reps: {} vs {analytic}",
        coarse_stats.mean
    );
    assert!(
        (fine_stats.mean / analytic - 1.0).abs() < 0.005,
        "400 reps: {} vs {analytic}",
        fine_stats.mean
    );
    // and the 25-replication 95 % CI covers the analytic value (the
    // acceptance criterion of the mc binary's headline cell)
    assert!(
        coarse_stats.ci_covers(analytic),
        "CI [{} ± {}] misses {analytic}",
        coarse_stats.mean,
        coarse_stats.ci95
    );
}
