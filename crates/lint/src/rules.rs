//! The rule set: each rule encodes one workspace invariant.
//!
//! Rules scan the masked text (see [`crate::sanitize`]) line by line
//! with word-boundary token matching — no regular expressions, no
//! parser, no dependencies. Matching is deliberately conservative: a
//! rule fires on the *token pattern* of a hazard, and genuinely safe
//! sites carry an inline waiver whose reason string documents the
//! safety argument (the waiver is part of the code review surface).

use crate::sanitize::Sanitized;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// NaN-unsafe float ordering: any `partial_cmp` call or
    /// implementation in scanned code. Library code must order floats
    /// with `f64::total_cmp`, the `total_cmp` helpers on the unit
    /// newtypes, or the `corridor_core::pareto` dominance helpers.
    FloatOrd,
    /// Panic-family calls in non-test library code: `.unwrap()`,
    /// `.expect(…)`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!`. Library crates surface typed errors
    /// (`ScenarioError` / `NetworkError`) instead.
    NoPanic,
    /// `HashMap` / `HashSet` at an import or fully-qualified use site.
    /// Hash iteration order is nondeterministic across processes, so
    /// any map that could feed a report, sink or CSV path must be a
    /// `BTreeMap` — or carry a waiver whose reason is the order-safety
    /// argument (key-probed only, no iteration escapes).
    HashOrder,
    /// Wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// bench/timing crates. Simulation and report code must be
    /// time-independent or byte-determinism cannot hold.
    WallClock,
    /// `unsafe` blocks/functions and `static mut` items. The workspace
    /// compiles entirely in safe Rust; crate roots carry
    /// `#![forbid(unsafe_code)]` and this rule catches the gap before
    /// the compiler attribute is edited away.
    UnsafeCode,
    /// `as` integer casts inside sort-key code (closures passed to
    /// `sort_by_key`-family methods and bodies of `fn …sort_key…`).
    /// A float→int `as` cast saturates and collapses NaN to 0, which
    /// silently reorders; sort keys must use `to_bits`-style exact
    /// encodings.
    FloatKeyCast,
}

impl Rule {
    /// Every content rule, in report order.
    pub const ALL: [Rule; 6] = [
        Rule::FloatOrd,
        Rule::NoPanic,
        Rule::HashOrder,
        Rule::WallClock,
        Rule::UnsafeCode,
        Rule::FloatKeyCast,
    ];

    /// The stable kebab-case id used in diagnostics and waivers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::FloatOrd => "float-ord",
            Rule::NoPanic => "no-panic",
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::UnsafeCode => "unsafe-code",
            Rule::FloatKeyCast => "float-key-cast",
        }
    }

    /// One-line description for `lint --list-rules` and the JSON report.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::FloatOrd => "NaN-unsafe float ordering (partial_cmp); use total_cmp or pareto helpers",
            Rule::NoPanic => "panic-family call in non-test library code; use typed errors",
            Rule::HashOrder => "HashMap/HashSet (nondeterministic iteration order); use BTreeMap or waive with an order-safety argument",
            Rule::WallClock => "wall-clock read outside bench/timing code",
            Rule::UnsafeCode => "unsafe code or static mut",
            Rule::FloatKeyCast => "`as` integer cast in sort-key code; use exact bit encodings",
        }
    }

    /// Parses a waiver's rule id; `None` for unknown ids.
    pub fn parse(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

/// What part of the workspace a file belongs to, deciding which rules
/// apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library crates and the umbrella crate: every rule applies.
    Library,
    /// The bench/CLI harness and the offline dependency shims: the
    /// determinism rules apply, but panics are acceptable in binaries
    /// and the criterion shim *is* the sanctioned timing code.
    Harness,
}

impl Scope {
    /// Whether `rule` is enforced in this scope.
    pub fn enforces(self, rule: Rule) -> bool {
        match self {
            Scope::Library => true,
            Scope::Harness => !matches!(rule, Rule::NoPanic | Rule::WallClock),
        }
    }
}

/// One raw rule hit, before waiver resolution.
#[derive(Debug, Clone)]
pub struct Hit {
    /// 1-based source line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
}

/// Runs every rule enforced in `scope` over the sanitized file and
/// returns the raw hits in (line, rule) order.
pub fn scan(sanitized: &Sanitized, scope: Scope) -> Vec<Hit> {
    let masked = &sanitized.masked;
    let test_spans = test_line_spans(masked);
    let key_spans = sort_key_line_spans(masked);
    let mut hits = Vec::new();

    for (idx, line) in masked.lines().enumerate() {
        let lineno = idx + 1;
        if in_spans(&test_spans, lineno) {
            continue;
        }
        for rule in Rule::ALL {
            if !scope.enforces(rule) {
                continue;
            }
            let fired = match rule {
                Rule::FloatOrd => has_word(line, "partial_cmp"),
                Rule::NoPanic => {
                    has_macro(line, "panic")
                        || has_macro(line, "unreachable")
                        || has_macro(line, "todo")
                        || has_macro(line, "unimplemented")
                        || has_method(line, "unwrap")
                        || has_method(line, "expect")
                }
                Rule::HashOrder => hash_import(line),
                Rule::WallClock => wall_clock(line),
                Rule::UnsafeCode => has_word(line, "unsafe") || static_mut(line),
                Rule::FloatKeyCast => in_spans(&key_spans, lineno) && int_cast(line),
            };
            if fired {
                hits.push(Hit { line: lineno, rule });
            }
        }
    }
    hits
}

/// True when `c` can be part of an identifier.
fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Iterates over the byte offsets where `word` occurs with identifier
/// boundaries on both sides.
fn word_offsets<'a>(line: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = line.as_bytes();
    let wlen = word.len();
    line.match_indices(word).filter_map(move |(at, _)| {
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = at + wlen >= bytes.len() || !is_ident(bytes[at + wlen]);
        (before_ok && after_ok).then_some(at)
    })
}

fn has_word(line: &str, word: &str) -> bool {
    word_offsets(line, word).next().is_some()
}

/// `word!` — a macro invocation (whitespace allowed before `!`).
fn has_macro(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    word_offsets(line, word).any(|at| {
        let rest = &bytes[at + word.len()..];
        first_non_ws(rest) == Some(b'!')
    })
}

/// `.word(` — a method call: a `.` before (whitespace allowed) and a
/// `(` after (whitespace allowed).
fn has_method(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    word_offsets(line, word).any(|at| {
        let before = &bytes[..at];
        let after = &bytes[at + word.len()..];
        last_non_ws(before) == Some(b'.') && first_non_ws(after) == Some(b'(')
    })
}

fn first_non_ws(bytes: &[u8]) -> Option<u8> {
    bytes.iter().copied().find(|b| !b.is_ascii_whitespace())
}

fn last_non_ws(bytes: &[u8]) -> Option<u8> {
    bytes
        .iter()
        .rev()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// `HashMap`/`HashSet` at a choke point: an import line, or a
/// fully-qualified `collections::HashMap` path anywhere.
fn hash_import(line: &str) -> bool {
    for name in ["HashMap", "HashSet"] {
        for at in word_offsets(line, name) {
            let import_line = has_word(line, "use") && line.contains("collections");
            let qualified = line[..at].trim_end().ends_with("collections::");
            if import_line || qualified {
                return true;
            }
        }
    }
    false
}

/// `Instant::now` (whitespace-tolerant) or any `SystemTime` mention.
fn wall_clock(line: &str) -> bool {
    if has_word(line, "SystemTime") {
        return true;
    }
    word_offsets(line, "Instant").any(|at| {
        let rest = line[at + "Instant".len()..].trim_start();
        rest.strip_prefix("::")
            .map(str::trim_start)
            .is_some_and(|r| starts_with_word(r, "now"))
    })
}

/// `static mut` — two adjacent keywords.
fn static_mut(line: &str) -> bool {
    word_offsets(line, "static")
        .any(|at| starts_with_word(line[at + "static".len()..].trim_start(), "mut"))
}

/// True when `rest` begins with `word` at an identifier boundary.
fn starts_with_word(rest: &str, word: &str) -> bool {
    rest.starts_with(word)
        && rest[word.len()..]
            .bytes()
            .next()
            .is_none_or(|b| !is_ident(b))
}

/// `as` followed by a bare integer type.
fn int_cast(line: &str) -> bool {
    const INT_TYPES: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    word_offsets(line, "as").any(|at| {
        let rest = line[at + "as".len()..].trim_start();
        INT_TYPES.iter().any(|ty| starts_with_word(rest, ty))
    })
}

/// Inclusive 1-based line spans of `#[cfg(test)]` items (the attribute
/// line through the closing brace of the item it gates).
fn test_line_spans(masked: &str) -> Vec<(usize, usize)> {
    spans_after_marker(masked, "#[cfg(test)]", b'{', b'}')
}

/// Inclusive 1-based line spans of sort-key code: the parenthesized
/// arguments of `sort_by_key`-family calls and the brace bodies of
/// functions whose name contains `sort_key`.
fn sort_key_line_spans(masked: &str) -> Vec<(usize, usize)> {
    const CALLS: [&str; 5] = [
        "sort_by_key",
        "sort_unstable_by_key",
        "min_by_key",
        "max_by_key",
        "binary_search_by_key",
    ];
    let mut spans = Vec::new();
    let bytes = masked.as_bytes();
    for call in CALLS {
        for at in word_offsets(masked, call) {
            if let Some(span) = delimited_span(bytes, at + call.len(), b'(', b')') {
                spans.push(to_lines(masked, at, span));
            }
        }
    }
    // `fn name_with_sort_key(...) { ... }`
    for at in word_offsets(masked, "fn") {
        let rest = masked[at + 2..].trim_start();
        let name: String = rest
            .bytes()
            .take_while(|&b| is_ident(b))
            .map(char::from)
            .collect();
        if name.contains("sort_key") {
            if let Some(span) = delimited_span(bytes, at + 2, b'{', b'}') {
                spans.push(to_lines(masked, at, span));
            }
        }
    }
    spans
}

/// Spans opened by `marker`: from the marker through the matching close
/// of the first `open` delimiter after it.
fn spans_after_marker(masked: &str, marker: &str, open: u8, close: u8) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    for (at, _) in masked.match_indices(marker) {
        if let Some(end) = delimited_span(bytes, at + marker.len(), open, close) {
            spans.push(to_lines(masked, at, end));
        } else {
            // unterminated (EOF): gate the rest of the file
            spans.push((line_of(masked, at), masked.lines().count().max(1)));
        }
    }
    spans
}

/// Finds the first `open` delimiter at or after `from` and returns the
/// byte offset of its matching `close`.
fn delimited_span(bytes: &[u8], from: usize, open: u8, close: u8) -> Option<usize> {
    let start = bytes[from.min(bytes.len())..]
        .iter()
        .position(|&b| b == open)
        .map(|p| from + p)?;
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// 1-based line number of byte offset `at`.
fn line_of(masked: &str, at: usize) -> usize {
    masked.as_bytes()[..at]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

fn to_lines(masked: &str, start: usize, end: usize) -> (usize, usize) {
    (line_of(masked, start), line_of(masked, end))
}

fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::sanitize;

    fn hits(src: &str, scope: Scope) -> Vec<(usize, Rule)> {
        scan(&sanitize(src), scope)
            .into_iter()
            .map(|h| (h.line, h.rule))
            .collect()
    }

    #[test]
    fn partial_cmp_fires_and_total_cmp_does_not() {
        let got = hits("let o = a.partial_cmp(&b);\n", Scope::Library);
        assert_eq!(got, vec![(1, Rule::FloatOrd)]);
        assert!(hits("let o = a.total_cmp(&b);\n", Scope::Library).is_empty());
    }

    #[test]
    fn unwrap_expect_and_panic_macros_fire() {
        let src = "let a = x.unwrap();\nlet b = y.expect( );\npanic!( );\nunreachable!( );\n";
        let got = hits(src, Scope::Library);
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|(_, r)| *r == Rule::NoPanic));
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "let a = x.unwrap_or(0);\nlet b = x.unwrap_or_else(f);\nlet c = x.unwrap_or_default();\nlet d = x.expect_something(1);\n";
        assert!(hits(src, Scope::Library).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(hits(src, Scope::Library).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_still_scanned() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib() { y.unwrap(); }\n";
        assert_eq!(hits(src, Scope::Library), vec![(5, Rule::NoPanic)]);
    }

    #[test]
    fn hash_imports_fire_but_btreemap_does_not() {
        assert_eq!(
            hits("use std::collections::HashMap;\n", Scope::Library),
            vec![(1, Rule::HashOrder)]
        );
        assert_eq!(
            hits("let m: collections::HashSet<u8> = x;\n", Scope::Library),
            vec![(1, Rule::HashOrder)]
        );
        assert!(hits("use std::collections::BTreeMap;\n", Scope::Library).is_empty());
        // a type *mention* away from the import choke point is not
        // re-flagged (the import already was)
        assert!(hits("fn f(m: &HashMap<u8, u8>) {}\n", Scope::Library).is_empty());
    }

    #[test]
    fn wall_clock_fires_in_library_but_not_harness() {
        let src = "let t = Instant::now();\nlet s = SystemTime::UNIX_EPOCH;\n";
        assert_eq!(hits(src, Scope::Library).len(), 2);
        assert!(hits(src, Scope::Harness).is_empty());
    }

    #[test]
    fn unsafe_fires_everywhere_but_the_forbid_attribute_does_not() {
        assert_eq!(
            hits(
                "unsafe { std::hint::unreachable_unchecked() }\n",
                Scope::Harness
            ),
            vec![(1, Rule::UnsafeCode)]
        );
        assert_eq!(
            hits("static mut COUNTER: u64 = 0;\n", Scope::Library),
            vec![(1, Rule::UnsafeCode)]
        );
        assert!(hits("#![forbid(unsafe_code)]\n", Scope::Library).is_empty());
    }

    #[test]
    fn int_casts_fire_only_inside_sort_key_code() {
        let in_key = "v.sort_by_key(|x| x.f as u64);\n";
        assert_eq!(hits(in_key, Scope::Library), vec![(1, Rule::FloatKeyCast)]);
        let in_fn = "fn sort_key(&self) -> u64 {\n    self.f as u64\n}\n";
        assert_eq!(hits(in_fn, Scope::Library), vec![(2, Rule::FloatKeyCast)]);
        let outside = "let n = x.f as u64;\n";
        assert!(hits(outside, Scope::Library).is_empty());
        let bits = "v.sort_by_key(|x| x.f.to_bits());\n";
        assert!(hits(bits, Scope::Library).is_empty());
    }

    #[test]
    fn multiline_sort_key_closure_is_covered() {
        let src = "v.sort_by_key(|x| {\n    let k = x.f as i64;\n    k\n});\n";
        assert_eq!(hits(src, Scope::Library), vec![(2, Rule::FloatKeyCast)]);
    }

    #[test]
    fn forbidden_tokens_in_comments_and_strings_do_not_fire() {
        let src = "// a partial_cmp in prose\nlet m = \"calls .unwrap() and panic!\";\n";
        assert!(hits(src, Scope::Library).is_empty());
    }

    #[test]
    fn harness_scope_still_enforces_determinism_rules() {
        let src = "use std::collections::HashMap;\nlet o = a.partial_cmp(&b);\n";
        let got = hits(src, Scope::Harness);
        assert_eq!(got, vec![(1, Rule::HashOrder), (2, Rule::FloatOrd)]);
    }
}
