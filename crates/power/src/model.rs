//! The EARTH load-dependent power model (paper eq. (3)).

use core::fmt;

use corridor_units::{LoadFraction, Watts};

/// The operating state of a radio node.
///
/// The EARTH model distinguishes three regimes:
///
/// * **Sleep** — deep sleep with transceivers off (`P_sleep`);
/// * **Idle** — awake, synchronized, but carrying no traffic (`P0`);
/// * **Active(χ)** — carrying traffic at load fraction χ
///   (`P0 + Δp·Pmax·χ`).
///
/// `Active(LoadFraction::ZERO)` and `Idle` consume the same power; they are
/// kept distinct because schedulers treat them differently (an idle node can
/// sleep, an active one cannot).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OperatingState {
    /// Deep sleep: only wake-up circuitry powered.
    Sleep,
    /// Awake with zero traffic.
    #[default]
    Idle,
    /// Carrying traffic at the given load fraction.
    Active(LoadFraction),
}

impl OperatingState {
    /// Active at full load (χ = 1).
    pub fn full_load() -> Self {
        OperatingState::Active(LoadFraction::FULL)
    }

    /// True for the sleep state.
    pub fn is_sleep(self) -> bool {
        matches!(self, OperatingState::Sleep)
    }
}

impl fmt::Display for OperatingState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatingState::Sleep => f.write_str("sleep"),
            OperatingState::Idle => f.write_str("idle"),
            OperatingState::Active(load) => write!(f, "active at {load}"),
        }
    }
}

/// The EARTH parameterized power model of one radio node.
///
/// # Examples
///
/// ```
/// use corridor_power::{LoadDependentPower, OperatingState};
/// use corridor_units::{LoadFraction, Watts};
///
/// // paper Table II, high-power RRH (one sector)
/// let rrh = LoadDependentPower::new(
///     Watts::new(40.0),   // Pmax (RF output)
///     Watts::new(168.0),  // P0
///     2.8,                // Δp
///     Watts::new(112.0),  // Psleep
/// );
/// assert_eq!(rrh.input_power(OperatingState::full_load()), Watts::new(280.0));
/// assert_eq!(rrh.input_power(OperatingState::Idle), Watts::new(168.0));
/// assert_eq!(rrh.input_power(OperatingState::Sleep), Watts::new(112.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadDependentPower {
    p_max: Watts,
    p0: Watts,
    delta_p: f64,
    p_sleep: Watts,
}

impl LoadDependentPower {
    /// Creates a model from the four EARTH parameters.
    ///
    /// # Panics
    ///
    /// Panics if any power is negative or `delta_p` is negative.
    pub fn new(p_max: Watts, p0: Watts, delta_p: f64, p_sleep: Watts) -> Self {
        assert!(p_max.value() >= 0.0, "Pmax must be non-negative");
        assert!(p0.value() >= 0.0, "P0 must be non-negative");
        assert!(delta_p >= 0.0, "Δp must be non-negative");
        assert!(p_sleep.value() >= 0.0, "Psleep must be non-negative");
        LoadDependentPower {
            p_max,
            p0,
            delta_p,
            p_sleep,
        }
    }

    /// Maximum RF output power `Pmax`.
    pub fn p_max(&self) -> Watts {
        self.p_max
    }

    /// Zero-load input power `P0`.
    pub fn p0(&self) -> Watts {
        self.p0
    }

    /// Load-dependence slope `Δp`.
    pub fn delta_p(&self) -> f64 {
        self.delta_p
    }

    /// Sleep-mode input power `P_sleep`.
    pub fn p_sleep(&self) -> Watts {
        self.p_sleep
    }

    /// Input (consumed) power in the given state.
    pub fn input_power(&self, state: OperatingState) -> Watts {
        match state {
            OperatingState::Sleep => self.p_sleep,
            OperatingState::Idle => self.p0,
            OperatingState::Active(load) => self.p0 + self.p_max * (self.delta_p * load.value()),
        }
    }

    /// Input power at full load, `P0 + Δp·Pmax`.
    pub fn full_load_power(&self) -> Watts {
        self.input_power(OperatingState::full_load())
    }

    /// Scales the model to `count` identical units operated together
    /// (e.g. the two RRHs of one mast): `P0`, `Pmax` and `Psleep` scale,
    /// `Δp` is a per-unit slope and stays.
    #[must_use]
    pub fn scaled(&self, count: f64) -> Self {
        assert!(count >= 0.0, "count must be non-negative");
        LoadDependentPower {
            p_max: self.p_max * count,
            p0: self.p0 * count,
            delta_p: self.delta_p,
            p_sleep: self.p_sleep * count,
        }
    }
}

impl fmt::Display for LoadDependentPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EARTH model {{ Pmax: {}, P0: {}, Δp: {}, Psleep: {} }}",
            self.p_max, self.p0, self.delta_p, self.p_sleep
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rrh() -> LoadDependentPower {
        LoadDependentPower::new(Watts::new(40.0), Watts::new(168.0), 2.8, Watts::new(112.0))
    }

    #[test]
    fn state_powers_match_table_ii() {
        let m = rrh();
        assert_eq!(m.input_power(OperatingState::Sleep), Watts::new(112.0));
        assert_eq!(m.input_power(OperatingState::Idle), Watts::new(168.0));
        assert_eq!(m.full_load_power(), Watts::new(280.0));
    }

    #[test]
    fn active_zero_load_equals_idle() {
        let m = rrh();
        assert_eq!(
            m.input_power(OperatingState::Active(LoadFraction::ZERO)),
            m.input_power(OperatingState::Idle)
        );
    }

    #[test]
    fn power_linear_in_load() {
        let m = rrh();
        let half = m.input_power(OperatingState::Active(LoadFraction::new(0.5).unwrap()));
        assert_eq!(half, Watts::new(168.0 + 2.8 * 40.0 * 0.5));
        // midpoint property
        let full = m.full_load_power();
        let idle = m.input_power(OperatingState::Idle);
        assert!((half.value() - (full.value() + idle.value()) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mast_scaling_matches_paper() {
        // two RRHs per mast: 560 W full, 336 W idle, 224 W sleep
        let mast = rrh().scaled(2.0);
        assert_eq!(mast.full_load_power(), Watts::new(560.0));
        assert_eq!(mast.input_power(OperatingState::Idle), Watts::new(336.0));
        assert_eq!(mast.input_power(OperatingState::Sleep), Watts::new(224.0));
    }

    #[test]
    fn state_helpers() {
        assert!(OperatingState::Sleep.is_sleep());
        assert!(!OperatingState::Idle.is_sleep());
        assert!(!OperatingState::full_load().is_sleep());
        assert_eq!(OperatingState::default(), OperatingState::Idle);
    }

    #[test]
    fn display() {
        assert_eq!(OperatingState::Sleep.to_string(), "sleep");
        assert_eq!(OperatingState::Idle.to_string(), "idle");
        assert_eq!(OperatingState::full_load().to_string(), "active at 100.0 %");
        assert!(rrh().to_string().contains("Pmax: 40.00 W"));
    }

    #[test]
    #[should_panic(expected = "P0 must be non-negative")]
    fn negative_p0_rejected() {
        let _ = LoadDependentPower::new(Watts::new(1.0), Watts::new(-1.0), 1.0, Watts::ZERO);
    }
}
