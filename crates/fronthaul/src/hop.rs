//! A single mmWave fronthaul hop.

use corridor_propagation::{FreeSpace, PathLoss};
use corridor_units::{Db, Dbm, Hertz, Meters};

use crate::{atmosphere, MmWaveBand};

/// One donor→service (or service→service) mmWave hop.
///
/// The hop carries the upconverted 100 MHz cell signal; for the repeater
/// chain to be transparent, the fronthaul SNR must comfortably exceed the
/// access-link SNR target (29 dB), so the default requirement is 32 dB
/// (3 dB implementation margin).
///
/// # Examples
///
/// ```
/// use corridor_fronthaul::{FronthaulHop, MmWaveBand};
/// use corridor_units::Meters;
///
/// let hop = FronthaulHop::paper_default(Meters::new(200.0));
/// // clear sky: tens of dB of margin at the paper's node spacing
/// assert!(hop.clear_sky_margin().value() > 10.0);
/// // five-nines availability against rain in a temperate climate
/// assert!(hop.rain_availability() > 0.999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FronthaulHop {
    band: MmWaveBand,
    distance: Meters,
    tx_eirp: Dbm,
    rx_antenna_gain: Db,
    bandwidth: Hertz,
    rx_noise_figure: Db,
    required_snr: Db,
}

impl FronthaulHop {
    /// The prototype's configuration: V-band 60 GHz at the full 40 dBm
    /// EIRP, a 42 dBi lens receive antenna, 100 MHz carrier, 8 dB noise
    /// figure, 32 dB required SNR.
    pub fn paper_default(distance: Meters) -> Self {
        FronthaulHop::new(MmWaveBand::v_band_60ghz(), distance)
    }

    /// A hop over `distance` in `band` with the default RF parameters,
    /// transmitting at the band's EIRP ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not strictly positive.
    pub fn new(band: MmWaveBand, distance: Meters) -> Self {
        assert!(distance.value() > 0.0, "hop distance must be positive");
        FronthaulHop {
            band,
            distance,
            tx_eirp: band.max_eirp(),
            rx_antenna_gain: Db::new(42.0),
            bandwidth: Hertz::from_mhz(100.0),
            rx_noise_figure: Db::new(8.0),
            required_snr: Db::new(32.0),
        }
    }

    /// Overrides the transmit EIRP (clamped to the band ceiling).
    #[must_use]
    pub fn with_tx_eirp(mut self, eirp: Dbm) -> Self {
        self.tx_eirp = if eirp > self.band.max_eirp() {
            self.band.max_eirp()
        } else {
            eirp
        };
        self
    }

    /// Overrides the receive antenna gain.
    #[must_use]
    pub fn with_rx_antenna_gain(mut self, gain: Db) -> Self {
        self.rx_antenna_gain = gain;
        self
    }

    /// Overrides the required SNR.
    #[must_use]
    pub fn with_required_snr(mut self, snr: Db) -> Self {
        self.required_snr = snr;
        self
    }

    /// The band in use.
    pub fn band(&self) -> &MmWaveBand {
        &self.band
    }

    /// Hop length.
    pub fn distance(&self) -> Meters {
        self.distance
    }

    /// Transmit EIRP.
    pub fn tx_eirp(&self) -> Dbm {
        self.tx_eirp
    }

    /// The SNR the hop must deliver.
    pub fn required_snr(&self) -> Db {
        self.required_snr
    }

    /// Thermal noise over the hop bandwidth including the receiver noise
    /// figure.
    pub fn noise_power(&self) -> Dbm {
        Dbm::new(-174.0 + 10.0 * self.bandwidth.value().log10()) + self.rx_noise_figure
    }

    /// Received power at a given rain rate.
    pub fn received_power(&self, rain_mm_h: f64) -> Dbm {
        let fspl = FreeSpace::new(self.band.frequency()).attenuation(self.distance);
        let excess = atmosphere::excess_attenuation(
            self.distance,
            self.band.oxygen_db_per_km(),
            atmosphere::rain_db_per_km(self.band.frequency(), rain_mm_h),
        );
        self.tx_eirp - fspl - excess + self.rx_antenna_gain
    }

    /// SNR at a given rain rate.
    pub fn snr(&self, rain_mm_h: f64) -> Db {
        self.received_power(rain_mm_h) - self.noise_power()
    }

    /// Margin over the required SNR under clear sky.
    pub fn clear_sky_margin(&self) -> Db {
        self.snr(0.0) - self.required_snr
    }

    /// Margin over the required SNR at `rain_mm_h`.
    pub fn margin_in_rain(&self, rain_mm_h: f64) -> Db {
        self.snr(rain_mm_h) - self.required_snr
    }

    /// The heaviest rain rate (mm/h) the hop tolerates at zero margin,
    /// from the power-law rain model.
    pub fn max_rain_rate_mm_h(&self) -> f64 {
        let margin = self.clear_sky_margin().value();
        if margin <= 0.0 {
            return 0.0;
        }
        let km = self.distance.kilometers().value();
        // invert margin = gamma(R) * km via the power law at this band
        let gamma_needed = margin / km;
        let gamma_at_1mm = atmosphere::rain_db_per_km(self.band.frequency(), 1.0).value();
        let gamma_at_50mm = atmosphere::rain_db_per_km(self.band.frequency(), 50.0).value();
        let alpha = (gamma_at_50mm / gamma_at_1mm).ln() / 50f64.ln();
        (gamma_needed / gamma_at_1mm).powf(1.0 / alpha)
    }

    /// Fraction of the year the hop meets its required SNR, considering
    /// rain only (temperate European climate).
    pub fn rain_availability(&self) -> f64 {
        let max_rain = self.max_rain_rate_mm_h();
        if max_rain <= 0.0 {
            return 0.0;
        }
        // invert the exceedance curve R(p) = 32·(0.01/p)^0.55
        let p_percent = 0.01 * (32.0 / max_rain).powf(1.0 / 0.55);
        (1.0 - (p_percent / 100.0).min(1.0)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hop_budget_ballpark() {
        let hop = FronthaulHop::paper_default(Meters::new(200.0));
        // FSPL(200 m, 60 GHz) ≈ 114 dB; EIRP 40 + 42 dBi - 114 - 3 dB O2
        let rx = hop.received_power(0.0).value();
        assert!((rx - (-35.0)).abs() < 1.0, "rx {rx}");
        // noise: -174 + 80 + 8 = -86 dBm
        assert!((hop.noise_power().value() - (-86.0)).abs() < 0.1);
        let snr = hop.snr(0.0).value();
        assert!((snr - 51.0).abs() < 1.5, "snr {snr}");
    }

    #[test]
    fn margin_decreases_with_distance_and_rain() {
        let short = FronthaulHop::paper_default(Meters::new(200.0));
        let long = FronthaulHop::paper_default(Meters::new(600.0));
        assert!(short.clear_sky_margin() > long.clear_sky_margin());
        assert!(short.margin_in_rain(25.0) < short.clear_sky_margin());
    }

    #[test]
    fn paper_spacing_survives_extreme_rain() {
        // the 200 m V-band hop has enough margin for >100 mm/h downpours
        let hop = FronthaulHop::paper_default(Meters::new(200.0));
        assert!(hop.max_rain_rate_mm_h() > 100.0);
        assert!(hop.rain_availability() > 0.9999);
    }

    #[test]
    fn e_band_reaches_farther() {
        let v = FronthaulHop::new(MmWaveBand::v_band_60ghz(), Meters::new(1000.0));
        let e = FronthaulHop::new(MmWaveBand::e_band_80ghz(), Meters::new(1000.0));
        // E-band: +15 dB EIRP and ~no oxygen absorption beat the extra FSPL
        assert!(e.clear_sky_margin() > v.clear_sky_margin());
    }

    #[test]
    fn eirp_clamped_to_band_ceiling() {
        let hop = FronthaulHop::paper_default(Meters::new(200.0)).with_tx_eirp(Dbm::new(60.0));
        assert_eq!(hop.tx_eirp(), Dbm::new(40.0));
    }

    #[test]
    fn dead_hop_has_zero_availability() {
        let hop = FronthaulHop::paper_default(Meters::new(200.0)).with_required_snr(Db::new(90.0));
        assert!(hop.clear_sky_margin().value() < 0.0);
        assert_eq!(hop.max_rain_rate_mm_h(), 0.0);
        assert_eq!(hop.rain_availability(), 0.0);
    }

    #[test]
    fn accessors() {
        let hop = FronthaulHop::paper_default(Meters::new(200.0));
        assert_eq!(hop.distance(), Meters::new(200.0));
        assert_eq!(hop.band().name(), "V-band 60 GHz");
        assert_eq!(hop.required_snr(), Db::new(32.0));
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_rejected() {
        let _ = FronthaulHop::paper_default(Meters::ZERO);
    }
}
