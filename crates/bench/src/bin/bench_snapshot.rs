//! Regenerates the committed `BENCH_*.json` throughput snapshots at
//! the repository root (`make bench-snapshot`).
//!
//! Each snapshot measures one hot path single-threaded — raw event
//! throughput, serial Monte-Carlo cell-days/s, serial sweep cells/s,
//! serial network-day edge-days/s — and records it against its fixed
//! baseline. The guard test in `tests/bench_snapshots.rs` keeps the
//! committed values above the floors, so run this on a quiet machine
//! and eyeball the diff before committing.

use corridor_bench::snapshot::{
    measure_events, measure_mc, measure_network, measure_sweep, Snapshot,
};

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for snap in [
        measure_events(),
        measure_mc(),
        measure_sweep(),
        measure_network(),
    ] {
        write_snapshot(root, &snap);
    }
}

fn write_snapshot(root: &str, snap: &Snapshot) {
    let path = format!("{root}/BENCH_{}.json", snap.name);
    std::fs::write(&path, snap.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "{}: {:.0} {} ({:.2}x baseline) -> {path}",
        snap.name,
        snap.value,
        snap.metric,
        snap.speedup()
    );
}
